"""Energy-harvesting subsystem: sources, predictors and storage.

This package models the left-hand side of the paper's Figure 2 — the
ambient energy source, the (optional) prediction of its future output, and
the energy storage that buffers harvested energy for the real-time system.
"""

from repro.energy.predictor import (
    HarvestPredictor,
    LastValuePredictor,
    MeanPowerPredictor,
    OraclePredictor,
    ProfilePredictor,
)
from repro.energy.source import (
    CompositeSource,
    ConstantSource,
    DayNightSource,
    EnergySource,
    MarkovWeatherSource,
    ScaledSource,
    SolarStochasticSource,
    TraceSource,
)
from repro.energy.storage import EnergyStorage, IdealStorage, NonIdealStorage
from repro.energy.trace_io import (
    TraceFormatError,
    TraceFormatWarning,
    load_power_csv,
    resample_to_quantum,
    save_power_csv,
    source_from_csv,
)

__all__ = [
    "load_power_csv",
    "resample_to_quantum",
    "save_power_csv",
    "source_from_csv",
    "CompositeSource",
    "TraceFormatError",
    "TraceFormatWarning",
    "ConstantSource",
    "DayNightSource",
    "EnergySource",
    "EnergyStorage",
    "HarvestPredictor",
    "IdealStorage",
    "LastValuePredictor",
    "MarkovWeatherSource",
    "MeanPowerPredictor",
    "NonIdealStorage",
    "OraclePredictor",
    "ProfilePredictor",
    "ScaledSource",
    "SolarStochasticSource",
    "TraceSource",
]
