"""Energy storage models.

Section 3.2 of the paper assumes an *ideal* storage: charged up to its
capacity ``C`` (excess harvest overflows and is discarded), discharged all
the way to zero, no conversion losses, no leakage.  :class:`IdealStorage`
implements exactly that.  :class:`NonIdealStorage` adds charge/discharge
efficiencies and a leakage drain as an ablation of the ideality assumption.

The simulator advances the system in segments of constant harvest and draw
power, so storage exposes *analytic* segment operations:

* :meth:`EnergyStorage.time_to_empty` / :meth:`EnergyStorage.time_to_full`
  — linear-root predictions used to split segments at the instant the
  storage state saturates;
* :meth:`EnergyStorage.advance` — exact state update over a segment during
  which the level is known not to cross zero (the simulator splits there).

An infinite storage (``capacity=inf, initial=inf``) is supported because
the paper's section 4.3 argues EA-DVFS degenerates to plain EDF in that
case; the test suite enforces the degeneration.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass

from repro.timeutils import EPSILON, INFINITY, snap_nonnegative

__all__ = ["SegmentResult", "EnergyStorage", "IdealStorage", "NonIdealStorage"]


@dataclass(frozen=True)
class SegmentResult:
    """Energy bookkeeping for one constant-power segment.

    Attributes
    ----------
    drawn:
        Energy delivered to the load (``draw_power * duration``).
    stored_delta:
        Net change of the stored level.
    overflow:
        Harvested energy discarded because the storage was full.
    leaked:
        Energy lost to leakage (always 0 for :class:`IdealStorage`).
    """

    drawn: float
    stored_delta: float
    overflow: float
    leaked: float = 0.0


class EnergyStorage(abc.ABC):
    """Common interface of storage models."""

    def __init__(self, capacity: float, initial: float) -> None:
        if math.isnan(capacity) or capacity <= 0:
            raise ValueError(f"capacity must be > 0 (or inf), got {capacity!r}")
        if math.isnan(initial) or initial < 0:
            raise ValueError(f"initial level must be >= 0, got {initial!r}")
        if initial > capacity + EPSILON:
            raise ValueError(
                f"initial level {initial!r} exceeds capacity {capacity!r}"
            )
        if math.isinf(initial) and not math.isinf(capacity):
            raise ValueError("infinite level requires infinite capacity")
        self._capacity = float(capacity)
        self._stored = min(float(initial), self._capacity)
        self._total_overflow = 0.0
        self._total_drawn = 0.0
        self._total_leaked = 0.0

    # -- state ------------------------------------------------------------

    @property
    def capacity(self) -> float:
        """Storage capacity ``C`` (possibly ``inf``)."""
        return self._capacity

    @property
    def stored(self) -> float:
        """Current stored energy ``EC(t)``."""
        return self._stored

    @property
    def fraction(self) -> float:
        """Normalized level ``EC(t)/C``; ``nan`` for infinite capacity."""
        if math.isinf(self._capacity):
            return math.nan
        return self._stored / self._capacity

    @property
    def is_empty(self) -> bool:
        return self._stored <= EPSILON

    @property
    def is_full(self) -> bool:
        return self._stored >= self._capacity - EPSILON

    @property
    def total_overflow(self) -> float:
        """Cumulative harvested energy discarded while full."""
        return self._total_overflow

    @property
    def total_drawn(self) -> float:
        """Cumulative energy delivered to the load."""
        return self._total_drawn

    @property
    def total_leaked(self) -> float:
        """Cumulative leakage losses."""
        return self._total_leaked

    # -- analytic segment operations ---------------------------------------

    @abc.abstractmethod
    def net_flow(self, harvest_power: float, draw_power: float) -> float:
        """Rate of change of the stored level under the given powers.

        For the ideal storage this is simply ``harvest - draw``; lossy
        models fold efficiencies and leakage in.  Saturation at 0/C is not
        considered here.
        """

    def time_to_empty(self, harvest_power: float, draw_power: float) -> float:
        """Time until the level reaches zero, or ``inf`` if it never does."""
        self._check_powers(harvest_power, draw_power)
        if math.isinf(self._stored):
            return INFINITY
        rate = self.net_flow(harvest_power, draw_power)
        if rate >= -EPSILON:
            return INFINITY
        return max(0.0, self._stored / -rate)

    def time_to_full(self, harvest_power: float, draw_power: float) -> float:
        """Time until the level reaches capacity, or ``inf`` if never."""
        self._check_powers(harvest_power, draw_power)
        if math.isinf(self._capacity):
            return INFINITY
        rate = self.net_flow(harvest_power, draw_power)
        if rate <= EPSILON:
            return INFINITY
        return max(0.0, (self._capacity - self._stored) / rate)

    def advance(
        self, duration: float, harvest_power: float, draw_power: float
    ) -> SegmentResult:
        """Advance the storage through one constant-power segment.

        The caller (the simulator) must have split the segment so that the
        level does not cross *zero* inside it while drawing; violating that
        raises :class:`RuntimeError`, which flags a simulator accounting
        bug rather than silently delivering energy that does not exist.
        Crossing the *capacity* is fine — the excess is counted as
        overflow.
        """
        if duration < 0 or math.isnan(duration):
            raise ValueError(f"duration must be >= 0, got {duration!r}")
        self._check_powers(harvest_power, draw_power)
        # Exact == 0.0 on purpose: a tolerant zero would swallow the
        # energy of sub-EPSILON slivers and break conservation oracles.
        if duration == 0.0:  # repro-lint: disable=RPR101 -- exact by design
            return SegmentResult(drawn=0.0, stored_delta=0.0, overflow=0.0)
        if math.isinf(self._stored):
            drawn = draw_power * duration
            self._total_drawn += drawn
            return SegmentResult(drawn=drawn, stored_delta=0.0, overflow=0.0)
        result = self._advance_finite(duration, harvest_power, draw_power)
        self._total_drawn += result.drawn
        self._total_overflow += result.overflow
        self._total_leaked += result.leaked
        return result

    @abc.abstractmethod
    def _advance_finite(
        self, duration: float, harvest_power: float, draw_power: float
    ) -> SegmentResult:
        """Model-specific update for a finite stored level."""

    def draw_instant(self, energy: float) -> float:
        """Withdraw a lump of energy right now (e.g. a DVFS switch cost).

        Returns the energy actually delivered, which may be less than
        requested when the storage cannot cover it (best effort — the
        switch happens regardless, it simply browns the storage out).
        """
        if energy < 0 or math.isnan(energy):
            raise ValueError(f"energy must be >= 0, got {energy!r}")
        # Exact == 0.0: tiny lumps must still be accounted, not dropped.
        if energy == 0.0:  # repro-lint: disable=RPR101 -- exact by design
            return 0.0
        if math.isinf(self._stored):
            self._total_drawn += energy
            return energy
        cost_factor = self._instant_discharge_factor()
        delivered = min(energy, self._stored / cost_factor)
        self._stored = snap_nonnegative(self._stored - delivered * cost_factor)
        self._total_drawn += delivered
        return delivered

    def _instant_discharge_factor(self) -> float:
        """Stored energy spent per unit delivered (1.0 for ideal storage)."""
        return 1.0

    @staticmethod
    def _check_powers(harvest_power: float, draw_power: float) -> None:
        if harvest_power < 0 or math.isnan(harvest_power):
            raise ValueError(f"harvest power must be >= 0, got {harvest_power!r}")
        if draw_power < 0 or math.isnan(draw_power):
            raise ValueError(f"draw power must be >= 0, got {draw_power!r}")

    def _saturate(self, proposed: float) -> tuple[float, float]:
        """Clamp a proposed new level into ``[0, C]``.

        Returns ``(new_level, overflow)``.  Levels below ``-EPSILON``
        raise — the simulator should have split the segment at depletion.
        """
        if proposed < 0.0:
            # Tolerance is looser than EPSILON: segment ends are clipped to
            # depletion instants computed from the same floats, so the
            # residual can be a few rate*EPSILON in magnitude.
            if proposed < -1e-6 * max(1.0, abs(self._stored)):
                raise RuntimeError(
                    "storage drained below zero inside a segment "
                    f"(proposed level {proposed!r}); the caller must split "
                    "segments at the depletion instant"
                )
            proposed = 0.0
        overflow = 0.0
        if proposed > self._capacity:
            overflow = proposed - self._capacity
            proposed = self._capacity
        return proposed, overflow


class IdealStorage(EnergyStorage):
    """The paper's ideal storage (section 3.2).

    ``capacity`` may be ``inf``; ``initial`` defaults to a full storage as
    in the simulation setup of section 5.1 ("in the beginning of the
    simulation, the energy storage is full").
    """

    def __init__(self, capacity: float, initial: float | None = None) -> None:
        super().__init__(capacity, capacity if initial is None else initial)

    def net_flow(self, harvest_power: float, draw_power: float) -> float:
        return harvest_power - draw_power

    def _advance_finite(
        self, duration: float, harvest_power: float, draw_power: float
    ) -> SegmentResult:
        old = self._stored
        proposed = old + (harvest_power - draw_power) * duration
        new, overflow = self._saturate(proposed)
        self._stored = new
        return SegmentResult(
            drawn=draw_power * duration,
            stored_delta=new - old,
            overflow=overflow,
        )

    def __repr__(self) -> str:
        return (
            f"IdealStorage(capacity={self._capacity!r}, "
            f"stored={self._stored!r})"
        )


class NonIdealStorage(EnergyStorage):
    """Storage with conversion losses and leakage (ideality ablation).

    Parameters
    ----------
    charge_efficiency:
        Fraction of harvested energy that actually reaches the store
        (``0 < eta_c <= 1``).
    discharge_efficiency:
        Delivered/withdrawn ratio: supplying ``P`` to the load depletes the
        store at ``P / eta_d`` (``0 < eta_d <= 1``).
    leakage_power:
        Constant self-discharge drain while the store is non-empty.
    """

    def __init__(
        self,
        capacity: float,
        initial: float | None = None,
        charge_efficiency: float = 0.9,
        discharge_efficiency: float = 0.9,
        leakage_power: float = 0.0,
    ) -> None:
        super().__init__(capacity, capacity if initial is None else initial)
        for name, eta in (
            ("charge_efficiency", charge_efficiency),
            ("discharge_efficiency", discharge_efficiency),
        ):
            if not 0.0 < eta <= 1.0:
                raise ValueError(f"{name} must lie in (0, 1], got {eta!r}")
        if leakage_power < 0 or not math.isfinite(leakage_power):
            raise ValueError(
                f"leakage_power must be finite and >= 0, got {leakage_power!r}"
            )
        self._eta_c = float(charge_efficiency)
        self._eta_d = float(discharge_efficiency)
        self._leak = float(leakage_power)

    @property
    def charge_efficiency(self) -> float:
        return self._eta_c

    @property
    def discharge_efficiency(self) -> float:
        return self._eta_d

    @property
    def leakage_power(self) -> float:
        return self._leak

    def _effective_leak(self, inflow: float, outflow: float) -> float:
        """Leakage rate actually acting in the current state.

        Leakage drains stored charge, so with a non-empty store the full
        rate applies.  At an empty store there is no charge to leak —
        leakage can only eat the surplus of inflow over outflow (the
        level stays pinned at zero).  This single rule is used by both
        :meth:`net_flow` and the integrator, so the simulator's
        depletion/stall logic and the state update can never disagree.
        """
        if self._stored > EPSILON:
            return self._leak
        return min(self._leak, max(0.0, inflow - outflow))

    def net_flow(self, harvest_power: float, draw_power: float) -> float:
        inflow = self._eta_c * harvest_power
        outflow = draw_power / self._eta_d
        return inflow - outflow - self._effective_leak(inflow, outflow)

    def _instant_discharge_factor(self) -> float:
        return 1.0 / self._eta_d

    def _advance_finite(
        self, duration: float, harvest_power: float, draw_power: float
    ) -> SegmentResult:
        old = self._stored
        inflow = self._eta_c * harvest_power
        outflow = draw_power / self._eta_d

        if old <= EPSILON:
            # Pinned-at-zero regime: effective leak capped so the level
            # cannot go negative (the simulator stalls instead of drawing
            # an unsustainable load here).
            leak = self._effective_leak(inflow, outflow)
            proposed = old + (inflow - outflow - leak) * duration
            new, overflow = self._saturate(proposed)
            self._stored = new
            leaked = leak * duration
        elif draw_power > 0 or inflow - self._leak >= -EPSILON:
            # Level is monotone, or the caller split the segment at the
            # depletion instant (violations trip _saturate).
            proposed = old + (inflow - outflow - self._leak) * duration
            new, overflow = self._saturate(proposed)
            self._stored = new
            leaked = self._leak * duration
        else:
            # Idle segment whose leakage outpaces harvest: the level
            # decays linearly to zero, then sits pinned (residual leak
            # capped at the inflow; outflow is zero here).
            decay_rate = self._leak - inflow  # > 0 here
            t_empty = old / decay_rate
            # Exact split is safe: both branches agree at t_empty ==
            # duration (level 0.0, leak for the whole segment).
            if t_empty >= duration:  # repro-lint: disable=RPR102 -- branches agree at the boundary
                self._stored = old - decay_rate * duration
                leaked = self._leak * duration
            else:
                residual = duration - t_empty
                self._stored = 0.0
                leaked = self._leak * t_empty + min(self._leak, inflow) * residual
            overflow = 0.0

        return SegmentResult(
            drawn=draw_power * duration,
            stored_delta=self._stored - old,
            overflow=overflow,
            leaked=leaked,
        )

    def __repr__(self) -> str:
        return (
            f"NonIdealStorage(capacity={self._capacity!r}, stored="
            f"{self._stored!r}, eta_c={self._eta_c!r}, eta_d={self._eta_d!r}, "
            f"leak={self._leak!r})"
        )
