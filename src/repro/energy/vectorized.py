"""Vectorized predictor kernels mirroring :mod:`repro.energy.predictor`.

The batch engine (:mod:`repro.sim.batch`) keeps per-lane predictor state
in structure-of-arrays form — one EWMA scalar per lane for the mean and
last-value predictors, one bin-estimate row per lane for the profile
predictor.  The kernels here update and query that state for many lanes
at once.

Bit-exactness doctrine (see ``docs/batch-simulation.md``): every kernel
performs the *same* IEEE float64 operations in the *same* order as its
scalar counterpart in :mod:`repro.energy.predictor`.  The elementwise
span kernels lean on pinned numpy/libm equivalences
(``TestNumpyAccumulationContract`` in
``tests/sched/test_vectorized_kernels.py``), with one deliberate
exception: numpy's *array* ``np.power`` uses a SIMD implementation that
differs from libm ``pow`` (hence from CPython's ``**``) by one ulp on
~5% of inputs (observed on numpy 2.4.6), so the EWMA decay factors go
through :func:`_libm_pow`, an element-wise libm ``pow``.

The profile kernels do not re-derive the cyclic bin walk at all: they
run the scalar generator (:func:`repro.energy.predictor
.profile_segments`) once per participating lane.  The walk is a handful
of segments per lane and the participating lane sets are small (the
lanes deciding or moving in one step), so per-lane Python floats beat
masked small-array numpy by a wide margin — and sharing the scalar
generator makes bit-equality true by construction rather than by
argument.

All kernels take *dense* arrays: the caller extracts the lanes that
participate (e.g. only lanes whose elapsed segment exceeds ``EPSILON``
get an observe, matching the scalar gate) and scatters results back.
"""

# repro: float-doctrine -- the RPR4xx bit-exactness rules apply here.

from __future__ import annotations

import math

import numpy as np
import numpy.typing as npt

from repro.energy.predictor import profile_segments
from repro.timeutils import EPSILON

__all__ = [
    "batch_span_predict",
    "batch_mean_observe",
    "batch_last_observe",
    "batch_profile_predict",
    "batch_profile_observe",
]

FloatArray = npt.NDArray[np.float64]
IntArray = npt.NDArray[np.int64]
BoolArray = npt.NDArray[np.bool_]


def _libm_pow(base: FloatArray, expo: FloatArray) -> FloatArray:
    """Element-wise libm ``pow``, bit-identical to CPython's ``**``.

    numpy's vectorized ``np.power`` is *not* (one-ulp SIMD deviations),
    which would leak into the EWMA state and break the doctrine — so the
    decay factors pay for a per-element libm call instead.  Observe
    batches are small (one entry per moving lane per step), so this is
    off the hot path.
    """
    return np.array([math.pow(b, e) for b, e in zip(base.tolist(), expo.tolist())])


def batch_span_predict(estimate: FloatArray, t0: FloatArray, t1: FloatArray) -> FloatArray:
    """Element-wise ``MeanPowerPredictor``/``LastValuePredictor`` predict.

    Mirrors the scalar empty-window contract: windows no longer than
    ``EPSILON`` predict ``0.0``; otherwise ``estimate * (t1 - t0)``.
    """
    span = t1 - t0
    result: FloatArray = np.where(span <= EPSILON, 0.0, estimate * span)
    return result


def batch_mean_observe(
    estimate: FloatArray, alpha: FloatArray, duration: FloatArray, energy: FloatArray
) -> FloatArray:
    """Element-wise :meth:`MeanPowerPredictor.observe` (returns new estimate).

    Callers must pre-filter to ``duration > EPSILON`` (the scalar gate).
    """
    mean_power = np.maximum(0.0, energy / duration)
    keep = _libm_pow(1.0 - alpha, duration)
    result: FloatArray = keep * estimate + (1.0 - keep) * mean_power
    return result


def batch_last_observe(duration: FloatArray, energy: FloatArray) -> FloatArray:
    """Element-wise :meth:`LastValuePredictor.observe` (returns new estimate).

    Callers must pre-filter to ``duration > EPSILON`` (the scalar gate).
    """
    result: FloatArray = np.maximum(0.0, energy / duration)
    return result


def _batch_snap_tail(covered: FloatArray, span: FloatArray) -> FloatArray:
    """Element-wise :func:`repro.energy.predictor._snap_tail`.

    Nudges the final segment duration by ulps until ``covered + d ==
    span`` exactly; already-exact elements stop being nudged, so each
    element follows the scalar loop bit-for-bit (``np.nextafter``
    matches ``math.nextafter``, pinned).
    """
    d = span - covered
    for _ in range(8):
        total = covered + d
        off = total != span
        if not off.any():
            break
        nudged = np.nextafter(d, np.where(total < span, np.inf, -np.inf))
        d = np.where(off, nudged, d)
    return d


def _first_bin_edge(
    t0: FloatArray,
    period: FloatArray,
    bin_width: FloatArray,
    n_bins: IntArray,
) -> tuple[IntArray, FloatArray, FloatArray]:
    """Each lane's starting bin, first ladder edge, and cycle position.

    The same floats the scalar walk computes at its first step
    (``j = 0``): ``np.mod`` matches ``%``, truncation matches ``int()``
    and int64→float64 conversion is exact at these magnitudes — all
    pinned by ``TestNumpyAccumulationContract``.
    """
    position = np.mod(t0, period)
    first = np.minimum((position / bin_width).astype(np.int64), n_bins - 1)
    edge = (first + 1).astype(np.float64) * bin_width - position
    return first, edge, position


def batch_profile_predict(
    t0: FloatArray,
    t1: FloatArray,
    period: FloatArray,
    bin_width: FloatArray,
    n_bins: IntArray,
    estimates: FloatArray,
) -> FloatArray:
    """Element-wise :meth:`ProfilePredictor.predict_energy`.

    ``estimates`` is ``(lanes, max_bins)``.  Windows that fit inside one
    bin (the scalar walk terminates at its first step, and the tail snap
    is the identity because nothing is covered yet) take a fully
    vectorized path: ``estimate[first] * span``, the same single product
    the scalar sum performs.  Windows crossing a bin edge run the scalar
    segment walk per lane and accumulate contributions left to right —
    the exact float sum the scalar predictor computes.
    """
    span = t1 - t0
    total = np.zeros(t0.shape[0])
    live = span > EPSILON
    if not live.any():
        return total
    first, edge, position = _first_bin_edge(t0, period, bin_width, n_bins)
    single = live & (edge >= span)
    rows = np.flatnonzero(single)
    if rows.size:
        total[rows] = estimates[rows, first[rows]] * span[rows]
    # Two-segment windows (crossing exactly one bin edge) stay
    # vectorized: the scalar walk yields (first, edge) then the snapped
    # tail in the next bin, and its left-to-right sum is the same two
    # products and one addition performed element-wise here.  The
    # ``edge > 0`` guard mirrors the walk's ``edge > covered`` mid-step
    # condition (a clamped first bin can start with a non-positive
    # ladder edge, which the scalar walk skips without yielding).
    edge2 = (first + 2).astype(np.float64) * bin_width - position
    double = live & ~single & (edge > 0.0) & (edge2 >= span)
    rows = np.flatnonzero(double)
    if rows.size:
        tail = _batch_snap_tail(edge[rows], span[rows])
        second = np.mod(first[rows] + 1, n_bins[rows])
        total[rows] = (
            estimates[rows, first[rows]] * edge[rows]
            + estimates[rows, second] * tail
        )
    multi = np.flatnonzero(live & ~single & ~double)
    if multi.size:
        t0s = t0.tolist()
        t1s = t1.tolist()
        periods = period.tolist()
        widths = bin_width.tolist()
        bins = n_bins.tolist()
        for i in multi.tolist():
            row = estimates[i]
            acc = 0.0
            for index, d in profile_segments(
                t0s[i], t1s[i], periods[i], widths[i], bins[i]
            ):
                acc += float(row[index]) * d
            total[i] = acc
    return total


def batch_profile_observe(
    t0: FloatArray,
    t1: FloatArray,
    period: FloatArray,
    bin_width: FloatArray,
    n_bins: IntArray,
    alpha: FloatArray,
    energy: FloatArray,
    estimates: FloatArray,
    seen: BoolArray,
) -> None:
    """Element-wise :meth:`ProfilePredictor.observe` (mutates in place).

    ``estimates``/``seen`` are ``(lanes, max_bins)`` and are updated for
    the given lanes.  Callers must pre-filter to ``t1 - t0 > EPSILON``
    (the scalar gate).  Single-bin windows (the overwhelming case: one
    simulation segment is usually far shorter than a profile bin) take
    the vectorized path — for them the scalar walk terminates at its
    first step with the full span as the (snap-exact) tail, so the
    update is one EWMA step per lane with a libm decay factor.  Windows
    crossing a bin edge run the scalar segment walk per lane, so
    repeated visits to the same bin within one window (spans longer
    than the period) apply their EWMA updates in walk order, exactly
    like the scalar loop — including the scalar's ``**`` for the decay
    factor.
    """
    duration = t1 - t0
    mean_power = np.maximum(0.0, energy / duration)
    first, edge, _ = _first_bin_edge(t0, period, bin_width, n_bins)
    single = edge >= duration
    rows = np.flatnonzero(single)
    if rows.size:
        idx = first[rows]
        keep = _libm_pow(1.0 - alpha[rows], duration[rows] / bin_width[rows])
        prior = estimates[rows, idx]
        ewma = keep * prior + (1.0 - keep) * mean_power[rows]
        estimates[rows, idx] = np.where(seen[rows, idx], ewma, mean_power[rows])
        seen[rows, idx] = True
    multi = np.flatnonzero(~single)
    if multi.size:
        t0s = t0.tolist()
        t1s = t1.tolist()
        periods = period.tolist()
        widths = bin_width.tolist()
        bins = n_bins.tolist()
        alphas = alpha.tolist()
        powers = mean_power.tolist()
        for i in multi.tolist():
            power = powers[i]
            keep_base = 1.0 - alphas[i]
            width = widths[i]
            row = estimates[i]
            seen_row = seen[i]
            for index, d in profile_segments(
                t0s[i], t1s[i], periods[i], width, bins[i]
            ):
                if seen_row[index]:
                    keep = keep_base ** (d / width)
                    row[index] = keep * float(row[index]) + (1.0 - keep) * power
                else:
                    row[index] = power
                seen_row[index] = True
