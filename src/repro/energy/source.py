"""Ambient energy source models.

All sources expose *piecewise-constant* output power: within each quantum
(default one time unit) the power is constant, so every energy integral the
simulator needs is exact and every storage-depletion time is the root of a
linear function.  This mirrors the discrete-event structure of the paper's
C/C++ simulator, where the stochastic source of eq. (13) is redrawn once
per time unit.

The paper's source (section 5.1, eq. (13)) is::

    PS(t) = 10 * N(t) * cos(t / 70pi) * cos(t / 70pi)

with ``N(t) ~ Normal(0, 1)``.  Taken literally this is negative half the
time, while the paper's Figure 5 shows a non-negative signal peaking around
20.  :class:`SolarStochasticSource` therefore rectifies the Gaussian factor;
``rectify="abs"`` (default, mean power ~3.99) matches the dense 0..20 band
of Figure 5, and ``rectify="clamp"`` (mean ~2.0) is available for ablation.
"""

from __future__ import annotations

import abc
import math
from typing import Sequence

import numpy as np

from repro.timeutils import EPSILON, INFINITY, validate_interval

__all__ = [
    "EnergySource",
    "ConstantSource",
    "SolarStochasticSource",
    "DayNightSource",
    "MarkovWeatherSource",
    "TraceSource",
    "ScaledSource",
    "CompositeSource",
    "SOLAR_ENVELOPE_PERIOD",
]

#: Period of the deterministic envelope ``cos^2(t / 70pi)`` in eq. (13):
#: the squared cosine has period ``pi * 70pi = 70 pi^2``.
SOLAR_ENVELOPE_PERIOD: float = 70.0 * math.pi * math.pi


class EnergySource(abc.ABC):
    """Abstract piecewise-constant ambient energy source.

    Subclasses implement :meth:`power` (instantaneous net output power
    after conversion losses, i.e. the paper's ``PS(t)``) and
    :meth:`next_boundary` (the next instant at which the power may change).
    :meth:`energy` integrates the power exactly by walking boundaries.
    """

    @abc.abstractmethod
    def power(self, t: float) -> float:
        """Net harvested power at time ``t >= 0``."""

    @abc.abstractmethod
    def next_boundary(self, t: float) -> float:
        """The smallest boundary strictly greater than ``t``.

        Between consecutive boundaries the power is constant.  Sources with
        truly constant output return ``+inf``.
        """

    def mean_power(self) -> float:
        """Long-run average output power.

        Used by the workload generator (the paper's ``P̄s``).  The default
        estimates it by integrating over a long horizon; subclasses with a
        closed form override this.
        """
        horizon = 10_000.0
        return self.energy(0.0, horizon) / horizon

    def energy(self, t0: float, t1: float) -> float:
        """Exact harvested energy ``ES(t0, t1)`` (eq. (2)).

        Walks quantum boundaries so the piecewise-constant integral is
        exact.  ``t1`` may be ``+inf`` only for sources that are eventually
        zero, which none of the built-ins are, so a finite ``t1`` is
        required.
        """
        validate_interval(t0, t1)
        if not math.isfinite(t1):
            raise ValueError("energy() requires a finite end time")
        if t1 - t0 <= EPSILON:
            return 0.0
        total = 0.0
        t = t0
        while t < t1 - EPSILON:
            boundary = self.next_boundary(t)
            if boundary <= t:  # defensive: a boundary must advance time
                raise RuntimeError(
                    f"{type(self).__name__}.next_boundary({t!r}) = {boundary!r} "
                    "does not advance time"
                )
            segment_end = min(boundary, t1)
            total += self.power(t) * (segment_end - t)
            t = segment_end
        return total

    def sample(self, t0: float, t1: float, step: float = 1.0) -> np.ndarray:
        """Power sampled on a regular grid — convenience for plotting."""
        validate_interval(t0, t1)
        if step <= 0:
            raise ValueError(f"step must be positive, got {step!r}")
        grid = np.arange(t0, t1, step)
        return np.asarray([self.power(float(t)) for t in grid], dtype=float)


def _check_time(t: float) -> None:
    if t < -EPSILON or math.isnan(t):
        raise ValueError(f"source time must be >= 0, got {t!r}")


class ConstantSource(EnergySource):
    """Source with constant output power (e.g. the motivational example)."""

    def __init__(self, power: float) -> None:
        if power < 0 or not math.isfinite(power):
            raise ValueError(f"constant power must be finite and >= 0, got {power!r}")
        self._power = float(power)

    def power(self, t: float) -> float:
        _check_time(t)
        return self._power

    def next_boundary(self, t: float) -> float:
        _check_time(t)
        return INFINITY

    def mean_power(self) -> float:
        return self._power

    def energy(self, t0: float, t1: float) -> float:
        validate_interval(t0, t1)
        if not math.isfinite(t1):
            raise ValueError("energy() requires a finite end time")
        return self._power * max(0.0, t1 - t0)

    def __repr__(self) -> str:
        return f"ConstantSource(power={self._power!r})"


class _QuantizedSource(EnergySource):
    """Base for sources that are constant on a regular quantum grid."""

    def __init__(self, quantum: float) -> None:
        if quantum <= 0 or not math.isfinite(quantum):
            raise ValueError(f"quantum must be finite and > 0, got {quantum!r}")
        self._quantum = float(quantum)

    @property
    def quantum(self) -> float:
        """Length of the piecewise-constant interval."""
        return self._quantum

    def _index(self, t: float) -> int:
        _check_time(t)
        # Nudge by EPSILON so that a query *at* a boundary (possibly with
        # float noise just below it) lands in the quantum that starts there.
        return max(0, int(math.floor((t + EPSILON) / self._quantum)))

    def next_boundary(self, t: float) -> float:
        return (self._index(t) + 1) * self._quantum


class SolarStochasticSource(_QuantizedSource):
    """The paper's stochastic solar model (section 5.1, eq. (13)).

    ``PS(t) = amplitude * rect(N_k) * cos^2(t_mid / 70pi)`` where ``N_k`` is
    a standard normal redrawn once per quantum ``k`` and ``t_mid`` is the
    quantum midpoint (the slowly varying envelope — period ~690.9 time
    units — is held constant across the one-unit quantum).

    Parameters
    ----------
    seed:
        Seed for the normal draws; runs with equal seeds are identical.
    amplitude:
        The ``10`` in eq. (13).
    rectify:
        ``"abs"`` uses ``|N_k|`` (default, mean power ``amplitude *
        sqrt(2/pi) / 2``); ``"clamp"`` uses ``max(N_k, 0)`` (mean
        ``amplitude / (2 sqrt(2 pi))``); ``"none"`` keeps the raw Gaussian
        (signal may be negative — only useful for studying the literal
        formula).
    envelope_period:
        Period of the squared-cosine envelope; defaults to the paper's
        ``70 pi^2``.
    quantum:
        Redraw interval of ``N_k`` (default one time unit).
    """

    _RECTIFIERS = ("abs", "clamp", "none")

    def __init__(
        self,
        seed: int = 0,
        amplitude: float = 10.0,
        rectify: str = "abs",
        envelope_period: float = SOLAR_ENVELOPE_PERIOD,
        quantum: float = 1.0,
    ) -> None:
        super().__init__(quantum)
        if amplitude < 0 or not math.isfinite(amplitude):
            raise ValueError(f"amplitude must be finite and >= 0, got {amplitude!r}")
        if rectify not in self._RECTIFIERS:
            raise ValueError(
                f"rectify must be one of {self._RECTIFIERS}, got {rectify!r}"
            )
        if envelope_period <= 0:
            raise ValueError(
                f"envelope_period must be > 0, got {envelope_period!r}"
            )
        self._seed = int(seed)
        self._amplitude = float(amplitude)
        self._rectify = rectify
        self._envelope_period = float(envelope_period)
        self._rng = np.random.default_rng(self._seed)
        self._draws: list[float] = []
        # The simulator queries the same quantum several times per
        # segment; memoize the last computed (index, power) pair.
        self._cached_index = -1
        self._cached_power = 0.0

    @property
    def seed(self) -> int:
        return self._seed

    @property
    def rectify(self) -> str:
        return self._rectify

    @property
    def amplitude(self) -> float:
        return self._amplitude

    @property
    def envelope_period(self) -> float:
        return self._envelope_period

    def _draw(self, index: int) -> float:
        """Rectified normal draw for quantum ``index`` (cached, in-order)."""
        while len(self._draws) <= index:
            n = float(self._rng.standard_normal())
            if self._rectify == "abs":
                n = abs(n)
            elif self._rectify == "clamp":
                n = max(n, 0.0)
            self._draws.append(n)
        return self._draws[index]

    def _envelope(self, t: float) -> float:
        # cos^2(t / (envelope_period / pi)); with the default period the
        # argument is t / 70pi exactly as in eq. (13).
        c = math.cos(math.pi * t / self._envelope_period)
        return c * c

    def power(self, t: float) -> float:
        index = self._index(t)
        if index == self._cached_index:
            return self._cached_power
        midpoint = (index + 0.5) * self.quantum
        value = self._amplitude * self._draw(index) * self._envelope(midpoint)
        self._cached_index = index
        self._cached_power = value
        return value

    def mean_power(self) -> float:
        """Closed-form long-run mean (envelope averages to 1/2)."""
        if self._rectify == "abs":
            expected = math.sqrt(2.0 / math.pi)
        elif self._rectify == "clamp":
            expected = 1.0 / math.sqrt(2.0 * math.pi)
        else:
            expected = 0.0
        return self._amplitude * expected * 0.5

    def __repr__(self) -> str:
        return (
            f"SolarStochasticSource(seed={self._seed}, amplitude="
            f"{self._amplitude!r}, rectify={self._rectify!r})"
        )


class MarkovWeatherSource(_QuantizedSource):
    """Regime-switching solar source (clear / cloudy Markov weather).

    The eq. (13) model redraws its randomness every time unit, so
    droughts longer than the deterministic envelope trough cannot occur.
    Real deployments see multi-hour overcast stretches; this source
    models them with a two-state Markov chain sampled per quantum:

    * *clear*: output follows a deterministic day/night-style envelope
      scaled by ``clear_power``;
    * *cloudy*: the same envelope attenuated by ``cloudy_factor``.

    ``persistence`` is the per-quantum probability of staying in the
    current state, so expected regime length is ``1 / (1 - persistence)``
    quanta.  Used by the robustness ablation to check the EA-DVFS-vs-LSA
    ordering survives temporally correlated droughts.
    """

    def __init__(
        self,
        seed: int = 0,
        clear_power: float = 8.0,
        cloudy_factor: float = 0.1,
        persistence: float = 0.98,
        envelope_period: float = 200.0,
        quantum: float = 1.0,
    ) -> None:
        super().__init__(quantum)
        if clear_power < 0 or not math.isfinite(clear_power):
            raise ValueError(
                f"clear_power must be finite and >= 0, got {clear_power!r}"
            )
        if not 0.0 <= cloudy_factor <= 1.0:
            raise ValueError(
                f"cloudy_factor must lie in [0, 1], got {cloudy_factor!r}"
            )
        if not 0.0 <= persistence < 1.0:
            raise ValueError(
                f"persistence must lie in [0, 1), got {persistence!r}"
            )
        if envelope_period <= 0:
            raise ValueError(
                f"envelope_period must be > 0, got {envelope_period!r}"
            )
        self._seed = int(seed)
        self._clear_power = float(clear_power)
        self._cloudy_factor = float(cloudy_factor)
        self._persistence = float(persistence)
        self._envelope_period = float(envelope_period)
        self._rng = np.random.default_rng(self._seed)
        self._states: list[bool] = []  # True = clear; extended lazily

    @property
    def persistence(self) -> float:
        return self._persistence

    def expected_regime_length(self) -> float:
        """Mean sojourn time in either weather state (in time units)."""
        return self.quantum / (1.0 - self._persistence)

    def _state(self, index: int) -> bool:
        while len(self._states) <= index:
            if not self._states:
                self._states.append(bool(self._rng.random() < 0.5))
            else:
                stay = bool(self._rng.random() < self._persistence)
                self._states.append(
                    self._states[-1] if stay else not self._states[-1]
                )
        return self._states[index]

    def _envelope(self, t: float) -> float:
        c = math.cos(math.pi * t / self._envelope_period)
        return c * c

    def power(self, t: float) -> float:
        index = self._index(t)
        midpoint = (index + 0.5) * self.quantum
        base = self._clear_power * self._envelope(midpoint)
        return base if self._state(index) else base * self._cloudy_factor

    def mean_power(self) -> float:
        """Stationary mean: equal time in both states, envelope mean 1/2."""
        return (
            self._clear_power
            * 0.5  # envelope
            * 0.5 * (1.0 + self._cloudy_factor)  # state mix
        )

    def __repr__(self) -> str:
        return (
            f"MarkovWeatherSource(seed={self._seed}, clear_power="
            f"{self._clear_power!r}, cloudy_factor={self._cloudy_factor!r}, "
            f"persistence={self._persistence!r})"
        )


class DayNightSource(EnergySource):
    """Two-mode day/night source (the coarse model of reference [5]).

    Alternates between ``day_power`` for ``day_length`` time units and
    ``night_power`` for ``night_length`` units, starting (at ``t=0``) at
    ``phase`` time units into the day.
    """

    def __init__(
        self,
        day_power: float,
        night_power: float = 0.0,
        day_length: float = 50.0,
        night_length: float = 50.0,
        phase: float = 0.0,
    ) -> None:
        for name, value in (
            ("day_power", day_power),
            ("night_power", night_power),
        ):
            if value < 0 or not math.isfinite(value):
                raise ValueError(f"{name} must be finite and >= 0, got {value!r}")
        for name, value in (
            ("day_length", day_length),
            ("night_length", night_length),
        ):
            if value <= 0 or not math.isfinite(value):
                raise ValueError(f"{name} must be finite and > 0, got {value!r}")
        self._day_power = float(day_power)
        self._night_power = float(night_power)
        self._day_length = float(day_length)
        self._night_length = float(night_length)
        self._cycle = self._day_length + self._night_length
        if not 0.0 <= phase < self._cycle:
            raise ValueError(
                f"phase must lie in [0, {self._cycle!r}), got {phase!r}"
            )
        self._phase = float(phase)

    @property
    def day_power(self) -> float:
        return self._day_power

    @property
    def night_power(self) -> float:
        return self._night_power

    @property
    def day_length(self) -> float:
        return self._day_length

    @property
    def night_length(self) -> float:
        return self._night_length

    @property
    def phase(self) -> float:
        return self._phase

    def _position(self, t: float) -> float:
        _check_time(t)
        return (t + self._phase + EPSILON) % self._cycle

    def power(self, t: float) -> float:
        return (
            self._day_power
            if self._position(t) < self._day_length
            else self._night_power
        )

    def next_boundary(self, t: float) -> float:
        pos = self._position(t)
        if pos < self._day_length:
            return t + (self._day_length - pos)
        return t + (self._cycle - pos)

    def mean_power(self) -> float:
        return (
            self._day_power * self._day_length
            + self._night_power * self._night_length
        ) / self._cycle

    def __repr__(self) -> str:
        return (
            f"DayNightSource(day_power={self._day_power!r}, "
            f"night_power={self._night_power!r}, "
            f"day_length={self._day_length!r}, "
            f"night_length={self._night_length!r})"
        )


class TraceSource(_QuantizedSource):
    """Source replaying a recorded per-quantum power trace.

    ``powers[k]`` is the constant output during quantum ``k``.  With
    ``cyclic=True`` the trace wraps around; otherwise queries past the end
    return 0 (the panel is "dead" after the recording).
    """

    def __init__(
        self,
        powers: Sequence[float],
        quantum: float = 1.0,
        cyclic: bool = False,
    ) -> None:
        super().__init__(quantum)
        values = np.asarray(powers, dtype=float)
        if values.ndim != 1 or values.size == 0:
            raise ValueError("powers must be a non-empty 1-D sequence")
        if np.any(~np.isfinite(values)) or np.any(values < 0):
            raise ValueError("powers must be finite and >= 0")
        self._powers = values
        self._cyclic = bool(cyclic)

    def power(self, t: float) -> float:
        index = self._index(t)
        if self._cyclic:
            index %= self._powers.size
        elif index >= self._powers.size:
            return 0.0
        return float(self._powers[index])

    def mean_power(self) -> float:
        return float(self._powers.mean())

    def __len__(self) -> int:
        return int(self._powers.size)

    def __repr__(self) -> str:
        return (
            f"TraceSource(n={self._powers.size}, quantum={self.quantum!r}, "
            f"cyclic={self._cyclic})"
        )


class ScaledSource(EnergySource):
    """Affine transform ``gain * P(t) + offset`` of another source.

    Handy for modeling conversion efficiency (``gain < 1``) or a trickle
    supplement (``offset > 0``).  The result is clamped at zero so a
    negative offset cannot produce negative harvest.
    """

    def __init__(
        self, inner: EnergySource, gain: float = 1.0, offset: float = 0.0
    ) -> None:
        if gain < 0 or not math.isfinite(gain):
            raise ValueError(f"gain must be finite and >= 0, got {gain!r}")
        if not math.isfinite(offset):
            raise ValueError(f"offset must be finite, got {offset!r}")
        self._inner = inner
        self._gain = float(gain)
        self._offset = float(offset)

    def power(self, t: float) -> float:
        return max(0.0, self._gain * self._inner.power(t) + self._offset)

    def next_boundary(self, t: float) -> float:
        return self._inner.next_boundary(t)

    def __repr__(self) -> str:
        return (
            f"ScaledSource({self._inner!r}, gain={self._gain!r}, "
            f"offset={self._offset!r})"
        )


class CompositeSource(EnergySource):
    """Sum of several sources (e.g. solar panel + vibration harvester)."""

    def __init__(self, sources: Sequence[EnergySource]) -> None:
        if not sources:
            raise ValueError("CompositeSource requires at least one source")
        self._sources = tuple(sources)

    def power(self, t: float) -> float:
        return sum(s.power(t) for s in self._sources)

    def next_boundary(self, t: float) -> float:
        return min(s.next_boundary(t) for s in self._sources)

    def mean_power(self) -> float:
        return sum(s.mean_power() for s in self._sources)

    def __repr__(self) -> str:
        return f"CompositeSource({list(self._sources)!r})"
