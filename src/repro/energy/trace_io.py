"""Loading and saving recorded harvest traces.

Real deployments (Heliomote/Prometheus-style nodes, the motivation of
the paper's introduction) log their panel output as timestamped power
samples.  This module turns such logs into simulator sources:

* :func:`load_power_csv` — read ``time,power`` rows (or a single power
  column) into arrays.  Field logs are messy, so the loader has two
  policies: ``strict=True`` (default) raises :class:`TraceFormatError`
  with the offending line number on the first malformed row;
  ``strict=False`` skips malformed/NaN/negative rows and reports the
  skip count through a :class:`TraceFormatWarning`;
* :func:`resample_to_quantum` — rebin irregular samples onto the uniform
  piecewise-constant grid the simulator needs, conserving energy
  (time-weighted averaging, not point sampling);
* :func:`source_from_csv` — the one-call path from file to
  :class:`~repro.energy.source.TraceSource`;
* :func:`save_power_csv` — write a source's sampled output back out
  (useful to snapshot a stochastic realization for exact replay).
"""

from __future__ import annotations

import csv
import io
import math
import warnings
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.energy.source import EnergySource, TraceSource
from repro.timeutils import EPSILON

__all__ = [
    "TraceFormatError",
    "TraceFormatWarning",
    "load_power_csv",
    "resample_to_quantum",
    "save_power_csv",
    "source_from_csv",
]

PathLike = Union[str, Path]


class TraceFormatError(ValueError):
    """A harvest trace file is malformed (strict mode).

    Subclasses :class:`ValueError` so pre-existing callers catching that
    keep working.  ``line`` is the 1-based line number of the offending
    row, or ``None`` for file-level problems (empty file, no samples).
    """

    def __init__(self, path: PathLike, line: Optional[int], message: str) -> None:
        location = f"{path}, line {line}" if line is not None else f"{path}"
        super().__init__(f"{location}: {message}")
        self.path = str(path)
        self.line = line


class TraceFormatWarning(UserWarning):
    """Rows were skipped while loading a harvest trace leniently."""


class _RowError(Exception):
    """Internal: one data row failed validation (message only, no path)."""


def _parse_row(
    row: list[str], width: int, last_time: float
) -> tuple[float, float]:
    """Validate one data row; returns ``(time, power)`` (time nan if 1-col).

    Raises :class:`_RowError` on any problem; the caller attaches the
    line number and decides whether to abort (strict) or skip (lenient).
    """
    if len(row) != width:
        raise _RowError(f"expected {width} columns, found {len(row)}")
    try:
        values = [float(cell) for cell in row]
    except ValueError:
        raise _RowError(f"non-numeric value in row {row!r}") from None
    power = values[-1]
    if power < 0 or not math.isfinite(power):
        raise _RowError(f"powers must be finite and >= 0, got {power!r}")
    if width == 1:
        return math.nan, power
    time = values[0]
    if time < 0 or not math.isfinite(time):
        raise _RowError(f"times must be finite and >= 0, got {time!r}")
    if time <= last_time:  # repro-lint: disable=RPR102 -- strict monotonicity of input data
        raise _RowError(
            f"times must be strictly increasing, got {time!r} after {last_time!r}"
        )
    return time, power


def load_power_csv(
    path: PathLike, strict: bool = True
) -> tuple[np.ndarray, np.ndarray]:
    """Read a harvest log CSV into ``(times, powers)`` arrays.

    Accepts two layouts (header optional, detected by non-numeric first
    row):

    * two columns ``time,power`` — timestamps must be strictly
      increasing and non-negative;
    * one column ``power`` — implied unit-spaced timestamps 0, 1, 2, ...

    With ``strict=True`` (default) any malformed row — wrong width,
    non-numeric, NaN/negative power, invalid timestamp — raises
    :class:`TraceFormatError` naming the line.  With ``strict=False``
    such rows are skipped (a non-monotonic timestamp drops that row, not
    the ones after it) and one :class:`TraceFormatWarning` summarizing
    the skips is emitted at the end.
    """
    rows: list[tuple[int, list[str]]] = []
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        for row in reader:
            if row and any(cell.strip() for cell in row):
                rows.append((reader.line_num, [cell.strip() for cell in row]))
    if not rows:
        raise TraceFormatError(path, None, "empty harvest trace")

    def _numeric(row: list[str]) -> bool:
        try:
            [float(cell) for cell in row]
            return True
        except ValueError:
            return False

    if not _numeric(rows[0][1]):
        rows = rows[1:]  # drop header
        if not rows:
            raise TraceFormatError(path, None, "only a header, no samples")

    # The first row that parses at all fixes the layout width; rows that
    # cannot even fix a width (3+ columns up front) are judged per policy.
    width = len(rows[0][1])
    if width not in (1, 2):
        raise TraceFormatError(
            path, rows[0][0], f"expected 1 or 2 columns, found {width}"
        )

    times: list[float] = []
    powers: list[float] = []
    skipped: list[tuple[int, str]] = []
    last_time = -math.inf
    for line, row in rows:
        try:
            time, power = _parse_row(row, width, last_time)
        except _RowError as exc:
            if strict:
                raise TraceFormatError(path, line, str(exc)) from None
            skipped.append((line, str(exc)))
            continue
        times.append(time)
        powers.append(power)
        if width == 2:
            last_time = time
    if not powers:
        raise TraceFormatError(path, None, "no valid samples in harvest trace")
    if skipped:
        preview = "; ".join(f"line {ln}: {msg}" for ln, msg in skipped[:5])
        if len(skipped) > 5:
            preview += "; ..."
        warnings.warn(
            TraceFormatWarning(
                f"{path}: skipped {len(skipped)} malformed row(s) ({preview})"
            ),
            stacklevel=2,
        )

    power_array = np.asarray(powers, dtype=float)
    if width == 1:
        time_array = np.arange(len(powers), dtype=float)
    else:
        time_array = np.asarray(times, dtype=float)
    return time_array, power_array


def resample_to_quantum(
    times: np.ndarray,
    powers: np.ndarray,
    quantum: float = 1.0,
    end_time: float | None = None,
) -> np.ndarray:
    """Rebin sample-and-hold power onto a uniform quantum grid.

    The input is interpreted as sample-and-hold: ``powers[i]`` applies
    from ``times[i]`` until the next timestamp (the final sample holds
    until ``end_time``, default one median interval past the last
    timestamp).  Each output bin receives the *time-weighted average*
    power over its span, so total energy is conserved exactly — naive
    point-sampling would alias spiky harvest logs.
    """
    if quantum <= 0:
        raise ValueError(f"quantum must be > 0, got {quantum!r}")
    times = np.asarray(times, dtype=float)
    powers = np.asarray(powers, dtype=float)
    if times.ndim != 1 or times.shape != powers.shape or times.size == 0:
        raise ValueError("times and powers must be equal-length 1-D arrays")
    if end_time is None:
        tail = float(np.median(np.diff(times))) if times.size > 1 else quantum
        end_time = float(times[-1]) + tail
    if end_time <= times[-1]:
        raise ValueError(
            f"end_time {end_time!r} must exceed the last timestamp "
            f"{times[-1]!r}"
        )

    edges = np.append(times, end_time)
    n_bins = int(np.ceil((end_time - EPSILON) / quantum))
    binned = np.zeros(n_bins, dtype=float)
    for start, stop, power in zip(edges[:-1], edges[1:], powers):
        first = int(start / quantum)
        last = min(n_bins - 1, int((stop - EPSILON) / quantum))
        for b in range(first, last + 1):
            lo = max(start, b * quantum)
            hi = min(stop, (b + 1) * quantum)
            if hi > lo:
                binned[b] += power * (hi - lo)
    return binned / quantum


def source_from_csv(
    path: PathLike,
    quantum: float = 1.0,
    cyclic: bool = False,
    strict: bool = True,
) -> TraceSource:
    """Build a :class:`TraceSource` straight from a harvest log CSV.

    ``strict`` is passed through to :func:`load_power_csv`.
    """
    times, powers = load_power_csv(path, strict=strict)
    return TraceSource(
        resample_to_quantum(times, powers, quantum=quantum),
        quantum=quantum,
        cyclic=cyclic,
    )


def save_power_csv(
    source: EnergySource,
    path: PathLike,
    horizon: float,
    step: float = 1.0,
) -> int:
    """Sample a source onto a grid and write ``time,power`` rows.

    Returns the number of samples written.  Round-tripping a
    piecewise-constant source through :func:`source_from_csv` with the
    same quantum reproduces it exactly over the horizon.
    """
    if horizon <= 0:
        raise ValueError(f"horizon must be > 0, got {horizon!r}")
    # Imported here: repro.serialization pulls in the simulator, which
    # circles back into repro.energy during package initialization.
    from repro.serialization import atomic_write_text

    powers = source.sample(0.0, horizon, step=step)
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["time", "power"])
    for i, power in enumerate(powers):
        writer.writerow([repr(i * step), repr(float(power))])
    atomic_write_text(path, buffer.getvalue(), newline="")
    return int(powers.size)
