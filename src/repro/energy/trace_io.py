"""Loading and saving recorded harvest traces.

Real deployments (Heliomote/Prometheus-style nodes, the motivation of
the paper's introduction) log their panel output as timestamped power
samples.  This module turns such logs into simulator sources:

* :func:`load_power_csv` — read ``time,power`` rows (or a single power
  column) into arrays;
* :func:`resample_to_quantum` — rebin irregular samples onto the uniform
  piecewise-constant grid the simulator needs, conserving energy
  (time-weighted averaging, not point sampling);
* :func:`source_from_csv` — the one-call path from file to
  :class:`~repro.energy.source.TraceSource`;
* :func:`save_power_csv` — write a source's sampled output back out
  (useful to snapshot a stochastic realization for exact replay).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Union

import numpy as np

from repro.energy.source import EnergySource, TraceSource
from repro.timeutils import EPSILON

__all__ = [
    "load_power_csv",
    "resample_to_quantum",
    "save_power_csv",
    "source_from_csv",
]

PathLike = Union[str, Path]


def load_power_csv(path: PathLike) -> tuple[np.ndarray, np.ndarray]:
    """Read a harvest log CSV into ``(times, powers)`` arrays.

    Accepts two layouts (header optional, detected by non-numeric first
    row):

    * two columns ``time,power`` — timestamps must be strictly
      increasing and non-negative;
    * one column ``power`` — implied unit-spaced timestamps 0, 1, 2, ...
    """
    rows: list[list[str]] = []
    with open(path, newline="") as handle:
        for row in csv.reader(handle):
            if row and any(cell.strip() for cell in row):
                rows.append([cell.strip() for cell in row])
    if not rows:
        raise ValueError(f"{path}: empty harvest trace")

    def _numeric(row: list[str]) -> bool:
        try:
            [float(cell) for cell in row]
            return True
        except ValueError:
            return False

    if not _numeric(rows[0]):
        rows = rows[1:]  # drop header
        if not rows:
            raise ValueError(f"{path}: only a header, no samples")

    widths = {len(row) for row in rows}
    if widths == {1}:
        powers = np.asarray([float(r[0]) for r in rows])
        times = np.arange(len(powers), dtype=float)
    elif widths == {2}:
        times = np.asarray([float(r[0]) for r in rows])
        powers = np.asarray([float(r[1]) for r in rows])
    else:
        raise ValueError(
            f"{path}: expected 1 or 2 columns, found widths {sorted(widths)}"
        )

    if np.any(powers < 0) or not np.all(np.isfinite(powers)):
        raise ValueError(f"{path}: powers must be finite and >= 0")
    if np.any(times < 0) or not np.all(np.isfinite(times)):
        raise ValueError(f"{path}: times must be finite and >= 0")
    if np.any(np.diff(times) <= 0):
        raise ValueError(f"{path}: times must be strictly increasing")
    return times, powers


def resample_to_quantum(
    times: np.ndarray,
    powers: np.ndarray,
    quantum: float = 1.0,
    end_time: float | None = None,
) -> np.ndarray:
    """Rebin sample-and-hold power onto a uniform quantum grid.

    The input is interpreted as sample-and-hold: ``powers[i]`` applies
    from ``times[i]`` until the next timestamp (the final sample holds
    until ``end_time``, default one median interval past the last
    timestamp).  Each output bin receives the *time-weighted average*
    power over its span, so total energy is conserved exactly — naive
    point-sampling would alias spiky harvest logs.
    """
    if quantum <= 0:
        raise ValueError(f"quantum must be > 0, got {quantum!r}")
    times = np.asarray(times, dtype=float)
    powers = np.asarray(powers, dtype=float)
    if times.ndim != 1 or times.shape != powers.shape or times.size == 0:
        raise ValueError("times and powers must be equal-length 1-D arrays")
    if end_time is None:
        tail = float(np.median(np.diff(times))) if times.size > 1 else quantum
        end_time = float(times[-1]) + tail
    if end_time <= times[-1]:
        raise ValueError(
            f"end_time {end_time!r} must exceed the last timestamp "
            f"{times[-1]!r}"
        )

    edges = np.append(times, end_time)
    n_bins = int(np.ceil((end_time - EPSILON) / quantum))
    binned = np.zeros(n_bins, dtype=float)
    for start, stop, power in zip(edges[:-1], edges[1:], powers):
        first = int(start / quantum)
        last = min(n_bins - 1, int((stop - EPSILON) / quantum))
        for b in range(first, last + 1):
            lo = max(start, b * quantum)
            hi = min(stop, (b + 1) * quantum)
            if hi > lo:
                binned[b] += power * (hi - lo)
    return binned / quantum


def source_from_csv(
    path: PathLike,
    quantum: float = 1.0,
    cyclic: bool = False,
) -> TraceSource:
    """Build a :class:`TraceSource` straight from a harvest log CSV."""
    times, powers = load_power_csv(path)
    return TraceSource(
        resample_to_quantum(times, powers, quantum=quantum),
        quantum=quantum,
        cyclic=cyclic,
    )


def save_power_csv(
    source: EnergySource,
    path: PathLike,
    horizon: float,
    step: float = 1.0,
) -> int:
    """Sample a source onto a grid and write ``time,power`` rows.

    Returns the number of samples written.  Round-tripping a
    piecewise-constant source through :func:`source_from_csv` with the
    same quantum reproduces it exactly over the horizon.
    """
    if horizon <= 0:
        raise ValueError(f"horizon must be > 0, got {horizon!r}")
    powers = source.sample(0.0, horizon, step=step)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["time", "power"])
        for i, power in enumerate(powers):
            writer.writerow([repr(i * step), repr(float(power))])
    return int(powers.size)
