"""Harvested-energy predictors.

The schedulers need the paper's ``ES(am, am + dm)`` — the energy that will
be harvested between a job's release and its deadline.  The true future is
unknowable online; section 5.1 states "we trace the PS(t) profile to
predict the harvested energy from a future period" (following Kansal et
al.).  This module provides that profile predictor plus simpler baselines
and an oracle for ablation:

* :class:`OraclePredictor` — reads the realized future from the source
  (an upper bound on what any predictor can achieve).
* :class:`ProfilePredictor` — per-bin EWMA over the source's (known or
  assumed) cycle, the "trace the profile" approach.
* :class:`MeanPowerPredictor` — a single EWMA of mean power.
* :class:`LastValuePredictor` — persistence forecast.

Predictors learn from :meth:`~HarvestPredictor.observe` calls the simulator
issues for every elapsed segment, so prediction quality improves as the run
progresses.
"""

from __future__ import annotations

import abc
import math
from typing import Iterator

import numpy as np

from repro.energy.source import SOLAR_ENVELOPE_PERIOD, EnergySource
from repro.timeutils import EPSILON, validate_interval

__all__ = [
    "HarvestPredictor",
    "OraclePredictor",
    "ProfilePredictor",
    "MeanPowerPredictor",
    "LastValuePredictor",
]


class HarvestPredictor(abc.ABC):
    """Interface for online predictors of future harvested energy."""

    @abc.abstractmethod
    def predict_energy(self, t0: float, t1: float) -> float:
        """Predicted harvest over ``[t0, t1]`` (must be ``>= 0``)."""

    def observe(self, t0: float, t1: float, energy: float) -> None:
        """Feed the realized harvest over an elapsed segment.

        The default implementation ignores observations (appropriate for
        the oracle).  ``energy`` is the exact integral of the realized
        power over ``[t0, t1]``.
        """

    def reset(self) -> None:
        """Discard learned state (no-op by default)."""


class OraclePredictor(HarvestPredictor):
    """Perfect prediction: reads the future directly from the source.

    Useful to separate scheduling quality from prediction quality in
    ablations, and for the deterministic motivational examples where the
    paper itself assumes the future harvest is known.
    """

    def __init__(self, source: EnergySource) -> None:
        self._source = source

    def predict_energy(self, t0: float, t1: float) -> float:
        return self._source.energy(t0, t1)

    def __repr__(self) -> str:
        return f"OraclePredictor({self._source!r})"


class MeanPowerPredictor(HarvestPredictor):
    """Exponentially weighted running mean of observed power.

    ``alpha`` is the EWMA weight per observed *time unit* — observations of
    different lengths are folded in with a duration-correct decay
    ``(1 - alpha) ** duration``, so feeding one 10-unit segment equals
    feeding ten 1-unit segments with the same average power.
    """

    def __init__(self, initial_power: float = 0.0, alpha: float = 0.05) -> None:
        if initial_power < 0 or not math.isfinite(initial_power):
            raise ValueError(
                f"initial_power must be finite and >= 0, got {initial_power!r}"
            )
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must lie in (0, 1], got {alpha!r}")
        self._initial = float(initial_power)
        self._alpha = float(alpha)
        self._estimate = self._initial

    @property
    def estimate(self) -> float:
        """Current mean-power estimate."""
        return self._estimate

    def predict_energy(self, t0: float, t1: float) -> float:
        validate_interval(t0, t1)
        return self._estimate * max(0.0, t1 - t0)

    def observe(self, t0: float, t1: float, energy: float) -> None:
        validate_interval(t0, t1)
        duration = t1 - t0
        if duration <= EPSILON:
            return
        mean_power = max(0.0, energy / duration)
        keep = (1.0 - self._alpha) ** duration
        self._estimate = keep * self._estimate + (1.0 - keep) * mean_power

    def reset(self) -> None:
        self._estimate = self._initial

    def __repr__(self) -> str:
        return (
            f"MeanPowerPredictor(initial_power={self._initial!r}, "
            f"alpha={self._alpha!r})"
        )


class LastValuePredictor(HarvestPredictor):
    """Persistence forecast: the most recent observed power continues."""

    def __init__(self, initial_power: float = 0.0) -> None:
        if initial_power < 0 or not math.isfinite(initial_power):
            raise ValueError(
                f"initial_power must be finite and >= 0, got {initial_power!r}"
            )
        self._initial = float(initial_power)
        self._last = self._initial

    def predict_energy(self, t0: float, t1: float) -> float:
        validate_interval(t0, t1)
        return self._last * max(0.0, t1 - t0)

    def observe(self, t0: float, t1: float, energy: float) -> None:
        validate_interval(t0, t1)
        duration = t1 - t0
        if duration <= EPSILON:
            return
        self._last = max(0.0, energy / duration)

    def reset(self) -> None:
        self._last = self._initial

    def __repr__(self) -> str:
        return f"LastValuePredictor(initial_power={self._initial!r})"


class ProfilePredictor(HarvestPredictor):
    """Cyclic-profile EWMA predictor ("trace the PS(t) profile").

    The source is assumed (approximately) cyclostationary with period
    ``period`` — true for the paper's eq. (13) source, whose deterministic
    envelope repeats every ``70 pi^2 ~ 690.9`` time units.  The period is
    split into ``n_bins`` equal bins, each holding an EWMA estimate of the
    mean power seen at that cycle position.  Prediction integrates the bin
    estimates across the query window exactly (partial bins pro-rated).

    Bins that have never been observed fall back to ``initial_power``.
    """

    def __init__(
        self,
        period: float = SOLAR_ENVELOPE_PERIOD,
        n_bins: int = 64,
        alpha: float = 0.3,
        initial_power: float = 0.0,
    ) -> None:
        if period <= 0 or not math.isfinite(period):
            raise ValueError(f"period must be finite and > 0, got {period!r}")
        if n_bins < 1:
            raise ValueError(f"n_bins must be >= 1, got {n_bins!r}")
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must lie in (0, 1], got {alpha!r}")
        if initial_power < 0 or not math.isfinite(initial_power):
            raise ValueError(
                f"initial_power must be finite and >= 0, got {initial_power!r}"
            )
        self._period = float(period)
        self._n_bins = int(n_bins)
        self._alpha = float(alpha)
        self._initial = float(initial_power)
        self._bin_width = self._period / self._n_bins
        self._estimates = np.full(self._n_bins, self._initial, dtype=float)
        self._seen = np.zeros(self._n_bins, dtype=bool)

    @property
    def period(self) -> float:
        return self._period

    @property
    def n_bins(self) -> int:
        return self._n_bins

    def bin_estimates(self) -> np.ndarray:
        """Copy of the per-bin mean-power estimates (for inspection)."""
        return self._estimates.copy()

    def _segments(self, t0: float, t1: float) -> Iterator[tuple[int, float]]:
        """Yield ``(bin_index, duration)`` covering ``[t0, t1]`` exactly."""
        t = t0
        while t < t1 - EPSILON:
            position = t % self._period
            index = min(int(position / self._bin_width), self._n_bins - 1)
            bin_end = t + (self._bin_width - (position - index * self._bin_width))
            segment_end = min(bin_end, t1)
            if segment_end <= t + EPSILON:
                # Guard against float stagnation right at a bin edge.
                segment_end = min(t + EPSILON * 2, t1)
            yield index, segment_end - t
            t = segment_end

    def predict_energy(self, t0: float, t1: float) -> float:
        validate_interval(t0, t1)
        if t1 - t0 <= EPSILON:
            return 0.0
        return float(
            sum(self._estimates[i] * d for i, d in self._segments(t0, t1))
        )

    def observe(self, t0: float, t1: float, energy: float) -> None:
        validate_interval(t0, t1)
        duration = t1 - t0
        if duration <= EPSILON:
            return
        mean_power = max(0.0, energy / duration)
        for index, d in self._segments(t0, t1):
            # Duration-correct EWMA: a bin fully covered for one bin-width
            # moves by weight alpha; shorter coverage moves proportionally
            # less.
            keep = (1.0 - self._alpha) ** (d / self._bin_width)
            if not self._seen[index]:
                self._estimates[index] = mean_power
                self._seen[index] = True
            else:
                self._estimates[index] = (
                    keep * self._estimates[index] + (1.0 - keep) * mean_power
                )

    def reset(self) -> None:
        self._estimates.fill(self._initial)
        self._seen.fill(False)

    def __repr__(self) -> str:
        return (
            f"ProfilePredictor(period={self._period!r}, n_bins={self._n_bins}, "
            f"alpha={self._alpha!r})"
        )
