"""Harvested-energy predictors.

The schedulers need the paper's ``ES(am, am + dm)`` — the energy that will
be harvested between a job's release and its deadline.  The true future is
unknowable online; section 5.1 states "we trace the PS(t) profile to
predict the harvested energy from a future period" (following Kansal et
al.).  This module provides that profile predictor plus simpler baselines
and an oracle for ablation:

* :class:`OraclePredictor` — reads the realized future from the source
  (an upper bound on what any predictor can achieve).
* :class:`ProfilePredictor` — per-bin EWMA over the source's (known or
  assumed) cycle, the "trace the profile" approach.
* :class:`MeanPowerPredictor` — a single EWMA of mean power.
* :class:`LastValuePredictor` — persistence forecast.

Predictors learn from :meth:`~HarvestPredictor.observe` calls the simulator
issues for every elapsed segment, so prediction quality improves as the run
progresses.
"""

from __future__ import annotations

import abc
import math
from typing import Iterator

import numpy as np

from repro.energy.source import SOLAR_ENVELOPE_PERIOD, EnergySource
from repro.timeutils import EPSILON, validate_interval

__all__ = [
    "HarvestPredictor",
    "OraclePredictor",
    "ProfilePredictor",
    "MeanPowerPredictor",
    "LastValuePredictor",
    "profile_segments",
]


class HarvestPredictor(abc.ABC):
    """Interface for online predictors of future harvested energy.

    **Empty-window contract**: every predictor returns ``0.0`` when
    ``t1 - t0 <= EPSILON``.  The simulator already treats such windows
    as empty (:meth:`repro.sched.base.EnergyOutlook.available_until`
    never consults the predictor for them), so the gate is unreachable
    from the scheduling loop — it exists so direct callers see one
    uniform contract across all predictor kinds, scalar and vectorized
    (``tests/energy/test_predictor.py`` pins it).
    """

    @abc.abstractmethod
    def predict_energy(self, t0: float, t1: float) -> float:
        """Predicted harvest over ``[t0, t1]`` (must be ``>= 0``).

        Windows no longer than ``EPSILON`` predict ``0.0``.
        """

    def observe(self, t0: float, t1: float, energy: float) -> None:
        """Feed the realized harvest over an elapsed segment.

        The default implementation ignores observations (appropriate for
        the oracle).  ``energy`` is the exact integral of the realized
        power over ``[t0, t1]``.
        """

    def reset(self) -> None:
        """Discard learned state (no-op by default)."""


class OraclePredictor(HarvestPredictor):
    """Perfect prediction: reads the future directly from the source.

    Useful to separate scheduling quality from prediction quality in
    ablations, and for the deterministic motivational examples where the
    paper itself assumes the future harvest is known.
    """

    def __init__(self, source: EnergySource) -> None:
        self._source = source

    def predict_energy(self, t0: float, t1: float) -> float:
        validate_interval(t0, t1)
        if t1 - t0 <= EPSILON:
            return 0.0
        return self._source.energy(t0, t1)

    def __repr__(self) -> str:
        return f"OraclePredictor({self._source!r})"


class MeanPowerPredictor(HarvestPredictor):
    """Exponentially weighted running mean of observed power.

    ``alpha`` is the EWMA weight per observed *time unit* — observations of
    different lengths are folded in with a duration-correct decay
    ``(1 - alpha) ** duration``, so feeding one 10-unit segment equals
    feeding ten 1-unit segments with the same average power.
    """

    def __init__(self, initial_power: float = 0.0, alpha: float = 0.05) -> None:
        if initial_power < 0 or not math.isfinite(initial_power):
            raise ValueError(
                f"initial_power must be finite and >= 0, got {initial_power!r}"
            )
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must lie in (0, 1], got {alpha!r}")
        self._initial = float(initial_power)
        self._alpha = float(alpha)
        self._estimate = self._initial

    @property
    def estimate(self) -> float:
        """Current mean-power estimate."""
        return self._estimate

    @property
    def alpha(self) -> float:
        return self._alpha

    @property
    def initial_power(self) -> float:
        return self._initial

    def predict_energy(self, t0: float, t1: float) -> float:
        validate_interval(t0, t1)
        if t1 - t0 <= EPSILON:
            return 0.0
        return self._estimate * (t1 - t0)

    def observe(self, t0: float, t1: float, energy: float) -> None:
        validate_interval(t0, t1)
        duration = t1 - t0
        if duration <= EPSILON:
            return
        mean_power = max(0.0, energy / duration)
        keep = (1.0 - self._alpha) ** duration
        self._estimate = keep * self._estimate + (1.0 - keep) * mean_power

    def reset(self) -> None:
        self._estimate = self._initial

    def __repr__(self) -> str:
        return (
            f"MeanPowerPredictor(initial_power={self._initial!r}, "
            f"alpha={self._alpha!r})"
        )


class LastValuePredictor(HarvestPredictor):
    """Persistence forecast: the most recent observed power continues."""

    def __init__(self, initial_power: float = 0.0) -> None:
        if initial_power < 0 or not math.isfinite(initial_power):
            raise ValueError(
                f"initial_power must be finite and >= 0, got {initial_power!r}"
            )
        self._initial = float(initial_power)
        self._last = self._initial

    @property
    def estimate(self) -> float:
        """Most recent observed mean power."""
        return self._last

    @property
    def initial_power(self) -> float:
        return self._initial

    def predict_energy(self, t0: float, t1: float) -> float:
        validate_interval(t0, t1)
        if t1 - t0 <= EPSILON:
            return 0.0
        return self._last * (t1 - t0)

    def observe(self, t0: float, t1: float, energy: float) -> None:
        validate_interval(t0, t1)
        duration = t1 - t0
        if duration <= EPSILON:
            return
        self._last = max(0.0, energy / duration)

    def reset(self) -> None:
        self._last = self._initial

    def __repr__(self) -> str:
        return f"LastValuePredictor(initial_power={self._initial!r})"


def _snap_tail(covered: float, span: float) -> float:
    """Final segment duration ``d`` such that ``covered + d == span``.

    ``span - covered`` rounds, so the telescoped left-to-right sum of
    segment durations can land one ulp off the window length.  Nudging
    ``d`` by ulps restores exact coverage; the loop is bounded because a
    single rounding error is at most a few ulps (Sterbenz's lemma makes
    the plain subtraction already exact whenever ``covered >= span / 2``,
    i.e. for every window at least two bins wide).
    """
    d = span - covered
    for _ in range(8):
        total = covered + d
        if total == span:
            break
        d = math.nextafter(d, math.inf if total < span else -math.inf)
    return d


def profile_segments(
    t0: float,
    t1: float,
    period: float,
    bin_width: float,
    n_bins: int,
) -> Iterator[tuple[int, float]]:
    """Yield ``(bin_index, duration)`` covering ``[t0, t1]`` exactly.

    The cyclic bin walk shared by :meth:`ProfilePredictor._segments` and
    the batch engine's per-lane predictor kernels
    (:mod:`repro.energy.vectorized`) — one implementation, so the two
    engines cannot drift by even an ulp.

    Bin edges come from one global ladder of offsets from ``t0``
    (``(first + j + 1) * bin_width - position``), so each duration is a
    difference of successive ladder values and the left-to-right float
    sum of durations telescopes.  The final duration is snapped
    (:func:`_snap_tail`) so that sum equals ``t1 - t0`` bit-exactly — no
    over-coverage, and no sliver ever lands in the wrong bin.  The
    ladder strictly grows one bin width per step, so the walk cannot
    stagnate and needs no epsilon guard.
    """
    span = t1 - t0
    if span <= EPSILON:
        return
    position = t0 % period
    first = min(int(position / bin_width), n_bins - 1)
    covered = 0.0
    j = 0
    while True:
        edge = (first + j + 1) * bin_width - position
        index = (first + j) % n_bins
        if edge >= span:
            tail = _snap_tail(covered, span)
            if tail > 0.0:
                yield index, tail
            return
        if edge > covered:
            d = edge - covered
            yield index, d
            covered += d
        j += 1


class ProfilePredictor(HarvestPredictor):
    """Cyclic-profile EWMA predictor ("trace the PS(t) profile").

    The source is assumed (approximately) cyclostationary with period
    ``period`` — true for the paper's eq. (13) source, whose deterministic
    envelope repeats every ``70 pi^2 ~ 690.9`` time units.  The period is
    split into ``n_bins`` equal bins, each holding an EWMA estimate of the
    mean power seen at that cycle position.  Prediction integrates the bin
    estimates across the query window exactly (partial bins pro-rated).

    Bins that have never been observed fall back to ``initial_power``.
    """

    def __init__(
        self,
        period: float = SOLAR_ENVELOPE_PERIOD,
        n_bins: int = 64,
        alpha: float = 0.3,
        initial_power: float = 0.0,
    ) -> None:
        if period <= 0 or not math.isfinite(period):
            raise ValueError(f"period must be finite and > 0, got {period!r}")
        if n_bins < 1:
            raise ValueError(f"n_bins must be >= 1, got {n_bins!r}")
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must lie in (0, 1], got {alpha!r}")
        if initial_power < 0 or not math.isfinite(initial_power):
            raise ValueError(
                f"initial_power must be finite and >= 0, got {initial_power!r}"
            )
        self._period = float(period)
        self._n_bins = int(n_bins)
        self._alpha = float(alpha)
        self._initial = float(initial_power)
        self._bin_width = self._period / self._n_bins
        self._estimates = np.full(self._n_bins, self._initial, dtype=float)
        self._seen = np.zeros(self._n_bins, dtype=bool)

    @property
    def period(self) -> float:
        return self._period

    @property
    def n_bins(self) -> int:
        return self._n_bins

    @property
    def alpha(self) -> float:
        return self._alpha

    @property
    def initial_power(self) -> float:
        return self._initial

    @property
    def bin_width(self) -> float:
        return self._bin_width

    def bin_estimates(self) -> np.ndarray:
        """Copy of the per-bin mean-power estimates (for inspection)."""
        return self._estimates.copy()

    def bin_seen(self) -> np.ndarray:
        """Copy of the per-bin observed flags (for inspection)."""
        return self._seen.copy()

    def _segments(self, t0: float, t1: float) -> Iterator[tuple[int, float]]:
        """Yield ``(bin_index, duration)`` covering ``[t0, t1]`` exactly.

        Delegates to the shared :func:`profile_segments` walk (also used
        by the batch engine's kernels).
        """
        return profile_segments(
            t0, t1, self._period, self._bin_width, self._n_bins
        )

    def predict_energy(self, t0: float, t1: float) -> float:
        validate_interval(t0, t1)
        if t1 - t0 <= EPSILON:
            return 0.0
        return float(
            sum(self._estimates[i] * d for i, d in self._segments(t0, t1))
        )

    def observe(self, t0: float, t1: float, energy: float) -> None:
        validate_interval(t0, t1)
        duration = t1 - t0
        if duration <= EPSILON:
            return
        mean_power = max(0.0, energy / duration)
        for index, d in self._segments(t0, t1):
            # Duration-correct EWMA: a bin fully covered for one bin-width
            # moves by weight alpha; shorter coverage moves proportionally
            # less.
            keep = (1.0 - self._alpha) ** (d / self._bin_width)
            if not self._seen[index]:
                self._estimates[index] = mean_power
                self._seen[index] = True
            else:
                self._estimates[index] = (
                    keep * self._estimates[index] + (1.0 - keep) * mean_power
                )

    def reset(self) -> None:
        self._estimates.fill(self._initial)
        self._seen.fill(False)

    def __repr__(self) -> str:
        return (
            f"ProfilePredictor(period={self._period!r}, n_bins={self._n_bins}, "
            f"alpha={self._alpha!r})"
        )
