"""Harvest-side fault injectors.

Each wrapper multiplies the inner source's output by a per-quantum
attenuation factor in ``[0, 1]`` drawn from a seeded RNG:

* :class:`BlackoutSource` — total outages (factor 0) whose start is a
  per-quantum Bernoulli trial and whose length is uniform over a
  configurable integer range, modeling shading, panel faults, or
  harvester disconnects;
* :class:`BrownoutSource` — the same outage process but attenuating to a
  nonzero ``brownout_factor`` (dust, partial shading, converter derating);
* :class:`SensorDropoutSource` — i.i.d. per-quantum dropouts (factor 0),
  modeling a flaky harvester interface that loses individual intervals.

The factor sequence is extended lazily *in index order* from a private
RNG, so queries at arbitrary times (e.g. an oracle predictor integrating
the future) are deterministic for a fixed seed.  Output stays
piecewise-constant: a wrapper's :meth:`~repro.energy.EnergySource.power`
changes only at its own quantum grid or at the inner source's boundaries,
and :meth:`~repro.energy.EnergySource.next_boundary` reports whichever
comes first, so the simulator's exact segment integrals remain exact.
"""

from __future__ import annotations

import math

import numpy as np

from repro.energy.source import EnergySource
from repro.timeutils import EPSILON

__all__ = ["BlackoutSource", "BrownoutSource", "SensorDropoutSource"]


class _FaultFactorSource(EnergySource):
    """Base for sources applying a seeded per-quantum attenuation factor."""

    def __init__(self, inner: EnergySource, seed: int, quantum: float) -> None:
        if quantum <= 0 or not math.isfinite(quantum):
            raise ValueError(f"quantum must be finite and > 0, got {quantum!r}")
        self._inner = inner
        self._seed = int(seed)
        self._quantum = float(quantum)
        self._rng = np.random.default_rng(self._seed)
        self._factors: list[float] = []

    @property
    def inner(self) -> EnergySource:
        """The wrapped fault-free source."""
        return self._inner

    @property
    def seed(self) -> int:
        """Seed of the private fault RNG."""
        return self._seed

    @property
    def quantum(self) -> float:
        """Length of one attenuation interval."""
        return self._quantum

    def _index(self, t: float) -> int:
        if t < -EPSILON or math.isnan(t):
            raise ValueError(f"source time must be >= 0, got {t!r}")
        # Same boundary nudge as the quantized sources: a query at (or with
        # float noise just below) a boundary lands in the quantum starting
        # there.
        return max(0, int(math.floor((t + EPSILON) / self._quantum)))

    def _extend(self) -> None:
        """Append the factor for the next quantum (consumes RNG in order)."""
        raise NotImplementedError  # pragma: no cover - subclasses override

    def _factor(self, index: int) -> float:
        while len(self._factors) <= index:
            self._extend()
        return self._factors[index]

    def _mean_factor(self) -> float:
        """Long-run mean of the attenuation factor."""
        raise NotImplementedError  # pragma: no cover - subclasses override

    def attenuation_at(self, t: float) -> float:
        """The attenuation factor applied during the quantum containing ``t``."""
        return self._factor(self._index(t))

    def power(self, t: float) -> float:
        return self._inner.power(t) * self._factor(self._index(t))

    def next_boundary(self, t: float) -> float:
        own = (self._index(t) + 1) * self._quantum
        return min(own, self._inner.next_boundary(t))

    def mean_power(self) -> float:
        """Inner mean power scaled by the stationary mean attenuation.

        Exact when the inner power and the fault process are independent,
        which holds by construction (separate RNG streams).
        """
        return self._inner.mean_power() * self._mean_factor()


class _OutageSource(_FaultFactorSource):
    """Shared outage machine: Bernoulli starts, uniform integer durations.

    While no outage is active, each quantum starts one with probability
    ``start_probability``; an outage then attenuates ``duration`` quanta
    (inclusive of the starting one) with ``duration`` uniform on
    ``[min_duration, max_duration]``.
    """

    def __init__(
        self,
        inner: EnergySource,
        seed: int,
        start_probability: float,
        min_duration: int,
        max_duration: int,
        attenuation: float,
        quantum: float,
    ) -> None:
        super().__init__(inner, seed, quantum)
        if not 0.0 <= start_probability <= 1.0:
            raise ValueError(
                f"start_probability must lie in [0, 1], got {start_probability!r}"
            )
        min_duration = int(min_duration)
        max_duration = int(max_duration)
        if not 1 <= min_duration <= max_duration:
            raise ValueError(
                "outage durations must satisfy 1 <= min <= max, got "
                f"{min_duration!r}..{max_duration!r}"
            )
        if not 0.0 <= attenuation <= 1.0:
            raise ValueError(
                f"attenuation must lie in [0, 1], got {attenuation!r}"
            )
        self._p = float(start_probability)
        self._min_d = min_duration
        self._max_d = max_duration
        self._attenuation = float(attenuation)
        self._outage_left = 0

    @property
    def start_probability(self) -> float:
        """Per-quantum probability of starting an outage when none is active."""
        return self._p

    @property
    def duration_range(self) -> tuple[int, int]:
        """Inclusive ``(min, max)`` outage length in quanta."""
        return (self._min_d, self._max_d)

    def outage_fraction(self) -> float:
        """Stationary fraction of time spent in an outage.

        Renewal argument: a cycle is a geometric run of ``(1-p)/p`` normal
        quanta followed by an outage of mean length ``m = (min+max)/2``,
        so the outage fraction is ``p*m / (p*m + 1 - p)``.
        """
        # Exact == 0.0: the start probability is a configuration
        # constant, so "faults disabled" is an exact-zero toggle.
        if self._p == 0.0:
            return 0.0
        m = 0.5 * (self._min_d + self._max_d)
        return self._p * m / (self._p * m + 1.0 - self._p)

    def _extend(self) -> None:
        if self._outage_left > 0:
            self._outage_left -= 1
            self._factors.append(self._attenuation)
            return
        if float(self._rng.random()) < self._p:
            # The starting quantum counts toward the outage duration.
            self._outage_left = int(self._rng.integers(self._min_d, self._max_d + 1)) - 1
            self._factors.append(self._attenuation)
        else:
            self._factors.append(1.0)

    def _mean_factor(self) -> float:
        return 1.0 - self.outage_fraction() * (1.0 - self._attenuation)


class BlackoutSource(_OutageSource):
    """Total harvest outages: output drops to zero for whole quanta.

    Parameters
    ----------
    inner:
        The fault-free source to decorate.
    seed:
        Seed of the private outage RNG; equal seeds give identical outage
        schedules regardless of the inner source.
    start_probability:
        Per-quantum probability of a new outage starting while none is
        active (default 0.02 — roughly one outage per 50 clear quanta).
    min_duration, max_duration:
        Inclusive range of outage lengths in quanta.
    quantum:
        Length of one outage-schedule interval (default 1 time unit).
    """

    def __init__(
        self,
        inner: EnergySource,
        seed: int = 0,
        start_probability: float = 0.02,
        min_duration: int = 5,
        max_duration: int = 30,
        quantum: float = 1.0,
    ) -> None:
        super().__init__(
            inner, seed, start_probability, min_duration, max_duration,
            attenuation=0.0, quantum=quantum,
        )

    def __repr__(self) -> str:
        return (
            f"BlackoutSource({self._inner!r}, seed={self._seed}, "
            f"start_probability={self._p!r}, "
            f"duration={self._min_d}..{self._max_d})"
        )


class BrownoutSource(_OutageSource):
    """Partial harvest outages: output attenuated to ``brownout_factor``.

    Same outage process as :class:`BlackoutSource`, but during an outage
    the inner power is multiplied by ``brownout_factor`` instead of
    dropping to zero — dust, partial shading, or converter derating.
    """

    def __init__(
        self,
        inner: EnergySource,
        seed: int = 0,
        start_probability: float = 0.02,
        min_duration: int = 5,
        max_duration: int = 30,
        brownout_factor: float = 0.3,
        quantum: float = 1.0,
    ) -> None:
        super().__init__(
            inner, seed, start_probability, min_duration, max_duration,
            attenuation=brownout_factor, quantum=quantum,
        )

    @property
    def brownout_factor(self) -> float:
        """Attenuation applied while an outage is active."""
        return self._attenuation

    def __repr__(self) -> str:
        return (
            f"BrownoutSource({self._inner!r}, seed={self._seed}, "
            f"start_probability={self._p!r}, factor={self._attenuation!r})"
        )


class SensorDropoutSource(_FaultFactorSource):
    """I.i.d. per-quantum dropouts: each quantum is lost independently.

    Unlike the correlated outages of :class:`BlackoutSource`, every
    quantum drops to zero independently with ``drop_probability`` —
    the harvest-side analogue of a flaky sensor interface losing
    individual samples.
    """

    def __init__(
        self,
        inner: EnergySource,
        seed: int = 0,
        drop_probability: float = 0.05,
        quantum: float = 1.0,
    ) -> None:
        super().__init__(inner, seed, quantum)
        if not 0.0 <= drop_probability <= 1.0:
            raise ValueError(
                f"drop_probability must lie in [0, 1], got {drop_probability!r}"
            )
        self._drop_p = float(drop_probability)

    @property
    def drop_probability(self) -> float:
        """Independent per-quantum loss probability."""
        return self._drop_p

    def _extend(self) -> None:
        self._factors.append(0.0 if float(self._rng.random()) < self._drop_p else 1.0)

    def _mean_factor(self) -> float:
        return 1.0 - self._drop_p

    def __repr__(self) -> str:
        return (
            f"SensorDropoutSource({self._inner!r}, seed={self._seed}, "
            f"drop_probability={self._drop_p!r})"
        )
