"""Chaos harness: process-level fault injection for the sweep runtime.

Where the rest of :mod:`repro.faults` perturbs the *simulated* world
(harvest outages, overruns), this module perturbs the *execution*
substrate — workers that crash, die by signal or stall, and journals
that get killed mid-write — so the crash-consistency claims of
:mod:`repro.runtime` are provable rather than aspirational:

* :class:`FlakySetup` — a :class:`~repro.experiments.common.PaperSetup`
  whose first ``fail_attempts`` runs of every cell fail in a chosen
  ``mode`` (``raise`` an exception, ``kill`` the worker process with
  SIGKILL, or ``stall`` past any timeout) and then behave normally.
  Attempts are counted through marker files in a scratch directory, so
  the flakiness is deterministic across retry rounds and across the
  process boundary;
* :class:`ChaosJournal` — a :class:`~repro.runtime.journal.
  ResultJournal` that SIGKILLs its own process at a configured append,
  optionally after writing only half of the record frame (a *torn
  write*).  ``repro sweep --chaos-kill-record N`` arms it from the CLI
  so kill-and-resume scenarios run as real subprocesses;
* :func:`truncate_tail` / :func:`flip_byte` — offline journal
  corruption for recovery tests.

All chaos is deterministic: kill points are append indices, failure
counts are explicit, nothing reads a clock or an unseeded RNG.  See
``docs/runtime.md`` for the chaos suite these primitives drive.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from repro.experiments.common import PaperSetup
from repro.runtime.journal import ResultJournal
from repro.sim.simulator import SimulationResult

__all__ = [
    "ChaosJournal",
    "FlakySetup",
    "KILL_MODES",
    "WORKER_FAILURE_MODES",
    "flip_byte",
    "truncate_tail",
]

#: How a :class:`FlakySetup` cell fails while within its failure budget.
WORKER_FAILURE_MODES: tuple[str, ...] = ("raise", "kill", "stall")

#: Where a :class:`ChaosJournal` kill lands relative to the armed record:
#: ``before`` — nothing of the record reaches disk; ``torn`` — half the
#: frame is written and fsync'd first (the torn-tail recovery case);
#: ``after`` — the full record commits, the process dies right after.
KILL_MODES: tuple[str, ...] = ("before", "torn", "after")


@dataclass(frozen=True)
class FlakySetup(PaperSetup):
    """A paper setup whose first attempts per cell fail on purpose.

    ``scratch_dir`` holds one marker file per (scheduler, seed,
    capacity) cell; its size is the number of attempts made so far.
    Fresh worker processes therefore agree on the attempt count, and a
    cell becomes healthy exactly after ``fail_attempts`` failures —
    deterministic flakiness, ideal for retry-path tests.
    """

    scratch_dir: str = ""
    fail_attempts: int = 1
    mode: str = "raise"
    stall_seconds: float = 30.0

    def __post_init__(self) -> None:
        if self.mode not in WORKER_FAILURE_MODES:
            raise ValueError(
                f"unknown failure mode {self.mode!r}; "
                f"available: {WORKER_FAILURE_MODES}"
            )

    def _marker(self, scheduler_name: str, capacity: float, seed: int) -> Path:
        if not self.scratch_dir:
            raise ValueError("FlakySetup needs a scratch_dir")
        return Path(self.scratch_dir) / (
            f"{scheduler_name}-c{capacity:g}-s{seed}.attempts"
        )

    def attempts_so_far(
        self, scheduler_name: str, capacity: float, seed: int
    ) -> int:
        marker = self._marker(scheduler_name, capacity, seed)
        try:
            return marker.stat().st_size
        except FileNotFoundError:
            return 0

    def run(
        self,
        scheduler_name: str,
        utilization: float,
        capacity: float,
        seed: int,
        energy_sample_interval: Optional[float] = None,
        initial_storage: Optional[float] = None,
    ) -> SimulationResult:
        marker = self._marker(scheduler_name, capacity, seed)
        marker.parent.mkdir(parents=True, exist_ok=True)
        attempt = self.attempts_so_far(scheduler_name, capacity, seed) + 1
        with open(marker, "ab") as handle:
            handle.write(b".")
        if attempt <= self.fail_attempts:
            if self.mode == "kill":
                os.kill(os.getpid(), signal.SIGKILL)
            if self.mode == "stall":
                time.sleep(self.stall_seconds)
            raise RuntimeError(
                f"chaos: injected failure on attempt {attempt} of "
                f"{scheduler_name} seed={seed}"
            )
        return super().run(
            scheduler_name,
            utilization,
            capacity,
            seed,
            energy_sample_interval=energy_sample_interval,
            initial_storage=initial_storage,
        )


class ChaosJournal(ResultJournal):
    """A result journal that kills its own process at a chosen append.

    ``kill_record`` is 1-based: the Nth :meth:`append` triggers the
    kill, at the point selected by ``kill_mode`` (see
    :data:`KILL_MODES`).  Appends before the armed one behave normally,
    so the journal accumulates exactly ``kill_record - 1`` durable
    records (``kill_record`` for mode ``after``) before the process
    vanishes — the deterministic SIGKILL points of the chaos suite.
    """

    def __init__(
        self,
        path: Union[str, Path],
        kill_record: int,
        kill_mode: str = "before",
    ) -> None:
        if kill_record < 1:
            raise ValueError(f"kill_record must be >= 1, got {kill_record!r}")
        if kill_mode not in KILL_MODES:
            raise ValueError(
                f"unknown kill mode {kill_mode!r}; available: {KILL_MODES}"
            )
        self._kill_record = kill_record
        self._kill_mode = kill_mode
        self._appends = 0
        super().__init__(path)

    def _commit(self, frame: bytes) -> None:
        self._appends += 1
        if self._appends != self._kill_record:
            super()._commit(frame)
            return
        if self._kill_mode == "before":
            os.kill(os.getpid(), signal.SIGKILL)
        if self._kill_mode == "torn":
            # Durably write *half* the frame, then die: exactly the torn
            # tail that recovery must detect and discard.
            super()._commit(frame[: max(1, len(frame) // 2)])
            os.kill(os.getpid(), signal.SIGKILL)
        super()._commit(frame)  # "after"
        os.kill(os.getpid(), signal.SIGKILL)


def truncate_tail(path: Union[str, Path], drop_bytes: int) -> None:
    """Remove the last ``drop_bytes`` bytes of a file (simulated tear)."""
    if drop_bytes < 0:
        raise ValueError(f"drop_bytes must be >= 0, got {drop_bytes!r}")
    size = os.path.getsize(path)
    with open(path, "r+b") as handle:
        handle.truncate(max(0, size - drop_bytes))


def flip_byte(path: Union[str, Path], offset_from_end: int) -> None:
    """XOR one byte near the end of a file (simulated bit rot)."""
    size = os.path.getsize(path)
    if not 0 < offset_from_end <= size:
        raise ValueError(
            f"offset_from_end must be in (0, {size}], got {offset_from_end!r}"
        )
    with open(path, "r+b") as handle:
        handle.seek(size - offset_from_end)
        byte = handle.read(1)
        handle.seek(size - offset_from_end)
        handle.write(bytes([byte[0] ^ 0xFF]))
