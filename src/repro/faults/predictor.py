"""Prediction-side fault injector: systematic forecast bias.

The paper's schedulers trust the predictor's ``ÊS(t, D)`` when planning
slowdowns.  :class:`BiasedPredictor` wraps any predictor with an affine
distortion so experiments can measure how sensitive each scheduler is to
optimistic (``gain > 1``) or pessimistic (``gain < 1``) forecasts —
e.g. a profile learned before a panel degraded, or a miscalibrated
harvest sensor.
"""

from __future__ import annotations

import math

from repro.energy.predictor import HarvestPredictor

__all__ = ["BiasedPredictor"]


class BiasedPredictor(HarvestPredictor):
    """Affine distortion ``gain * prediction + offset_power * dt`` of a predictor.

    The result is clamped at zero so a pessimistic bias cannot produce a
    negative energy forecast.  Observations pass through unchanged — the
    inner predictor keeps learning from the *true* harvest, so the bias
    stays systematic instead of being learned away.
    """

    def __init__(
        self,
        inner: HarvestPredictor,
        gain: float = 1.0,
        offset_power: float = 0.0,
    ) -> None:
        if gain < 0 or not math.isfinite(gain):
            raise ValueError(f"gain must be finite and >= 0, got {gain!r}")
        if not math.isfinite(offset_power):
            raise ValueError(f"offset_power must be finite, got {offset_power!r}")
        self._inner = inner
        self._gain = float(gain)
        self._offset = float(offset_power)

    @property
    def inner(self) -> HarvestPredictor:
        """The wrapped unbiased predictor."""
        return self._inner

    @property
    def gain(self) -> float:
        """Multiplicative bias on the inner prediction."""
        return self._gain

    @property
    def offset_power(self) -> float:
        """Additive bias, expressed as a constant power (may be negative)."""
        return self._offset

    def predict_energy(self, t0: float, t1: float) -> float:
        value = self._inner.predict_energy(t0, t1)
        biased = self._gain * value + self._offset * max(0.0, t1 - t0)
        return max(0.0, biased)

    def observe(self, t0: float, t1: float, energy: float) -> None:
        self._inner.observe(t0, t1, energy)

    def reset(self) -> None:
        self._inner.reset()

    def __repr__(self) -> str:
        return (
            f"BiasedPredictor({self._inner!r}, gain={self._gain!r}, "
            f"offset_power={self._offset!r})"
        )
