"""Workload-side fault injector: execution-time overruns.

Schedulers plan against the WCET, but real workloads occasionally exceed
it — mis-measured WCETs, cache pathologies, input-dependent blowups.
:class:`OverrunWorkload` wraps a :class:`~repro.tasks.TaskSet` and, with
a configurable probability per job, stretches the job's *actual* demand
by a uniform factor (possibly past the WCET).  Schedulers still see the
original ``remaining_work`` bound — exactly the information asymmetry an
online system faces — while the simulator executes the true, stretched
demand.
"""

from __future__ import annotations

import math

import numpy as np

from repro.tasks.job import Job
from repro.tasks.task import TaskSet

__all__ = ["OverrunWorkload"]


class OverrunWorkload(TaskSet):
    """TaskSet whose jobs sporadically overrun their nominal demand.

    Parameters
    ----------
    inner:
        The fault-free task set; its tasks are shared, not copied.
    seed:
        Seed of the private overrun RNG.  The stretch decisions are drawn
        in the deterministic job order of :meth:`~repro.tasks.TaskSet.jobs`
        (release, deadline, task name), so equal seeds give identical
        overruns for identical horizons.
    probability:
        Per-job probability of an overrun.
    min_stretch, max_stretch:
        Inclusive range of the uniform stretch factor applied to the
        job's actual demand (``>= 1``; the result may exceed the WCET).
    """

    def __init__(
        self,
        inner: TaskSet,
        seed: int = 0,
        probability: float = 0.1,
        min_stretch: float = 1.05,
        max_stretch: float = 1.5,
    ) -> None:
        super().__init__(inner.tasks)
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must lie in [0, 1], got {probability!r}")
        for name, value in (("min_stretch", min_stretch), ("max_stretch", max_stretch)):
            if value < 1.0 or not math.isfinite(value):
                raise ValueError(f"{name} must be finite and >= 1, got {value!r}")
        if max_stretch < min_stretch:
            raise ValueError(
                f"max_stretch {max_stretch!r} must be >= min_stretch {min_stretch!r}"
            )
        self._seed = int(seed)
        self._probability = float(probability)
        self._min_stretch = float(min_stretch)
        self._max_stretch = float(max_stretch)

    @property
    def seed(self) -> int:
        """Seed of the private overrun RNG."""
        return self._seed

    @property
    def probability(self) -> float:
        """Per-job overrun probability."""
        return self._probability

    @property
    def stretch_range(self) -> tuple[float, float]:
        """Inclusive ``(min, max)`` uniform stretch factor."""
        return (self._min_stretch, self._max_stretch)

    def jobs(
        self, horizon: float, rng: np.random.Generator | None = None
    ) -> list[Job]:
        """The inner jobs with seeded overruns applied.

        Note that ``scaled_to`` returns a plain (fault-free)
        :class:`~repro.tasks.TaskSet`; rewrap its result to keep overruns.
        """
        base = super().jobs(horizon, rng)
        fault_rng = np.random.default_rng(self._seed)
        out: list[Job] = []
        for job in base:
            if float(fault_rng.random()) < self._probability:
                stretch = float(
                    fault_rng.uniform(self._min_stretch, self._max_stretch)
                )
                job = Job(
                    job.task,
                    job.release,
                    job.absolute_deadline,
                    job.wcet,
                    index=job.index,
                    actual_work=job.actual_work * stretch,
                    allow_overrun=True,
                )
            out.append(job)
        return out

    def __repr__(self) -> str:
        return (
            f"OverrunWorkload(n={len(self.tasks)}, seed={self._seed}, "
            f"probability={self._probability!r}, "
            f"stretch={self._min_stretch!r}..{self._max_stretch!r})"
        )
