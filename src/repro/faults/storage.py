"""Storage-side fault injector: capacity fade and leakage spikes.

:class:`DegradedStorage` wraps any :class:`~repro.energy.EnergyStorage`
and superimposes two aging/fault mechanisms:

* **capacity fade** — the usable capacity shrinks linearly with elapsed
  simulation time down to a configurable floor; charge above the faded
  capacity is expelled and counted as leakage;
* **leakage spikes** — a seeded outage process (same machine as
  :class:`~repro.faults.BlackoutSource`) switches an extra parasitic
  drain on and off per quantum, modeling intermittent short-circuit
  paths or a misbehaving peripheral.

The wrapper keeps the storage contract the simulator depends on:
``net_flow``, ``time_to_empty`` and ``advance`` all apply the *same*
spike schedule, and the spike drain is pinned off while the store is
empty (mirroring :class:`~repro.energy.NonIdealStorage`'s leak pinning),
so the simulator's depletion splitting and stall detection stay
consistent and cannot livelock on zero-length segments.

``time_to_empty`` walks the spike schedule window by window and is exact
up to a bounded look-ahead; past the bound it returns a safe
*underestimate*, which only makes the simulator split a segment early
and re-evaluate — never deliver energy that does not exist.
``time_to_full`` ignores *future* spike transitions and ongoing fade
(documented approximation; the simulator does not use it).
"""

from __future__ import annotations

import math

import numpy as np

from repro.energy.storage import EnergyStorage, SegmentResult
from repro.timeutils import EPSILON, INFINITY

__all__ = ["DegradedStorage"]


class DegradedStorage(EnergyStorage):
    """Capacity fade plus seeded leakage spikes on top of any storage.

    Parameters
    ----------
    inner:
        The wrapped storage; all charge state lives there.
    seed:
        Seed of the private spike-schedule RNG.
    fade_rate:
        Fractional capacity loss per time unit (e.g. ``1e-4`` loses 1% of
        nameplate capacity every 100 time units).  Requires a finite
        inner capacity when nonzero.
    min_capacity_fraction:
        Floor of the fade, as a fraction of nameplate capacity.
    spike_probability:
        Per-quantum probability of a new leakage spike starting while
        none is active.
    spike_power:
        Extra parasitic drain (at the load side) while a spike is active.
    min_spike_duration, max_spike_duration:
        Inclusive spike length range in quanta.
    quantum:
        Length of one spike-schedule interval.
    """

    #: Bounded look-ahead of the ``time_to_empty`` schedule walk.  Small on
    #: purpose: the simulator only acts on depletion times shorter than the
    #: current segment (at most one source quantum), so a finite safe
    #: underestimate past the bound is as good as infinity to the caller.
    _MAX_WINDOWS = 64

    def __init__(
        self,
        inner: EnergyStorage,
        seed: int = 0,
        fade_rate: float = 0.0,
        min_capacity_fraction: float = 0.5,
        spike_probability: float = 0.0,
        spike_power: float = 0.0,
        min_spike_duration: int = 1,
        max_spike_duration: int = 5,
        quantum: float = 1.0,
    ) -> None:
        # Deliberately not calling EnergyStorage.__init__: every public
        # member is overridden to delegate to ``inner``, which owns the
        # charge state.
        if fade_rate < 0 or not math.isfinite(fade_rate):
            raise ValueError(f"fade_rate must be finite and >= 0, got {fade_rate!r}")
        if fade_rate > 0 and math.isinf(inner.capacity):
            raise ValueError("capacity fade requires a finite inner capacity")
        if not 0.0 < min_capacity_fraction <= 1.0:
            raise ValueError(
                "min_capacity_fraction must lie in (0, 1], got "
                f"{min_capacity_fraction!r}"
            )
        if not 0.0 <= spike_probability <= 1.0:
            raise ValueError(
                f"spike_probability must lie in [0, 1], got {spike_probability!r}"
            )
        if spike_power < 0 or not math.isfinite(spike_power):
            raise ValueError(
                f"spike_power must be finite and >= 0, got {spike_power!r}"
            )
        min_spike_duration = int(min_spike_duration)
        max_spike_duration = int(max_spike_duration)
        if not 1 <= min_spike_duration <= max_spike_duration:
            raise ValueError(
                "spike durations must satisfy 1 <= min <= max, got "
                f"{min_spike_duration!r}..{max_spike_duration!r}"
            )
        if quantum <= 0 or not math.isfinite(quantum):
            raise ValueError(f"quantum must be finite and > 0, got {quantum!r}")
        self._inner = inner
        self._seed = int(seed)
        self._fade_rate = float(fade_rate)
        self._min_cap_frac = float(min_capacity_fraction)
        self._spike_p = float(spike_probability)
        self._spike_power = float(spike_power)
        self._min_spike = min_spike_duration
        self._max_spike = max_spike_duration
        self._quantum = float(quantum)
        self._rng = np.random.default_rng(self._seed)
        self._spikes: list[bool] = []
        self._spike_left = 0
        self._elapsed = 0.0
        # Energy the fault layer routed through the inner draw path; used
        # to re-classify it from "drawn" to "leaked" in the totals.
        self._injected_drawn = 0.0
        self._fade_drawn = 0.0
        self._fade_lost = 0.0

    # -- wrapper introspection ------------------------------------------------

    @property
    def inner(self) -> EnergyStorage:
        """The wrapped fault-free storage."""
        return self._inner

    @property
    def seed(self) -> int:
        """Seed of the private spike RNG."""
        return self._seed

    @property
    def fade_rate(self) -> float:
        """Fractional capacity loss per time unit."""
        return self._fade_rate

    @property
    def spike_power(self) -> float:
        """Parasitic drain while a leakage spike is active."""
        return self._spike_power

    @property
    def has_spikes(self) -> bool:
        """Whether the spike process can ever activate."""
        return self._spike_p > 0.0 and self._spike_power > 0.0  # repro-lint: disable=RPR101 -- config toggles

    @property
    def elapsed(self) -> float:
        """Simulation time this storage has been advanced through."""
        return self._elapsed

    @property
    def nominal_capacity(self) -> float:
        """The inner storage's nameplate capacity (before fade)."""
        return self._inner.capacity

    @property
    def effective_capacity(self) -> float:
        """Current usable capacity after fade."""
        # Exact == 0.0: fade is a feature toggle set from config, never
        # a derived float.
        if self._fade_rate == 0.0:  # repro-lint: disable=RPR101 -- config toggle
            return self._inner.capacity
        keep = max(self._min_cap_frac, 1.0 - self._fade_rate * self._elapsed)
        return self._inner.capacity * keep

    # -- state (delegated) ----------------------------------------------------

    @property
    def capacity(self) -> float:
        """Usable capacity right now (the faded value)."""
        return self.effective_capacity

    @property
    def stored(self) -> float:
        return self._inner.stored

    @property
    def fraction(self) -> float:
        cap = self.effective_capacity
        if math.isinf(cap):
            return math.nan
        return self._inner.stored / cap

    @property
    def is_empty(self) -> bool:
        return self._inner.is_empty

    @property
    def is_full(self) -> bool:
        return self._inner.stored >= self.effective_capacity - EPSILON

    @property
    def total_overflow(self) -> float:
        return self._inner.total_overflow

    @property
    def total_drawn(self) -> float:
        """Energy delivered to the *load* (fault drains excluded)."""
        return self._inner.total_drawn - self._injected_drawn - self._fade_drawn

    @property
    def total_leaked(self) -> float:
        """Inner leakage plus spike drain plus capacity-fade losses."""
        return self._inner.total_leaked + self._injected_drawn + self._fade_lost

    # -- spike schedule -------------------------------------------------------

    def _window_index(self, elapsed: float) -> int:
        return max(0, int(math.floor((elapsed + EPSILON) / self._quantum)))

    def _spike_active(self, index: int) -> bool:
        while len(self._spikes) <= index:
            if self._spike_left > 0:
                self._spike_left -= 1
                self._spikes.append(True)
            elif float(self._rng.random()) < self._spike_p:
                self._spike_left = (
                    int(self._rng.integers(self._min_spike, self._max_spike + 1)) - 1
                )
                self._spikes.append(True)
            else:
                self._spikes.append(False)
        return self._spikes[index]

    def _spike_draw(self, index: int, level: float) -> float:
        """Spike drain acting at ``level``; pinned off at an empty store.

        An empty store has no charge for the parasitic path to drain, so
        the spike must not masquerade as load draw there — otherwise the
        simulator would stall the CPU for a fault that cannot bite.
        """
        if not self.has_spikes or level <= EPSILON:
            return 0.0
        return self._spike_power if self._spike_active(index) else 0.0

    # -- analytic segment operations ------------------------------------------

    def net_flow(self, harvest_power: float, draw_power: float) -> float:
        spike = self._spike_draw(self._window_index(self._elapsed), self._inner.stored)
        return self._inner.net_flow(harvest_power, draw_power + spike)

    def time_to_empty(self, harvest_power: float, draw_power: float) -> float:
        self._check_powers(harvest_power, draw_power)
        inner = self._inner
        if math.isinf(inner.stored):
            return INFINITY
        if not self.has_spikes:
            return inner.time_to_empty(harvest_power, draw_power)
        if inner.stored <= EPSILON:
            # Empty-pinned regime: the spike drain is off (nothing to
            # drain), so the inner prediction is exact *while pinned*.
            # But a charging store rises out of the pinned regime, and a
            # spike window can then flip the net flow negative — which
            # the inner model cannot see.  Split at the current spike
            # window's end: up to there the spike stays off (advance()
            # gates it on the level at the window start, which is
            # pinned), so the level cannot cross zero before that, and
            # the caller re-evaluates with the recharged level.
            t_inner = inner.time_to_empty(harvest_power, draw_power)
            index = self._window_index(self._elapsed)
            span = (index + 1) * self._quantum - self._elapsed
            if span <= EPSILON:
                span = self._quantum
            return min(t_inner, span)

        # The inner net_flow is state-dependent only through its
        # empty-pinning; the store is non-empty here, so both regime rates
        # are constants and the walk over the spike schedule is exact
        # until the walked level approaches empty.
        rate_clear = inner.net_flow(harvest_power, draw_power)
        rate_spike = inner.net_flow(harvest_power, draw_power + self._spike_power)
        if rate_clear >= -EPSILON and rate_spike >= -EPSILON:
            return INFINITY
        level = inner.stored
        pos = self._elapsed
        total = 0.0
        for _ in range(self._MAX_WINDOWS):
            index = self._window_index(pos)
            window_end = (index + 1) * self._quantum
            span = window_end - pos
            if span <= 0.0:  # defensive nudge guard; repro-lint: disable=RPR101 -- exact guard
                span = self._quantum
            rate = rate_spike if self._spike_active(index) else rate_clear
            if rate < -EPSILON:
                crossing = level / -rate
                if crossing <= span + EPSILON:
                    return total + min(crossing, span)
            level = min(level + rate * span, inner.capacity)
            total += span
            pos = window_end
            if level <= EPSILON:
                # Walked into the pinned regime without an exact crossing:
                # report the window end — a safe (early) split point.
                return total
        return total  # safe underestimate; the caller splits and re-walks

    def time_to_full(self, harvest_power: float, draw_power: float) -> float:
        """Linear estimate at the *current* spike state and capacity.

        Ignores future spike transitions and ongoing fade — acceptable
        because overfill is clamped exactly in :meth:`advance` and the
        simulator never splits segments on fill events.
        """
        self._check_powers(harvest_power, draw_power)
        cap = self.effective_capacity
        if math.isinf(cap):
            return INFINITY
        rate = self.net_flow(harvest_power, draw_power)
        if rate <= EPSILON:
            return INFINITY
        return max(0.0, (cap - self._inner.stored) / rate)

    def advance(
        self, duration: float, harvest_power: float, draw_power: float
    ) -> SegmentResult:
        if duration < 0 or math.isnan(duration):
            raise ValueError(f"duration must be >= 0, got {duration!r}")
        self._check_powers(harvest_power, draw_power)
        # Exact == 0.0, matching EnergyStorage.advance: sub-EPSILON
        # slivers still carry energy the conservation oracles count.
        if duration == 0.0:  # repro-lint: disable=RPR101 -- exact by design
            return SegmentResult(drawn=0.0, stored_delta=0.0, overflow=0.0)

        before = self._inner.stored
        overflow = 0.0
        leaked = 0.0
        remaining = duration
        pos = self._elapsed
        while remaining > 0.0:  # repro-lint: disable=RPR101 -- span snaps remaining to exactly 0.0
            index = self._window_index(pos)
            window_end = (index + 1) * self._quantum
            span = window_end - pos
            if span <= 0.0:  # defensive nudge guard; repro-lint: disable=RPR101 -- exact guard
                span = self._quantum
            if span >= remaining - EPSILON:
                span = remaining  # snap the final sliver exactly
            spike = self._spike_draw(index, self._inner.stored)
            seg = self._inner.advance(span, harvest_power, draw_power + spike)
            if spike > 0.0:
                spike_energy = spike * span
                self._injected_drawn += spike_energy
                leaked += spike_energy
            overflow += seg.overflow
            leaked += seg.leaked
            pos += span
            remaining -= span
        self._elapsed = pos
        leaked += self._apply_fade_clamp()
        after = self._inner.stored
        return SegmentResult(
            drawn=draw_power * duration,
            stored_delta=after - before,
            overflow=overflow,
            leaked=leaked,
        )

    def _apply_fade_clamp(self) -> float:
        """Expel charge above the faded capacity; returns the energy lost."""
        if self._fade_rate == 0.0:  # repro-lint: disable=RPR101 -- config toggle
            return 0.0
        excess = self._inner.stored - self.effective_capacity
        if excess <= EPSILON:
            return 0.0
        # Route the expulsion through the inner draw path so its state
        # update stays internally consistent; the discharge factor converts
        # "stored energy to remove" into "delivered energy to request".
        factor = self._inner._instant_discharge_factor()
        delivered = self._inner.draw_instant(excess / factor)
        removed = delivered * factor
        self._fade_drawn += delivered
        self._fade_lost += removed
        return removed

    def _advance_finite(
        self, duration: float, harvest_power: float, draw_power: float
    ) -> SegmentResult:  # pragma: no cover - advance() is fully overridden
        raise AssertionError("DegradedStorage overrides advance() directly")

    def draw_instant(self, energy: float) -> float:
        return self._inner.draw_instant(energy)

    def _instant_discharge_factor(self) -> float:
        return self._inner._instant_discharge_factor()

    def __repr__(self) -> str:
        return (
            f"DegradedStorage({self._inner!r}, seed={self._seed}, "
            f"fade_rate={self._fade_rate!r}, "
            f"spike_probability={self._spike_p!r}, "
            f"spike_power={self._spike_power!r})"
        )
