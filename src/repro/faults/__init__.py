"""Fault injection for resilience studies.

The paper's evaluation exercises well-behaved inputs only: smooth harvest
profiles, jobs that never exceed their WCET, a storage that keeps its
nameplate capacity forever.  Real deployments see none of that — panels
get shaded, batteries age, execution times overrun.  This package provides
*composable, seeded, deterministic* fault wrappers around the clean
models, so every experiment can be re-run under degraded conditions
without touching the substrate:

* :class:`BlackoutSource` / :class:`BrownoutSource` /
  :class:`SensorDropoutSource` — decorate any
  :class:`~repro.energy.EnergySource` with harvest outages;
* :class:`DegradedStorage` — wraps any
  :class:`~repro.energy.EnergyStorage` with capacity fade and leakage
  spikes;
* :class:`BiasedPredictor` — injects systematic over/under-prediction
  into any :class:`~repro.energy.HarvestPredictor`;
* :class:`OverrunWorkload` — stretches actual execution times beyond the
  WCET with a configurable probability.

Process-level chaos (workers that crash/stall/die by signal, journals
killed mid-write) lives in :mod:`repro.faults.chaos` and is imported
explicitly by the runtime tests — it is deliberately not re-exported
here, so importing the simulation fault wrappers never drags in the
experiment harness.

All wrappers draw their randomness from a private
``numpy.random.default_rng(seed)`` stream extended lazily in index order,
so runs with equal seeds are bit-for-bit identical regardless of query
order (the same discipline as :class:`~repro.energy.SolarStochasticSource`).

See ``docs/resilience.md`` for the fault model and the ``resilience``
experiment that uses it.
"""

from repro.faults.predictor import BiasedPredictor
from repro.faults.sources import (
    BlackoutSource,
    BrownoutSource,
    SensorDropoutSource,
)
from repro.faults.storage import DegradedStorage
from repro.faults.workload import OverrunWorkload

__all__ = [
    "BiasedPredictor",
    "BlackoutSource",
    "BrownoutSource",
    "DegradedStorage",
    "OverrunWorkload",
    "SensorDropoutSource",
]
