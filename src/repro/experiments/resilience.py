"""Resilience experiment: scheduler miss rates under injected faults.

The paper's evaluation assumes a well-behaved world: the harvest
follows eq. (13) exactly and every job finishes within its WCET.  This
experiment stress-tests that assumption by re-running the section 5.1
configuration under the :mod:`repro.faults` wrappers:

* ``baseline`` — the unmodified setup;
* ``blackout`` — the source is wrapped in a
  :class:`~repro.faults.BlackoutSource` (random total outages);
* ``overrun`` — the task set is wrapped in an
  :class:`~repro.faults.OverrunWorkload` (jobs stretched past WCET);
* ``blackout+overrun`` — both at once.

Task sets are generated from the *nominal* mean harvest power in every
scenario, so all scenarios share the same workload per seed and the
comparison is paired: only the injected fault differs.  Runs execute
through the supervised sweep runtime
(:func:`~repro.runtime.sweep.run_journaled_sweep`), so a crashing or
hanging cell is salvaged as a
:class:`~repro.analysis.parallel.RunFailure` instead of aborting the
sweep, every simulation runs with the watchdog enabled, and setting
``$REPRO_JOURNAL`` makes the whole experiment resumable after a kill.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Mapping, Optional, Sequence, Union

from repro.energy.storage import IdealStorage
from repro.experiments.common import PaperSetup, replications, workers
from repro.faults import BlackoutSource, OverrunWorkload
from repro.sched.registry import make_scheduler
from repro.sim.simulator import (
    HarvestingRtSimulator,
    SimulationConfig,
    SimulationResult,
)
from repro.sim.tracing import TraceKind

__all__ = [
    "ResilienceResult",
    "ResilienceSetup",
    "SCENARIOS",
    "run_resilience",
]

#: Seed offsets separating the fault streams from the source/task streams.
_BLACKOUT_SEED_OFFSET = 7_000_033
_OVERRUN_SEED_OFFSET = 9_000_011

#: Fault intensities (module constants so the experiment is reproducible
#: from the source alone).
BLACKOUT_START_PROBABILITY = 0.05
BLACKOUT_DURATION_RANGE = (5, 30)
OVERRUN_PROBABILITY = 0.2
OVERRUN_STRETCH_RANGE = (1.1, 1.6)

_SCENARIO_FLAGS: dict[str, tuple[bool, bool]] = {
    "baseline": (False, False),
    "blackout": (True, False),
    "overrun": (False, True),
    "blackout+overrun": (True, True),
}

#: Scenario ids in presentation order.
SCENARIOS: tuple[str, ...] = tuple(_SCENARIO_FLAGS)

_SCHEDULERS = ("edf", "lsa", "ea-dvfs")


@dataclass(frozen=True)
class ResilienceSetup(PaperSetup):
    """A :class:`PaperSetup` with opt-in fault injection.

    Defined at module level (and frozen/picklable) so it can travel
    inside a :class:`~repro.analysis.parallel.RunSpec` to worker
    processes.  Task-set generation still uses the *nominal* source
    statistics — faults perturb the world the scheduler faces, not the
    workload it was sized for.
    """

    blackout: bool = False
    overrun: bool = False
    watchdog: bool = True

    def run(
        self,
        scheduler_name: str,
        utilization: float,
        capacity: float,
        seed: int,
        energy_sample_interval: Optional[float] = None,
        initial_storage: Optional[float] = None,
    ) -> SimulationResult:
        """One watchdogged simulation with the configured faults injected."""
        scale = self.scale()
        source = self.source(seed)
        if self.blackout:
            source = BlackoutSource(
                source,
                seed=seed + _BLACKOUT_SEED_OFFSET,
                start_probability=BLACKOUT_START_PROBABILITY,
                min_duration=BLACKOUT_DURATION_RANGE[0],
                max_duration=BLACKOUT_DURATION_RANGE[1],
            )
        taskset = self.taskset(seed, utilization)
        if self.overrun:
            taskset = OverrunWorkload(
                taskset,
                seed=seed + _OVERRUN_SEED_OFFSET,
                probability=OVERRUN_PROBABILITY,
                min_stretch=OVERRUN_STRETCH_RANGE[0],
                max_stretch=OVERRUN_STRETCH_RANGE[1],
            )
        trace_kinds: tuple[str, ...] = ()
        if energy_sample_interval is not None:
            trace_kinds = (TraceKind.ENERGY,)
        simulator = HarvestingRtSimulator(
            taskset=taskset,
            source=source,
            storage=IdealStorage(capacity=capacity, initial=initial_storage),
            scheduler=make_scheduler(scheduler_name, scale),
            predictor=self.predictor(source),
            config=SimulationConfig(
                horizon=self.horizon,
                trace_kinds=trace_kinds,
                energy_sample_interval=energy_sample_interval,
                watchdog=self.watchdog,
            ),
        )
        return simulator.run()


@dataclass(frozen=True)
class ResilienceResult:
    """Pooled miss rates per (scenario, scheduler) cell.

    ``miss_rates`` maps ``(scenario, scheduler_name)`` to the pooled
    miss rate over all seeds (NaN if every replication of a cell was
    salvaged as a failure).  ``failures`` lists the salvage records, if
    any, in sweep order.
    """

    utilization: float
    capacity: float
    n_sets: int
    scenarios: tuple[str, ...]
    scheduler_names: tuple[str, ...]
    miss_rates: Mapping[tuple[str, str], float]
    failures: tuple = ()

    def format_text(self) -> str:
        """Plain-text table: scenarios as rows, schedulers as columns."""
        lines = [
            "Miss rates under injected faults "
            f"(U={self.utilization:g}, C={self.capacity:g}, "
            f"{self.n_sets} task sets)"
        ]
        name_width = max(len(s) for s in self.scenarios + ("scenario",))
        header = ["scenario".ljust(name_width)]
        header += [f"{name:>10}" for name in self.scheduler_names]
        lines.append("  ".join(header))
        for scenario in self.scenarios:
            row = [scenario.ljust(name_width)]
            for name in self.scheduler_names:
                rate = self.miss_rates[(scenario, name)]
                row.append(f"{rate:10.4f}" if math.isfinite(rate) else f"{'n/a':>10}")
            lines.append("  ".join(row))
        if self.failures:
            lines.append(
                f"salvaged failures: {len(self.failures)} cell(s) "
                "(excluded from the pooled rates)"
            )
        return "\n".join(lines)


def run_resilience(
    utilization: float = 0.6,
    capacity: float = 150.0,
    setup: Optional[PaperSetup] = None,
    n_sets: Optional[int] = None,
    scenarios: Sequence[str] = SCENARIOS,
    scheduler_names: Sequence[str] = _SCHEDULERS,
    timeout: Optional[float] = None,
    retries: int = 1,
) -> ResilienceResult:
    """Run the resilience sweep and pool miss rates per scenario.

    Every (scenario, scheduler, seed) cell is one watchdogged
    simulation, executed through the supervised sweep runtime (serial
    when ``REPRO_WORKERS=1``, the default; checkpointed through
    ``$REPRO_JOURNAL`` when set).  Fixed seeds make the result
    bit-for-bit deterministic across runs.
    """
    from repro.analysis.parallel import RunFailure, RunSpec
    from repro.runtime.supervisor import SupervisorPolicy
    from repro.runtime.sweep import run_journaled_sweep

    unknown = [s for s in scenarios if s not in _SCENARIO_FLAGS]
    if unknown:
        raise ValueError(
            f"unknown scenario(s) {unknown!r}; available: {list(_SCENARIO_FLAGS)}"
        )
    base = setup or PaperSetup()
    if n_sets is None:
        n_sets = replications(3)
    seeds = range(n_sets)
    base_fields = {
        f.name: getattr(base, f.name) for f in dataclasses.fields(PaperSetup)
    }

    specs = []
    for scenario in scenarios:
        blackout, overrun = _SCENARIO_FLAGS[scenario]
        cell_setup = ResilienceSetup(
            **base_fields, blackout=blackout, overrun=overrun
        )
        for name in scheduler_names:
            for seed in seeds:
                specs.append(
                    RunSpec(
                        scheduler_name=name,
                        utilization=utilization,
                        capacity=capacity,
                        seed=seed,
                        setup=cell_setup,
                    )
                )
    report = run_journaled_sweep(
        specs,
        policy=SupervisorPolicy(timeout=timeout, retries=retries),
        max_workers=workers(),
    )
    outcomes: Sequence[Union[SimulationResult, RunFailure, None]] = (
        report.outcomes
    )

    miss_rates: dict[tuple[str, str], float] = {}
    failures: list[RunFailure] = []
    index = 0
    for scenario in scenarios:
        for name in scheduler_names:
            chunk = outcomes[index : index + n_sets]
            index += n_sets
            missed = judged = 0
            for cell in chunk:
                if isinstance(cell, RunFailure):
                    failures.append(cell)
                elif cell is not None:
                    missed += cell.missed_count
                    judged += cell.judged_count
            miss_rates[(scenario, name)] = (
                missed / judged if judged else math.nan
            )
    return ResilienceResult(
        utilization=utilization,
        capacity=capacity,
        n_sets=n_sets,
        scenarios=tuple(scenarios),
        scheduler_names=tuple(scheduler_names),
        miss_rates=miss_rates,
        failures=tuple(failures),
    )
