"""Experiment harness: one module per reproduced figure/table.

:data:`EXPERIMENTS` maps experiment ids (``fig5`` ... ``table1``) to
runner callables returning an object with a ``format_text()`` method; the
CLI and the benchmark suite both go through this registry.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.experiments.ablations import (
    AblationResult,
    run_aet_ablation,
    run_dvfs_granularity_ablation,
    run_nonideal_storage_ablation,
    run_overflow_aware_ablation,
    run_predictor_ablation,
    run_rectification_ablation,
    run_switch_overhead_ablation,
    run_weather_ablation,
)
from repro.experiments.common import PaperSetup, replications, scale_factor
from repro.experiments.fig5 import Fig5Result, run_fig5
from repro.experiments.fig6_fig7 import (
    PAPER_CAPACITIES,
    RemainingEnergyResult,
    run_fig6,
    run_fig7,
)
from repro.experiments.fig8_fig9 import (
    MissRateResult,
    run_fig8,
    run_fig9,
    run_miss_rate_sweep,
)
from repro.experiments.motivation import (
    MotivationOutcome,
    run_motivational_example,
    run_stretch_example,
)
from repro.experiments.resilience import (
    ResilienceResult,
    ResilienceSetup,
    run_resilience,
)
from repro.experiments.table1 import Table1Result, run_table1

__all__ = [
    "AblationResult",
    "EXPERIMENTS",
    "Fig5Result",
    "MissRateResult",
    "MotivationOutcome",
    "PAPER_CAPACITIES",
    "PaperSetup",
    "RemainingEnergyResult",
    "ResilienceResult",
    "ResilienceSetup",
    "Table1Result",
    "replications",
    "run_aet_ablation",
    "run_dvfs_granularity_ablation",
    "run_experiment",
    "run_fig5",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "run_miss_rate_sweep",
    "run_motivational_example",
    "run_nonideal_storage_ablation",
    "run_overflow_aware_ablation",
    "run_predictor_ablation",
    "run_rectification_ablation",
    "run_resilience",
    "run_stretch_example",
    "run_switch_overhead_ablation",
    "run_table1",
    "run_weather_ablation",
    "scale_factor",
]


class _MotivationBundle:
    """Both worked examples across the relevant schedulers."""

    def __init__(self) -> None:
        self.fig1 = [
            run_motivational_example(name) for name in ("lsa", "ea-dvfs", "edf")
        ]
        self.fig3 = [
            run_stretch_example(name) for name in ("ea-dvfs", "stretch-edf")
        ]

    def format_text(self) -> str:
        lines = ["Section 2 / Figure 1 example (tau2 deadline 21):"]
        lines += ["  " + o.format_text() for o in self.fig1]
        lines.append("Section 4.3 / Figure 3 example (tau2 deadline 17):")
        lines += ["  " + o.format_text() for o in self.fig3]
        return "\n".join(lines)


EXPERIMENTS: dict[str, Callable[[], Any]] = {
    "fig5": run_fig5,
    "fig6": run_fig6,
    "fig7": run_fig7,
    "fig8": run_fig8,
    "fig9": run_fig9,
    "table1": run_table1,
    "motivation": _MotivationBundle,
    "ablation-predictor": run_predictor_ablation,
    "ablation-rectification": run_rectification_ablation,
    "ablation-switch-overhead": run_switch_overhead_ablation,
    "ablation-nonideal-storage": run_nonideal_storage_ablation,
    "ablation-dvfs-granularity": run_dvfs_granularity_ablation,
    "ablation-weather": run_weather_ablation,
    "ablation-overflow-aware": run_overflow_aware_ablation,
    "ablation-aet": run_aet_ablation,
    "resilience": run_resilience,
}


def run_experiment(name: str) -> Any:
    """Run a registered experiment by id."""
    try:
        runner = EXPERIMENTS[name]
    except KeyError:
        raise ValueError(
            f"unknown experiment {name!r}; available: {sorted(EXPERIMENTS)}"
        ) from None
    return runner()
