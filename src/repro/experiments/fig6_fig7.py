"""Figures 6 & 7 — normalized remaining energy over time, LSA vs EA-DVFS.

Protocol (section 5.2): 5 periodic tasks; storage capacity swept over
{200, 300, 500, 1000, 2000, 3000, 5000}; the stored-energy trace of each
run is normalized by its capacity and the curves are averaged with equal
weight per capacity.  Figure 6 uses U=0.4 (EA-DVFS stores significantly
more), Figure 7 uses U=0.8 (the curves nearly coincide).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.analysis.metrics import energy_series
from repro.experiments.common import PaperSetup, replications
from repro.plotting import ascii_plot

__all__ = [
    "PAPER_CAPACITIES",
    "RemainingEnergyResult",
    "run_fig6",
    "run_fig7",
    "run_remaining_energy",
]

#: Section 5.2: "the capacity is set to 200, 300, 500, 1000, 2000, 3000
#: and 5000".
PAPER_CAPACITIES: tuple[float, ...] = (
    200.0, 300.0, 500.0, 1000.0, 2000.0, 3000.0, 5000.0,
)

_SCHEDULERS = ("lsa", "ea-dvfs")


@dataclass(frozen=True)
class RemainingEnergyResult:
    """Averaged normalized remaining-energy curves."""

    figure: str
    utilization: float
    times: np.ndarray
    curves: dict[str, np.ndarray]  # scheduler -> mean normalized energy
    capacities: tuple[float, ...]
    n_sets: int

    def mean_level(self, scheduler_name: str) -> float:
        """Time-averaged normalized remaining energy of one scheduler."""
        return float(self.curves[scheduler_name].mean())

    @property
    def advantage(self) -> float:
        """Mean EA-DVFS level minus mean LSA level (paper: > 0 at U=0.4)."""
        return self.mean_level("ea-dvfs") - self.mean_level("lsa")

    def format_text(self) -> str:
        chart = ascii_plot(
            {name: (self.times, curve) for name, curve in self.curves.items()},
            title=(
                f"{self.figure}: normalized remaining energy "
                f"(U={self.utilization}, {self.n_sets} task sets)"
            ),
            xlabel="time",
            ylabel="EC/C",
            y_min=0.0,
            y_max=1.0,
        )
        rows = [
            f"{name}: time-mean EC/C = {self.mean_level(name):.4f}"
            for name in self.curves
        ]
        rows.append(f"EA-DVFS minus LSA mean level: {self.advantage:+.4f}")
        return chart + "\n" + "\n".join(rows)


def run_remaining_energy(
    utilization: float,
    figure: str,
    setup: PaperSetup | None = None,
    capacities: Sequence[float] = PAPER_CAPACITIES,
    n_sets: int | None = None,
    sample_interval: float = 25.0,
) -> RemainingEnergyResult:
    """Average normalized remaining-energy curves over capacities and seeds."""
    setup = setup or PaperSetup()
    if n_sets is None:
        n_sets = replications(3)
    sums: dict[str, np.ndarray] = {}
    counts: dict[str, int] = {}
    times: np.ndarray | None = None
    for scheduler_name in _SCHEDULERS:
        for capacity in capacities:
            for seed in range(n_sets):
                result = setup.run(
                    scheduler_name,
                    utilization,
                    capacity,
                    seed,
                    energy_sample_interval=sample_interval,
                )
                t, fraction = energy_series(result, "fraction")
                if times is None:
                    times = t
                n = min(times.size, fraction.size)
                if scheduler_name not in sums:
                    sums[scheduler_name] = np.zeros(n)
                    counts[scheduler_name] = 0
                m = min(n, sums[scheduler_name].size)
                sums[scheduler_name] = sums[scheduler_name][:m] + fraction[:m]
                counts[scheduler_name] += 1
    assert times is not None
    curves = {}
    for name, total in sums.items():
        curves[name] = total / counts[name]
        times = times[: total.size]
    return RemainingEnergyResult(
        figure=figure,
        utilization=utilization,
        times=times,
        curves=curves,
        capacities=tuple(capacities),
        n_sets=n_sets,
    )


def run_fig6(**kwargs) -> RemainingEnergyResult:
    """Figure 6: U = 0.4 — EA-DVFS stores significantly more energy."""
    return run_remaining_energy(utilization=0.4, figure="Figure 6", **kwargs)


def run_fig7(**kwargs) -> RemainingEnergyResult:
    """Figure 7: U = 0.8 — the two policies nearly coincide."""
    return run_remaining_energy(utilization=0.8, figure="Figure 7", **kwargs)
