"""The paper's worked examples (section 2 / Figure 1 and section 4.3 /
Figure 3), executed on the real simulator.

Both scenarios use two one-shot tasks, a constant harvest of 0.5, an
initially-stored energy of 24 and a two-speed processor with ``P_max=8``.
They demonstrate (a) LSA missing a deadline that EA-DVFS meets by
stretching, and (b) why the stretched phase must end at ``s2`` — a
greedily stretched task starves its successor even with sufficient
energy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.presets import motivational_example_scale, stretch_example_scale
from repro.energy.predictor import OraclePredictor
from repro.energy.source import ConstantSource
from repro.energy.storage import IdealStorage
from repro.sched.registry import make_scheduler
from repro.sim.simulator import (
    HarvestingRtSimulator,
    SimulationConfig,
    SimulationResult,
)
from repro.sim.tracing import TraceKind
from repro.tasks.task import AperiodicTask, TaskSet
from repro.timeutils import time_le

__all__ = [
    "MotivationOutcome",
    "run_motivational_example",
    "run_stretch_example",
]

#: Shared scenario constants (section 2).
INITIAL_ENERGY = 24.0
HARVEST_POWER = 0.5
STORAGE_CAPACITY = 100.0  # large enough never to overflow in the examples


@dataclass(frozen=True)
class MotivationOutcome:
    """Result of one scheduler on one worked example."""

    scheduler_name: str
    result: SimulationResult
    tau1_completion: float | None
    tau2_completion: float | None
    tau2_met: bool

    def format_text(self) -> str:
        t1 = "-" if self.tau1_completion is None else f"{self.tau1_completion:.3f}"
        t2 = "-" if self.tau2_completion is None else f"{self.tau2_completion:.3f}"
        verdict = "meets" if self.tau2_met else "MISSES"
        return (
            f"{self.scheduler_name:12s} tau1 done at {t1:>8s}, "
            f"tau2 done at {t2:>8s} -> tau2 {verdict} its deadline "
            f"(misses={self.result.missed_count})"
        )


def _run_scenario(
    scheduler_name: str,
    taskset: TaskSet,
    scale_factory,
    horizon: float,
) -> MotivationOutcome:
    scale = scale_factory()
    source = ConstantSource(HARVEST_POWER)
    simulator = HarvestingRtSimulator(
        taskset=taskset,
        source=source,
        storage=IdealStorage(capacity=STORAGE_CAPACITY, initial=INITIAL_ENERGY),
        scheduler=make_scheduler(scheduler_name, scale),
        predictor=OraclePredictor(source),
        config=SimulationConfig(
            horizon=horizon,
            trace_kinds=(
                TraceKind.JOB_START,
                TraceKind.JOB_COMPLETE,
                TraceKind.JOB_MISS,
                TraceKind.FREQ_CHANGE,
            ),
        ),
    )
    result = simulator.run()
    completions = {j.task.name: j.completion_time for j in result.jobs}
    tau2 = next(j for j in result.jobs if j.task.name == "tau2")
    return MotivationOutcome(
        scheduler_name=scheduler_name,
        result=result,
        tau1_completion=completions.get("tau1"),
        tau2_completion=completions.get("tau2"),
        tau2_met=(
            tau2.completion_time is not None
            and time_le(tau2.completion_time, tau2.absolute_deadline)
        ),
    )


def run_motivational_example(scheduler_name: str) -> MotivationOutcome:
    """Section 2 / Figure 1: tau1=(0,16,4), tau2=(5,16,1.5), P_max=8.

    Under LSA, tau1 runs flat-out over [12, 16] and drains the storage;
    tau2 then misses its deadline (21) for lack of energy.  EA-DVFS
    stretches tau1 at half speed and meets both deadlines.
    """
    taskset = TaskSet(
        [
            AperiodicTask(arrival=0.0, relative_deadline=16.0, wcet=4.0, name="tau1"),
            AperiodicTask(arrival=5.0, relative_deadline=16.0, wcet=1.5, name="tau2"),
        ]
    )
    return _run_scenario(
        scheduler_name, taskset, motivational_example_scale, horizon=30.0
    )


def run_stretch_example(scheduler_name: str) -> MotivationOutcome:
    """Section 4.3 / Figure 3: tau1=(0,16,4), tau2=(5,12,1.5), f_n=0.25.

    EA-DVFS stretches tau1 at quarter speed but switches up to full speed
    at ``s2``, leaving room for tau2 (deadline 17).  A greedy stretcher
    (``stretch-edf``) runs tau1 slow through its whole window and starves
    tau2 despite ample energy.
    """
    taskset = TaskSet(
        [
            AperiodicTask(arrival=0.0, relative_deadline=16.0, wcet=4.0, name="tau1"),
            AperiodicTask(arrival=5.0, relative_deadline=12.0, wcet=1.5, name="tau2"),
        ]
    )
    return _run_scenario(
        scheduler_name, taskset, stretch_example_scale, horizon=30.0
    )
