"""Figure 5 — behavior of the stochastic solar energy source (eq. (13))."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.common import PaperSetup
from repro.plotting import ascii_plot

__all__ = ["Fig5Result", "run_fig5"]


@dataclass(frozen=True)
class Fig5Result:
    """Sampled source power over the simulation horizon."""

    times: np.ndarray
    powers: np.ndarray
    mean_power: float
    analytic_mean: float
    peak_power: float

    def format_text(self, plot_window: float = 5_000.0) -> str:
        mask = self.times < plot_window
        chart = ascii_plot(
            {"PS(t)": (self.times[mask], self.powers[mask])},
            title="Figure 5: energy source behavior (eq. 13)",
            xlabel="time",
            ylabel="PS(t)",
            y_min=0.0,
        )
        stats = (
            f"samples={self.times.size} mean={self.mean_power:.3f} "
            f"(analytic {self.analytic_mean:.3f}) peak={self.peak_power:.2f}"
        )
        return f"{chart}\n{stats}"


def run_fig5(
    setup: PaperSetup | None = None,
    seed: int = 0,
    horizon: float | None = None,
    step: float = 1.0,
) -> Fig5Result:
    """Sample one realization of the paper's energy source.

    The paper plots ~10,000 time units with peaks around 20 and dense
    mass between 0 and 15; the reproduced statistics (mean ~4 with the
    ``abs`` rectification) are reported alongside.
    """
    setup = setup or PaperSetup()
    source = setup.source(seed)
    end = setup.horizon if horizon is None else horizon
    times = np.arange(0.0, end, step)
    powers = source.sample(0.0, end, step)
    return Fig5Result(
        times=times,
        powers=powers,
        mean_power=float(powers.mean()),
        analytic_mean=source.mean_power(),
        peak_power=float(powers.max()),
    )
