"""Ablation experiments for the modeling choices documented in DESIGN.md.

Each runner returns an :class:`AblationResult` whose ``metrics`` carry
the raw numbers (asserted on by the benchmark harness) and whose
``format_text()`` renders the human-readable table (printed by the CLI
via ``repro run ablation-...``).

Runners:

* :func:`run_predictor_ablation` — harvest-predictor fidelity;
* :func:`run_rectification_ablation` — the eq. (13) rectification choice;
* :func:`run_switch_overhead_ablation` — DVFS switching costs;
* :func:`run_nonideal_storage_ablation` — conversion losses + leakage;
* :func:`run_dvfs_granularity_ablation` — ladder density;
* :func:`run_weather_ablation` — correlated-drought robustness;
* :func:`run_overflow_aware_ablation` — the ``ea-dvfs-oa`` extension;
* :func:`run_aet_ablation` — actual execution times below WCET.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.cpu.dvfs import FrequencyScale, SwitchingOverhead
from repro.cpu.presets import continuous_approximation, xscale_pxa
from repro.cpu.processor import Processor
from repro.energy.predictor import ProfilePredictor
from repro.energy.source import MarkovWeatherSource
from repro.energy.storage import IdealStorage, NonIdealStorage
from repro.experiments.common import PaperSetup, replications
from repro.sched.registry import make_scheduler
from repro.sim.simulator import (
    HarvestingRtSimulator,
    SimulationConfig,
    SimulationResult,
)
from repro.tasks.task import PeriodicTask, TaskSet
from repro.tasks.workload import generate_paper_taskset

__all__ = [
    "AblationResult",
    "run_aet_ablation",
    "run_dvfs_granularity_ablation",
    "run_nonideal_storage_ablation",
    "run_overflow_aware_ablation",
    "run_predictor_ablation",
    "run_rectification_ablation",
    "run_switch_overhead_ablation",
    "run_weather_ablation",
]


@dataclass(frozen=True)
class AblationResult:
    """Outcome of one ablation: raw metrics plus a rendered table."""

    name: str
    header: str
    rows: tuple[str, ...]
    metrics: dict[str, Any] = field(default_factory=dict)

    def format_text(self) -> str:
        return "\n".join([self.header, *("  " + row for row in self.rows)])


def _pooled(results: Sequence[SimulationResult]) -> float:
    missed = sum(r.missed_count for r in results)
    judged = sum(r.judged_count for r in results)
    return missed / judged if judged else 0.0


def run_predictor_ablation(
    utilization: float = 0.4,
    capacity: float = 60.0,
    n_sets: int | None = None,
) -> AblationResult:
    """EA-DVFS miss rate under predictors of decreasing fidelity."""
    n_sets = replications(5) if n_sets is None else n_sets
    rates = {}
    for kind in ("oracle", "profile", "mean"):
        setup = PaperSetup(predictor_kind=kind)
        rates[kind] = _pooled(
            [setup.run("ea-dvfs", utilization, capacity, s)
             for s in range(n_sets)]
        )
    return AblationResult(
        name="ablation-predictor",
        header=(
            f"EA-DVFS miss rate by predictor (U={utilization}, "
            f"capacity={capacity:g}, {n_sets} task sets):"
        ),
        rows=tuple(f"{kind:>8}: {rate:.4f}" for kind, rate in rates.items()),
        metrics={"rates": rates, "n_sets": n_sets},
    )


def run_rectification_ablation(
    utilization: float = 0.8,
    capacity: float = 5_000.0,
    n_sets: int | None = None,
) -> AblationResult:
    """LSA at U=0.8 under both eq. (13) rectification readings."""
    n_sets = replications(4) if n_sets is None else n_sets
    rates = {}
    for rectify in ("abs", "clamp"):
        setup = PaperSetup(rectify=rectify)
        rates[rectify] = _pooled(
            [setup.run("lsa", utilization, capacity, s)
             for s in range(n_sets)]
        )
    return AblationResult(
        name="ablation-rectification",
        header=(
            f"LSA miss rate at U={utilization}, capacity={capacity:g} "
            f"({n_sets} task sets) — Table 1 requires the abs reading:"
        ),
        rows=(
            f"abs   rectification (mean ~3.99): {rates['abs']:.4f}",
            f"clamp rectification (mean ~2.00): {rates['clamp']:.4f}",
        ),
        metrics={"rates": rates, "n_sets": n_sets},
    )


def _run_custom(
    scheduler_name: str,
    seed: int,
    utilization: float,
    capacity: float,
    overhead: SwitchingOverhead | None = None,
    storage_factory: Callable[[], Any] | None = None,
    setup: PaperSetup | None = None,
) -> SimulationResult:
    setup = setup or PaperSetup()
    scale = setup.scale()
    source = setup.source(seed)
    storage = (
        storage_factory() if storage_factory else IdealStorage(capacity=capacity)
    )
    simulator = HarvestingRtSimulator(
        taskset=setup.taskset(seed, utilization),
        source=source,
        storage=storage,
        scheduler=make_scheduler(scheduler_name, scale),
        predictor=setup.predictor(source),
        processor=Processor(scale, overhead=overhead) if overhead else None,
        config=SimulationConfig(horizon=setup.horizon),
    )
    return simulator.run()


def run_switch_overhead_ablation(
    utilization: float = 0.4,
    capacity: float = 60.0,
    overhead: SwitchingOverhead = SwitchingOverhead(time=0.05, energy=0.05),
    n_sets: int | None = None,
) -> AblationResult:
    """EA-DVFS with free vs costly DVFS transitions."""
    n_sets = replications(4) if n_sets is None else n_sets
    free = [_run_custom("ea-dvfs", s, utilization, capacity)
            for s in range(n_sets)]
    costly = [
        _run_custom("ea-dvfs", s, utilization, capacity, overhead=overhead)
        for s in range(n_sets)
    ]
    free_rate, costly_rate = _pooled(free), _pooled(costly)
    switches = sum(r.switch_count for r in costly) / n_sets
    return AblationResult(
        name="ablation-switch-overhead",
        header=(
            f"EA-DVFS at U={utilization}, capacity={capacity:g} "
            f"({n_sets} task sets):"
        ),
        rows=(
            f"free switching:                     miss {free_rate:.4f}",
            f"{overhead.time:g} time + {overhead.energy:g} energy/switch: "
            f"miss {costly_rate:.4f}",
            f"(~{switches:.0f} switches per run)",
        ),
        metrics={
            "free": free_rate,
            "costly": costly_rate,
            "switches_per_run": switches,
            "n_sets": n_sets,
        },
    )


def run_nonideal_storage_ablation(
    utilization: float = 0.4,
    capacity: float = 60.0,
    charge_efficiency: float = 0.9,
    discharge_efficiency: float = 0.9,
    leakage_power: float = 0.02,
    n_sets: int | None = None,
) -> AblationResult:
    """LSA and EA-DVFS on ideal vs lossy storage."""
    n_sets = replications(4) if n_sets is None else n_sets

    def lossy():
        return NonIdealStorage(
            capacity=capacity,
            charge_efficiency=charge_efficiency,
            discharge_efficiency=discharge_efficiency,
            leakage_power=leakage_power,
        )

    rates: dict[str, tuple[float, float]] = {}
    for name in ("lsa", "ea-dvfs"):
        ideal = [_run_custom(name, s, utilization, capacity)
                 for s in range(n_sets)]
        non = [
            _run_custom(name, s, utilization, capacity, storage_factory=lossy)
            for s in range(n_sets)
        ]
        rates[name] = (_pooled(ideal), _pooled(non))
    return AblationResult(
        name="ablation-nonideal-storage",
        header=(
            f"miss rates at U={utilization}, capacity={capacity:g} "
            f"({n_sets} task sets):"
        ),
        rows=tuple(
            f"{name:8} ideal {pair[0]:.4f} -> lossy {pair[1]:.4f}"
            for name, pair in rates.items()
        ),
        metrics={"rates": rates, "n_sets": n_sets},
    )


def run_dvfs_granularity_ablation(
    utilization: float = 0.4,
    capacity: float = 50.0,
    n_sets: int | None = None,
) -> AblationResult:
    """EA-DVFS on dense / paper / degenerate DVFS ladders."""
    n_sets = replications(4) if n_sets is None else n_sets
    scales: dict[str, Callable[[], FrequencyScale]] = {
        "continuous-32": lambda: continuous_approximation(
            n_levels=32, max_power=3.2
        ),
        "xscale-5": xscale_pxa,
        "single-speed": lambda: FrequencyScale.single_speed(power=3.2),
    }
    setup = PaperSetup()
    rates = {}
    for label, factory in scales.items():
        results = []
        for seed in range(n_sets):
            scale = factory()
            source = setup.source(seed)
            simulator = HarvestingRtSimulator(
                taskset=setup.taskset(seed, utilization),
                source=source,
                storage=IdealStorage(capacity=capacity),
                scheduler=make_scheduler("ea-dvfs", scale),
                predictor=setup.predictor(source),
                config=SimulationConfig(horizon=setup.horizon),
            )
            results.append(simulator.run())
        rates[label] = _pooled(results)
    return AblationResult(
        name="ablation-dvfs-granularity",
        header=(
            f"EA-DVFS miss rate by ladder (U={utilization}, "
            f"capacity={capacity:g}, {n_sets} task sets):"
        ),
        rows=tuple(f"{label:>14}: {rate:.4f}"
                   for label, rate in rates.items()),
        metrics={"rates": rates, "n_sets": n_sets},
    )


def run_weather_ablation(
    utilization: float = 0.4,
    capacities: Sequence[float] = (50.0, 150.0, 400.0),
    horizon: float = 10_000.0,
    n_sets: int | None = None,
) -> AblationResult:
    """LSA vs EA-DVFS under the regime-switching weather source."""
    n_sets = replications(4) if n_sets is None else n_sets
    scale = xscale_pxa()
    rates: dict[float, dict[str, float]] = {}
    for capacity in capacities:
        cell = {}
        for name in ("lsa", "ea-dvfs"):
            results = []
            for seed in range(n_sets):
                source = MarkovWeatherSource(seed=seed)
                taskset = generate_paper_taskset(
                    n_tasks=5, utilization=utilization, seed=seed,
                    mean_harvest_power=source.mean_power(),
                    max_power=scale.max_power,
                )
                simulator = HarvestingRtSimulator(
                    taskset=taskset,
                    source=MarkovWeatherSource(seed=seed),
                    storage=IdealStorage(capacity=capacity),
                    scheduler=make_scheduler(name, scale),
                    predictor=ProfilePredictor(period=400.0, n_bins=32),
                    config=SimulationConfig(horizon=horizon),
                )
                results.append(simulator.run())
            cell[name] = _pooled(results)
        rates[capacity] = cell
    rows = ["capacity   lsa      ea-dvfs"]
    rows += [
        f"{capacity:8.0f} {cell['lsa']:8.4f} {cell['ea-dvfs']:8.4f}"
        for capacity, cell in rates.items()
    ]
    return AblationResult(
        name="ablation-weather",
        header=(
            f"Markov-weather source, U={utilization}, {n_sets} task sets:"
        ),
        rows=tuple(rows),
        metrics={"rates": rates, "n_sets": n_sets},
    )


def _with_bcet(taskset: TaskSet, bcet_ratio: float) -> TaskSet:
    return TaskSet(
        [
            PeriodicTask(
                period=t.period, wcet=t.wcet,
                relative_deadline=t.relative_deadline,
                name=t.name, bcet_ratio=bcet_ratio,
            )
            for t in taskset.periodic_tasks()
        ]
    )


def _run_aet(
    scheduler_name: str,
    seed: int,
    utilization: float,
    capacity: float,
    bcet_ratio: float,
) -> SimulationResult:
    setup = PaperSetup()
    scale = setup.scale()
    source = setup.source(seed)
    taskset = setup.taskset(seed, utilization)
    if bcet_ratio < 1.0:
        taskset = _with_bcet(taskset, bcet_ratio)
    simulator = HarvestingRtSimulator(
        taskset=taskset,
        source=source,
        storage=IdealStorage(capacity=capacity),
        scheduler=make_scheduler(scheduler_name, scale),
        predictor=setup.predictor(source),
        config=SimulationConfig(
            horizon=setup.horizon,
            aet_seed=seed if bcet_ratio < 1.0 else None,
        ),
    )
    return simulator.run()


def run_overflow_aware_ablation(
    utilization: float = 0.4,
    capacity: float = 25.0,
    n_sets: int | None = None,
) -> AblationResult:
    """Plain EA-DVFS vs the overflow-aware extension at a tiny storage."""
    n_sets = replications(5) if n_sets is None else n_sets
    metrics = {}
    for name in ("ea-dvfs", "ea-dvfs-oa"):
        results = [_run_aet(name, s, utilization, capacity, 1.0)
                   for s in range(n_sets)]
        metrics[name] = (
            _pooled(results),
            sum(r.overflow_energy for r in results) / n_sets,
        )
    return AblationResult(
        name="ablation-overflow-aware",
        header=(
            f"U={utilization}, capacity={capacity:g}, {n_sets} task sets:"
        ),
        rows=tuple(
            f"{name:10} miss {pair[0]:.4f}  overflow {pair[1]:9.1f}"
            for name, pair in metrics.items()
        ),
        metrics={"rates": metrics, "n_sets": n_sets},
    )


def run_aet_ablation(
    utilization: float = 0.4,
    capacity: float = 25.0,
    bcet_ratio: float = 0.5,
    n_sets: int | None = None,
) -> AblationResult:
    """WCET-exact vs variable actual execution times."""
    n_sets = replications(4) if n_sets is None else n_sets
    rates: dict[str, tuple[float, float]] = {}
    for name in ("lsa", "ea-dvfs"):
        wcet_rate = _pooled(
            [_run_aet(name, s, utilization, capacity, 1.0)
             for s in range(n_sets)]
        )
        aet_rate = _pooled(
            [_run_aet(name, s, utilization, capacity, bcet_ratio)
             for s in range(n_sets)]
        )
        rates[name] = (wcet_rate, aet_rate)
    return AblationResult(
        name="ablation-aet",
        header=(
            f"miss rates at U={utilization}, capacity={capacity:g} "
            f"({n_sets} task sets):"
        ),
        rows=tuple(
            f"{name:8} wcet {pair[0]:.4f} -> "
            f"aet({bcet_ratio:g}..1) {pair[1]:.4f}"
            for name, pair in rates.items()
        ),
        metrics={"rates": rates, "n_sets": n_sets},
    )
