"""Figures 8 & 9 — deadline miss rate vs. normalized storage capacity.

Protocol (section 5.3): sweep the storage capacity, measure the deadline
miss rate of LSA and EA-DVFS over many task sets, and plot against the
*normalized* capacity (capacity divided by the largest swept value).

The interesting (energy-starved) absolute capacity range depends on the
utilization — misses vanish once the storage can bridge the harvest
troughs of the eq. (13) envelope — so each figure sweeps fractions of a
utilization-specific reference capacity ``c_ref`` chosen to span the full
miss-rate decline (see EXPERIMENTS.md).  Figure 8 (U=0.4): EA-DVFS cuts
the miss rate by at least ~50%.  Figure 9 (U=0.8): the curves close up.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.analysis.sweep import CapacitySweepPoint, run_capacity_sweep
from repro.experiments.common import PaperSetup, replications, workers
from repro.plotting import ascii_plot

__all__ = [
    "DEFAULT_FRACTIONS",
    "MissRateResult",
    "run_fig8",
    "run_fig9",
    "run_miss_rate_sweep",
]

#: Normalized-capacity grid of the reproduced figures.
DEFAULT_FRACTIONS: tuple[float, ...] = (
    0.05, 0.1, 0.15, 0.2, 0.3, 0.4, 0.5, 0.7, 1.0,
)

#: Reference capacities spanning the miss-rate decline (measured for the
#: default setup; see EXPERIMENTS.md).
REFERENCE_CAPACITY = {0.4: 250.0, 0.8: 1000.0}

_SCHEDULERS = ("lsa", "ea-dvfs")


@dataclass(frozen=True)
class MissRateResult:
    """Miss-rate-vs-capacity curves for LSA and EA-DVFS."""

    figure: str
    utilization: float
    reference_capacity: float
    points: tuple[CapacitySweepPoint, ...]
    n_sets: int

    @property
    def fractions(self) -> np.ndarray:
        return np.asarray(
            [p.capacity / self.reference_capacity for p in self.points]
        )

    def curve(self, scheduler_name: str) -> np.ndarray:
        return np.asarray([p.miss_rate(scheduler_name) for p in self.points])

    @property
    def mean_reduction(self) -> float:
        """Average relative miss-rate reduction of EA-DVFS vs LSA.

        Computed over capacities where LSA actually misses; the paper
        reports "over 50% on average" at U=0.4.
        """
        lsa = self.curve("lsa")
        ea = self.curve("ea-dvfs")
        mask = lsa > 0
        if not mask.any():
            return 0.0
        return float(np.mean(1.0 - ea[mask] / lsa[mask]))

    def format_text(self) -> str:
        chart = ascii_plot(
            {name: (self.fractions, self.curve(name)) for name in _SCHEDULERS},
            title=(
                f"{self.figure}: deadline miss rate (U={self.utilization}, "
                f"{self.n_sets} task sets/point)"
            ),
            xlabel=f"normalized storage capacity (c_ref={self.reference_capacity:g})",
            ylabel="miss",
            y_min=0.0,
        )
        rows = ["frac  capacity   lsa      ea-dvfs  reduction"]
        for point in self.points:
            lsa = point.miss_rate("lsa")
            ea = point.miss_rate("ea-dvfs")
            red = (1.0 - ea / lsa) if lsa > 0 else float("nan")
            rows.append(
                f"{point.capacity / self.reference_capacity:4.2f}  "
                f"{point.capacity:8.1f}  {lsa:7.4f}  {ea:7.4f}  {red:8.2%}"
            )
        rows.append(f"mean miss-rate reduction (where LSA misses): "
                    f"{self.mean_reduction:.1%}")
        return chart + "\n" + "\n".join(rows)


def run_miss_rate_sweep(
    utilization: float,
    figure: str,
    setup: PaperSetup | None = None,
    reference_capacity: float | None = None,
    fractions: Sequence[float] = DEFAULT_FRACTIONS,
    n_sets: int | None = None,
    engine: str | None = None,
) -> MissRateResult:
    """Sweep capacity fractions and measure pooled miss rates.

    ``engine`` selects the execution engine (``"scalar"`` or
    ``"batch"``); ``None`` reads ``$REPRO_ENGINE`` and defaults to
    ``"batch"`` — the vectorized engine covers every predictor kind, so
    the flagship figures take the fast path end-to-end (set
    ``REPRO_ENGINE=scalar`` to force the scalar event loop).  The batch
    engine runs through the journaled sweep path (with or without a
    journal).
    """
    setup = setup or PaperSetup()
    if reference_capacity is None:
        try:
            reference_capacity = REFERENCE_CAPACITY[utilization]
        except KeyError:
            raise ValueError(
                f"no reference capacity calibrated for U={utilization!r}; "
                "pass reference_capacity explicitly"
            ) from None
    if n_sets is None:
        n_sets = replications(6)
    capacities = [f * reference_capacity for f in fractions]
    n_workers = workers()
    import os

    from repro.runtime.sweep import JOURNAL_ENV, engine_from_env

    if engine is None:
        engine = engine_from_env(default="batch")
    if engine == "batch" or os.environ.get(JOURNAL_ENV):
        # Resumable path: every cell checkpoints through $REPRO_JOURNAL,
        # so a killed sweep reruns only what is missing.  The batch
        # engine also routes through here — the supervisor is where the
        # engine switch lives.
        from repro.runtime.sweep import journaled_capacity_sweep

        points = journaled_capacity_sweep(
            scheduler_names=_SCHEDULERS,
            utilization=utilization,
            capacities=capacities,
            seeds=range(n_sets),
            setup=setup,
            max_workers=n_workers,
            engine=engine,
        )
    elif n_workers > 1:
        from repro.analysis.parallel import parallel_capacity_sweep

        points = parallel_capacity_sweep(
            scheduler_names=_SCHEDULERS,
            utilization=utilization,
            capacities=capacities,
            seeds=range(n_sets),
            setup=setup,
            max_workers=n_workers,
        )
    else:
        points = run_capacity_sweep(
            setup.factory(utilization),
            scheduler_names=_SCHEDULERS,
            capacities=capacities,
            seeds=range(n_sets),
        )
    return MissRateResult(
        figure=figure,
        utilization=utilization,
        reference_capacity=reference_capacity,
        points=tuple(points),
        n_sets=n_sets,
    )


def run_fig8(**kwargs) -> MissRateResult:
    """Figure 8: U = 0.4 — EA-DVFS at least halves the miss rate."""
    return run_miss_rate_sweep(utilization=0.4, figure="Figure 8", **kwargs)


def run_fig9(**kwargs) -> MissRateResult:
    """Figure 9: U = 0.8 — EA-DVFS performs close to LSA."""
    return run_miss_rate_sweep(utilization=0.8, figure="Figure 9", **kwargs)
