"""Shared configuration of the paper's evaluation (section 5.1).

Every reproduced figure/table builds on the same setup:

* energy source: the stochastic solar model of eq. (13) (amplitude 10,
  ``|N|`` rectification — see DESIGN.md for the rectification discussion);
* processor: the five-speed XScale scale (``P_max = 3.2`` power units);
* predictor: cyclic-profile EWMA ("trace the PS(t) profile");
* workload: ``n_tasks`` periodic tasks from the paper's generator, scaled
  to the experiment's utilization;
* horizon 10,000 time units, storage initially full.

The paper repeats every configuration over 5,000 task sets.  That is
hours of CPU in pure Python, so the harness runs a reduced replication
count by default and multiplies it by the ``REPRO_SCALE`` environment
variable (e.g. ``REPRO_SCALE=10`` for a tighter estimate,
``REPRO_SCALE=125`` for paper scale on fig. 8/9).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

from repro.cpu.dvfs import FrequencyScale
from repro.cpu.presets import xscale_pxa
from repro.energy.predictor import (
    HarvestPredictor,
    LastValuePredictor,
    MeanPowerPredictor,
    OraclePredictor,
    ProfilePredictor,
)
from repro.energy.source import EnergySource, SolarStochasticSource
from repro.energy.storage import IdealStorage
from repro.sched.registry import make_scheduler
from repro.sim.simulator import (
    HarvestingRtSimulator,
    SimulationConfig,
    SimulationResult,
)
from repro.sim.tracing import TraceKind
from repro.tasks.task import TaskSet
from repro.tasks.workload import generate_paper_taskset

__all__ = ["PaperSetup", "replications", "scale_factor", "workers"]

#: Offset separating source seeds from task-set seeds so the two streams
#: never collide.
_SOURCE_SEED_OFFSET = 1_000_003


def scale_factor() -> float:
    """The ``REPRO_SCALE`` multiplier (default 1.0)."""
    raw = os.environ.get("REPRO_SCALE", "1")
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(f"REPRO_SCALE must be numeric, got {raw!r}") from None
    if value <= 0:
        raise ValueError(f"REPRO_SCALE must be > 0, got {value!r}")
    return value


def replications(base: int) -> int:
    """Scaled replication count (at least 1)."""
    return max(1, round(base * scale_factor()))


def workers() -> int:
    """Worker-process count for the heavy sweeps (``REPRO_WORKERS``).

    Defaults to 1 (serial).  Values above 1 route the figure/table
    sweeps through :mod:`repro.analysis.parallel`; useful together with
    large ``REPRO_SCALE`` settings.
    """
    raw = os.environ.get("REPRO_WORKERS", "1")
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(f"REPRO_WORKERS must be an integer, got {raw!r}") from None
    if value < 1:
        raise ValueError(f"REPRO_WORKERS must be >= 1, got {value!r}")
    return value


@dataclass(frozen=True)
class PaperSetup:
    """Factory bundle for the section 5.1 configuration."""

    n_tasks: int = 5
    horizon: float = 10_000.0
    amplitude: float = 10.0
    rectify: str = "abs"
    power_unit: float = 1e-3
    predictor_kind: str = "profile"  # "profile" | "oracle" | "mean" | "last-value"

    def scale(self) -> FrequencyScale:
        """The XScale-like DVFS ladder (section 5.1)."""
        return xscale_pxa(power_unit=self.power_unit)

    def source(self, seed: int) -> SolarStochasticSource:
        """A fresh eq. (13) source realization."""
        return SolarStochasticSource(
            seed=seed + _SOURCE_SEED_OFFSET,
            amplitude=self.amplitude,
            rectify=self.rectify,
        )

    def mean_harvest_power(self) -> float:
        """Closed-form ``P̄s`` of the configured source."""
        return self.source(0).mean_power()

    def predictor(self, source: EnergySource) -> HarvestPredictor:
        """The configured harvest predictor."""
        if self.predictor_kind == "profile":
            return ProfilePredictor()
        if self.predictor_kind == "oracle":
            return OraclePredictor(source)
        if self.predictor_kind == "mean":
            return MeanPowerPredictor()
        if self.predictor_kind == "last-value":
            return LastValuePredictor()
        raise ValueError(f"unknown predictor kind {self.predictor_kind!r}")

    def taskset(self, seed: int, utilization: float) -> TaskSet:
        """A paper-generator task set at the requested utilization."""
        return generate_paper_taskset(
            n_tasks=self.n_tasks,
            utilization=utilization,
            mean_harvest_power=self.mean_harvest_power(),
            max_power=self.scale().max_power,
            seed=seed,
        )

    def run(
        self,
        scheduler_name: str,
        utilization: float,
        capacity: float,
        seed: int,
        energy_sample_interval: Optional[float] = None,
        initial_storage: Optional[float] = None,
    ) -> SimulationResult:
        """One complete simulation of this setup.

        The seed controls both the task set and the source realization, so
        different schedulers at the same seed face the *same* world
        (paired comparison).
        """
        scale = self.scale()
        source = self.source(seed)
        trace_kinds: tuple[str, ...] = ()
        if energy_sample_interval is not None:
            trace_kinds = (TraceKind.ENERGY,)
        simulator = HarvestingRtSimulator(
            taskset=self.taskset(seed, utilization),
            source=source,
            storage=IdealStorage(capacity=capacity, initial=initial_storage),
            scheduler=make_scheduler(scheduler_name, scale),
            predictor=self.predictor(source),
            config=SimulationConfig(
                horizon=self.horizon,
                trace_kinds=trace_kinds,
                energy_sample_interval=energy_sample_interval,
            ),
        )
        return simulator.run()

    def factory(self, utilization: float):
        """A :data:`~repro.analysis.sweep.RunFactory` for this setup."""

        def _factory(
            scheduler_name: str, capacity: float, seed: int
        ) -> SimulationResult:
            return self.run(scheduler_name, utilization, capacity, seed)

        return _factory
