"""Table 1 — ratio of minimum zero-miss storage capacities, LSA / EA-DVFS.

Protocol (section 5.4): for each utilization in {0.2, 0.4, 0.6, 0.8},
find the smallest storage capacity at which each scheduler sustains a
zero deadline miss rate (pooled over the replicated task sets), and
report ``Cmin,LSA / Cmin,EA-DVFS``.  The paper measures 2.5 / 1.33 /
1.05 / 1.01 — a large advantage at low utilization decaying to parity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.capacity import CapacitySearchResult, find_min_capacity
from repro.analysis.sweep import run_replications
from repro.experiments.common import PaperSetup, replications, workers

__all__ = ["Table1Row", "Table1Result", "run_table1", "PAPER_TABLE1_RATIOS"]

#: The paper's measured ratios, for side-by-side reporting.
PAPER_TABLE1_RATIOS: dict[float, float] = {0.2: 2.5, 0.4: 1.33, 0.6: 1.05, 0.8: 1.01}

_SCHEDULERS = ("lsa", "ea-dvfs")


@dataclass(frozen=True)
class Table1Row:
    """Minimum capacities and their ratio at one utilization."""

    utilization: float
    cmin_lsa: float
    cmin_ea_dvfs: float
    lsa_search: CapacitySearchResult
    ea_search: CapacitySearchResult

    @property
    def ratio(self) -> float:
        return self.cmin_lsa / self.cmin_ea_dvfs


@dataclass(frozen=True)
class Table1Result:
    """The full reproduced Table 1."""

    rows: tuple[Table1Row, ...]
    n_sets: int

    def ratio(self, utilization: float) -> float:
        for row in self.rows:
            if row.utilization == utilization:
                return row.ratio
        raise KeyError(f"no row for U={utilization!r}")

    def format_text(self) -> str:
        header = (
            "Table 1: minimum zero-miss storage capacity ratio "
            f"Cmin,LSA / Cmin,EA-DVFS ({self.n_sets} task sets)\n"
            "   U    Cmin,LSA  Cmin,EA   ratio   paper"
        )
        lines = [header]
        for row in self.rows:
            paper = PAPER_TABLE1_RATIOS.get(row.utilization)
            paper_text = f"{paper:5.2f}" if paper is not None else "    -"
            lines.append(
                f"{row.utilization:5.2f} {row.cmin_lsa:9.1f} "
                f"{row.cmin_ea_dvfs:8.1f} {row.ratio:7.2f}   {paper_text}"
            )
        return "\n".join(lines)


def run_table1(
    setup: PaperSetup | None = None,
    utilizations: Sequence[float] = (0.2, 0.4, 0.6, 0.8),
    n_sets: int | None = None,
    initial_capacity: float = 20.0,
    rel_tol: float = 0.02,
) -> Table1Result:
    """Search the minimum zero-miss capacity per scheduler and utilization.

    When ``$REPRO_JOURNAL`` names a journal file, every capacity probe
    checkpoints through it: the search sequence is deterministic, so a
    killed run replayed against the same journal answers the already
    probed capacities from disk and resumes the bisection where it died.
    """
    from repro.runtime.sweep import journal_from_env, journaled_miss_rates

    setup = setup or PaperSetup()
    if n_sets is None:
        n_sets = replications(4)
    seeds = range(n_sets)
    n_workers = workers()
    journal = journal_from_env()
    rows = []
    try:
        for utilization in utilizations:
            factory = setup.factory(utilization)
            searches = {}
            for name in _SCHEDULERS:

                def miss_fn(capacity: float, _name: str = name) -> float:
                    if journal is not None:
                        return journaled_miss_rates(
                            scheduler_names=(_name,),
                            utilization=utilization,
                            capacity=capacity,
                            seeds=seeds,
                            setup=setup,
                            journal=journal,
                            max_workers=n_workers,
                        )[_name]
                    if n_workers > 1:
                        from repro.analysis.parallel import parallel_miss_rates

                        return parallel_miss_rates(
                            scheduler_names=(_name,),
                            utilization=utilization,
                            capacity=capacity,
                            seeds=seeds,
                            setup=setup,
                            max_workers=n_workers,
                        )[_name]
                    run = run_replications(factory, _name, capacity, seeds)
                    return run.metrics.pooled_miss_rate

                searches[name] = find_min_capacity(
                    miss_fn,
                    initial=initial_capacity,
                    rel_tol=rel_tol,
                )
            rows.append(
                Table1Row(
                    utilization=utilization,
                    cmin_lsa=searches["lsa"].min_capacity,
                    cmin_ea_dvfs=searches["ea-dvfs"].min_capacity,
                    lsa_search=searches["lsa"],
                    ea_search=searches["ea-dvfs"],
                )
            )
    finally:
        if journal is not None:
            journal.close()
    return Table1Result(rows=tuple(rows), n_sets=n_sets)
