"""Runtime processor state: current level, busy-time and switch accounting."""

from __future__ import annotations

import math
from typing import Optional

from repro.cpu.dvfs import FrequencyLevel, FrequencyScale, SwitchingOverhead
from repro.timeutils import EPSILON

__all__ = ["Processor"]


class Processor:
    """A DVFS processor's runtime state.

    Tracks the currently selected level (``None`` while idle), accumulates
    per-level busy time, idle time and level-switch counts, and applies the
    optional :class:`SwitchingOverhead`.  The simulator owns *when* time
    passes; the processor merely records it.
    """

    def __init__(
        self,
        scale: FrequencyScale,
        idle_power: float = 0.0,
        overhead: Optional[SwitchingOverhead] = None,
    ) -> None:
        if idle_power < 0 or not math.isfinite(idle_power):
            raise ValueError(f"idle_power must be finite and >= 0, got {idle_power!r}")
        self._scale = scale
        self._idle_power = float(idle_power)
        self._overhead = overhead or SwitchingOverhead()
        self._current: Optional[FrequencyLevel] = None
        self._busy_time = [0.0] * len(scale)
        self._idle_time = 0.0
        self._switches = 0
        self._switch_time_spent = 0.0
        self._switch_energy_spent = 0.0

    # -- configuration ------------------------------------------------------

    @property
    def scale(self) -> FrequencyScale:
        return self._scale

    @property
    def idle_power(self) -> float:
        """Power drawn while no job runs (0 in the paper's model)."""
        return self._idle_power

    @property
    def overhead(self) -> SwitchingOverhead:
        return self._overhead

    # -- state ---------------------------------------------------------------

    @property
    def current_level(self) -> Optional[FrequencyLevel]:
        """The active level, or ``None`` when idle."""
        return self._current

    @property
    def is_idle(self) -> bool:
        return self._current is None

    @property
    def draw_power(self) -> float:
        """Instantaneous power drawn from the storage."""
        if self._current is None:
            return self._idle_power
        return self._current.power

    @property
    def speed(self) -> float:
        """Current execution speed (0 when idle)."""
        return 0.0 if self._current is None else self._current.speed

    # -- transitions -----------------------------------------------------------

    def set_level(self, level: Optional[FrequencyLevel]) -> SwitchingOverhead:
        """Select a level (or ``None`` to idle).

        Returns the switching overhead the caller must account for; the
        overhead is zero when the level does not actually change and for
        transitions to/from idle (clock gating is assumed free — only
        voltage/frequency transitions pay).
        """
        if level is not None and level not in self._scale.levels:
            raise ValueError(f"{level!r} is not a level of {self._scale!r}")
        previous = self._current
        self._current = level
        if (
            previous is None
            or level is None
            or abs(previous.speed - level.speed) <= EPSILON
        ):
            return SwitchingOverhead()
        self._switches += 1
        self._switch_time_spent += self._overhead.time
        self._switch_energy_spent += self._overhead.energy
        return self._overhead

    def account_time(self, duration: float) -> None:
        """Record ``duration`` elapsing in the current state."""
        if duration < 0 or math.isnan(duration):
            raise ValueError(f"duration must be >= 0, got {duration!r}")
        if self._current is None:
            self._idle_time += duration
        else:
            self._busy_time[self._scale.index_of(self._current)] += duration

    # -- statistics --------------------------------------------------------------

    @property
    def switch_count(self) -> int:
        return self._switches

    @property
    def switch_time_spent(self) -> float:
        return self._switch_time_spent

    @property
    def switch_energy_spent(self) -> float:
        return self._switch_energy_spent

    @property
    def idle_time(self) -> float:
        return self._idle_time

    @property
    def total_busy_time(self) -> float:
        return sum(self._busy_time)

    def busy_time_at(self, index: int) -> float:
        """Accumulated busy time at level ``index`` of the scale."""
        return self._busy_time[index]

    def busy_time_profile(self) -> dict[float, float]:
        """Mapping ``speed -> busy time`` over all levels."""
        return {
            self._scale[i].speed: self._busy_time[i]
            for i in range(len(self._scale))
        }

    def __repr__(self) -> str:
        state = "idle" if self._current is None else f"S={self._current.speed:.3g}"
        return f"Processor({state}, switches={self._switches})"
