"""Discrete DVFS frequency/power model.

Section 3.3 of the paper: the processor has ``N`` discrete clock speeds
``f_1 < ... < f_N`` with powers ``P_1 < ... < P_N``; the *relative speed*
``S_n = f_n / f_N`` scales execution time (a job with worst-case execution
time ``w`` at ``f_N`` takes ``w / S_n`` at ``f_n``).

:class:`FrequencyScale` is an immutable, validated collection of
:class:`FrequencyLevel` entries ordered by speed; it owns the two queries
the EA-DVFS algorithm needs:

* :meth:`FrequencyScale.min_feasible_level` — the lowest level satisfying
  inequality (6), ``w / S_n <= window``;
* :meth:`FrequencyScale.max_level` — full speed.

Energy efficiency sanity: the paper's XScale ladder has strictly increasing
energy-per-work-unit (``P_n / S_n``), which is what makes slowing down
worthwhile; :meth:`FrequencyScale.validate_efficiency` checks this and the
constructor warns when a level is strictly dominated.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

from repro.timeutils import EPSILON

__all__ = ["FrequencyLevel", "FrequencyScale", "SwitchingOverhead"]


@dataclass(frozen=True, order=True)
class FrequencyLevel:
    """One DVFS operating point.

    Attributes
    ----------
    speed:
        Relative speed ``S_n = f_n / f_max`` in ``(0, 1]``.
    power:
        Active power drawn at this level (abstract units — must be
        consistent with the energy source and storage).
    frequency_hz:
        Optional physical frequency, informational only.
    """

    speed: float
    power: float
    frequency_hz: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 < self.speed <= 1.0 + EPSILON:
            raise ValueError(f"speed must lie in (0, 1], got {self.speed!r}")
        if self.power <= 0 or not math.isfinite(self.power):
            raise ValueError(f"power must be finite and > 0, got {self.power!r}")
        if self.frequency_hz < 0:
            raise ValueError(
                f"frequency_hz must be >= 0, got {self.frequency_hz!r}"
            )

    @property
    def energy_per_work(self) -> float:
        """Energy to complete one unit of (full-speed) work: ``P_n / S_n``."""
        return self.power / self.speed

    def execution_time(self, work: float) -> float:
        """Wall-clock time to execute ``work`` full-speed work units."""
        if work < 0:
            raise ValueError(f"work must be >= 0, got {work!r}")
        return work / self.speed


@dataclass(frozen=True)
class SwitchingOverhead:
    """Cost of changing DVFS level (zero in the paper — ablation knob).

    ``time`` is dead time during which no work progresses; ``energy`` is an
    additional draw charged to the storage at the moment of the switch.
    """

    time: float = 0.0
    energy: float = 0.0

    def __post_init__(self) -> None:
        if self.time < 0 or not math.isfinite(self.time):
            raise ValueError(f"switch time must be finite and >= 0, got {self.time!r}")
        if self.energy < 0 or not math.isfinite(self.energy):
            raise ValueError(
                f"switch energy must be finite and >= 0, got {self.energy!r}"
            )

    @property
    def is_free(self) -> bool:
        # Exact zeros: configured overhead constants, not derived floats.
        return self.time == 0.0 and self.energy == 0.0  # repro-lint: disable=RPR101 -- config constants


class FrequencyScale:
    """Immutable ordered set of DVFS levels.

    Levels are sorted by increasing speed; the fastest level must have
    ``speed == 1.0`` (speeds are relative to ``f_max`` by definition).
    Powers must be strictly increasing with speed.
    """

    def __init__(self, levels: Sequence[FrequencyLevel]) -> None:
        if not levels:
            raise ValueError("a frequency scale needs at least one level")
        ordered = sorted(levels, key=lambda lv: lv.speed)
        for a, b in zip(ordered, ordered[1:]):
            if b.speed - a.speed <= EPSILON:
                raise ValueError(
                    f"duplicate or non-increasing speeds: {a.speed!r}, {b.speed!r}"
                )
            if b.power <= a.power:  # repro-lint: disable=RPR102 -- construction-time validation of config
                raise ValueError(
                    "power must increase with speed: "
                    f"P({a.speed!r})={a.power!r} vs P({b.speed!r})={b.power!r}"
                )
        if abs(ordered[-1].speed - 1.0) > EPSILON:
            raise ValueError(
                f"fastest level must have speed 1.0, got {ordered[-1].speed!r}"
            )
        self._levels: tuple[FrequencyLevel, ...] = tuple(ordered)
        dominated = self.dominated_levels()
        if dominated:
            warnings.warn(
                "frequency scale has energy-dominated levels (higher "
                f"energy-per-work than a faster level): indices {dominated}",
                stacklevel=2,
            )

    # -- construction helpers ----------------------------------------------

    @classmethod
    def from_frequencies(
        cls,
        frequencies_hz: Sequence[float],
        powers: Sequence[float],
    ) -> "FrequencyScale":
        """Build a scale from physical frequencies and matching powers.

        Speeds are normalized by the largest frequency.
        """
        if len(frequencies_hz) != len(powers):
            raise ValueError(
                f"{len(frequencies_hz)} frequencies but {len(powers)} powers"
            )
        if not frequencies_hz:
            raise ValueError("at least one frequency is required")
        f_max = max(frequencies_hz)
        if f_max <= 0:
            raise ValueError("frequencies must be positive")
        return cls(
            [
                FrequencyLevel(speed=f / f_max, power=p, frequency_hz=f)
                for f, p in zip(frequencies_hz, powers)
            ]
        )

    @classmethod
    def single_speed(cls, power: float) -> "FrequencyScale":
        """A processor without DVFS (one full-speed level)."""
        return cls([FrequencyLevel(speed=1.0, power=power)])

    # -- basic access --------------------------------------------------------

    def __len__(self) -> int:
        return len(self._levels)

    def __iter__(self) -> Iterator[FrequencyLevel]:
        return iter(self._levels)

    def __getitem__(self, index: int) -> FrequencyLevel:
        return self._levels[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FrequencyScale):
            return NotImplemented
        return self._levels == other._levels

    def __hash__(self) -> int:
        return hash(self._levels)

    @property
    def levels(self) -> tuple[FrequencyLevel, ...]:
        return self._levels

    @property
    def max_level(self) -> FrequencyLevel:
        """The full-speed level (``S = 1``, ``P = P_max``)."""
        return self._levels[-1]

    @property
    def min_level(self) -> FrequencyLevel:
        return self._levels[0]

    @property
    def max_power(self) -> float:
        """``P_max``, the power at full speed."""
        return self._levels[-1].power

    def index_of(self, level: FrequencyLevel) -> int:
        """Position of ``level`` within the scale."""
        return self._levels.index(level)

    # -- scheduling queries ---------------------------------------------------

    def min_feasible_level(
        self, work: float, window: float
    ) -> Optional[FrequencyLevel]:
        """Lowest level finishing ``work`` within ``window`` (ineq. (6)).

        ``work`` is expressed in full-speed execution time.  Returns
        ``None`` when even full speed does not fit (``work > window``) —
        the deadline cannot be respected regardless of energy.
        """
        if work < 0:
            raise ValueError(f"work must be >= 0, got {work!r}")
        if window < 0:
            return None
        for level in self._levels:
            if level.execution_time(work) <= window + EPSILON:
                return level
        return None

    def level_at_least(self, speed: float) -> FrequencyLevel:
        """Slowest level with ``S_n >= speed`` (clamped to full speed)."""
        for level in self._levels:
            if level.speed >= speed - EPSILON:
                return level
        return self.max_level

    def dominated_levels(self) -> tuple[int, ...]:
        """Indices of levels whose energy-per-work exceeds a faster level's.

        Running at a dominated level is never energy-optimal: the faster
        level finishes the same work with less energy.  The paper's XScale
        ladder has none.
        """
        dominated: list[int] = []
        best_above = math.inf
        for i in range(len(self._levels) - 1, -1, -1):
            epw = self._levels[i].energy_per_work
            if epw >= best_above - EPSILON:
                dominated.append(i)
            best_above = min(best_above, epw)
        return tuple(sorted(dominated))

    def validate_efficiency(self) -> None:
        """Raise :class:`ValueError` if any level is energy-dominated."""
        dominated = self.dominated_levels()
        if dominated:
            raise ValueError(
                f"levels {dominated} are energy-dominated; slowing down to "
                "them can never save energy"
            )

    def __repr__(self) -> str:
        inner = ", ".join(
            f"(S={lv.speed:.3g}, P={lv.power:.4g})" for lv in self._levels
        )
        return f"FrequencyScale([{inner}])"
