"""Ready-made processor frequency scales.

The evaluation (section 5.1) uses an Intel XScale-like processor with five
operating points; the motivational examples of sections 2 and 4.3 each use
a small ad-hoc two-level machine.  All of them are captured here so tests,
examples and benchmarks share one definition.
"""

from __future__ import annotations

from repro.cpu.dvfs import FrequencyLevel, FrequencyScale

__all__ = [
    "xscale_pxa",
    "motivational_example_scale",
    "stretch_example_scale",
    "two_speed_scale",
    "continuous_approximation",
]

#: XScale operating points from section 5.1: MHz and mW.
XSCALE_FREQUENCIES_MHZ: tuple[float, ...] = (150.0, 400.0, 600.0, 800.0, 1000.0)
XSCALE_POWERS_MW: tuple[float, ...] = (80.0, 400.0, 1000.0, 2000.0, 3200.0)


def xscale_pxa(power_unit: float = 1e-3) -> FrequencyScale:
    """The paper's five-speed XScale-like processor.

    ``power_unit`` converts the datasheet milliwatts into the abstract
    power unit of the simulation; the default ``1e-3`` yields watts
    (``P_max = 3.2``), which is commensurate with the eq. (13) source whose
    mean output is ~4 — exactly the regime the paper's experiments live in.
    """
    if power_unit <= 0:
        raise ValueError(f"power_unit must be > 0, got {power_unit!r}")
    return FrequencyScale.from_frequencies(
        [f * 1e6 for f in XSCALE_FREQUENCIES_MHZ],
        [p * power_unit for p in XSCALE_POWERS_MW],
    )


def motivational_example_scale() -> FrequencyScale:
    """Two-speed machine of the section 2 example.

    "the processor operates in two speeds ... the former twice as fast as
    the latter. The power at high speed is 3 times as much as that in low
    speed" with maximum power 8: levels (S=0.5, P=8/3) and (S=1, P=8).
    """
    return FrequencyScale(
        [
            FrequencyLevel(speed=0.5, power=8.0 / 3.0),
            FrequencyLevel(speed=1.0, power=8.0),
        ]
    )


def stretch_example_scale() -> FrequencyScale:
    """Two-speed machine of the section 4.3 over-stretching example.

    ``f_n = 0.25 f_max`` with ``P_n = 1`` and ``P_max = 8``.
    """
    return FrequencyScale(
        [
            FrequencyLevel(speed=0.25, power=1.0),
            FrequencyLevel(speed=1.0, power=8.0),
        ]
    )


def two_speed_scale(
    low_speed: float,
    low_power: float,
    max_power: float,
) -> FrequencyScale:
    """Arbitrary two-speed machine (full speed plus one slow point)."""
    return FrequencyScale(
        [
            FrequencyLevel(speed=low_speed, power=low_power),
            FrequencyLevel(speed=1.0, power=max_power),
        ]
    )


def continuous_approximation(
    n_levels: int = 32,
    max_power: float = 3.2,
    exponent: float = 3.0,
    min_speed: float = 0.05,
) -> FrequencyScale:
    """Dense ladder approximating an ideal continuous DVFS processor.

    Power follows the classic cubic-in-frequency model ``P(S) = P_max *
    S**exponent`` (dynamic power ~ ``f * V^2`` with ``V ~ f``).  Used by the
    ablation benches to bound how much the 5-point XScale ladder loses
    against an (almost) continuous one.
    """
    if n_levels < 2:
        raise ValueError(f"n_levels must be >= 2, got {n_levels!r}")
    if not 0.0 < min_speed < 1.0:
        raise ValueError(f"min_speed must lie in (0, 1), got {min_speed!r}")
    if exponent < 1.0:
        raise ValueError(
            f"exponent must be >= 1 for a physically sane model, got {exponent!r}"
        )
    step = (1.0 - min_speed) / (n_levels - 1)
    levels = []
    for i in range(n_levels):
        speed = min_speed + i * step
        levels.append(
            FrequencyLevel(speed=speed, power=max_power * speed**exponent)
        )
    return FrequencyScale(levels)
