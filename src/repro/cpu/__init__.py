"""Processor model: discrete DVFS levels, presets, and runtime state."""

from repro.cpu.dvfs import FrequencyLevel, FrequencyScale, SwitchingOverhead
from repro.cpu.presets import (
    continuous_approximation,
    motivational_example_scale,
    stretch_example_scale,
    two_speed_scale,
    xscale_pxa,
)
from repro.cpu.processor import Processor

__all__ = [
    "FrequencyLevel",
    "FrequencyScale",
    "Processor",
    "SwitchingOverhead",
    "continuous_approximation",
    "motivational_example_scale",
    "stretch_example_scale",
    "two_speed_scale",
    "xscale_pxa",
]
