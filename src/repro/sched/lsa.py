"""Lazy Scheduling Algorithm (LSA) — the paper's baseline [7, 10].

Moser et al.'s rule as summarized in the paper's introduction: the
processor always runs at full power, and the earliest-deadline ready job
is started only once "the system is able to keep on running at the maximum
power until the deadline of the task".  That start time is exactly the
EA-DVFS ``s2`` (eq. (8)): ``s* = max(t, D - (EC(t) + ÊS(t, D)) / P_max)``.

Starting any earlier could deplete the storage before ``D`` and strand the
job; starting at ``s*`` leaves no artificial slack — hence "lazy".
"""

from __future__ import annotations

import math
from typing import ClassVar

from repro.sched.base import Decision, EnergyOutlook, Scheduler
from repro.tasks.queue import EdfReadyQueue
from repro.timeutils import EPSILON

__all__ = ["LazyScheduler"]


class LazyScheduler(Scheduler):
    """LSA: full speed always, start as late as the energy budget forces."""

    name: ClassVar[str] = "lsa"

    def decide(
        self,
        now: float,
        ready: EdfReadyQueue,
        outlook: EnergyOutlook,
    ) -> Decision:
        job = ready.peek()
        if job is None:
            return Decision.idle()

        max_level = self._scale.max_level
        available = outlook.available_until(now, job.absolute_deadline)
        if math.isinf(available):
            return Decision.run(job, max_level)

        sr_max = available / max_level.power
        start = max(now, job.absolute_deadline - sr_max)
        if start > now + EPSILON:
            return Decision.idle(reconsider_at=start)
        return Decision.run(job, max_level)
