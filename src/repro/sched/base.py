"""Scheduler framework: the decision protocol between scheduler and simulator.

The simulator invokes :meth:`Scheduler.decide` at every scheduling point
(job release, completion, deadline miss, stall resume, or a scheduler's own
``reconsider_at`` wake-up).  The scheduler inspects the EDF ready queue and
an :class:`EnergyOutlook` (stored energy plus predicted harvest) and
returns a :class:`Decision`:

* ``job=None`` — stay idle; wake the scheduler again at ``reconsider_at``
  (the energy-aware policies use this to implement "do not start before
  ``s1``/``s*``");
* ``job`` at ``level`` — dispatch; if ``switch_to_max_at`` is set, the
  simulator raises the job to full speed at that instant *without*
  re-invoking the scheduler (EA-DVFS's "run at ``f_n`` in ``[s1, s2)``,
  full speed afterwards" — the plan is an atomic commitment, exactly as in
  the paper's Figure 4).
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from typing import ClassVar, Optional

from repro.cpu.dvfs import FrequencyLevel, FrequencyScale
from repro.energy.predictor import HarvestPredictor
from repro.energy.storage import EnergyStorage
from repro.tasks.job import Job
from repro.tasks.queue import EdfReadyQueue
from repro.timeutils import INFINITY, time_le

__all__ = ["EnergyOutlook", "Decision", "Scheduler"]


class EnergyOutlook:
    """The scheduler's view of the energy subsystem.

    Combines the exactly-known stored energy ``EC(t)`` with the
    *predicted* future harvest ``ÊS(t0, t1)``; the paper's "available
    energy" ``EC(a_m) + ES(a_m, a_m + d_m)`` is :meth:`available_until`.
    """

    def __init__(self, storage: EnergyStorage, predictor: HarvestPredictor) -> None:
        self._storage = storage
        self._predictor = predictor

    @property
    def stored(self) -> float:
        """Current stored energy ``EC(t)`` (may be ``inf``)."""
        return self._storage.stored

    @property
    def capacity(self) -> float:
        return self._storage.capacity

    @property
    def storage_is_full(self) -> bool:
        return self._storage.is_full

    def predict_energy(self, t0: float, t1: float) -> float:
        """Predicted harvest ``ÊS(t0, t1)``."""
        return self._predictor.predict_energy(t0, t1)

    def available_until(self, now: float, until: float) -> float:
        """``EC(now) + ÊS(now, until)`` — the paper's available energy.

        ``until`` may precede ``now`` (a job past its deadline under the
        CONTINUE miss policy); the future-harvest term is then zero.
        """
        if math.isinf(self._storage.stored):
            return INFINITY
        if time_le(until, now):
            return self._storage.stored
        return self._storage.stored + self._predictor.predict_energy(now, until)


@dataclass(frozen=True)
class Decision:
    """What the processor should do starting now.

    Attributes
    ----------
    job:
        Job to dispatch, or ``None`` to idle.
    level:
        DVFS level to run at (required when ``job`` is set).
    switch_to_max_at:
        Optional instant at which the simulator autonomously raises the
        job to full speed (EA-DVFS's ``s2``).  Must be strictly in the
        future and the chosen ``level`` must be below full speed.
    reconsider_at:
        Wake the scheduler at this time even if nothing else happens.
        ``inf`` means "only on external events".
    """

    job: Optional[Job] = None
    level: Optional[FrequencyLevel] = None
    switch_to_max_at: Optional[float] = None
    reconsider_at: float = INFINITY

    def __post_init__(self) -> None:
        if self.job is None:
            if self.level is not None or self.switch_to_max_at is not None:
                raise ValueError("an idle decision cannot carry a level or switch")
        else:
            if self.level is None:
                raise ValueError("a dispatch decision requires a level")
        if math.isnan(self.reconsider_at):
            raise ValueError("reconsider_at is NaN")

    @property
    def is_idle(self) -> bool:
        return self.job is None

    @classmethod
    def idle(cls, reconsider_at: float = INFINITY) -> "Decision":
        """Idle decision, optionally with a wake-up time."""
        return cls(job=None, level=None, reconsider_at=reconsider_at)

    @classmethod
    def run(
        cls,
        job: Job,
        level: FrequencyLevel,
        switch_to_max_at: Optional[float] = None,
        reconsider_at: float = INFINITY,
    ) -> "Decision":
        """Dispatch decision."""
        return cls(
            job=job,
            level=level,
            switch_to_max_at=switch_to_max_at,
            reconsider_at=reconsider_at,
        )


class Scheduler(abc.ABC):
    """Base class for all scheduling policies.

    Concrete schedulers are stateless with respect to the simulation (all
    runtime state lives in the simulator, queue and jobs), which keeps one
    scheduler instance reusable across runs of the same configuration.
    """

    #: Short identifier used by the registry, CLI and result tables.
    name: ClassVar[str] = "base"

    def __init__(self, scale: FrequencyScale) -> None:
        self._scale = scale

    @property
    def scale(self) -> FrequencyScale:
        return self._scale

    @abc.abstractmethod
    def decide(
        self,
        now: float,
        ready: EdfReadyQueue,
        outlook: EnergyOutlook,
    ) -> Decision:
        """Pick the action starting at ``now``.

        ``ready`` holds only unfinished, released jobs; the EDF-earliest
        job is ``ready.peek()``.  Implementations must return an idle
        decision when the queue is empty.
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}(scale={self._scale!r})"
