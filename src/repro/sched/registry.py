"""Name-based scheduler registry used by the CLI and the sweep harness."""

from __future__ import annotations

from typing import Callable

from repro.cpu.dvfs import FrequencyScale
from repro.sched.base import Scheduler

__all__ = [
    "available_schedulers",
    "make_scheduler",
    "register_scheduler",
    "unregister_scheduler",
]

_FACTORIES: dict[str, Callable[[FrequencyScale], Scheduler]] = {}
_BUILTINS_LOADED = False


def register_scheduler(
    name: str, factory: Callable[[FrequencyScale], Scheduler]
) -> None:
    """Register a scheduler factory under a unique name.

    Raises :class:`ValueError` for an empty/non-string name, or a name
    already taken (by a built-in or a previous registration); the error
    lists the currently registered names.
    """
    _ensure_builtins()
    if not isinstance(name, str) or not name:
        raise ValueError(
            f"scheduler name must be a non-empty string, got {name!r}"
        )
    if name in _FACTORIES:
        raise ValueError(
            f"scheduler {name!r} is already registered; "
            f"registered names: {', '.join(sorted(_FACTORIES))}"
        )
    _FACTORIES[name] = factory


def unregister_scheduler(name: str) -> None:
    """Remove a previously registered scheduler (built-ins included).

    Raises :class:`ValueError` for an unknown name, listing the
    registered ones.
    """
    _ensure_builtins()
    if name not in _FACTORIES:
        raise ValueError(
            f"unknown scheduler {name!r}; "
            f"available: {', '.join(sorted(_FACTORIES))}"
        )
    del _FACTORIES[name]


def available_schedulers() -> tuple[str, ...]:
    """Registered scheduler names, sorted."""
    _ensure_builtins()
    return tuple(sorted(_FACTORIES))


def make_scheduler(name: str, scale: FrequencyScale) -> Scheduler:
    """Instantiate a registered scheduler for the given frequency scale.

    Raises :class:`ValueError` for an unknown name, listing the
    registered ones.
    """
    _ensure_builtins()
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown scheduler {name!r}; available: {available_schedulers()}"
        ) from None
    return factory(scale)


def _ensure_builtins() -> None:
    """Lazily register the built-in policies (avoids import cycles).

    Guarded by a dedicated flag rather than ``_FACTORIES`` being
    non-empty: a custom registration arriving before the first lookup
    must not suppress the built-ins.
    """
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    _BUILTINS_LOADED = True
    from repro.core.ea_dvfs import EaDvfsScheduler
    from repro.sched.edf import GreedyEdfScheduler, StretchEdfScheduler
    from repro.sched.extensions import OverflowAwareEaDvfsScheduler
    from repro.sched.lsa import LazyScheduler

    for cls in (
        EaDvfsScheduler,
        LazyScheduler,
        GreedyEdfScheduler,
        StretchEdfScheduler,
        OverflowAwareEaDvfsScheduler,
    ):
        _FACTORIES.setdefault(cls.name, cls)
    # EA-DVFS with the stretch phase removed — the paper's LSA degeneracy,
    # kept addressable so the verify tier can run it against LazyScheduler.
    _FACTORIES.setdefault(
        "ea-dvfs-noslowdown",
        lambda scale: EaDvfsScheduler(scale, slowdown=False),
    )
