"""Name-based scheduler registry used by the CLI and the sweep harness."""

from __future__ import annotations

from typing import Callable

from repro.cpu.dvfs import FrequencyScale
from repro.sched.base import Scheduler

__all__ = ["available_schedulers", "make_scheduler", "register_scheduler"]

_FACTORIES: dict[str, Callable[[FrequencyScale], Scheduler]] = {}


def register_scheduler(
    name: str, factory: Callable[[FrequencyScale], Scheduler]
) -> None:
    """Register a scheduler factory under a unique name."""
    if name in _FACTORIES:
        raise ValueError(f"scheduler {name!r} is already registered")
    _FACTORIES[name] = factory


def available_schedulers() -> tuple[str, ...]:
    """Registered scheduler names, sorted."""
    _ensure_builtins()
    return tuple(sorted(_FACTORIES))


def make_scheduler(name: str, scale: FrequencyScale) -> Scheduler:
    """Instantiate a registered scheduler for the given frequency scale."""
    _ensure_builtins()
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown scheduler {name!r}; available: {available_schedulers()}"
        ) from None
    return factory(scale)


def _ensure_builtins() -> None:
    """Lazily register the built-in policies (avoids import cycles)."""
    if _FACTORIES:
        return
    from repro.core.ea_dvfs import EaDvfsScheduler
    from repro.sched.edf import GreedyEdfScheduler, StretchEdfScheduler
    from repro.sched.extensions import OverflowAwareEaDvfsScheduler
    from repro.sched.lsa import LazyScheduler

    _FACTORIES.update(
        {
            EaDvfsScheduler.name: EaDvfsScheduler,
            LazyScheduler.name: LazyScheduler,
            GreedyEdfScheduler.name: GreedyEdfScheduler,
            StretchEdfScheduler.name: StretchEdfScheduler,
            OverflowAwareEaDvfsScheduler.name: OverflowAwareEaDvfsScheduler,
        }
    )
