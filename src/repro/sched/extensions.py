"""Scheduler extensions beyond the paper (clearly marked as such).

:class:`OverflowAwareEaDvfsScheduler` generalizes the paper's section 4.1
observation.  EA-DVFS already runs at full speed when the storage *is*
full (saved energy could not be banked anyway); the extension also
reacts when the storage is merely *about to clip*: if executing the
selected job at the planned slow level would let the predicted harvest
overflow the remaining headroom before the job's deadline, the level is
raised until the predicted overflow vanishes.  Energy consumed during an
overflow episode is free — it would have been discarded — so trading it
for earlier completion can only help future jobs.

This is an original extension in the spirit of later harvesting-aware
DVFS work; it is *not* part of the DATE 2008 algorithm and is therefore
registered under a separate name (``ea-dvfs-oa``) and evaluated as an
ablation (``benchmarks/bench_ablation_overflow_aware.py``).
"""

from __future__ import annotations

import math
from typing import ClassVar

from repro.core.ea_dvfs import EaDvfsScheduler
from repro.cpu.dvfs import FrequencyLevel
from repro.sched.base import Decision, EnergyOutlook
from repro.tasks.queue import EdfReadyQueue
from repro.timeutils import time_le

__all__ = ["OverflowAwareEaDvfsScheduler"]


class OverflowAwareEaDvfsScheduler(EaDvfsScheduler):
    """EA-DVFS plus predicted-overflow avoidance (extension)."""

    name: ClassVar[str] = "ea-dvfs-oa"

    def _predicted_overflow(
        self,
        now: float,
        deadline: float,
        remaining_work: float,
        level: FrequencyLevel,
        outlook: EnergyOutlook,
    ) -> float:
        """Crude single-segment overflow estimate for one level choice.

        Energy that the window's predicted harvest delivers beyond both
        the job's consumption at ``level`` and the storage headroom has
        nowhere to go and would be discarded.
        """
        headroom = outlook.capacity - outlook.stored
        if math.isinf(headroom):
            return 0.0
        window = max(0.0, deadline - now)
        inflow = outlook.predict_energy(now, deadline)
        execution = min(window, level.execution_time(remaining_work))
        consumption = level.power * execution
        return max(0.0, inflow - consumption - headroom)

    def decide(
        self,
        now: float,
        ready: EdfReadyQueue,
        outlook: EnergyOutlook,
    ) -> Decision:
        decision = super().decide(now, ready, outlook)
        if decision.is_idle or decision.job is None:
            return decision
        level = decision.level
        assert level is not None
        if level.speed >= self._scale.max_level.speed:
            return decision

        job = decision.job
        # Sub-EPSILON predicted overflow is float noise, not bankable
        # energy: treat it as zero via the shared tolerance.
        if time_le(
            self._predicted_overflow(
                now, job.absolute_deadline, job.remaining_work, level, outlook
            ),
            0.0,
        ):
            return decision

        # Raise the level until the predicted overflow vanishes (or full
        # speed is reached).  The paper's anti-starvation switch point
        # becomes moot at the raised level only when it reaches full
        # speed; otherwise it is kept.
        chosen = level
        for candidate in self._scale:
            if candidate.speed <= level.speed:
                continue
            chosen = candidate
            if time_le(
                self._predicted_overflow(
                    now, job.absolute_deadline, job.remaining_work, candidate,
                    outlook,
                ),
                0.0,
            ):
                break
        if chosen.speed >= self._scale.max_level.speed:
            return Decision.run(job, self._scale.max_level)
        return Decision.run(
            job, chosen, switch_to_max_at=decision.switch_to_max_at
        )
