"""Schedulers: shared decision API plus the baseline policies.

The paper's contribution (EA-DVFS) lives in :mod:`repro.core`; this
package hosts the framework and the baselines it is compared against:

* :class:`~repro.sched.edf.GreedyEdfScheduler` — energy-oblivious EDF at
  full speed (what a system without energy management does);
* :class:`~repro.sched.edf.StretchEdfScheduler` — DVFS-only EDF that
  stretches every job to its deadline window, ignoring energy state;
* :class:`~repro.sched.lsa.LazyScheduler` — the Lazy Scheduling Algorithm
  (LSA) of Moser et al. [7, 10], the paper's primary baseline.
"""

from repro.sched.base import Decision, EnergyOutlook, Scheduler
from repro.sched.edf import GreedyEdfScheduler, StretchEdfScheduler
from repro.sched.lsa import LazyScheduler
from repro.sched.registry import available_schedulers, make_scheduler

# NOTE: repro.sched.extensions builds on repro.core (which itself imports
# repro.sched.base), so it is exported from the top-level ``repro``
# package rather than here to keep the import graph acyclic.

__all__ = [
    "Decision",
    "EnergyOutlook",
    "GreedyEdfScheduler",
    "LazyScheduler",
    "Scheduler",
    "StretchEdfScheduler",
    "available_schedulers",
    "make_scheduler",
]
