"""Vectorized decision kernels mirroring the scalar scheduling policies.

These kernels reproduce, lane by lane, the float arithmetic of the
scalar deciders — :class:`repro.core.ea_dvfs.EaDvfsScheduler` (both
slowdown variants, eqs. (5)–(9) via :func:`repro.core.slowdown.
compute_plan`), :class:`repro.sched.lsa.LazyScheduler` and
:class:`repro.sched.edf.GreedyEdfScheduler` — over a batch of scenarios
at once.  A "lane" is one scenario that needs a decision now; inputs
are one numpy float64 entry per lane.

Bit-exactness doctrine: every operation below performs the *same* IEEE
float64 arithmetic in the *same* order as its scalar counterpart, just
element-wise.  numpy's float64 scalar kernels match CPython's float
semantics operation-for-operation, so a lane pushed through these
kernels yields bit-identical ``s1``/``s2``/``sr`` instants and identical
branch outcomes to the scalar scheduler.  This is what the differential
equivalence suite (``tests/sim/test_batch_equivalence.py``) and the
Hypothesis property tests (``tests/sched/test_vectorized_kernels.py``)
enforce.  See ``docs/batch-simulation.md``.
"""

# repro: float-doctrine -- the RPR4xx bit-exactness rules apply here.

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import numpy.typing as npt

from repro.timeutils import EPSILON

__all__ = [
    "SCHEDULER_KINDS",
    "SCHED_EDF",
    "SCHED_LSA",
    "SCHED_EA_DVFS",
    "SCHED_EA_DVFS_NOSLOWDOWN",
    "BatchDecision",
    "BatchPlan",
    "batch_compute_plan",
    "batch_decide",
    "batch_min_feasible_level",
    "batch_time_le",
]

FloatArray = npt.NDArray[np.float64]
IntArray = npt.NDArray[np.int64]
BoolArray = npt.NDArray[np.bool_]

#: Scheduler kind codes carried per lane, so heterogeneous batches (one
#: scenario on EDF, the next on EA-DVFS) decide in a single call.
SCHED_EDF = 0
SCHED_LSA = 1
SCHED_EA_DVFS = 2
SCHED_EA_DVFS_NOSLOWDOWN = 3

#: Registry names (see ``repro.sched.registry``) the kernels cover.
SCHEDULER_KINDS: dict[str, int] = {
    "edf": SCHED_EDF,
    "lsa": SCHED_LSA,
    "ea-dvfs": SCHED_EA_DVFS,
    "ea-dvfs-noslowdown": SCHED_EA_DVFS_NOSLOWDOWN,
}


def batch_time_le(a: FloatArray, b: FloatArray, eps: float = EPSILON) -> BoolArray:
    """Element-wise :func:`repro.timeutils.time_le` (``time_cmp <= 0``).

    Mirrors the scalar short-circuit exactly: equal bits compare equal,
    a difference within ``eps`` counts as equal, otherwise the sign of
    the single-rounded difference decides.
    """
    diff = a - b
    equal = (a == b) | (np.abs(diff) <= eps)
    result: BoolArray = equal | (diff < 0.0)
    return result


def batch_min_feasible_level(
    work: FloatArray, window: FloatArray, speeds: FloatArray
) -> IntArray:
    """Element-wise :meth:`repro.cpu.dvfs.FrequencyScale.min_feasible_level`.

    ``speeds`` is ``(lanes, levels)`` ascending per lane.  Returns the
    index of the slowest level finishing ``work`` within ``window``
    (scalar rule: first level with ``work / speed <= window + EPSILON``),
    or ``-1`` where no level is feasible or the window is negative.
    ``work`` must be non-negative (the scalar method raises; callers
    guarantee it here).
    """
    n_lanes, n_levels = speeds.shape
    index = np.full(n_lanes, -1, dtype=np.int64)
    window_ok = window >= 0.0  # repro-lint: disable=RPR101 -- exact sign gate, mirrors the scalar raise
    # Descending iteration: the last (slowest) feasible write wins, which
    # matches the scalar ascending first-feasible scan.
    for level in range(n_levels - 1, -1, -1):
        feasible = window_ok & (work / speeds[:, level] <= window + EPSILON)
        index[feasible] = level
    return index


@dataclass(frozen=True)
class BatchPlan:
    """Array-of-lanes twin of :class:`repro.core.slowdown.SlowdownPlan`.

    ``switch_at`` uses NaN where the scalar plan carries ``None`` (no
    planned speed-up).  ``level`` already resolves the scalar fallback:
    it holds the max-level index for unreachable deadlines and for the
    degenerate single-phase case.
    """

    level: IntArray
    s1: FloatArray
    s2: FloatArray
    start_at: FloatArray
    switch_at: FloatArray
    sufficient_energy: BoolArray
    deadline_reachable: BoolArray


def batch_compute_plan(
    now: FloatArray,
    deadline: FloatArray,
    remaining_work: FloatArray,
    available_energy: FloatArray,
    speeds: FloatArray,
    powers: FloatArray,
) -> BatchPlan:
    """Element-wise :func:`repro.core.slowdown.compute_plan` (eqs. (5)–(9)).

    ``speeds``/``powers`` are ``(lanes, levels)`` ascending; the last
    column is the max level.  Negative available energy clamps to zero,
    infinite energy degenerates to the immediate-max-speed plan, exactly
    as in the scalar function.
    """
    n_lanes, n_levels = speeds.shape
    max_index = n_levels - 1
    energy = np.where(available_energy < 0.0, 0.0, available_energy)  # repro-lint: disable=RPR101 -- exact clamp mirror
    window = deadline - now
    feasible = batch_min_feasible_level(remaining_work, window, speeds)
    reachable = feasible >= 0
    level_index = np.where(reachable, feasible, max_index)
    lanes = np.arange(n_lanes)
    power_n = powers[lanes, level_index]
    power_max = powers[:, max_index]
    # inf / P == inf, so the scalar's isinf() short-circuit computes the
    # same values this division does.
    sr_n = energy / power_n
    sr_max = energy / power_max
    s1 = np.where(reachable, np.maximum(now, deadline - sr_n), now)
    s2 = np.where(reachable, np.maximum(now, deadline - sr_max), now)
    single_phase = reachable & (s2 - s1 <= EPSILON)
    plan_level = np.where(single_phase | ~reachable, max_index, level_index)
    start_at = np.where(reachable, np.where(single_phase, s2, s1), now)
    switch_at = np.where(reachable & ~single_phase, s2, np.nan)
    sufficient = single_phase & (s2 - now <= EPSILON)
    return BatchPlan(
        level=plan_level.astype(np.int64),
        s1=s1,
        s2=s2,
        start_at=start_at,
        switch_at=switch_at,
        sufficient_energy=sufficient,
        deadline_reachable=reachable,
    )


@dataclass(frozen=True)
class BatchDecision:
    """Array-of-lanes twin of :class:`repro.sched.base.Decision`.

    ``run`` False means idle; ``level`` is ``-1`` for idle lanes;
    ``switch_at`` NaN means no planned switch; ``reconsider_at`` is
    ``+inf`` where the scalar decision carries no revisit instant.
    """

    run: BoolArray
    level: IntArray
    switch_at: FloatArray
    reconsider_at: FloatArray


def batch_decide(
    kind: IntArray,
    now: FloatArray,
    deadline: FloatArray,
    remaining_work: FloatArray,
    available_energy: FloatArray,
    storage_full: BoolArray,
    speeds: FloatArray,
    powers: FloatArray,
) -> BatchDecision:
    """Decide for every lane; each lane must hold an EDF-earliest job.

    ``kind`` selects the policy per lane (``SCHEDULER_KINDS`` codes);
    ``available_energy`` is the lane's ``EnergyOutlook.available_until``
    value at the job's deadline (ignored by EDF lanes); ``storage_full``
    feeds EA-DVFS's full-storage fast path.  Branch precedence follows
    each scalar ``decide`` verbatim.
    """
    n_lanes = now.shape[0]
    max_index = speeds.shape[1] - 1
    run = np.ones(n_lanes, dtype=np.bool_)
    level = np.full(n_lanes, max_index, dtype=np.int64)
    switch_at = np.full(n_lanes, np.nan)
    reconsider_at = np.full(n_lanes, np.inf)
    power_max = powers[:, max_index]
    plan = batch_compute_plan(
        now, deadline, remaining_work, available_energy, speeds, powers
    )

    def _idle(mask: BoolArray, at: FloatArray) -> None:
        run[mask] = False
        level[mask] = -1
        reconsider_at[mask] = at[mask]

    # -- lsa: wait until the max-speed start instant --------------------
    lsa = kind == SCHED_LSA
    if lsa.any():
        # isinf(available) yields start == now here, matching the scalar
        # early return to run-at-max.
        start = np.maximum(now, deadline - available_energy / power_max)
        _idle(lsa & (start > now + EPSILON), start)

    # -- ea-dvfs (with the slowdown phase) ------------------------------
    ea = kind == SCHED_EA_DVFS
    if ea.any():
        # Full storage fast path and unreachable deadlines both run at
        # max speed — the preset default.
        pending = ea & ~storage_full & plan.deadline_reachable
        idle = pending & (plan.start_at > now + EPSILON)
        _idle(idle, plan.start_at)
        pending &= ~idle
        single = pending & np.isnan(plan.switch_at)
        level[single] = plan.level[single]
        pending &= ~single
        # Degenerate switch instant (reached within the scalar 1e-6
        # guard): run at max immediately — the preset default.
        pending &= ~batch_time_le(plan.switch_at, now, eps=1e-6)
        level[pending] = plan.level[pending]
        switch_at[pending] = plan.switch_at[pending]

    # -- ea-dvfs without slowdown: delayed max-speed start --------------
    noslow = kind == SCHED_EA_DVFS_NOSLOWDOWN
    if noslow.any():
        fallback = np.where(
            np.isinf(available_energy),
            now,
            np.maximum(now, deadline - available_energy / power_max),
        )
        start = np.where(plan.deadline_reachable, plan.s2, fallback)
        _idle(noslow & (start > now + EPSILON), start)

    # -- edf: always run the earliest deadline at max speed -------------
    # (the preset default: run=True, level=max)

    return BatchDecision(
        run=run, level=level, switch_at=switch_at, reconsider_at=reconsider_at
    )
