"""Energy-oblivious EDF baselines.

:class:`GreedyEdfScheduler` is "classic" EDF at full speed: dispatch the
earliest-deadline job immediately, ignore the energy state entirely.  With
infinite energy it is optimal (Liu & Layland); with a finite harvested
budget it squanders slack — exactly the failure mode the paper's
motivational example illustrates — and stalls whenever the storage runs
dry.

:class:`StretchEdfScheduler` is the opposite corner: a DVFS-only policy
that always stretches the current job to its deadline window (the classic
"static slowdown" idea of Yao et al. [12] applied greedily), again without
consulting the energy state.  It saves energy when utilization is low but,
unlike EA-DVFS, it also slows down when the storage is full (wasting
harvest, section 4.1) and has no anti-starvation switch-up.  Both serve as
ablation endpoints around EA-DVFS.
"""

from __future__ import annotations

from typing import ClassVar

from repro.sched.base import Decision, EnergyOutlook, Scheduler
from repro.tasks.queue import EdfReadyQueue

__all__ = ["GreedyEdfScheduler", "StretchEdfScheduler"]


class GreedyEdfScheduler(Scheduler):
    """Plain preemptive EDF at full speed, blind to energy."""

    name: ClassVar[str] = "edf"

    def decide(
        self,
        now: float,
        ready: EdfReadyQueue,
        outlook: EnergyOutlook,
    ) -> Decision:
        job = ready.peek()
        if job is None:
            return Decision.idle()
        return Decision.run(job, self._scale.max_level)


class StretchEdfScheduler(Scheduler):
    """Preemptive EDF always running at the minimum feasible level.

    The chosen level satisfies inequality (6) for the *remaining* work of
    the earliest-deadline job; when nothing fits, full speed is a best
    effort.  Energy state is never consulted.
    """

    name: ClassVar[str] = "stretch-edf"

    def decide(
        self,
        now: float,
        ready: EdfReadyQueue,
        outlook: EnergyOutlook,
    ) -> Decision:
        job = ready.peek()
        if job is None:
            return Decision.idle()
        window = job.absolute_deadline - now
        level = self._scale.min_feasible_level(job.remaining_work, window)
        if level is None:
            level = self._scale.max_level
        return Decision.run(job, level)
