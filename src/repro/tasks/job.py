"""Job instances — the runtime unit the scheduler actually dispatches.

A :class:`Job` is one release of a task: an absolute release time, an
absolute deadline, a work budget expressed in *full-speed execution time*,
and mutable progress state.  Executing for wall-clock time ``dt`` at
relative speed ``S`` consumes ``S * dt`` of the budget (section 3.3: a job
with WCET ``w`` at ``f_max`` needs ``w / S_n`` at ``f_n``).
"""

from __future__ import annotations

import enum
import math
from typing import TYPE_CHECKING, Optional

from repro.timeutils import EPSILON, snap_nonnegative

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.tasks.task import Task

__all__ = ["Job", "JobState"]


class JobState(enum.Enum):
    """Lifecycle of a job."""

    PENDING = "pending"  # created, not yet released
    READY = "ready"  # released, waiting or executing
    COMPLETED = "completed"
    MISSED = "missed"  # reached its deadline unfinished


class Job:
    """One released instance of a task."""

    __slots__ = (
        "_task",
        "_release",
        "_deadline",
        "_wcet",
        "_actual",
        "_index",
        "_remaining",
        "_remaining_actual",
        "_state",
        "_completion_time",
        "_first_start_time",
        "_energy_consumed",
    )

    def __init__(
        self,
        task: "Task",
        release: float,
        absolute_deadline: float,
        wcet: float,
        index: int = 0,
        actual_work: Optional[float] = None,
        allow_overrun: bool = False,
    ) -> None:
        if release < 0 or not math.isfinite(release):
            raise ValueError(f"release must be finite and >= 0, got {release!r}")
        if absolute_deadline <= release:
            raise ValueError(
                f"deadline {absolute_deadline!r} must follow release {release!r}"
            )
        if wcet <= 0 or not math.isfinite(wcet):
            raise ValueError(f"wcet must be finite and > 0, got {wcet!r}")
        if actual_work is None:
            actual_work = wcet
        if allow_overrun:
            # Fault injection (repro.faults.OverrunWorkload): the true
            # demand may exceed the WCET the schedulers plan against.
            if actual_work <= 0 or not math.isfinite(actual_work):
                raise ValueError(
                    f"actual work must be finite and > 0, got {actual_work!r}"
                )
            actual = float(actual_work)
        else:
            if not 0.0 < actual_work <= wcet + EPSILON:
                raise ValueError(
                    f"actual work must lie in (0, wcet={wcet!r}], got {actual_work!r}"
                )
            actual = min(float(actual_work), float(wcet))
        self._task = task
        self._release = float(release)
        self._deadline = float(absolute_deadline)
        self._wcet = float(wcet)
        self._actual = actual
        self._index = int(index)
        self._remaining = float(wcet)
        self._remaining_actual = self._actual
        self._state = JobState.PENDING
        self._completion_time: Optional[float] = None
        self._first_start_time: Optional[float] = None
        self._energy_consumed = 0.0

    # -- identity -----------------------------------------------------------

    @property
    def task(self) -> "Task":
        return self._task

    @property
    def name(self) -> str:
        """Stable, human-readable job identifier, e.g. ``task3#12``."""
        return f"{self._task.name}#{self._index}"

    @property
    def index(self) -> int:
        """Per-task release counter (0 for the first job)."""
        return self._index

    # -- static parameters -----------------------------------------------------

    @property
    def release(self) -> float:
        """Absolute release (arrival) time ``a_m``."""
        return self._release

    @property
    def absolute_deadline(self) -> float:
        """Absolute deadline ``a_m + d_m``."""
        return self._deadline

    @property
    def relative_deadline(self) -> float:
        return self._deadline - self._release

    @property
    def wcet(self) -> float:
        """Worst-case work budget in full-speed execution time."""
        return self._wcet

    @property
    def actual_work(self) -> float:
        """True execution demand (<= wcet by default).

        Online schedulers must not read this — they plan against
        :attr:`remaining_work` (the worst-case bound, which is all a real
        system knows before the job finishes).  The simulator uses it to
        complete jobs that run shorter than their WCET.  Jobs built with
        ``allow_overrun=True`` (fault injection) may exceed the WCET.
        """
        return self._actual

    @property
    def overruns_wcet(self) -> bool:
        """Whether the true demand exceeds the declared WCET (fault injection)."""
        return self._actual > self._wcet + EPSILON

    # -- runtime state -----------------------------------------------------------

    @property
    def state(self) -> JobState:
        return self._state

    @property
    def remaining_work(self) -> float:
        """Unfinished *worst-case* work — what online schedulers plan by."""
        return self._remaining

    @property
    def remaining_actual_work(self) -> float:
        """Unfinished true work (simulator-internal; hits 0 at completion)."""
        return self._remaining_actual

    @property
    def progress(self) -> float:
        """Fraction of the true demand completed, in ``[0, 1]``."""
        return 1.0 - self._remaining_actual / self._actual

    @property
    def is_finished(self) -> bool:
        """Whether the job left the system (completed or missed)."""
        return self._state in (JobState.COMPLETED, JobState.MISSED)

    @property
    def completion_time(self) -> Optional[float]:
        return self._completion_time

    @property
    def first_start_time(self) -> Optional[float]:
        """When the job first occupied the processor (``None`` if never)."""
        return self._first_start_time

    @property
    def energy_consumed(self) -> float:
        """Energy the processor spent on this job so far."""
        return self._energy_consumed

    @property
    def response_time(self) -> Optional[float]:
        """Completion minus release, for completed jobs."""
        if self._completion_time is None:
            return None
        return self._completion_time - self._release

    @property
    def lateness(self) -> Optional[float]:
        """Completion minus deadline (negative = early), for completed jobs."""
        if self._completion_time is None:
            return None
        return self._completion_time - self._deadline

    # -- transitions -----------------------------------------------------------------

    def mark_released(self) -> None:
        """PENDING -> READY (the simulator calls this at the release event)."""
        if self._state is not JobState.PENDING:
            raise RuntimeError(f"{self.name}: mark_released in state {self._state}")
        self._state = JobState.READY

    def note_started(self, time: float) -> None:
        """Record the first dispatch instant (idempotent)."""
        if self._first_start_time is None:
            self._first_start_time = time

    def execute(self, speed: float, duration: float, power: float) -> None:
        """Consume budget: ``speed * duration`` work, ``power * duration`` energy."""
        if self._state is not JobState.READY:
            raise RuntimeError(f"{self.name}: execute in state {self._state}")
        if speed < 0 or duration < 0:
            # speed == 0 is legal: dead time (e.g. a DVFS switch) draws
            # power without making progress.
            raise ValueError(
                f"speed must be >= 0 and duration >= 0, got {speed!r}, {duration!r}"
            )
        work = speed * duration
        if work > self._remaining_actual + EPSILON:
            raise RuntimeError(
                f"{self.name}: executed {work!r} work but only "
                f"{self._remaining_actual!r} remained"
            )
        self._remaining_actual = snap_nonnegative(
            self._remaining_actual - work, eps=1e-6
        )
        self._remaining = max(0.0, self._remaining - work)
        self._energy_consumed += power * duration

    def time_to_finish(self, speed: float) -> float:
        """Wall-clock time to drain the remaining *true* work at ``speed``.

        Used by the simulator to place completion events; schedulers plan
        with :attr:`remaining_work` instead.
        """
        if speed <= 0:
            raise ValueError(f"speed must be > 0, got {speed!r}")
        return self._remaining_actual / speed

    def mark_completed(self, time: float) -> None:
        """READY -> COMPLETED once the budget is exhausted."""
        if self._state is not JobState.READY:
            raise RuntimeError(f"{self.name}: mark_completed in state {self._state}")
        # The simulator treats a residual below 1e-7 work units as done
        # (float noise from segment splitting); anything larger is a bug.
        if self._remaining_actual > 1e-6:
            raise RuntimeError(
                f"{self.name}: mark_completed with "
                f"{self._remaining_actual!r} work left"
            )
        self._remaining_actual = 0.0
        self._state = JobState.COMPLETED
        self._completion_time = time

    def mark_missed(self) -> None:
        """READY/PENDING -> MISSED (deadline passed with work outstanding)."""
        if self.is_finished:
            raise RuntimeError(f"{self.name}: mark_missed in state {self._state}")
        self._state = JobState.MISSED

    def __repr__(self) -> str:
        return (
            f"Job({self.name}, release={self._release!r}, "
            f"deadline={self._deadline!r}, wcet={self._wcet!r}, "
            f"remaining={self._remaining_actual!r}, state={self._state.value})"
        )
