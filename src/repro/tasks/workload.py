"""Workload generation.

:func:`generate_paper_taskset` reproduces the generator of section 5.1:

* the number of periodic tasks is a parameter (the paper shows 5);
* each period is drawn uniformly from ``{10, 20, ..., 100}``;
* the relative deadline equals the period;
* the worst-case *energy* of a task is ``e ~ U[0, mean_harvest * p]`` and
  its WCET is ``w = e / P_max`` (so at full speed the task consumes exactly
  ``e``);
* finally every WCET is scaled by a common ratio so the set hits a target
  utilization ``U = sum(w_m / p_m)`` exactly (eq. (14)).

:func:`generate_uunifast_taskset` is the standard UUniFast generator
(Bini & Buttazzo) included as a community-standard alternative for
sensitivity studies.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from repro.tasks.task import PeriodicTask, TaskSet
from repro.timeutils import EPSILON

__all__ = [
    "PAPER_PERIOD_CHOICES",
    "generate_paper_taskset",
    "generate_uunifast_taskset",
    "scale_to_utilization",
]

#: Section 5.1: "the task period is chosen from a set {10, 20, 30, ..., 100}".
PAPER_PERIOD_CHOICES: tuple[float, ...] = tuple(float(p) for p in range(10, 101, 10))


def scale_to_utilization(taskset: TaskSet, utilization: float) -> TaskSet:
    """Rescale all WCETs by one common ratio to hit a target utilization.

    This is the paper's "we scale the worst case execution time of each
    task in a task set in the same ratio".  Fails when the target would
    push any single task past its deadline (``w > d``) — such a set is
    unschedulable at any energy budget.
    """
    if not 0.0 < utilization <= 1.0:
        raise ValueError(
            f"target utilization must lie in (0, 1], got {utilization!r}"
        )
    current = taskset.utilization
    if current <= 0:
        raise ValueError("cannot scale a task set with zero utilization")
    ratio = utilization / current
    scaled = []
    for task in taskset:
        new_wcet = task.wcet * ratio
        if new_wcet > task.relative_deadline + EPSILON:
            raise ValueError(
                f"scaling {task.name} to U={utilization!r} pushes its wcet "
                f"({new_wcet!r}) past its deadline ({task.relative_deadline!r})"
            )
        scaled.append(task.with_wcet(min(new_wcet, task.relative_deadline)))
    return TaskSet(scaled)


def generate_paper_taskset(
    n_tasks: int,
    utilization: float,
    mean_harvest_power: float,
    max_power: float,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
    period_choices: Sequence[float] = PAPER_PERIOD_CHOICES,
) -> TaskSet:
    """Random periodic task set per section 5.1, scaled to ``utilization``.

    Parameters
    ----------
    n_tasks:
        Number of periodic tasks (the paper's figures use 5).
    utilization:
        Target total utilization ``U`` in ``(0, 1]``.
    mean_harvest_power:
        The paper's ``P̄s`` — use ``source.mean_power()``.
    max_power:
        ``P_max`` of the processor scale.
    rng / seed:
        Provide a ``numpy`` generator, or a seed to build one; omitting
        both yields a fresh unseeded generator.
    """
    if n_tasks < 1:
        raise ValueError(f"n_tasks must be >= 1, got {n_tasks!r}")
    if mean_harvest_power <= 0 or not math.isfinite(mean_harvest_power):
        raise ValueError(
            f"mean_harvest_power must be finite and > 0, got {mean_harvest_power!r}"
        )
    if max_power <= 0 or not math.isfinite(max_power):
        raise ValueError(f"max_power must be finite and > 0, got {max_power!r}")
    if rng is None:
        rng = np.random.default_rng(seed)
    elif seed is not None:
        raise ValueError("pass either rng or seed, not both")
    if not period_choices:
        raise ValueError("period_choices must not be empty")

    tasks = []
    for i in range(n_tasks):
        period = float(rng.choice(np.asarray(period_choices, dtype=float)))
        # Worst-case energy e ~ U[0, P̄s * p]; resample the rare near-zero
        # draws so the subsequent utilization scaling is well-defined.
        energy = 0.0
        while energy <= EPSILON:
            energy = float(rng.uniform(0.0, mean_harvest_power * period))
        wcet = energy / max_power
        # Raw draws may exceed the deadline (e.g. P̄s > P_max); clip to the
        # period — the set is rescaled to the target utilization right
        # after, which is what determines the experiment's regime.
        wcet = min(wcet, period)
        tasks.append(PeriodicTask(period=period, wcet=wcet, name=f"task{i}"))
    return scale_to_utilization(TaskSet(tasks), utilization)


def generate_uunifast_taskset(
    n_tasks: int,
    utilization: float,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
    period_choices: Sequence[float] = PAPER_PERIOD_CHOICES,
) -> TaskSet:
    """UUniFast task set: unbiased utilization split over uniform periods.

    Classic generator of Bini & Buttazzo ("Measuring the performance of
    schedulability tests", RTS 2005); included as an alternative to the
    paper's harvest-coupled generator.
    """
    if n_tasks < 1:
        raise ValueError(f"n_tasks must be >= 1, got {n_tasks!r}")
    if not 0.0 < utilization <= 1.0:
        raise ValueError(
            f"target utilization must lie in (0, 1], got {utilization!r}"
        )
    if rng is None:
        rng = np.random.default_rng(seed)
    elif seed is not None:
        raise ValueError("pass either rng or seed, not both")
    if not period_choices:
        raise ValueError("period_choices must not be empty")

    while True:  # retry until every task is individually feasible (U_i <= 1)
        utilizations = []
        remaining = utilization
        for i in range(n_tasks - 1):
            next_remaining = remaining * float(rng.random()) ** (
                1.0 / (n_tasks - 1 - i)
            )
            utilizations.append(remaining - next_remaining)
            remaining = next_remaining
        utilizations.append(remaining)
        if all(0.0 < u <= 1.0 for u in utilizations):
            break

    tasks = []
    for i, u in enumerate(utilizations):
        period = float(rng.choice(np.asarray(period_choices, dtype=float)))
        tasks.append(PeriodicTask(period=period, wcet=u * period, name=f"task{i}"))
    return TaskSet(tasks)
