"""Task-level model: periodic and aperiodic real-time tasks.

Section 3.3 of the paper: tasks are independent and preemptible; a task
``tau_m`` is a triple ``(a_m, d_m, w_m)`` — arrival time, *relative*
deadline and worst-case execution time *at the maximum frequency*.  The
evaluation uses periodic tasks whose relative deadline equals the period.

:class:`Task` subclasses are pure specifications: they enumerate release
times and stamp out :class:`~repro.tasks.job.Job` instances; all runtime
state lives on the jobs.
"""

from __future__ import annotations

import abc
import itertools
import math
from typing import TYPE_CHECKING, Iterable, Iterator, Optional, Sequence

from repro.tasks.job import Job
from repro.timeutils import EPSILON, validate_interval

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

__all__ = ["Task", "PeriodicTask", "AperiodicTask", "TaskSet"]

_task_counter = itertools.count(1)


class Task(abc.ABC):
    """Abstract real-time task specification.

    ``bcet_ratio`` models execution-time variability: when a random
    generator is supplied to :meth:`jobs`, each job's *actual* demand is
    drawn uniformly from ``[bcet_ratio * wcet, wcet]``.  The default of
    1.0 is the paper's model (every job runs exactly its WCET); values
    below 1 let ablations study the implicit slack reclamation of
    energy-aware schedulers.
    """

    def __init__(
        self,
        wcet: float,
        relative_deadline: float,
        name: str = "",
        bcet_ratio: float = 1.0,
    ) -> None:
        if wcet <= 0 or not math.isfinite(wcet):
            raise ValueError(f"wcet must be finite and > 0, got {wcet!r}")
        if relative_deadline <= 0 or not math.isfinite(relative_deadline):
            raise ValueError(
                f"relative deadline must be finite and > 0, got {relative_deadline!r}"
            )
        if wcet > relative_deadline + EPSILON:
            raise ValueError(
                f"wcet {wcet!r} exceeds relative deadline {relative_deadline!r}: "
                "the task cannot meet its deadline even at full speed"
            )
        if not 0.0 < bcet_ratio <= 1.0:
            raise ValueError(
                f"bcet_ratio must lie in (0, 1], got {bcet_ratio!r}"
            )
        self._wcet = float(wcet)
        self._relative_deadline = float(relative_deadline)
        self._name = name or f"task{next(_task_counter)}"
        self._bcet_ratio = float(bcet_ratio)

    @property
    def wcet(self) -> float:
        """Worst-case execution time at the maximum frequency (``w_m``)."""
        return self._wcet

    @property
    def relative_deadline(self) -> float:
        """Relative deadline ``d_m``."""
        return self._relative_deadline

    @property
    def name(self) -> str:
        return self._name

    @property
    def bcet_ratio(self) -> float:
        """Best-case over worst-case execution-time ratio (1.0 = none)."""
        return self._bcet_ratio

    @property
    @abc.abstractmethod
    def utilization(self) -> float:
        """Long-run processor demand of the task at full speed."""

    @abc.abstractmethod
    def release_times(self, horizon: float) -> Iterator[float]:
        """Release instants in ``[0, horizon)``, in increasing order."""

    def jobs(
        self, horizon: float, rng: "np.random.Generator | None" = None
    ) -> Iterator[Job]:
        """Stamp out the jobs released in ``[0, horizon)``.

        With ``bcet_ratio < 1`` a ``numpy`` generator must be supplied to
        sample per-job actual demands; without one, jobs run exactly
        their WCET.
        """
        for index, release in enumerate(self.release_times(horizon)):
            actual = self._wcet
            if rng is not None and self._bcet_ratio < 1.0:
                actual = self._wcet * float(
                    rng.uniform(self._bcet_ratio, 1.0)
                )
            yield Job(
                task=self,
                release=release,
                absolute_deadline=release + self._relative_deadline,
                wcet=self._wcet,
                index=index,
                actual_work=actual,
            )

    @abc.abstractmethod
    def with_wcet(self, wcet: float) -> "Task":
        """A copy of this task with a different WCET (utilization scaling)."""


class PeriodicTask(Task):
    """Strictly periodic task; deadline defaults to the period.

    ``first_release`` (phase) defaults to 0, matching the synchronous
    release convention of the paper's experiments.
    """

    def __init__(
        self,
        period: float,
        wcet: float,
        relative_deadline: Optional[float] = None,
        first_release: float = 0.0,
        name: str = "",
        bcet_ratio: float = 1.0,
    ) -> None:
        if period <= 0 or not math.isfinite(period):
            raise ValueError(f"period must be finite and > 0, got {period!r}")
        if first_release < 0 or not math.isfinite(first_release):
            raise ValueError(
                f"first_release must be finite and >= 0, got {first_release!r}"
            )
        deadline = period if relative_deadline is None else relative_deadline
        super().__init__(wcet, deadline, name, bcet_ratio)
        self._period = float(period)
        self._first_release = float(first_release)

    @property
    def period(self) -> float:
        return self._period

    @property
    def first_release(self) -> float:
        return self._first_release

    @property
    def utilization(self) -> float:
        return self._wcet / self._period

    def release_times(self, horizon: float) -> Iterator[float]:
        validate_interval(0.0, horizon)
        k = 0
        while True:
            release = self._first_release + k * self._period
            if release >= horizon - EPSILON:
                return
            yield release
            k += 1

    def with_wcet(self, wcet: float) -> "PeriodicTask":
        return PeriodicTask(
            period=self._period,
            wcet=wcet,
            relative_deadline=self._relative_deadline,
            first_release=self._first_release,
            name=self._name,
            bcet_ratio=self._bcet_ratio,
        )

    def __repr__(self) -> str:
        return (
            f"PeriodicTask(name={self._name!r}, period={self._period!r}, "
            f"wcet={self._wcet!r}, deadline={self._relative_deadline!r})"
        )


class AperiodicTask(Task):
    """One-shot task released once at ``arrival`` (the paper's triples)."""

    def __init__(
        self,
        arrival: float,
        relative_deadline: float,
        wcet: float,
        name: str = "",
        bcet_ratio: float = 1.0,
    ) -> None:
        if arrival < 0 or not math.isfinite(arrival):
            raise ValueError(f"arrival must be finite and >= 0, got {arrival!r}")
        super().__init__(wcet, relative_deadline, name, bcet_ratio)
        self._arrival = float(arrival)

    @property
    def arrival(self) -> float:
        return self._arrival

    @property
    def utilization(self) -> float:
        return 0.0  # one-shot tasks impose no long-run demand

    def release_times(self, horizon: float) -> Iterator[float]:
        validate_interval(0.0, horizon)
        if self._arrival < horizon - EPSILON:
            yield self._arrival

    def with_wcet(self, wcet: float) -> "AperiodicTask":
        return AperiodicTask(
            arrival=self._arrival,
            relative_deadline=self._relative_deadline,
            wcet=wcet,
            name=self._name,
            bcet_ratio=self._bcet_ratio,
        )

    def __repr__(self) -> str:
        return (
            f"AperiodicTask(name={self._name!r}, arrival={self._arrival!r}, "
            f"deadline={self._relative_deadline!r}, wcet={self._wcet!r})"
        )


class TaskSet:
    """An immutable collection of tasks with set-level helpers."""

    def __init__(self, tasks: Iterable[Task]) -> None:
        self._tasks: tuple[Task, ...] = tuple(tasks)
        if not self._tasks:
            raise ValueError("a task set needs at least one task")
        names = [t.name for t in self._tasks]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate task names in set: {sorted(names)}")

    def __len__(self) -> int:
        return len(self._tasks)

    def __iter__(self) -> Iterator[Task]:
        return iter(self._tasks)

    def __getitem__(self, index: int) -> Task:
        return self._tasks[index]

    @property
    def tasks(self) -> Sequence[Task]:
        return self._tasks

    @property
    def utilization(self) -> float:
        """Total full-speed utilization ``U = sum(w_m / p_m)`` (eq. (14))."""
        return sum(t.utilization for t in self._tasks)

    def periodic_tasks(self) -> list[PeriodicTask]:
        return [t for t in self._tasks if isinstance(t, PeriodicTask)]

    def hyperperiod(self) -> float:
        """LCM of the periods (requires all-periodic, near-integer periods)."""
        periodic = self.periodic_tasks()
        if len(periodic) != len(self._tasks):
            raise ValueError("hyperperiod is defined for all-periodic sets only")
        result = 1
        for task in periodic:
            period = round(task.period)
            if abs(period - task.period) > EPSILON or period <= 0:
                raise ValueError(
                    f"hyperperiod requires integer periods, got {task.period!r}"
                )
            result = math.lcm(result, period)
        return float(result)

    def jobs(
        self, horizon: float, rng: "np.random.Generator | None" = None
    ) -> list[Job]:
        """All jobs of all tasks released in ``[0, horizon)``, sorted.

        Sorted by (release, absolute deadline, task name) — a deterministic
        total order for simulator arrival processing.  ``rng`` (a numpy
        generator) enables per-job actual-demand sampling for tasks with
        ``bcet_ratio < 1``.
        """
        all_jobs = [
            job for task in self._tasks for job in task.jobs(horizon, rng)
        ]
        all_jobs.sort(key=lambda j: (j.release, j.absolute_deadline, j.task.name))
        return all_jobs

    def scaled_to(self, utilization: float) -> "TaskSet":
        """A copy rescaled to a target total utilization (periodic only).

        All WCETs are multiplied by the same ratio, exactly the scaling the
        paper applies "to get the specific utilization".
        """
        from repro.tasks.workload import scale_to_utilization

        return scale_to_utilization(self, utilization)

    def __repr__(self) -> str:
        return f"TaskSet(n={len(self._tasks)}, U={self.utilization:.4f})"
