"""EDF ready queue.

Deadline-ordered priority queue of ready jobs with deterministic
tie-breaking (absolute deadline, then release time, then insertion order).
Removal of arbitrary jobs (completion, deadline miss) is lazy: entries are
flagged and skipped when they surface, keeping all operations
O(log n) amortized.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Iterator, Optional

from repro.tasks.job import Job

__all__ = ["EdfReadyQueue"]


class EdfReadyQueue:
    """Priority queue of ready jobs ordered earliest-deadline-first."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, float, int, Job]] = []
        self._counter = itertools.count()
        self._members: set[int] = set()  # id() of live jobs

    def __len__(self) -> int:
        return len(self._members)

    def __bool__(self) -> bool:
        return bool(self._members)

    def __contains__(self, job: Job) -> bool:
        return id(job) in self._members

    def push(self, job: Job) -> None:
        """Insert a ready job (re-inserting a member is an error)."""
        if id(job) in self._members:
            raise ValueError(f"{job.name} is already in the ready queue")
        entry = (job.absolute_deadline, job.release, next(self._counter), job)
        heapq.heappush(self._heap, entry)
        self._members.add(id(job))

    def remove(self, job: Job) -> None:
        """Remove a job wherever it sits in the queue (lazy, idempotent)."""
        self._members.discard(id(job))

    def _skim(self) -> None:
        """Drop stale heap entries until the top is a live job."""
        while self._heap and id(self._heap[0][3]) not in self._members:
            heapq.heappop(self._heap)

    def peek(self) -> Optional[Job]:
        """The earliest-deadline job without removing it (``None`` if empty)."""
        self._skim()
        if not self._heap:
            return None
        return self._heap[0][3]

    def pop(self) -> Job:
        """Remove and return the earliest-deadline job."""
        self._skim()
        if not self._heap:
            raise IndexError("pop from an empty ready queue")
        job = heapq.heappop(self._heap)[3]
        self._members.discard(id(job))
        return job

    def jobs(self) -> list[Job]:
        """Live jobs in deadline order (non-destructive snapshot)."""
        live = [entry for entry in self._heap if id(entry[3]) in self._members]
        live.sort()
        return [entry[3] for entry in live]

    def __iter__(self) -> Iterator[Job]:
        return iter(self.jobs())

    def clear(self) -> None:
        self._heap.clear()
        self._members.clear()
