"""Real-time task model: tasks, jobs, ready queue and workload generation."""

from repro.tasks.job import Job, JobState
from repro.tasks.queue import EdfReadyQueue
from repro.tasks.task import AperiodicTask, PeriodicTask, Task, TaskSet
from repro.tasks.workload import (
    generate_paper_taskset,
    generate_uunifast_taskset,
    scale_to_utilization,
)

__all__ = [
    "AperiodicTask",
    "EdfReadyQueue",
    "Job",
    "JobState",
    "PeriodicTask",
    "Task",
    "TaskSet",
    "generate_paper_taskset",
    "generate_uunifast_taskset",
    "scale_to_utilization",
]
