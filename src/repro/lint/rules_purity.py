"""Purity & cache-boundary rules (RPR501–509).

Three boundaries declared in ``purity-roots.toml`` (see
:mod:`repro.lint.purity`):

* **Hash closure** (RPR501–505, one code per taint kind): every function
  reachable from a ``[hash-closure] roots`` entry must be free of
  wall-clock reads, unseeded randomness, environment/filesystem access,
  unordered set iteration, and identity/locale/global-mutation effects.
  A taint anywhere in the closure silently poisons
  ``(spec_hash, scheduler, engine_version)`` cache keys.
* **Commit-path discipline** (RPR506–507, per-module): result/journal
  files must go through the write-temp/fsync/rename protocol of
  ``atomic_write_text``.  RPR506 flags bare write-mode ``open`` /
  ``Path.write_text`` sites; RPR507 flags ``os.replace``/``os.rename``
  in functions that never fsync the data first.
* **Worker boundary** (RPR508–509): functions submitted to process
  pools must not mutate module-global state (each worker mutates its
  own copy — results silently diverge from serial runs) nor draw from a
  module-level RNG captured at import time (every forked worker
  inherits the same stream).

All closure rules stay silent for roots that do not resolve in the
current module set: a partial ``repro lint src/repro/lint`` run is
indistinguishable from a typo here, so unresolved roots are owned by
the nightly ``python -m repro.lint.purity --coverage`` gate instead.

The whole-program analysis is built once per engine run and shared by
every rule in this family (see :data:`ANALYSIS_BUILDS`, pinned by the
selfhost test).
"""

from __future__ import annotations

import ast
from typing import Iterator, Sequence

from repro.lint.engine import (
    Diagnostic,
    ModuleContext,
    ProjectRule,
    Rule,
    register_rule,
)
from repro.lint.purity import (
    PurityAnalysis,
    PurityManifest,
    Taint,
    _local_names,
    analyze,
    load_manifest,
    ref_matches,
)

__all__ = [
    "ANALYSIS_BUILDS",
    "AtomicWriteRule",
    "HashClosureRule",
    "RenameWithoutFsyncRule",
    "WorkerCapturedRngRule",
    "WorkerGlobalMutationRule",
    "shared_analysis",
]

#: Number of whole-program analyses built since import — the selfhost
#: test asserts one lint run costs exactly one build (the five closure
#: rules and both worker rules all share it).
ANALYSIS_BUILDS = 0

_CACHE: dict[tuple[int, ...], PurityAnalysis] = {}


def shared_analysis(modules: Sequence[ModuleContext]) -> PurityAnalysis:
    """One :func:`repro.lint.purity.analyze` per module set.

    Keyed by the identity of the context objects: within one engine run
    every project rule receives the same list, so the fixed point is
    computed once.  Only the latest entry is retained (a fresh run
    means fresh contexts).
    """
    global ANALYSIS_BUILDS
    key = tuple(id(ctx) for ctx in modules)
    analysis = _CACHE.get(key)
    if analysis is None:
        ANALYSIS_BUILDS += 1
        analysis = analyze(modules)
        _CACHE.clear()
        _CACHE[key] = analysis
    return analysis


def _manifest_for(
    modules: Sequence[ModuleContext],
) -> PurityManifest | None:
    if not modules:
        return None
    return load_manifest(modules[0].path)


class HashClosureRule(ProjectRule):
    """Base for RPR501–505: taint reachable from a hash-closure root."""

    run_on_tests = False
    #: Taint kinds this code owns (:data:`TAINT_CODES` is the inverse).
    taints: frozenset[Taint] = frozenset()

    def check_project(
        self, modules: Sequence[ModuleContext]
    ) -> Iterator[Diagnostic]:
        manifest = _manifest_for(modules)
        if manifest is None or not manifest.hash_closure_roots:
            return
        analysis = shared_analysis(modules)
        for ref in manifest.hash_closure_roots:
            key = analysis.graph.resolve_ref(ref)
            if key is None:
                continue  # the --coverage gate owns unresolved roots
            for member in sorted(analysis.graph.reachable([key])):
                node = analysis.graph.nodes[member]
                for site in analysis.direct.get(member, ()):
                    if site.taint not in self.taints:
                        continue
                    yield Diagnostic(
                        path=node.display_path,
                        line=site.lineno,
                        col=site.col,
                        code=self.code,
                        message=(
                            f"hash-closure root `{ref}` reaches "
                            f"{site.detail} in `{node.qualname}`; a "
                            "nondeterministic hash closure poisons "
                            "cache keys — inspect with `repro lint "
                            f"--explain-path {self.code}:{ref}`"
                        ),
                    )


class WallClockInHashClosureRule(HashClosureRule):
    code = "RPR501"
    name = "hash-closure-wall-clock"
    description = (
        "wall-clock read reachable from a canonical-hash root "
        "(purity-roots.toml [hash-closure])"
    )
    taints = frozenset({Taint.WALL_CLOCK})


class RandomnessInHashClosureRule(HashClosureRule):
    code = "RPR502"
    name = "hash-closure-randomness"
    description = (
        "unseeded/global-state randomness reachable from a "
        "canonical-hash root"
    )
    taints = frozenset({Taint.RANDOMNESS})


class EnvReadInHashClosureRule(HashClosureRule):
    code = "RPR503"
    name = "hash-closure-env-filesystem"
    description = (
        "environment or filesystem access reachable from a "
        "canonical-hash root"
    )
    taints = frozenset({Taint.ENV_FILESYSTEM})


class UnorderedInHashClosureRule(HashClosureRule):
    code = "RPR504"
    name = "hash-closure-unordered"
    description = (
        "set-order-dependent iteration reachable from a "
        "canonical-hash root"
    )
    taints = frozenset({Taint.UNORDERED})


class IdentityInHashClosureRule(HashClosureRule):
    code = "RPR505"
    name = "hash-closure-identity-global"
    description = (
        "id()/hash()/locale formatting or module-global mutation "
        "reachable from a canonical-hash root"
    )
    taints = frozenset({Taint.IDENTITY, Taint.GLOBAL_MUTATION})


# ---------------------------------------------------------------------------
# RPR506/507: commit-path write discipline (per-module)
# ---------------------------------------------------------------------------

_WRITE_METHODS = frozenset({"write_text", "write_bytes"})


def _open_write_mode(node: ast.Call) -> str | None:
    """The write-ish mode string of an ``open(...)`` call, if any."""
    func = node.func
    if not (isinstance(func, ast.Name) and func.id == "open"):
        return None
    mode: ast.expr | None = None
    if len(node.args) >= 2:
        mode = node.args[1]
    for keyword in node.keywords:
        if keyword.arg == "mode":
            mode = keyword.value
    if not (isinstance(mode, ast.Constant) and isinstance(mode.value, str)):
        return None  # default "r", or dynamic — stay conservative
    if any(ch in mode.value for ch in "wax"):
        return mode.value
    return None


def _write_method(node: ast.Call) -> str | None:
    func = node.func
    if isinstance(func, ast.Attribute) and func.attr in _WRITE_METHODS:
        return func.attr
    return None


def _rename_call(node: ast.Call) -> str | None:
    func = node.func
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id == "os"
        and func.attr in ("replace", "rename")
    ):
        return f"os.{func.attr}"
    return None


def _calls_fsync(nodes: Sequence[ast.stmt]) -> bool:
    for stmt in nodes:
        for node in ast.walk(stmt):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "fsync"
            ):
                return True
    return False


def _iter_scopes(
    tree: ast.Module,
) -> Iterator[tuple[str, Sequence[ast.stmt]]]:
    """``(qualname, body)`` for the module scope and every function.

    Nested function bodies are excluded from the enclosing scope's body
    view — fsync discipline is judged per function.
    """

    def walk(
        body: Sequence[ast.stmt], prefix: str
    ) -> Iterator[tuple[str, Sequence[ast.stmt]]]:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{stmt.name}"
                yield (qualname, stmt.body)
                yield from walk(stmt.body, f"{qualname}.")
            elif isinstance(stmt, ast.ClassDef):
                yield from walk(stmt.body, f"{prefix}{stmt.name}.")
            else:
                for inner in ast.walk(stmt):
                    if isinstance(
                        inner, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        qualname = f"{prefix}{inner.name}"
                        yield (qualname, inner.body)
                        yield from walk(inner.body, f"{qualname}.")

    yield ("<module>", tree.body)
    yield from walk(tree.body, "")


def _scope_statements(
    body: Sequence[ast.stmt],
) -> Iterator[ast.AST]:
    """Every node of a scope body, skipping nested def/class bodies."""
    stack: list[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue  # separate scope, visited by _iter_scopes
        yield node
        stack.extend(ast.iter_child_nodes(node))


class AtomicWriteRule(Rule):
    code = "RPR506"
    name = "non-atomic-write"
    description = (
        "bare write-mode open()/write_text() can tear on crash; use "
        "atomic_write_text or allow-list in purity-roots.toml"
    )
    run_on_tests = False

    def check_module(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        manifest = load_manifest(ctx.path)
        allow = manifest.atomic_allow if manifest is not None else ()
        for qualname, body in _iter_scopes(ctx.tree):
            candidates: list[tuple[ast.Call, str]] = []
            for node in _scope_statements(body):
                if not isinstance(node, ast.Call):
                    continue
                mode = _open_write_mode(node)
                method = _write_method(node)
                if mode is None and method is None:
                    continue
                spelled = (
                    f"open(..., {mode!r})"
                    if mode is not None
                    else f".{method}(...)"
                )
                candidates.append((node, spelled))
            if not candidates:
                continue
            if any(
                ref_matches(ref, ctx.display_path, qualname)
                for ref in allow
            ):
                continue
            # A function that fsyncs is implementing the atomic
            # protocol itself (atomic_write_text, the journal) — the
            # whole scope is exempt rather than guessing which write
            # the fsync covers.
            if qualname != "<module>" and _calls_fsync(body):
                continue
            for node, spelled in candidates:
                yield ctx.diagnostic(
                    node,
                    self.code,
                    f"non-atomic write {spelled} in `{qualname}` can "
                    "leave a torn file after a crash; build the "
                    "payload in memory and call atomic_write_text, or "
                    "allow-list the function under [atomic-writers] "
                    "in purity-roots.toml with a justification",
                )


class RenameWithoutFsyncRule(Rule):
    code = "RPR507"
    name = "rename-without-fsync"
    description = (
        "os.replace/os.rename without an fsync of the payload first "
        "can commit a rename before the data is durable"
    )
    run_on_tests = False

    def check_module(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        manifest = load_manifest(ctx.path)
        allow = manifest.atomic_allow if manifest is not None else ()
        for qualname, body in _iter_scopes(ctx.tree):
            renames = [
                (node, spelled)
                for node in _scope_statements(body)
                if isinstance(node, ast.Call)
                and (spelled := _rename_call(node)) is not None
            ]
            if not renames:
                continue
            if any(
                ref_matches(ref, ctx.display_path, qualname)
                for ref in allow
            ):
                continue
            if _calls_fsync(body):
                continue
            for node, spelled in renames:
                yield ctx.diagnostic(
                    node,
                    self.code,
                    f"`{spelled}` in `{qualname}` renames without an "
                    "fsync of the payload — on power loss the rename "
                    "can be durable while the data is not; fsync the "
                    "temporary file first (see atomic_write_text)",
                )


# ---------------------------------------------------------------------------
# RPR508/509: worker-boundary safety
# ---------------------------------------------------------------------------


def _worker_keys(
    analysis: PurityAnalysis, manifest: PurityManifest | None
) -> list[str]:
    keys = set(analysis.graph.submitted)
    if manifest is not None:
        for ref in manifest.worker_functions:
            resolved = analysis.graph.resolve_ref(ref)
            if resolved is not None:
                keys.add(resolved)
    return sorted(keys)


def _same_module_closure(
    analysis: PurityAnalysis, worker_key: str
) -> list[str]:
    display = analysis.graph.nodes[worker_key].display_path
    return sorted(
        key
        for key in analysis.graph.reachable([worker_key])
        if analysis.graph.nodes[key].display_path == display
    )


class WorkerGlobalMutationRule(ProjectRule):
    code = "RPR508"
    name = "worker-global-mutation"
    description = (
        "function submitted to a worker pool mutates module-global "
        "state (each process mutates its own copy)"
    )
    run_on_tests = False

    def check_project(
        self, modules: Sequence[ModuleContext]
    ) -> Iterator[Diagnostic]:
        manifest = _manifest_for(modules)
        analysis = shared_analysis(modules)
        for worker_key in _worker_keys(analysis, manifest):
            worker = analysis.graph.nodes[worker_key]
            for member in _same_module_closure(analysis, worker_key):
                node = analysis.graph.nodes[member]
                for site in analysis.direct.get(member, ()):
                    if site.taint is not Taint.GLOBAL_MUTATION:
                        continue
                    yield Diagnostic(
                        path=node.display_path,
                        line=site.lineno,
                        col=site.col,
                        code=self.code,
                        message=(
                            f"`{node.qualname}` (reached from "
                            f"worker-submitted `{worker.qualname}`) "
                            f"{site.detail}; worker processes mutate "
                            "private copies, so results silently "
                            "diverge from serial runs — pass state "
                            "through arguments/returns instead"
                        ),
                    )


class WorkerCapturedRngRule(ProjectRule):
    code = "RPR509"
    name = "worker-captured-rng"
    description = (
        "function submitted to a worker pool draws from a "
        "module-level RNG captured at import time"
    )
    run_on_tests = False

    def check_project(
        self, modules: Sequence[ModuleContext]
    ) -> Iterator[Diagnostic]:
        manifest = _manifest_for(modules)
        analysis = shared_analysis(modules)
        for worker_key in _worker_keys(analysis, manifest):
            worker = analysis.graph.nodes[worker_key]
            for member in _same_module_closure(analysis, worker_key):
                node = analysis.graph.nodes[member]
                info = analysis.graph.modules[node.display_path]
                if not info.rng_names:
                    continue
                local = _local_names(node.node)
                for inner in ast.walk(node.node):
                    if not (
                        isinstance(inner, ast.Name)
                        and isinstance(inner.ctx, ast.Load)
                        and inner.id in info.rng_names
                        and inner.id not in local
                    ):
                        continue
                    yield Diagnostic(
                        path=node.display_path,
                        line=inner.lineno,
                        col=inner.col_offset + 1,
                        code=self.code,
                        message=(
                            f"`{node.qualname}` (reached from "
                            f"worker-submitted `{worker.qualname}`) "
                            f"uses module-level RNG `{inner.id}` — "
                            "forked workers inherit one shared "
                            "stream, so draws collide across "
                            "processes; seed a per-task Generator "
                            "from the task spec instead"
                        ),
                    )


for _rule in (
    WallClockInHashClosureRule(),
    RandomnessInHashClosureRule(),
    EnvReadInHashClosureRule(),
    UnorderedInHashClosureRule(),
    IdentityInHashClosureRule(),
    AtomicWriteRule(),
    RenameWithoutFsyncRule(),
    WorkerGlobalMutationRule(),
    WorkerCapturedRngRule(),
):
    register_rule(_rule)
