"""Scalar↔batch parity registry and the RPR410 cross-module check.

The batch engine's correctness story rests on *twinning*: every scalar
decision/predictor function has a vectorized ``batch_*`` twin that
performs the same IEEE float64 operations in the same order
(``docs/batch-simulation.md``).  The twins are structurally different
code — early returns versus masked ``np.where`` — so the doctrine cannot
be checked by comparing the two ASTs directly.  Instead, each side's
*float-op fingerprint* (the ordered sequence of arithmetic/comparison/
libm-call tokens extracted from its AST) is **pinned** here, and RPR410
fires when either side drifts from its pin or a registered function
disappears.  A pin mismatch is not necessarily a bug — it is a demand
for review: whoever edits a kernel must re-derive the twin's sequence,
re-run the ``repro verify --batch`` differential suite, and refresh the
pin in the same commit (``python -m repro.lint.parity --print``).

The registry also records which schedulers each pair *covers*;
``python -m repro.lint.parity --coverage`` asserts every scheduler in
``repro.sched.vectorized.SCHEDULER_KINDS`` is reached by at least one
pair (the nightly CI step), so a new batch kernel cannot land without
entering the parity contract.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Iterator, Sequence

from repro.lint.engine import (
    Diagnostic,
    ModuleContext,
    ProjectRule,
    register_rule,
)

__all__ = [
    "PAIRS",
    "FunctionRef",
    "ParityPair",
    "ParityRule",
    "extract_fingerprint",
    "find_function",
]


@dataclasses.dataclass(frozen=True)
class FunctionRef:
    """One side of a parity pair: a function in a module."""

    #: Module path relative to the source root, posix separators
    #: (matched against ``ModuleContext.display_path`` by suffix so the
    #: lint root does not matter).
    path: str
    #: Dotted name inside the module (``Class.method`` or ``function``).
    qualname: str

    def matches_module(self, display_path: str) -> bool:
        normalized = display_path.replace("\\", "/")
        return normalized == self.path or normalized.endswith(
            "/" + self.path
        )


@dataclasses.dataclass(frozen=True)
class ParityPair:
    """A scalar function and its vectorized twin."""

    name: str
    scalar: FunctionRef
    batch: FunctionRef
    #: Scheduler registry names whose batch path exercises this pair.
    covers: tuple[str, ...] = ()


#: The machine-checked doctrine contract.  Every scalar decision or
#: predictor function with a vectorized twin is listed; the nightly
#: coverage check closes the loop against ``SCHEDULER_KINDS``.
PAIRS: tuple[ParityPair, ...] = (
    ParityPair(
        name="compute-plan",
        scalar=FunctionRef("repro/core/slowdown.py", "compute_plan"),
        batch=FunctionRef(
            "repro/sched/vectorized.py", "batch_compute_plan"
        ),
        covers=("ea-dvfs", "ea-dvfs-noslowdown"),
    ),
    ParityPair(
        name="min-feasible-level",
        scalar=FunctionRef(
            "repro/cpu/dvfs.py", "FrequencyScale.min_feasible_level"
        ),
        batch=FunctionRef(
            "repro/sched/vectorized.py", "batch_min_feasible_level"
        ),
        covers=("ea-dvfs", "ea-dvfs-noslowdown"),
    ),
    ParityPair(
        name="scheduler-decide",
        scalar=FunctionRef("repro/core/ea_dvfs.py", "EaDvfsScheduler.decide"),
        batch=FunctionRef("repro/sched/vectorized.py", "batch_decide"),
        covers=("edf", "lsa", "ea-dvfs", "ea-dvfs-noslowdown"),
    ),
    ParityPair(
        name="time-compare",
        scalar=FunctionRef("repro/timeutils.py", "time_le"),
        batch=FunctionRef("repro/sched/vectorized.py", "batch_time_le"),
        covers=("edf", "lsa", "ea-dvfs", "ea-dvfs-noslowdown"),
    ),
    ParityPair(
        name="mean-observe",
        scalar=FunctionRef(
            "repro/energy/predictor.py", "MeanPowerPredictor.observe"
        ),
        batch=FunctionRef(
            "repro/energy/vectorized.py", "batch_mean_observe"
        ),
    ),
    ParityPair(
        name="last-value-observe",
        scalar=FunctionRef(
            "repro/energy/predictor.py", "LastValuePredictor.observe"
        ),
        batch=FunctionRef(
            "repro/energy/vectorized.py", "batch_last_observe"
        ),
    ),
    ParityPair(
        name="span-predict",
        scalar=FunctionRef(
            "repro/energy/predictor.py",
            "MeanPowerPredictor.predict_energy",
        ),
        batch=FunctionRef(
            "repro/energy/vectorized.py", "batch_span_predict"
        ),
    ),
    ParityPair(
        name="snap-tail",
        scalar=FunctionRef("repro/energy/predictor.py", "_snap_tail"),
        batch=FunctionRef(
            "repro/energy/vectorized.py", "_batch_snap_tail"
        ),
    ),
    ParityPair(
        name="profile-predict",
        scalar=FunctionRef(
            "repro/energy/predictor.py", "ProfilePredictor.predict_energy"
        ),
        batch=FunctionRef(
            "repro/energy/vectorized.py", "batch_profile_predict"
        ),
    ),
    ParityPair(
        name="profile-observe",
        scalar=FunctionRef(
            "repro/energy/predictor.py", "ProfilePredictor.observe"
        ),
        batch=FunctionRef(
            "repro/energy/vectorized.py", "batch_profile_observe"
        ),
    ),
)


# ---------------------------------------------------------------------------
# Fingerprint extraction
# ---------------------------------------------------------------------------

_BINOP_TOKENS: dict[type[ast.operator], str] = {
    ast.Add: "add",
    ast.Sub: "sub",
    ast.Mult: "mul",
    ast.Div: "div",
    ast.FloorDiv: "floordiv",
    ast.Mod: "mod",
    ast.Pow: "pow",
    ast.MatMult: "matmul",
}

_CMP_TOKENS: dict[type[ast.cmpop], str] = {
    ast.Lt: "lt",
    ast.LtE: "le",
    ast.Gt: "gt",
    ast.GtE: "ge",
    ast.Eq: "eq",
    ast.NotEq: "ne",
}

#: Call targets normalized to a shared token so the scalar spelling
#: (``math.pow``, ``max``) and the batch spelling (``_libm_pow``,
#: ``np.maximum``) fingerprint identically — the doctrine declares those
#: pairs bit-equivalent.  ``np.power`` deliberately maps to a *distinct*
#: token: swapping ``_libm_pow`` for ``np.power`` must change the
#: fingerprint (that is the RPR402 divergence the pin protects against).
_CALL_TOKENS: dict[str, str] = {
    "max": "max",
    "maximum": "max",
    "fmax": "max",
    "min": "min",
    "minimum": "min",
    "fmin": "min",
    "abs": "abs",
    "absolute": "abs",
    "fabs": "abs",
    "pow": "pow",
    "_libm_pow": "pow",
    "power": "pow[simd]",
    "float_power": "pow[simd]",
    "sqrt": "sqrt",
    "nextafter": "nextafter",
    "fmod": "mod",
    "remainder": "mod",
    "isinf": "isinf",
    "isnan": "isnan",
    "isfinite": "isfinite",
    "cumsum": "cumsum",
    "where": "select",
    "cos": "cos",
    "sin": "sin",
    "tan": "tan",
    "exp": "exp",
    "log": "log",
    "floor": "floor",
    "ceil": "ceil",
    "trunc": "trunc",
}


class _FingerprintVisitor(ast.NodeVisitor):
    """Collect float-op tokens in evaluation (post-)order."""

    def __init__(self) -> None:
        self.tokens: list[str] = []

    def visit_BinOp(self, node: ast.BinOp) -> None:
        self.visit(node.left)
        self.visit(node.right)
        token = _BINOP_TOKENS.get(type(node.op))
        if token is not None:
            self.tokens.append(token)

    def visit_UnaryOp(self, node: ast.UnaryOp) -> None:
        self.visit(node.operand)
        if isinstance(node.op, ast.USub):
            self.tokens.append("neg")

    def visit_Compare(self, node: ast.Compare) -> None:
        self.visit(node.left)
        for op, comparator in zip(node.ops, node.comparators):
            self.visit(comparator)
            token = _CMP_TOKENS.get(type(op))
            if token is not None:
                self.tokens.append(token)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self.visit(node.value)
        token = _BINOP_TOKENS.get(type(node.op))
        if token is not None:
            self.tokens.append(token)

    def visit_Call(self, node: ast.Call) -> None:
        self.visit(node.func)
        for arg in node.args:
            self.visit(arg)
        for keyword in node.keywords:
            self.visit(keyword.value)
        name: str | None = None
        if isinstance(node.func, ast.Name):
            name = node.func.id
        elif isinstance(node.func, ast.Attribute):
            name = node.func.attr
        if name is not None:
            token = _CALL_TOKENS.get(name)
            if token is not None:
                self.tokens.append(token)


def find_function(
    tree: ast.Module, qualname: str
) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
    """Locate ``Class.method`` / ``function`` in a module AST."""
    parts = qualname.split(".")
    body: Sequence[ast.stmt] = tree.body
    for depth, part in enumerate(parts):
        found = None
        last = depth == len(parts) - 1
        for stmt in body:
            if last and isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                if stmt.name == part:
                    return stmt
            elif not last and isinstance(stmt, ast.ClassDef):
                if stmt.name == part:
                    found = stmt
                    break
        if found is None:
            return None
        body = found.body
    return None


def extract_fingerprint(
    tree: ast.Module, qualname: str
) -> tuple[str, ...] | None:
    """Ordered float-op token sequence of one function, or ``None``."""
    func = find_function(tree, qualname)
    if func is None:
        return None
    visitor = _FingerprintVisitor()
    for stmt in func.body:
        visitor.visit(stmt)
    return tuple(visitor.tokens)


def _first_divergence(
    pinned: Sequence[str], actual: Sequence[str]
) -> str:
    for i, (want, got) in enumerate(zip(pinned, actual)):
        if want != got:
            return f"first divergence at op {i}: pinned {want!r}, found {got!r}"
    if len(pinned) < len(actual):
        return (
            f"extra op at {len(pinned)}: found {actual[len(pinned)]!r} "
            f"beyond the {len(pinned)}-op pin"
        )
    return (
        f"missing op at {len(actual)}: pin expects "
        f"{pinned[len(actual)]!r}, function ends"
    )


# ---------------------------------------------------------------------------
# Pinned fingerprints
# ---------------------------------------------------------------------------
#
# Generated by ``python -m repro.lint.parity --print``.  Refresh a pin
# ONLY together with a green ``repro verify --batch`` run: the pin is
# the reviewable record that the scalar/batch op sequences were
# re-derived after the edit.

_PINNED: dict[str, dict[str, tuple[str, ...]]] = {
    'compute-plan': {
        'scalar': (
            'lt',
            'isnan',
            'lt',
            'sub',
            'isinf',
            'div',
            'div',
            'sub',
            'max',
            'sub',
            'max',
            'sub',
            'le',
            'sub',
            'le',
        ),
        'batch': (
            'sub',
            'lt',
            'select',
            'sub',
            'ge',
            'select',
            'div',
            'div',
            'sub',
            'max',
            'select',
            'sub',
            'max',
            'select',
            'sub',
            'le',
            'select',
            'select',
            'select',
            'select',
            'sub',
            'le',
        ),
    },
    'min-feasible-level': {
        'scalar': (
            'lt',
            'lt',
            'add',
            'le',
        ),
        'batch': (
            'neg',
            'ge',
            'sub',
            'neg',
            'neg',
            'div',
            'add',
            'le',
        ),
    },
    'scheduler-decide': {
        'scalar': (
            'add',
            'gt',
        ),
        'batch': (
            'sub',
            'neg',
            'eq',
            'div',
            'sub',
            'max',
            'add',
            'gt',
            'eq',
            'add',
            'gt',
            'isnan',
            'eq',
            'isinf',
            'div',
            'sub',
            'max',
            'select',
            'select',
            'add',
            'gt',
        ),
    },
    'time-compare': {
        'scalar': (
            'le',
        ),
        'batch': (
            'sub',
            'eq',
            'abs',
            'le',
            'lt',
        ),
    },
    'mean-observe': {
        'scalar': (
            'sub',
            'le',
            'div',
            'max',
            'sub',
            'pow',
            'mul',
            'sub',
            'mul',
            'add',
        ),
        'batch': (
            'div',
            'max',
            'sub',
            'pow',
            'mul',
            'sub',
            'mul',
            'add',
        ),
    },
    'last-value-observe': {
        'scalar': (
            'sub',
            'le',
            'div',
            'max',
        ),
        'batch': (
            'div',
            'max',
        ),
    },
    'span-predict': {
        'scalar': (
            'sub',
            'le',
            'sub',
            'mul',
        ),
        'batch': (
            'sub',
            'le',
            'mul',
            'select',
        ),
    },
    'snap-tail': {
        'scalar': (
            'sub',
            'add',
            'eq',
            'lt',
            'neg',
            'nextafter',
        ),
        'batch': (
            'sub',
            'add',
            'ne',
            'lt',
            'neg',
            'select',
            'nextafter',
            'select',
        ),
    },
    'profile-predict': {
        'scalar': (
            'sub',
            'le',
            'mul',
        ),
        'batch': (
            'sub',
            'gt',
            'ge',
            'mul',
            'add',
            'mul',
            'sub',
            'gt',
            'ge',
            'add',
            'mul',
            'mul',
            'add',
            'mul',
            'add',
        ),
    },
    'profile-observe': {
        'scalar': (
            'sub',
            'le',
            'div',
            'max',
            'sub',
            'div',
            'pow',
            'mul',
            'sub',
            'mul',
            'add',
        ),
        'batch': (
            'sub',
            'div',
            'max',
            'ge',
            'sub',
            'div',
            'pow',
            'mul',
            'sub',
            'mul',
            'add',
            'select',
            'sub',
            'div',
            'pow',
            'mul',
            'sub',
            'mul',
            'add',
        ),
    },
}


class ParityRule(ProjectRule):
    code = "RPR410"
    name = "scalar-batch-parity"
    run_on_tests = False
    description = (
        "a registered scalar/batch twin's float-op sequence diverged "
        "from its pin (or a registered function is missing); re-derive "
        "the twin, re-run `repro verify --batch`, refresh the pin with "
        "`python -m repro.lint.parity --print`"
    )

    def check_project(
        self, modules: Sequence[ModuleContext]
    ) -> Iterator[Diagnostic]:
        for ctx in modules:
            for pair in PAIRS:
                for side in ("scalar", "batch"):
                    ref: FunctionRef = getattr(pair, side)
                    if not ref.matches_module(ctx.display_path):
                        continue
                    yield from self._check_side(ctx, pair, side, ref)

    def _check_side(
        self,
        ctx: ModuleContext,
        pair: ParityPair,
        side: str,
        ref: FunctionRef,
    ) -> Iterator[Diagnostic]:
        actual = extract_fingerprint(ctx.tree, ref.qualname)
        if actual is None:
            yield Diagnostic(
                path=ctx.display_path,
                line=1,
                col=1,
                code=self.code,
                message=(
                    f"parity pair {pair.name!r}: registered {side} "
                    f"function `{ref.qualname}` not found in this "
                    "module; update repro/lint/parity.py with the twin"
                ),
            )
            return
        pinned = _PINNED.get(pair.name, {}).get(side)
        func = find_function(ctx.tree, ref.qualname)
        line = func.lineno if func is not None else 1
        if pinned is None:
            yield Diagnostic(
                path=ctx.display_path,
                line=line,
                col=1,
                code=self.code,
                message=(
                    f"parity pair {pair.name!r} ({side}) has no pinned "
                    "fingerprint; run `python -m repro.lint.parity "
                    "--print` and commit the pin"
                ),
            )
            return
        if tuple(actual) != tuple(pinned):
            yield Diagnostic(
                path=ctx.display_path,
                line=line,
                col=1,
                code=self.code,
                message=(
                    f"`{ref.qualname}` diverged from the pinned "
                    f"{side} float-op sequence of pair {pair.name!r} "
                    f"({_first_divergence(pinned, actual)}); re-derive "
                    "the twin, re-run `repro verify --batch`, and "
                    "refresh the pin"
                ),
            )


# Under ``python -m repro.lint.parity`` this module body runs twice:
# once as the canonical ``repro.lint.parity`` (imported by the package)
# and once as ``__main__`` (runpy).  Only the canonical copy registers,
# or the engine would see a duplicate RPR410.
if __name__ != "__main__":
    register_rule(ParityRule())


# ---------------------------------------------------------------------------
# CLI: pin generation and coverage assertion
# ---------------------------------------------------------------------------


def _load_side(root: str, ref: FunctionRef) -> tuple[str, ...] | None:
    from pathlib import Path

    path = Path(root) / "src" / ref.path
    if not path.exists():
        return None
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    return extract_fingerprint(tree, ref.qualname)


def _print_pins(root: str) -> int:
    print("_PINNED: dict[str, dict[str, tuple[str, ...]]] = {")
    status = 0
    for pair in PAIRS:
        print(f"    {pair.name!r}: {{")
        for side in ("scalar", "batch"):
            ref: FunctionRef = getattr(pair, side)
            fingerprint = _load_side(root, ref)
            if fingerprint is None:
                print(f"        # {side}: `{ref.qualname}` NOT FOUND")
                status = 1
                continue
            print(f"        {side!r}: (")
            for token in fingerprint:
                print(f"            {token!r},")
            print("        ),")
        print("    },")
    print("}")
    return status


def _check_coverage() -> int:
    # Imported lazily so plain lint runs never pay the numpy import.
    from repro.lint.coverage import check_coverage
    from repro.sched.vectorized import SCHEDULER_KINDS

    covered: set[str] = set()
    for pair in PAIRS:
        covered.update(pair.covers)
    return check_coverage(
        required=SCHEDULER_KINDS,
        covered=covered,
        describe_missing=lambda name: (
            f"scheduler {name!r} has a batch kernel but no parity "
            "pair covers it; add one to repro/lint/parity.py"
        ),
        describe_extra=lambda name: (
            f"parity registry covers unknown scheduler {name!r}"
        ),
        success_message=(
            f"parity registry covers all {len(SCHEDULER_KINDS)} batch "
            f"schedulers via {len(PAIRS)} pairs"
        ),
    )


def main(argv: Sequence[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.lint.parity",
        description="Scalar/batch parity registry utilities.",
    )
    parser.add_argument(
        "--print",
        action="store_true",
        dest="print_pins",
        help="emit the current _PINNED literal (paste into parity.py)",
    )
    parser.add_argument(
        "--coverage",
        action="store_true",
        help="assert every batch scheduler is covered by a parity pair",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="repository root containing src/ (default: cwd)",
    )
    options = parser.parse_args(argv)
    if options.print_pins:
        return _print_pins(options.root)
    if options.coverage:
        return _check_coverage()
    parser.error("one of --print / --coverage is required")
    return 2


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    raise SystemExit(main())
