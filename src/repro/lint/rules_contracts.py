"""API-contract rules (RPR301-RPR303).

Three conventions keep the scheduler/verify plumbing sound:

* every concrete :class:`~repro.sched.base.Scheduler` subclass overrides
  :meth:`decide` and declares a ``name`` identifier — the registry, CLI
  tables, and result records all key on it;
* every concrete scheduler defined in the library is reachable through
  :mod:`repro.sched.registry` (either listed in its built-ins or
  registered via ``register_scheduler`` at definition site) — an
  unregistered policy silently falls out of the sweep/verify tiers;
* :class:`~repro.verify.scenarios.ScenarioSpec` is a frozen value
  shared across schedulers for paired comparisons — mutating one
  (``object.__setattr__`` or attribute assignment) desynchronizes the
  worlds the differential harness believes are identical.
"""

from __future__ import annotations

import ast
from typing import Iterator, Sequence

from repro.lint.engine import (
    Diagnostic,
    ModuleContext,
    ProjectRule,
    Rule,
    register_rule,
)

__all__ = [
    "FrozenSpecMutationRule",
    "SchedulerHooksRule",
    "SchedulerRegistrationRule",
]

#: Class names that are scheduler *frameworks*, not concrete policies.
_BASE_CLASS_NAMES = {"Scheduler"}


def _base_names(cls: ast.ClassDef) -> list[str]:
    names = []
    for base in cls.bases:
        if isinstance(base, ast.Attribute):
            names.append(base.attr)
        elif isinstance(base, ast.Name):
            names.append(base.id)
    return names


def _is_scheduler_subclass(cls: ast.ClassDef) -> bool:
    if cls.name in _BASE_CLASS_NAMES:
        return False
    return any(name.endswith("Scheduler") for name in _base_names(cls))


def _is_abstract(cls: ast.ClassDef) -> bool:
    if any(name in ("ABC", "ABCMeta") for name in _base_names(cls)):
        return True
    for item in cls.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for deco in item.decorator_list:
                name = deco.attr if isinstance(deco, ast.Attribute) else (
                    deco.id if isinstance(deco, ast.Name) else None
                )
                if name == "abstractmethod":
                    return True
    return False


def _defines(cls: ast.ClassDef, method: str) -> bool:
    return any(
        isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        and item.name == method
        for item in cls.body
    )


def _assigns_name(cls: ast.ClassDef) -> bool:
    for item in cls.body:
        if isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name):
            if item.target.id == "name" and item.value is not None:
                return True
        elif isinstance(item, ast.Assign):
            if any(
                isinstance(t, ast.Name) and t.id == "name"
                for t in item.targets
            ):
                return True
    return False


def _scheduler_classes(ctx: ModuleContext) -> Iterator[ast.ClassDef]:
    for node in ctx.walk():
        if isinstance(node, ast.ClassDef) and _is_scheduler_subclass(node):
            yield node


class SchedulerHooksRule(Rule):
    code = "RPR301"
    name = "scheduler-hooks"
    description = (
        "concrete Scheduler subclasses must override decide() and declare "
        "a `name` identifier for the registry/CLI"
    )

    def check_module(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        for cls in _scheduler_classes(ctx):
            if _is_abstract(cls):
                continue
            if not _defines(cls, "decide") and not _assigns_name(cls):
                # Overriding neither hook nor identity: the subclass is a
                # behavioural no-op under a stolen name.
                yield ctx.diagnostic(
                    cls,
                    self.code,
                    f"scheduler subclass {cls.name!r} overrides neither "
                    "decide() nor `name`; a policy must at least carry "
                    "its own registry identity",
                )
            elif _defines(cls, "decide") and not _assigns_name(cls):
                yield ctx.diagnostic(
                    cls,
                    self.code,
                    f"scheduler subclass {cls.name!r} overrides decide() "
                    "but declares no `name: ClassVar[str]`; results and "
                    "the registry key on it",
                )


class SchedulerRegistrationRule(ProjectRule):
    code = "RPR302"
    name = "scheduler-registered"
    description = (
        "concrete Scheduler subclasses in the library must be reachable "
        "through sched/registry.py or register_scheduler()"
    )

    def check_project(
        self, modules: Sequence[ModuleContext]
    ) -> Iterator[Diagnostic]:
        registry = next(
            (
                ctx
                for ctx in modules
                if ctx.display_path.endswith("sched/registry.py")
            ),
            None,
        )
        if registry is None:
            # Partial lint run without the registry: the cross-file
            # contract cannot be decided, so stay silent.
            return
        known = {
            node.id
            for node in ast.walk(registry.tree)
            if isinstance(node, ast.Name)
        }
        for ctx in modules:
            if ctx.is_test_code:
                continue
            calls_register = any(
                isinstance(node, ast.Call)
                and (
                    (isinstance(node.func, ast.Name)
                     and node.func.id == "register_scheduler")
                    or (isinstance(node.func, ast.Attribute)
                        and node.func.attr == "register_scheduler")
                )
                for node in ast.walk(ctx.tree)
            )
            for cls in _scheduler_classes(ctx):
                if _is_abstract(cls) or cls.name.startswith("_"):
                    continue
                if cls.name in known or calls_register:
                    continue
                yield ctx.diagnostic(
                    cls,
                    self.code,
                    f"scheduler {cls.name!r} is not referenced by "
                    "sched/registry.py and its module never calls "
                    "register_scheduler(); it is unreachable from the "
                    "CLI/sweep/verify tiers",
                )


#: Variable names treated as ScenarioSpec instances by convention.
_SPEC_NAME_HINTS = ("spec", "scenario")


def _looks_like_spec(name: str) -> bool:
    lowered = name.lower()
    return any(
        lowered == hint or lowered.endswith(f"_{hint}")
        for hint in _SPEC_NAME_HINTS
    )


def _annotation_is_spec(annotation: ast.expr | None) -> bool:
    if annotation is None:
        return False
    return any(
        (isinstance(node, ast.Name) and node.id == "ScenarioSpec")
        or (isinstance(node, ast.Attribute) and node.attr == "ScenarioSpec")
        for node in ast.walk(annotation)
    )


class FrozenSpecMutationRule(Rule):
    code = "RPR303"
    name = "frozen-spec-immutable"
    description = (
        "ScenarioSpec is frozen and shared across paired runs; never "
        "mutate one — build a new spec with dataclasses.replace"
    )

    def check_module(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        spec_names = set()
        for node in ctx.walk():
            if isinstance(node, ast.arg) and _annotation_is_spec(node.annotation):
                spec_names.add(node.arg)
            elif isinstance(node, ast.AnnAssign):
                if (
                    isinstance(node.target, ast.Name)
                    and _annotation_is_spec(node.annotation)
                ):
                    spec_names.add(node.target.id)

        def is_spec(name: str) -> bool:
            return name in spec_names or _looks_like_spec(name)

        for node in ctx.walk():
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and is_spec(target.value.id)
                    ):
                        yield ctx.diagnostic(
                            node,
                            self.code,
                            f"attribute assignment on frozen spec "
                            f"`{target.value.id}`; use dataclasses.replace "
                            "to derive a new ScenarioSpec",
                        )
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr == "__setattr__"
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "object"
                    and node.args
                ):
                    first = node.args[0]
                    if not (isinstance(first, ast.Name) and first.id == "self"):
                        yield ctx.diagnostic(
                            node,
                            self.code,
                            "object.__setattr__ outside a frozen class's "
                            "own __init__/__post_init__ defeats "
                            "immutability; build a new value instead",
                        )


register_rule(SchedulerHooksRule())
register_rule(SchedulerRegistrationRule())
register_rule(FrozenSpecMutationRule())
