"""Shared coverage-assertion helper for registry-style nightly gates.

Two gates compare a *required* set against a *covered* set and fail on
any gap: ``python -m repro.lint.parity --coverage`` (every batch
scheduler must have a parity pair) and
``python -m repro.lint.purity --coverage`` (every hash-closure root in
``purity-roots.toml`` must certify deterministic).  Both previously
needed the same walk/diff/report skeleton; this module is the single
implementation.

The exit-code contract matches the original parity gate: missing items
return 1, unexpected extras alone also return 1 (after reporting), and
full coverage returns 0 with a one-line success message.
"""

from __future__ import annotations

from typing import Callable, Iterable

__all__ = ["check_coverage"]


def check_coverage(
    required: Iterable[str],
    covered: Iterable[str],
    *,
    describe_missing: Callable[[str], str],
    describe_extra: Callable[[str], str],
    success_message: str,
) -> int:
    """Diff ``covered`` against ``required`` and print a verdict.

    ``describe_missing``/``describe_extra`` render one line per gap —
    callers keep their established message shapes.  Missing items
    dominate the exit code; extras alone still fail (a registry naming
    unknown items is stale) but only after every extra is reported.
    """
    required_set = set(required)
    covered_set = set(covered)
    extra = sorted(covered_set - required_set)
    missing = sorted(required_set - covered_set)
    for name in extra:
        print(describe_extra(name))
    if missing:
        for name in missing:
            print(describe_missing(name))
        return 1
    print(success_message)
    return 1 if extra else 0
