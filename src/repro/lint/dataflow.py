"""Intra-procedural abstract interpretation over the dimension lattice.

PR 3's unit rules classified every expression *syntactically*: an
identifier either matched the naming vocabulary or was invisible.  That
misses the moment a quantity is renamed::

    budget = e_avail          # budget is now an energy
    slack = budget / p_max    # energy / power -> time
    if slack > e_avail:       # time vs energy: flagged here

This module follows values through one function (or the module body) at
a time.  A :class:`_Interpreter` walks statements in order, carrying an
environment ``name -> Dimension``, and evaluates every expression it
meets under the dimensional algebra of the paper's equations (5)-(9):

* ``TIME x POWER -> ENERGY`` (and commuted),
* ``ENERGY / POWER -> TIME``, ``ENERGY / TIME -> POWER``,
* ``quantity +/- same -> same``; adding across dimensions is meaningless
  (the unit rules flag it) and yields UNKNOWN,
* ``quantity x/÷ DIMENSIONLESS -> quantity``; ``same / same ->
  DIMENSIONLESS``; ``quantity % same -> same``.

Dimensions are seeded from three sources, strongest first: the flow
environment (assignments already interpreted), definition-site facts
from the :class:`~repro.lint.index.ProjectIndex` (annotations on
parameters/returns/fields, ``@property`` results), and the naming
vocabulary (:func:`~repro.lint.naming.infer_dimension`).  Control flow
is handled conservatively: ``if``/``try``/``match`` branches are
interpreted separately and joined (agreeing dimensions survive,
disagreements decay to UNKNOWN), loop bodies are interpreted once and
joined with the loop entry, and anything the interpreter cannot see
(lambdas, ``exec``, attribute stores on foreign objects) stays UNKNOWN —
the analysis only ever *adds* certainty, so a finding built on it is as
trustworthy as the vocabulary itself.

Besides per-node dimensions (consumed by the flow-aware RPR1xx/RPR2xx
rules), the interpreter records :class:`DataflowEvent` records for the
three contract violations only flow analysis can see: a name whose
seeded dimension is contradicted by a reassignment, a ``return`` that
contradicts the function's declared dimension, and an argument whose
dimension contradicts the indexed parameter it binds to (RPR203-RPR205).
"""

from __future__ import annotations

import ast
import dataclasses
import enum
from typing import Mapping, Sequence

from repro.lint.index import ProjectIndex, annotation_dimension
from repro.lint.naming import Dimension, infer_dimension

__all__ = [
    "ArrayKind",
    "DataflowEvent",
    "ModuleArrays",
    "ModuleDataflow",
    "analyze_arrays",
    "analyze_module",
    "annotation_array_kind",
    "combine_add",
    "combine_div",
    "combine_mult",
    "join",
]

#: Builtins that preserve the common dimension of their arguments.
_DIM_PRESERVING_CALLS = {"min", "max", "abs", "sum", "sorted", "round", "float"}


# ---------------------------------------------------------------------------
# Lattice algebra
# ---------------------------------------------------------------------------


def join(left: Dimension, right: Dimension) -> Dimension:
    """Control-flow join: agreement survives, disagreement decays."""
    if left is right:
        return left
    return Dimension.UNKNOWN


def combine_add(left: Dimension, right: Dimension) -> Dimension:
    """Dimension of ``left + right`` / ``left - right``."""
    if left is right:
        return left
    # A dimensionless offset leaves a quantity's unit alone (t + 2.0).
    if left is Dimension.DIMENSIONLESS and right.is_quantity:
        return right
    if right is Dimension.DIMENSIONLESS and left.is_quantity:
        return left
    return Dimension.UNKNOWN


def combine_mult(left: Dimension, right: Dimension) -> Dimension:
    """Dimension of ``left * right`` (eq. (6): ``P_n * sr_n`` is energy)."""
    pair = {left, right}
    if pair == {Dimension.TIME, Dimension.POWER}:
        return Dimension.ENERGY
    if left is Dimension.DIMENSIONLESS:
        return right if right.is_quantity or right is left else Dimension.UNKNOWN
    if right is Dimension.DIMENSIONLESS:
        return left if left.is_quantity else Dimension.UNKNOWN
    return Dimension.UNKNOWN


def combine_div(left: Dimension, right: Dimension) -> Dimension:
    """Dimension of ``left / right`` (eq. (6): ``E_avail / P_n`` is time)."""
    if left is right and (left.is_quantity or left is Dimension.DIMENSIONLESS):
        return Dimension.DIMENSIONLESS
    if left is Dimension.ENERGY and right is Dimension.POWER:
        return Dimension.TIME
    if left is Dimension.ENERGY and right is Dimension.TIME:
        return Dimension.POWER
    if right is Dimension.DIMENSIONLESS and left.is_quantity:
        return left
    return Dimension.UNKNOWN


def _combine_binop(op: ast.operator, left: Dimension, right: Dimension) -> Dimension:
    if isinstance(op, (ast.Add, ast.Sub)):
        return combine_add(left, right)
    if isinstance(op, ast.Mult):
        return combine_mult(left, right)
    if isinstance(op, (ast.Div, ast.FloorDiv)):
        return combine_div(left, right)
    if isinstance(op, ast.Mod):
        # t % period: the remainder keeps the operands' unit.
        if left is right and left.is_quantity:
            return left
        return Dimension.UNKNOWN
    if isinstance(op, ast.Pow):
        if left is Dimension.DIMENSIONLESS and right is Dimension.DIMENSIONLESS:
            return Dimension.DIMENSIONLESS
        return Dimension.UNKNOWN
    return Dimension.UNKNOWN


# ---------------------------------------------------------------------------
# Events and results
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class DataflowEvent:
    """One dimension-contract violation found during interpretation.

    ``kind`` is ``"reassign"``, ``"return"``, or ``"argument"``; the
    rules in :mod:`repro.lint.rules_units` map kinds to RPR203-RPR205.
    """

    kind: str
    line: int
    col: int
    #: The contradicted name (variable, function, or parameter).
    name: str
    #: The dimension the contract promises.
    expected: Dimension
    #: The dimension the flow analysis actually derived.
    actual: Dimension


class ModuleDataflow:
    """Per-module analysis result: node dimensions plus contract events."""

    def __init__(self) -> None:
        self._dims: dict[int, Dimension] = {}
        self.events: list[DataflowEvent] = []

    def dimension_of(self, node: ast.AST) -> Dimension | None:
        """Interpreted dimension of ``node``, ``None`` if never visited."""
        return self._dims.get(id(node))

    def _record(self, node: ast.AST, dim: Dimension) -> Dimension:
        self._dims[id(node)] = dim
        return dim


# ---------------------------------------------------------------------------
# The interpreter
# ---------------------------------------------------------------------------


class _Interpreter:
    def __init__(self, index: ProjectIndex, result: ModuleDataflow) -> None:
        self._index = index
        self._result = result

    # -- seeds -------------------------------------------------------------

    def _seed(self, name: str) -> Dimension:
        """Definition-site dimension of a bare name (vocabulary only).

        The index is deliberately *not* consulted for local variables:
        its entries describe attributes and callables, and a local named
        like a field (``stored``) already matches the vocabulary anyway.
        """
        return infer_dimension(name)

    def _event(
        self,
        kind: str,
        node: ast.AST,
        name: str,
        expected: Dimension,
        actual: Dimension,
    ) -> None:
        self._result.events.append(
            DataflowEvent(
                kind=kind,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                name=name,
                expected=expected,
                actual=actual,
            )
        )

    # -- expressions -------------------------------------------------------

    def eval(self, node: ast.expr, env: dict[str, Dimension]) -> Dimension:
        dim = self._eval_inner(node, env)
        return self._result._record(node, dim)

    def _eval_inner(self, node: ast.expr, env: dict[str, Dimension]) -> Dimension:
        if isinstance(node, ast.Name):
            flow = env.get(node.id)
            if flow is not None and flow is not Dimension.UNKNOWN:
                return flow
            return self._seed(node.id)
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool):
                return Dimension.UNKNOWN
            if isinstance(node.value, (int, float)):
                # Bare numeric literals are unit-free scalars; `t * 2.0`
                # stays a time, and RPR101 handles literal comparisons.
                return Dimension.DIMENSIONLESS
            return Dimension.UNKNOWN
        if isinstance(node, ast.UnaryOp):
            inner = self.eval(node.operand, env)
            if isinstance(node.op, (ast.USub, ast.UAdd)):
                return inner
            return Dimension.UNKNOWN
        if isinstance(node, ast.BinOp):
            left = self.eval(node.left, env)
            right = self.eval(node.right, env)
            return _combine_binop(node.op, left, right)
        if isinstance(node, ast.BoolOp):
            for value in node.values:
                self.eval(value, env)
            return Dimension.UNKNOWN
        if isinstance(node, ast.Compare):
            self.eval(node.left, env)
            for comparator in node.comparators:
                self.eval(comparator, env)
            return Dimension.UNKNOWN
        if isinstance(node, ast.Call):
            return self._eval_call(node, env)
        if isinstance(node, ast.Attribute):
            self.eval(node.value, env)
            dim = self._index.attribute_dimension(node.attr)
            if dim is not Dimension.UNKNOWN:
                return dim
            return infer_dimension(node.attr)
        if isinstance(node, ast.Subscript):
            base = self.eval(node.value, env)
            if not isinstance(node.slice, ast.Slice):
                self.eval(node.slice, env)
            # Containers conventionally carry their element quantity's
            # name, so indexing keeps the container's dimension.
            return base
        if isinstance(node, ast.IfExp):
            self.eval(node.test, env)
            return join(self.eval(node.body, env), self.eval(node.orelse, env))
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            dims = {self.eval(elt, env) for elt in node.elts}
            if len(dims) == 1:
                return dims.pop()
            return Dimension.UNKNOWN
        if isinstance(node, ast.Dict):
            for value in node.values:
                if value is not None:
                    self.eval(value, env)
            return Dimension.UNKNOWN
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            return self._eval_comprehension(node, env)
        if isinstance(node, ast.DictComp):
            comp_env = self._comprehension_env(node.generators, env)
            self.eval(node.key, comp_env)
            self.eval(node.value, comp_env)
            return Dimension.UNKNOWN
        if isinstance(node, ast.NamedExpr):
            value = self.eval(node.value, env)
            if isinstance(node.target, ast.Name):
                env[node.target.id] = value
            return value
        if isinstance(node, ast.Starred):
            return self.eval(node.value, env)
        if isinstance(node, (ast.Await, ast.YieldFrom)):
            return self.eval(node.value, env)
        if isinstance(node, ast.Yield):
            if node.value is not None:
                self.eval(node.value, env)
            return Dimension.UNKNOWN
        if isinstance(node, ast.JoinedStr):
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    self.eval(value.value, env)
            return Dimension.UNKNOWN
        if isinstance(node, ast.Lambda):
            # Opaque: the body runs elsewhere with unknown bindings.
            return Dimension.UNKNOWN
        return Dimension.UNKNOWN

    def _comprehension_env(
        self,
        generators: Sequence[ast.comprehension],
        env: Mapping[str, Dimension],
    ) -> dict[str, Dimension]:
        comp_env = dict(env)
        for gen in generators:
            self.eval(gen.iter, comp_env)
            for name in _target_names(gen.target):
                comp_env[name] = self._seed(name)
            for cond in gen.ifs:
                self.eval(cond, comp_env)
        return comp_env

    def _eval_comprehension(
        self,
        node: ast.ListComp | ast.SetComp | ast.GeneratorExp,
        env: dict[str, Dimension],
    ) -> Dimension:
        comp_env = self._comprehension_env(node.generators, env)
        # The comprehension *is* its elements, dimensionally: this is
        # what lets `sum(j.wcet for j in jobs)` come out as a time.
        return self.eval(node.elt, comp_env)

    def _eval_call(self, node: ast.Call, env: dict[str, Dimension]) -> Dimension:
        func = node.func
        func_name: str | None = None
        if isinstance(func, ast.Name):
            func_name = func.id
        elif isinstance(func, ast.Attribute):
            func_name = func.attr
            self.eval(func.value, env)
        else:
            self.eval(func, env)

        arg_dims = [self.eval(arg, env) for arg in node.args]
        kw_dims = [
            (kw.arg, self.eval(kw.value, env)) for kw in node.keywords
        ]

        if func_name is None:
            return Dimension.UNKNOWN
        if func_name in _DIM_PRESERVING_CALLS:
            dims = set(arg_dims)
            if len(dims) == 1:
                return dims.pop()
            return Dimension.UNKNOWN

        sig = self._index.function(func_name)
        if sig is not None:
            for position, (arg, actual) in enumerate(zip(node.args, arg_dims)):
                if isinstance(arg, ast.Starred):
                    break
                expected = sig.param_dimension(position, None)
                self._check_argument(arg, func_name, expected, actual)
            for (keyword, actual), kw in zip(kw_dims, node.keywords):
                if keyword is None:
                    continue
                expected = sig.param_dimension(-1, keyword)
                self._check_argument(kw.value, func_name, expected, actual)
            if sig.returns is not Dimension.UNKNOWN:
                return sig.returns
        return infer_dimension(func_name)

    def _check_argument(
        self,
        node: ast.expr,
        func_name: str,
        expected: Dimension,
        actual: Dimension,
    ) -> None:
        if (
            expected.is_quantity
            and actual.is_quantity
            and expected is not actual
        ):
            self._event("argument", node, func_name, expected, actual)

    # -- assignment --------------------------------------------------------

    def _check_reassign(
        self,
        node: ast.AST,
        name: str,
        seeded: Dimension,
        value: Dimension,
    ) -> None:
        """Flag an assignment whose value contradicts the name's seed.

        Only fires when *both* sides are positively known quantities: a
        name the vocabulary cannot classify, or a value the flow cannot
        derive, never produces an event.
        """
        if (
            seeded.is_quantity
            and value.is_quantity
            and seeded is not value
        ):
            self._event("reassign", node, name, seeded, value)

    @staticmethod
    def _bind(
        name: str,
        seeded: Dimension,
        value: Dimension,
        env: dict[str, Dimension],
    ) -> None:
        """Record a name binding, strongest knowledge first.

        A flowing *quantity* wins (that is the point of the analysis); a
        vocabulary seed beats a unit-free scalar (``deadline = 10.0`` is
        still a time — the literal just names its magnitude); a scalar is
        remembered only for names the vocabulary cannot classify.
        """
        if value.is_quantity:
            env[name] = value
        elif seeded is not Dimension.UNKNOWN:
            env[name] = seeded
        else:
            env[name] = value

    def _assign(
        self,
        target: ast.expr,
        value_node: ast.expr,
        value: Dimension,
        env: dict[str, Dimension],
    ) -> None:
        if isinstance(target, ast.Name):
            seeded = self._seed(target.id)
            self._check_reassign(target, target.id, seeded, value)
            self._bind(target.id, seeded, value, env)
        elif isinstance(target, (ast.Tuple, ast.List)):
            if isinstance(value_node, (ast.Tuple, ast.List)) and len(
                value_node.elts
            ) == len(target.elts) and not any(
                isinstance(elt, ast.Starred) for elt in target.elts
            ):
                for sub_target, sub_value in zip(target.elts, value_node.elts):
                    sub_dim = self._result.dimension_of(sub_value)
                    self._assign(
                        sub_target,
                        sub_value,
                        sub_dim if sub_dim is not None else Dimension.UNKNOWN,
                        env,
                    )
            else:
                for name in _target_names(target):
                    env[name] = self._seed(name)
        elif isinstance(target, ast.Attribute):
            self.eval(target.value, env)
            attr_dim = self._index.attribute_dimension(target.attr)
            if attr_dim is Dimension.UNKNOWN:
                attr_dim = infer_dimension(target.attr)
            self._check_reassign(target, target.attr, attr_dim, value)
        elif isinstance(target, ast.Subscript):
            self.eval(target.value, env)
            if not isinstance(target.slice, ast.Slice):
                self.eval(target.slice, env)
        elif isinstance(target, ast.Starred):
            self._assign(target.value, value_node, Dimension.UNKNOWN, env)

    # -- statements --------------------------------------------------------

    def run_body(
        self,
        body: Sequence[ast.stmt],
        env: dict[str, Dimension],
        expected_return: Dimension = Dimension.UNKNOWN,
        function_name: str = "",
    ) -> None:
        for stmt in body:
            self._run_stmt(stmt, env, expected_return, function_name)

    def _run_stmt(
        self,
        stmt: ast.stmt,
        env: dict[str, Dimension],
        expected_return: Dimension,
        function_name: str,
    ) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._run_function(stmt, env)
        elif isinstance(stmt, ast.ClassDef):
            for deco in stmt.decorator_list:
                self.eval(deco, env)
            class_env: dict[str, Dimension] = {}
            self.run_body(stmt.body, class_env)
        elif isinstance(stmt, ast.Assign):
            value = self.eval(stmt.value, env)
            for target in stmt.targets:
                self._assign(target, stmt.value, value, env)
        elif isinstance(stmt, ast.AnnAssign):
            declared = annotation_dimension(stmt.annotation)
            if stmt.value is not None:
                value = self.eval(stmt.value, env)
            else:
                value = Dimension.UNKNOWN
            if isinstance(stmt.target, ast.Name):
                name = stmt.target.id
                seeded = declared if declared is not Dimension.UNKNOWN else self._seed(name)
                if stmt.value is not None:
                    self._check_reassign(stmt.target, name, seeded, value)
                    self._bind(name, seeded, value, env)
                else:
                    env[name] = seeded
            elif isinstance(stmt.target, ast.Attribute):
                self.eval(stmt.target.value, env)
        elif isinstance(stmt, ast.AugAssign):
            value = self.eval(stmt.value, env)
            if isinstance(stmt.target, ast.Name):
                current = env.get(stmt.target.id)
                if current is None or current is Dimension.UNKNOWN:
                    current = self._seed(stmt.target.id)
                # Record the pre-assignment dimension on the target node
                # so the flow-aware RPR201 can inspect `energy += power`.
                self._result._record(stmt.target, current)
                combined = _combine_binop(stmt.op, current, value)
                env[stmt.target.id] = (
                    combined if combined is not Dimension.UNKNOWN
                    else self._seed(stmt.target.id)
                )
            elif isinstance(stmt.target, ast.Attribute):
                self.eval(stmt.target.value, env)
                attr_dim = self._index.attribute_dimension(stmt.target.attr)
                if attr_dim is Dimension.UNKNOWN:
                    attr_dim = infer_dimension(stmt.target.attr)
                self._result._record(stmt.target, attr_dim)
            elif isinstance(stmt.target, ast.Subscript):
                self.eval(stmt.target, env)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                actual = self.eval(stmt.value, env)
                if (
                    expected_return.is_quantity
                    and actual.is_quantity
                    and expected_return is not actual
                ):
                    self._event(
                        "return", stmt, function_name, expected_return, actual
                    )
        elif isinstance(stmt, ast.Expr):
            self.eval(stmt.value, env)
        elif isinstance(stmt, ast.If):
            self.eval(stmt.test, env)
            then_env = dict(env)
            else_env = dict(env)
            self.run_body(stmt.body, then_env, expected_return, function_name)
            self.run_body(stmt.orelse, else_env, expected_return, function_name)
            _join_into(env, then_env, else_env)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self.eval(stmt.iter, env)
            loop_env = dict(env)
            for name in _target_names(stmt.target):
                loop_env[name] = self._seed(name)
            self.run_body(stmt.body, loop_env, expected_return, function_name)
            else_env = dict(env)
            self.run_body(stmt.orelse, else_env, expected_return, function_name)
            _join_into(env, loop_env, else_env)
        elif isinstance(stmt, ast.While):
            self.eval(stmt.test, env)
            loop_env = dict(env)
            self.run_body(stmt.body, loop_env, expected_return, function_name)
            else_env = dict(env)
            self.run_body(stmt.orelse, else_env, expected_return, function_name)
            _join_into(env, loop_env, else_env)
        elif isinstance(stmt, ast.Try):
            body_env = dict(env)
            self.run_body(stmt.body, body_env, expected_return, function_name)
            self.run_body(stmt.orelse, body_env, expected_return, function_name)
            branch_envs = [body_env]
            for handler in stmt.handlers:
                handler_env = dict(env)
                if handler.type is not None:
                    self.eval(handler.type, handler_env)
                if handler.name:
                    handler_env[handler.name] = Dimension.UNKNOWN
                self.run_body(
                    handler.body, handler_env, expected_return, function_name
                )
                branch_envs.append(handler_env)
            _join_into(env, *branch_envs)
            self.run_body(stmt.finalbody, env, expected_return, function_name)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self.eval(item.context_expr, env)
                if item.optional_vars is not None:
                    for name in _target_names(item.optional_vars):
                        env[name] = self._seed(name)
            self.run_body(stmt.body, env, expected_return, function_name)
        elif isinstance(stmt, ast.Match):
            self.eval(stmt.subject, env)
            case_envs = []
            for case in stmt.cases:
                case_env = dict(env)
                if case.guard is not None:
                    self.eval(case.guard, case_env)
                self.run_body(case.body, case_env, expected_return, function_name)
                case_envs.append(case_env)
            if case_envs:
                _join_into(env, *case_envs)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    env.pop(target.id, None)
                else:
                    self.eval(target, env)
        elif isinstance(stmt, (ast.Global, ast.Nonlocal)):
            for name in stmt.names:
                env.pop(name, None)
        elif isinstance(stmt, (ast.Assert,)):
            self.eval(stmt.test, env)
            if stmt.msg is not None:
                self.eval(stmt.msg, env)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self.eval(stmt.exc, env)
            if stmt.cause is not None:
                self.eval(stmt.cause, env)
        # Pass / Break / Continue / Import / ImportFrom: no dataflow.

    def _run_function(
        self,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        outer_env: dict[str, Dimension],
    ) -> None:
        for deco in node.decorator_list:
            self.eval(deco, outer_env)
        args = node.args
        for default in (*args.defaults, *args.kw_defaults):
            if default is not None:
                self.eval(default, outer_env)

        env: dict[str, Dimension] = {}
        all_args = [*args.posonlyargs, *args.args, *args.kwonlyargs]
        for arg in all_args:
            dim = annotation_dimension(arg.annotation)
            if dim is Dimension.UNKNOWN:
                dim = self._seed(arg.arg)
            env[arg.arg] = dim
        for arg in (args.vararg, args.kwarg):
            if arg is not None:
                env[arg.arg] = Dimension.UNKNOWN

        expected = annotation_dimension(node.returns)
        if expected is Dimension.UNKNOWN:
            expected = infer_dimension(node.name)
        self.run_body(node.body, env, expected, node.name)


def _target_names(target: ast.expr) -> list[str]:
    names: list[str] = []
    if isinstance(target, ast.Name):
        names.append(target.id)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            names.extend(_target_names(elt))
    elif isinstance(target, ast.Starred):
        names.extend(_target_names(target.value))
    return names


def _join_into(env: dict[str, Dimension], *branches: dict[str, Dimension]) -> None:
    """Merge branch environments back into ``env`` (in place)."""
    keys = set(env)
    for branch in branches:
        keys |= set(branch)
    for key in keys:
        dims = {branch.get(key, env.get(key, Dimension.UNKNOWN)) for branch in branches}
        if len(dims) == 1:
            env[key] = dims.pop()
        else:
            env[key] = Dimension.UNKNOWN


def analyze_module(tree: ast.Module, index: ProjectIndex) -> ModuleDataflow:
    """Interpret one module and return its dataflow facts."""
    result = ModuleDataflow()
    interpreter = _Interpreter(index, result)
    interpreter.run_body(tree.body, env={})
    return result


# ---------------------------------------------------------------------------
# Float-semantics facet: array kinds for the RPR4xx doctrine rules
# ---------------------------------------------------------------------------
#
# The dimension lattice above answers "what physical quantity is this?";
# the facet below answers "what *numpy value shape* is this — a float64
# array, an integer index array, a boolean mask, or a Python scalar?".
# The RPR4xx rules (:mod:`repro.lint.rules_numpy`) need the second
# question: ``np.sum`` over a float array reorders additions, over a
# boolean mask it merely counts; ``int_array * 2.0`` silently promotes,
# ``float_array * 2.0`` does not.  The facet follows the same
# conservative discipline as the dimension interpreter: only *positive*
# knowledge (annotations, numpy constructors, dtype-preserving algebra)
# produces a kind, and any disagreement or opacity decays to UNKNOWN —
# so a finding built on the facet is as trustworthy as the annotation
# it was seeded from.


class ArrayKind(enum.Enum):
    """Abstract numpy value shape of one expression."""

    FLOAT_ARRAY = "float-array"
    INT_ARRAY = "int-array"
    BOOL_ARRAY = "bool-array"
    FLOAT_SCALAR = "float-scalar"
    INT_SCALAR = "int-scalar"
    UNKNOWN = "unknown"

    @property
    def is_array(self) -> bool:
        return self in (
            ArrayKind.FLOAT_ARRAY,
            ArrayKind.INT_ARRAY,
            ArrayKind.BOOL_ARRAY,
        )

    @property
    def base(self) -> str | None:
        """Element base type: ``"float"``, ``"int"``, ``"bool"`` or None."""
        return _BASE_OF.get(self)


_BASE_OF = {
    ArrayKind.FLOAT_ARRAY: "float",
    ArrayKind.FLOAT_SCALAR: "float",
    ArrayKind.INT_ARRAY: "int",
    ArrayKind.INT_SCALAR: "int",
    ArrayKind.BOOL_ARRAY: "bool",
}

#: Annotation spellings seeding the facet (the repo's own aliases plus
#: the builtin scalars).
_ANNOTATION_KINDS = {
    "FloatArray": ArrayKind.FLOAT_ARRAY,
    "IntArray": ArrayKind.INT_ARRAY,
    "BoolArray": ArrayKind.BOOL_ARRAY,
    "float": ArrayKind.FLOAT_SCALAR,
    "int": ArrayKind.INT_SCALAR,
}

_FLOAT_DTYPES = {
    "float64", "double", "float_", "float", "float32", "float16", "half",
    "single", "longdouble", "float128",
}
_INT_DTYPES = {
    "int64", "int32", "int16", "int8", "intp", "int_", "int",
    "uint64", "uint32", "uint16", "uint8",
}
_BOOL_DTYPES = {"bool_", "bool"}

#: ``np.`` constructors returning float64 arrays unless dtype= says else.
_NP_FLOAT_CONSTRUCTORS = {
    "zeros", "ones", "empty", "linspace", "zeros_like", "ones_like",
    "empty_like",
}
#: ``np.`` calls returning integer index arrays.
_NP_INT_RETURNS = {
    "argsort", "argmin", "argmax", "flatnonzero", "searchsorted",
    "lexsort", "argpartition", "digitize", "argwhere",
}
#: ``np.`` calls returning boolean masks.
_NP_BOOL_RETURNS = {
    "isnan", "isinf", "isfinite", "signbit", "logical_and", "logical_or",
    "logical_not", "logical_xor", "isclose",
}
#: Element-wise ``np.`` calls whose result joins their arguments' kinds.
_NP_ELEMENTWISE = {
    "maximum", "minimum", "abs", "absolute", "fabs", "nextafter", "mod",
    "fmod", "copysign", "clip", "power", "float_power", "sqrt", "exp",
    "exp2", "expm1", "log", "log2", "log10", "log1p", "sin", "cos", "tan",
    "hypot", "cbrt", "floor", "ceil", "trunc", "round", "sign",
}
#: Methods preserving the receiver's kind.
_PRESERVING_METHODS = {
    "copy", "reshape", "ravel", "flatten", "view", "clip", "squeeze",
    "transpose",
}
#: ``np.`` scalar constants.
_NP_FLOAT_CONSTANTS = {"nan", "inf", "pi", "e", "euler_gamma"}

#: ``math.`` calls returning Python ints.
_MATH_INT_RETURNS = {"ceil", "floor", "trunc", "isqrt", "comb", "factorial"}


def _tail_name(node: ast.expr) -> str | None:
    """``Name`` id or final ``Attribute`` attr (``npt.NDArray`` -> NDArray)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _dtype_kind(node: ast.expr) -> ArrayKind:
    """Array kind implied by a dtype expression (``np.float64``, "int64")."""
    token: str | None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        token = node.value
    else:
        token = _tail_name(node)
    if token is None:
        return ArrayKind.UNKNOWN
    if token in _FLOAT_DTYPES:
        return ArrayKind.FLOAT_ARRAY
    if token in _INT_DTYPES:
        return ArrayKind.INT_ARRAY
    if token in _BOOL_DTYPES:
        return ArrayKind.BOOL_ARRAY
    return ArrayKind.UNKNOWN


def annotation_array_kind(node: ast.expr | None) -> ArrayKind:
    """Facet seed from a parameter/return annotation."""
    if node is None:
        return ArrayKind.UNKNOWN
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return ArrayKind.UNKNOWN
    name = _tail_name(node)
    if name in _ANNOTATION_KINDS:
        return _ANNOTATION_KINDS[name]
    if isinstance(node, ast.Subscript) and _tail_name(node.value) == "NDArray":
        # npt.NDArray[np.float64] and friends.
        inner = node.slice
        if isinstance(inner, ast.Tuple) and inner.elts:
            inner = inner.elts[-1]
        return _dtype_kind(inner)
    return ArrayKind.UNKNOWN


def _kind_from(base: str, array: bool) -> ArrayKind:
    if base == "float":
        return ArrayKind.FLOAT_ARRAY if array else ArrayKind.FLOAT_SCALAR
    if base == "bool":
        return ArrayKind.BOOL_ARRAY if array else ArrayKind.UNKNOWN
    return ArrayKind.INT_ARRAY if array else ArrayKind.INT_SCALAR


def _join_value(left: ArrayKind, right: ArrayKind) -> ArrayKind:
    """Broadcast join: what ``np.where(c, left, right)`` produces."""
    if left is right:
        return left
    if left is ArrayKind.UNKNOWN or right is ArrayKind.UNKNOWN:
        return ArrayKind.UNKNOWN
    array = left.is_array or right.is_array
    if left.base == "bool" or right.base == "bool":
        if left.base == right.base == "bool":
            return _kind_from("bool", array)
        return ArrayKind.UNKNOWN
    base = "float" if "float" in (left.base, right.base) else "int"
    return _kind_from(base, array)


def _join_flow(left: ArrayKind, right: ArrayKind) -> ArrayKind:
    """Control-flow join: agreement survives, disagreement decays."""
    return left if left is right else ArrayKind.UNKNOWN


def _combine_array_binop(
    op: ast.operator, left: ArrayKind, right: ArrayKind
) -> ArrayKind:
    if isinstance(op, (ast.BitAnd, ast.BitOr, ast.BitXor)):
        if left is right is ArrayKind.BOOL_ARRAY:
            return ArrayKind.BOOL_ARRAY
        return ArrayKind.UNKNOWN
    if not isinstance(
        op, (ast.Add, ast.Sub, ast.Mult, ast.Div, ast.FloorDiv, ast.Mod,
             ast.Pow, ast.MatMult)
    ):
        return ArrayKind.UNKNOWN
    if left is ArrayKind.UNKNOWN or right is ArrayKind.UNKNOWN:
        return ArrayKind.UNKNOWN
    array = left.is_array or right.is_array
    # Arithmetic on bools yields ints (numpy semantics).
    bases = {"bool": "int"}.get(left.base or "", left.base), {
        "bool": "int"
    }.get(right.base or "", right.base)
    if isinstance(op, ast.Div):
        base = "float"
    elif "float" in bases:
        base = "float"
    else:
        base = "int"
    if isinstance(op, ast.MatMult):
        # The result rank depends on operand ranks; keep only the base.
        return _kind_from(base, True) if array else ArrayKind.UNKNOWN
    return _kind_from(base, array)


class ModuleArrays:
    """Per-module facet result: the array kind of every visited node."""

    def __init__(self) -> None:
        self._kinds: dict[int, ArrayKind] = {}

    def kind_of(self, node: ast.AST) -> ArrayKind:
        """Interpreted kind of ``node`` (UNKNOWN if never visited)."""
        return self._kinds.get(id(node), ArrayKind.UNKNOWN)

    def _record(self, node: ast.AST, kind: ArrayKind) -> ArrayKind:
        self._kinds[id(node)] = kind
        return kind


class _ArrayInterpreter:
    def __init__(
        self, result: ModuleArrays, functions: Mapping[str, ArrayKind]
    ) -> None:
        self._result = result
        #: Locally defined functions with facet-typed return annotations.
        self._functions = functions

    # -- expressions -------------------------------------------------------

    def eval(self, node: ast.expr, env: dict[str, ArrayKind]) -> ArrayKind:
        return self._result._record(node, self._eval_inner(node, env))

    def _eval_inner(
        self, node: ast.expr, env: dict[str, ArrayKind]
    ) -> ArrayKind:
        if isinstance(node, ast.Name):
            return env.get(node.id, ArrayKind.UNKNOWN)
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool):
                return ArrayKind.UNKNOWN
            if isinstance(node.value, float):
                return ArrayKind.FLOAT_SCALAR
            if isinstance(node.value, int):
                return ArrayKind.INT_SCALAR
            return ArrayKind.UNKNOWN
        if isinstance(node, ast.UnaryOp):
            inner = self.eval(node.operand, env)
            if isinstance(node.op, (ast.USub, ast.UAdd)):
                return inner
            if isinstance(node.op, ast.Invert):
                return (
                    ArrayKind.BOOL_ARRAY
                    if inner is ArrayKind.BOOL_ARRAY
                    else ArrayKind.UNKNOWN
                )
            return ArrayKind.UNKNOWN
        if isinstance(node, ast.BinOp):
            left = self.eval(node.left, env)
            right = self.eval(node.right, env)
            return _combine_array_binop(node.op, left, right)
        if isinstance(node, ast.BoolOp):
            for value in node.values:
                self.eval(value, env)
            return ArrayKind.UNKNOWN
        if isinstance(node, ast.Compare):
            kinds = [self.eval(node.left, env)]
            kinds.extend(self.eval(c, env) for c in node.comparators)
            if any(kind.is_array for kind in kinds):
                return ArrayKind.BOOL_ARRAY
            return ArrayKind.UNKNOWN
        if isinstance(node, ast.Call):
            return self._eval_call(node, env)
        if isinstance(node, ast.Attribute):
            value_kind = self.eval(node.value, env)
            if (
                isinstance(node.value, ast.Name)
                and node.value.id in ("np", "numpy")
                and node.attr in _NP_FLOAT_CONSTANTS
            ):
                return ArrayKind.FLOAT_SCALAR
            if node.attr == "T" and value_kind.is_array:
                return value_kind
            return ArrayKind.UNKNOWN
        if isinstance(node, ast.Subscript):
            return self._eval_subscript(node, env)
        if isinstance(node, ast.IfExp):
            self.eval(node.test, env)
            return _join_flow(
                self.eval(node.body, env), self.eval(node.orelse, env)
            )
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            for elt in node.elts:
                self.eval(elt, env)
            return ArrayKind.UNKNOWN
        if isinstance(node, ast.Dict):
            for value in node.values:
                if value is not None:
                    self.eval(value, env)
            return ArrayKind.UNKNOWN
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            comp_env = dict(env)
            for gen in node.generators:
                self.eval(gen.iter, comp_env)
                for name in _target_names(gen.target):
                    comp_env[name] = ArrayKind.UNKNOWN
                for cond in gen.ifs:
                    self.eval(cond, comp_env)
            self.eval(node.elt, comp_env)
            return ArrayKind.UNKNOWN
        if isinstance(node, ast.NamedExpr):
            value = self.eval(node.value, env)
            if isinstance(node.target, ast.Name):
                env[node.target.id] = value
            return value
        if isinstance(node, (ast.Starred, ast.Await)):
            return self.eval(node.value, env)
        return ArrayKind.UNKNOWN

    def _eval_subscript(
        self, node: ast.Subscript, env: dict[str, ArrayKind]
    ) -> ArrayKind:
        base = self.eval(node.value, env)
        index_parts = (
            list(node.slice.elts)
            if isinstance(node.slice, ast.Tuple)
            else [node.slice]
        )
        index_kinds = [
            self.eval(part, env)
            for part in index_parts
            if not isinstance(part, ast.Slice)
        ]
        for part in index_parts:
            if isinstance(part, ast.Slice):
                for bound in (part.lower, part.upper, part.step):
                    if bound is not None:
                        self.eval(bound, env)
        if not base.is_array:
            return ArrayKind.UNKNOWN
        # Slicing or fancy indexing (index arrays / boolean masks) keeps
        # the arrayness; plain integer indexing may produce an element
        # *or* a sub-array depending on rank, so it stays UNKNOWN.
        if any(isinstance(part, ast.Slice) for part in index_parts):
            return base
        if index_kinds and all(kind.is_array for kind in index_kinds):
            return base
        return ArrayKind.UNKNOWN

    def _eval_call(
        self, node: ast.Call, env: dict[str, ArrayKind]
    ) -> ArrayKind:
        func = node.func
        arg_kinds = [self.eval(arg, env) for arg in node.args]
        kw_kinds = {
            kw.arg: self.eval(kw.value, env)
            for kw in node.keywords
            if kw.arg is not None
        }
        for kw in node.keywords:
            if kw.arg is None:
                self.eval(kw.value, env)

        if isinstance(func, ast.Name):
            if func.id == "float":
                return ArrayKind.FLOAT_SCALAR
            if func.id in ("int", "len"):
                return ArrayKind.INT_SCALAR
            if func.id in ("abs", "min", "max", "round"):
                kinds = set(arg_kinds)
                if len(kinds) == 1:
                    return kinds.pop()
                return ArrayKind.UNKNOWN
            return self._functions.get(func.id, ArrayKind.UNKNOWN)

        if not isinstance(func, ast.Attribute):
            self.eval(func, env)
            return ArrayKind.UNKNOWN

        receiver_kind = self.eval(func.value, env)
        attr = func.attr
        if isinstance(func.value, ast.Name) and func.value.id in (
            "np", "numpy"
        ):
            return self._eval_np_call(attr, node, arg_kinds, kw_kinds)
        if isinstance(func.value, ast.Name) and func.value.id == "math":
            if attr in _MATH_INT_RETURNS:
                return ArrayKind.INT_SCALAR
            return ArrayKind.FLOAT_SCALAR
        # Method calls on a facet-known receiver.
        if attr == "astype" and (node.args or "dtype" in kw_kinds):
            dtype_node = node.args[0] if node.args else None
            if dtype_node is None:
                for kw in node.keywords:
                    if kw.arg == "dtype":
                        dtype_node = kw.value
            if dtype_node is not None:
                return _dtype_kind(dtype_node)
            return ArrayKind.UNKNOWN
        if receiver_kind.is_array:
            if attr in _PRESERVING_METHODS:
                return receiver_kind
            if attr == "argsort":
                return ArrayKind.INT_ARRAY
            if attr in ("item", "max", "min"):
                base = receiver_kind.base or "int"
                return _kind_from(
                    "int" if base == "bool" else base, array=False
                )
        # A call into a locally defined helper via attribute access
        # (e.g. ``self._helper()``) keeps its annotated return kind.
        return self._functions.get(attr, ArrayKind.UNKNOWN)

    def _eval_np_call(
        self,
        attr: str,
        node: ast.Call,
        arg_kinds: list[ArrayKind],
        kw_kinds: dict[str, ArrayKind],
    ) -> ArrayKind:
        dtype_node = None
        for kw in node.keywords:
            if kw.arg == "dtype":
                dtype_node = kw.value
        if attr in _NP_FLOAT_CONSTRUCTORS:
            if dtype_node is not None:
                return _dtype_kind(dtype_node)
            return ArrayKind.FLOAT_ARRAY
        if attr in ("full", "full_like"):
            if dtype_node is not None:
                return _dtype_kind(dtype_node)
            if len(arg_kinds) >= 2 and arg_kinds[1] is not ArrayKind.UNKNOWN:
                base = arg_kinds[1].base
                if base is not None:
                    return _kind_from(base, array=True)
            return ArrayKind.UNKNOWN
        if attr in ("array", "asarray", "ascontiguousarray"):
            if dtype_node is not None:
                return _dtype_kind(dtype_node)
            if arg_kinds and arg_kinds[0].is_array:
                return arg_kinds[0]
            return ArrayKind.UNKNOWN
        if attr == "arange":
            if dtype_node is not None:
                return _dtype_kind(dtype_node)
            if any(kind is ArrayKind.FLOAT_SCALAR for kind in arg_kinds):
                return ArrayKind.FLOAT_ARRAY
            if arg_kinds and all(
                kind is ArrayKind.INT_SCALAR for kind in arg_kinds
            ):
                return ArrayKind.INT_ARRAY
            return ArrayKind.UNKNOWN
        if attr in _NP_INT_RETURNS:
            return ArrayKind.INT_ARRAY
        if attr in _NP_BOOL_RETURNS:
            return ArrayKind.BOOL_ARRAY
        if attr == "where":
            if len(arg_kinds) == 3:
                return _join_value(arg_kinds[1], arg_kinds[2])
            return ArrayKind.INT_ARRAY if len(arg_kinds) == 1 else (
                ArrayKind.UNKNOWN
            )
        if attr in ("cumsum", "cumprod"):
            if arg_kinds and arg_kinds[0] is not ArrayKind.UNKNOWN:
                base = arg_kinds[0].base
                if base is not None:
                    return _kind_from(
                        "int" if base == "bool" else base, array=True
                    )
            return ArrayKind.UNKNOWN
        if attr in ("concatenate", "stack", "hstack", "vstack"):
            parts = node.args[0] if node.args else None
            if isinstance(parts, (ast.Tuple, ast.List)):
                kinds = {self._result.kind_of(elt) for elt in parts.elts}
                if len(kinds) == 1:
                    return kinds.pop()
            return ArrayKind.UNKNOWN
        if attr in _NP_ELEMENTWISE:
            known = [k for k in arg_kinds if k is not ArrayKind.UNKNOWN]
            if known and len(known) == len(arg_kinds):
                result = known[0]
                for kind in known[1:]:
                    result = _join_value(result, kind)
                return result
            return ArrayKind.UNKNOWN
        return ArrayKind.UNKNOWN

    # -- statements --------------------------------------------------------

    def run_body(
        self, body: Sequence[ast.stmt], env: dict[str, ArrayKind]
    ) -> None:
        for stmt in body:
            self._run_stmt(stmt, env)

    def _assign(
        self, target: ast.expr, value: ArrayKind, env: dict[str, ArrayKind]
    ) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List, ast.Starred)):
            for name in _target_names(target):
                env[name] = ArrayKind.UNKNOWN
        elif isinstance(target, (ast.Attribute, ast.Subscript)):
            self.eval(target, env)

    def _run_stmt(self, stmt: ast.stmt, env: dict[str, ArrayKind]) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._run_function(stmt, env)
        elif isinstance(stmt, ast.ClassDef):
            class_env: dict[str, ArrayKind] = {}
            self.run_body(stmt.body, class_env)
        elif isinstance(stmt, ast.Assign):
            value = self.eval(stmt.value, env)
            for target in stmt.targets:
                self._assign(target, value, env)
        elif isinstance(stmt, ast.AnnAssign):
            declared = annotation_array_kind(stmt.annotation)
            value = (
                self.eval(stmt.value, env)
                if stmt.value is not None
                else ArrayKind.UNKNOWN
            )
            if isinstance(stmt.target, ast.Name):
                env[stmt.target.id] = (
                    declared if declared is not ArrayKind.UNKNOWN else value
                )
            else:
                self._assign(stmt.target, value, env)
        elif isinstance(stmt, ast.AugAssign):
            value = self.eval(stmt.value, env)
            if isinstance(stmt.target, ast.Name):
                current = env.get(stmt.target.id, ArrayKind.UNKNOWN)
                self._result._record(stmt.target, current)
                env[stmt.target.id] = _combine_array_binop(
                    stmt.op, current, value
                )
            else:
                self.eval(stmt.target, env)
        elif isinstance(stmt, (ast.Return, ast.Expr)):
            if stmt.value is not None:
                self.eval(stmt.value, env)
        elif isinstance(stmt, ast.If):
            self.eval(stmt.test, env)
            then_env = dict(env)
            else_env = dict(env)
            self.run_body(stmt.body, then_env)
            self.run_body(stmt.orelse, else_env)
            _join_array_envs(env, then_env, else_env)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self.eval(stmt.iter, env)
            loop_env = dict(env)
            target_kind = ArrayKind.UNKNOWN
            if (
                isinstance(stmt.iter, ast.Call)
                and isinstance(stmt.iter.func, ast.Name)
                and stmt.iter.func.id == "range"
            ):
                target_kind = ArrayKind.INT_SCALAR
            for name in _target_names(stmt.target):
                loop_env[name] = target_kind
            self.run_body(stmt.body, loop_env)
            else_env = dict(env)
            self.run_body(stmt.orelse, else_env)
            _join_array_envs(env, loop_env, else_env)
        elif isinstance(stmt, ast.While):
            self.eval(stmt.test, env)
            loop_env = dict(env)
            self.run_body(stmt.body, loop_env)
            else_env = dict(env)
            self.run_body(stmt.orelse, else_env)
            _join_array_envs(env, loop_env, else_env)
        elif isinstance(stmt, ast.Try):
            body_env = dict(env)
            self.run_body(stmt.body, body_env)
            self.run_body(stmt.orelse, body_env)
            branch_envs = [body_env]
            for handler in stmt.handlers:
                handler_env = dict(env)
                if handler.name:
                    handler_env[handler.name] = ArrayKind.UNKNOWN
                self.run_body(handler.body, handler_env)
                branch_envs.append(handler_env)
            _join_array_envs(env, *branch_envs)
            self.run_body(stmt.finalbody, env)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self.eval(item.context_expr, env)
                if item.optional_vars is not None:
                    for name in _target_names(item.optional_vars):
                        env[name] = ArrayKind.UNKNOWN
            self.run_body(stmt.body, env)
        elif isinstance(stmt, ast.Match):
            self.eval(stmt.subject, env)
            case_envs = []
            for case in stmt.cases:
                case_env = dict(env)
                if case.guard is not None:
                    self.eval(case.guard, case_env)
                self.run_body(case.body, case_env)
                case_envs.append(case_env)
            if case_envs:
                _join_array_envs(env, *case_envs)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    env.pop(target.id, None)
        elif isinstance(stmt, ast.Assert):
            self.eval(stmt.test, env)
        # Raise / Pass / Break / Continue / Import: no facet flow.

    def _run_function(
        self,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        outer_env: dict[str, ArrayKind],
    ) -> None:
        args = node.args
        for default in (*args.defaults, *args.kw_defaults):
            if default is not None:
                self.eval(default, outer_env)
        env: dict[str, ArrayKind] = {}
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            env[arg.arg] = annotation_array_kind(arg.annotation)
        for vararg in (args.vararg, args.kwarg):
            if vararg is not None:
                env[vararg.arg] = ArrayKind.UNKNOWN
        self.run_body(node.body, env)


def _join_array_envs(
    env: dict[str, ArrayKind], *branches: dict[str, ArrayKind]
) -> None:
    keys = set(env)
    for branch in branches:
        keys |= set(branch)
    for key in keys:
        kinds = {
            branch.get(key, env.get(key, ArrayKind.UNKNOWN))
            for branch in branches
        }
        env[key] = kinds.pop() if len(kinds) == 1 else ArrayKind.UNKNOWN


def analyze_arrays(tree: ast.Module) -> ModuleArrays:
    """Run the float-semantics facet over one module."""
    result = ModuleArrays()
    functions: dict[str, ArrayKind] = {}
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            kind = annotation_array_kind(node.returns)
            if kind is not ArrayKind.UNKNOWN:
                functions[node.name] = kind
    interpreter = _ArrayInterpreter(result, functions)
    interpreter.run_body(tree.body, env={})
    return result
