"""Intra-procedural abstract interpretation over the dimension lattice.

PR 3's unit rules classified every expression *syntactically*: an
identifier either matched the naming vocabulary or was invisible.  That
misses the moment a quantity is renamed::

    budget = e_avail          # budget is now an energy
    slack = budget / p_max    # energy / power -> time
    if slack > e_avail:       # time vs energy: flagged here

This module follows values through one function (or the module body) at
a time.  A :class:`_Interpreter` walks statements in order, carrying an
environment ``name -> Dimension``, and evaluates every expression it
meets under the dimensional algebra of the paper's equations (5)-(9):

* ``TIME x POWER -> ENERGY`` (and commuted),
* ``ENERGY / POWER -> TIME``, ``ENERGY / TIME -> POWER``,
* ``quantity +/- same -> same``; adding across dimensions is meaningless
  (the unit rules flag it) and yields UNKNOWN,
* ``quantity x/÷ DIMENSIONLESS -> quantity``; ``same / same ->
  DIMENSIONLESS``; ``quantity % same -> same``.

Dimensions are seeded from three sources, strongest first: the flow
environment (assignments already interpreted), definition-site facts
from the :class:`~repro.lint.index.ProjectIndex` (annotations on
parameters/returns/fields, ``@property`` results), and the naming
vocabulary (:func:`~repro.lint.naming.infer_dimension`).  Control flow
is handled conservatively: ``if``/``try``/``match`` branches are
interpreted separately and joined (agreeing dimensions survive,
disagreements decay to UNKNOWN), loop bodies are interpreted once and
joined with the loop entry, and anything the interpreter cannot see
(lambdas, ``exec``, attribute stores on foreign objects) stays UNKNOWN —
the analysis only ever *adds* certainty, so a finding built on it is as
trustworthy as the vocabulary itself.

Besides per-node dimensions (consumed by the flow-aware RPR1xx/RPR2xx
rules), the interpreter records :class:`DataflowEvent` records for the
three contract violations only flow analysis can see: a name whose
seeded dimension is contradicted by a reassignment, a ``return`` that
contradicts the function's declared dimension, and an argument whose
dimension contradicts the indexed parameter it binds to (RPR203-RPR205).
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Mapping, Sequence

from repro.lint.index import ProjectIndex, annotation_dimension
from repro.lint.naming import Dimension, infer_dimension

__all__ = [
    "DataflowEvent",
    "ModuleDataflow",
    "analyze_module",
    "combine_add",
    "combine_div",
    "combine_mult",
    "join",
]

#: Builtins that preserve the common dimension of their arguments.
_DIM_PRESERVING_CALLS = {"min", "max", "abs", "sum", "sorted", "round", "float"}


# ---------------------------------------------------------------------------
# Lattice algebra
# ---------------------------------------------------------------------------


def join(left: Dimension, right: Dimension) -> Dimension:
    """Control-flow join: agreement survives, disagreement decays."""
    if left is right:
        return left
    return Dimension.UNKNOWN


def combine_add(left: Dimension, right: Dimension) -> Dimension:
    """Dimension of ``left + right`` / ``left - right``."""
    if left is right:
        return left
    # A dimensionless offset leaves a quantity's unit alone (t + 2.0).
    if left is Dimension.DIMENSIONLESS and right.is_quantity:
        return right
    if right is Dimension.DIMENSIONLESS and left.is_quantity:
        return left
    return Dimension.UNKNOWN


def combine_mult(left: Dimension, right: Dimension) -> Dimension:
    """Dimension of ``left * right`` (eq. (6): ``P_n * sr_n`` is energy)."""
    pair = {left, right}
    if pair == {Dimension.TIME, Dimension.POWER}:
        return Dimension.ENERGY
    if left is Dimension.DIMENSIONLESS:
        return right if right.is_quantity or right is left else Dimension.UNKNOWN
    if right is Dimension.DIMENSIONLESS:
        return left if left.is_quantity else Dimension.UNKNOWN
    return Dimension.UNKNOWN


def combine_div(left: Dimension, right: Dimension) -> Dimension:
    """Dimension of ``left / right`` (eq. (6): ``E_avail / P_n`` is time)."""
    if left is right and (left.is_quantity or left is Dimension.DIMENSIONLESS):
        return Dimension.DIMENSIONLESS
    if left is Dimension.ENERGY and right is Dimension.POWER:
        return Dimension.TIME
    if left is Dimension.ENERGY and right is Dimension.TIME:
        return Dimension.POWER
    if right is Dimension.DIMENSIONLESS and left.is_quantity:
        return left
    return Dimension.UNKNOWN


def _combine_binop(op: ast.operator, left: Dimension, right: Dimension) -> Dimension:
    if isinstance(op, (ast.Add, ast.Sub)):
        return combine_add(left, right)
    if isinstance(op, ast.Mult):
        return combine_mult(left, right)
    if isinstance(op, (ast.Div, ast.FloorDiv)):
        return combine_div(left, right)
    if isinstance(op, ast.Mod):
        # t % period: the remainder keeps the operands' unit.
        if left is right and left.is_quantity:
            return left
        return Dimension.UNKNOWN
    if isinstance(op, ast.Pow):
        if left is Dimension.DIMENSIONLESS and right is Dimension.DIMENSIONLESS:
            return Dimension.DIMENSIONLESS
        return Dimension.UNKNOWN
    return Dimension.UNKNOWN


# ---------------------------------------------------------------------------
# Events and results
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class DataflowEvent:
    """One dimension-contract violation found during interpretation.

    ``kind`` is ``"reassign"``, ``"return"``, or ``"argument"``; the
    rules in :mod:`repro.lint.rules_units` map kinds to RPR203-RPR205.
    """

    kind: str
    line: int
    col: int
    #: The contradicted name (variable, function, or parameter).
    name: str
    #: The dimension the contract promises.
    expected: Dimension
    #: The dimension the flow analysis actually derived.
    actual: Dimension


class ModuleDataflow:
    """Per-module analysis result: node dimensions plus contract events."""

    def __init__(self) -> None:
        self._dims: dict[int, Dimension] = {}
        self.events: list[DataflowEvent] = []

    def dimension_of(self, node: ast.AST) -> Dimension | None:
        """Interpreted dimension of ``node``, ``None`` if never visited."""
        return self._dims.get(id(node))

    def _record(self, node: ast.AST, dim: Dimension) -> Dimension:
        self._dims[id(node)] = dim
        return dim


# ---------------------------------------------------------------------------
# The interpreter
# ---------------------------------------------------------------------------


class _Interpreter:
    def __init__(self, index: ProjectIndex, result: ModuleDataflow) -> None:
        self._index = index
        self._result = result

    # -- seeds -------------------------------------------------------------

    def _seed(self, name: str) -> Dimension:
        """Definition-site dimension of a bare name (vocabulary only).

        The index is deliberately *not* consulted for local variables:
        its entries describe attributes and callables, and a local named
        like a field (``stored``) already matches the vocabulary anyway.
        """
        return infer_dimension(name)

    def _event(
        self,
        kind: str,
        node: ast.AST,
        name: str,
        expected: Dimension,
        actual: Dimension,
    ) -> None:
        self._result.events.append(
            DataflowEvent(
                kind=kind,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                name=name,
                expected=expected,
                actual=actual,
            )
        )

    # -- expressions -------------------------------------------------------

    def eval(self, node: ast.expr, env: dict[str, Dimension]) -> Dimension:
        dim = self._eval_inner(node, env)
        return self._result._record(node, dim)

    def _eval_inner(self, node: ast.expr, env: dict[str, Dimension]) -> Dimension:
        if isinstance(node, ast.Name):
            flow = env.get(node.id)
            if flow is not None and flow is not Dimension.UNKNOWN:
                return flow
            return self._seed(node.id)
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool):
                return Dimension.UNKNOWN
            if isinstance(node.value, (int, float)):
                # Bare numeric literals are unit-free scalars; `t * 2.0`
                # stays a time, and RPR101 handles literal comparisons.
                return Dimension.DIMENSIONLESS
            return Dimension.UNKNOWN
        if isinstance(node, ast.UnaryOp):
            inner = self.eval(node.operand, env)
            if isinstance(node.op, (ast.USub, ast.UAdd)):
                return inner
            return Dimension.UNKNOWN
        if isinstance(node, ast.BinOp):
            left = self.eval(node.left, env)
            right = self.eval(node.right, env)
            return _combine_binop(node.op, left, right)
        if isinstance(node, ast.BoolOp):
            for value in node.values:
                self.eval(value, env)
            return Dimension.UNKNOWN
        if isinstance(node, ast.Compare):
            self.eval(node.left, env)
            for comparator in node.comparators:
                self.eval(comparator, env)
            return Dimension.UNKNOWN
        if isinstance(node, ast.Call):
            return self._eval_call(node, env)
        if isinstance(node, ast.Attribute):
            self.eval(node.value, env)
            dim = self._index.attribute_dimension(node.attr)
            if dim is not Dimension.UNKNOWN:
                return dim
            return infer_dimension(node.attr)
        if isinstance(node, ast.Subscript):
            base = self.eval(node.value, env)
            if not isinstance(node.slice, ast.Slice):
                self.eval(node.slice, env)
            # Containers conventionally carry their element quantity's
            # name, so indexing keeps the container's dimension.
            return base
        if isinstance(node, ast.IfExp):
            self.eval(node.test, env)
            return join(self.eval(node.body, env), self.eval(node.orelse, env))
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            dims = {self.eval(elt, env) for elt in node.elts}
            if len(dims) == 1:
                return dims.pop()
            return Dimension.UNKNOWN
        if isinstance(node, ast.Dict):
            for value in node.values:
                if value is not None:
                    self.eval(value, env)
            return Dimension.UNKNOWN
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            return self._eval_comprehension(node, env)
        if isinstance(node, ast.DictComp):
            comp_env = self._comprehension_env(node.generators, env)
            self.eval(node.key, comp_env)
            self.eval(node.value, comp_env)
            return Dimension.UNKNOWN
        if isinstance(node, ast.NamedExpr):
            value = self.eval(node.value, env)
            if isinstance(node.target, ast.Name):
                env[node.target.id] = value
            return value
        if isinstance(node, ast.Starred):
            return self.eval(node.value, env)
        if isinstance(node, (ast.Await, ast.YieldFrom)):
            return self.eval(node.value, env)
        if isinstance(node, ast.Yield):
            if node.value is not None:
                self.eval(node.value, env)
            return Dimension.UNKNOWN
        if isinstance(node, ast.JoinedStr):
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    self.eval(value.value, env)
            return Dimension.UNKNOWN
        if isinstance(node, ast.Lambda):
            # Opaque: the body runs elsewhere with unknown bindings.
            return Dimension.UNKNOWN
        return Dimension.UNKNOWN

    def _comprehension_env(
        self,
        generators: Sequence[ast.comprehension],
        env: Mapping[str, Dimension],
    ) -> dict[str, Dimension]:
        comp_env = dict(env)
        for gen in generators:
            self.eval(gen.iter, comp_env)
            for name in _target_names(gen.target):
                comp_env[name] = self._seed(name)
            for cond in gen.ifs:
                self.eval(cond, comp_env)
        return comp_env

    def _eval_comprehension(
        self,
        node: ast.ListComp | ast.SetComp | ast.GeneratorExp,
        env: dict[str, Dimension],
    ) -> Dimension:
        comp_env = self._comprehension_env(node.generators, env)
        # The comprehension *is* its elements, dimensionally: this is
        # what lets `sum(j.wcet for j in jobs)` come out as a time.
        return self.eval(node.elt, comp_env)

    def _eval_call(self, node: ast.Call, env: dict[str, Dimension]) -> Dimension:
        func = node.func
        func_name: str | None = None
        if isinstance(func, ast.Name):
            func_name = func.id
        elif isinstance(func, ast.Attribute):
            func_name = func.attr
            self.eval(func.value, env)
        else:
            self.eval(func, env)

        arg_dims = [self.eval(arg, env) for arg in node.args]
        kw_dims = [
            (kw.arg, self.eval(kw.value, env)) for kw in node.keywords
        ]

        if func_name is None:
            return Dimension.UNKNOWN
        if func_name in _DIM_PRESERVING_CALLS:
            dims = set(arg_dims)
            if len(dims) == 1:
                return dims.pop()
            return Dimension.UNKNOWN

        sig = self._index.function(func_name)
        if sig is not None:
            for position, (arg, actual) in enumerate(zip(node.args, arg_dims)):
                if isinstance(arg, ast.Starred):
                    break
                expected = sig.param_dimension(position, None)
                self._check_argument(arg, func_name, expected, actual)
            for (keyword, actual), kw in zip(kw_dims, node.keywords):
                if keyword is None:
                    continue
                expected = sig.param_dimension(-1, keyword)
                self._check_argument(kw.value, func_name, expected, actual)
            if sig.returns is not Dimension.UNKNOWN:
                return sig.returns
        return infer_dimension(func_name)

    def _check_argument(
        self,
        node: ast.expr,
        func_name: str,
        expected: Dimension,
        actual: Dimension,
    ) -> None:
        if (
            expected.is_quantity
            and actual.is_quantity
            and expected is not actual
        ):
            self._event("argument", node, func_name, expected, actual)

    # -- assignment --------------------------------------------------------

    def _check_reassign(
        self,
        node: ast.AST,
        name: str,
        seeded: Dimension,
        value: Dimension,
    ) -> None:
        """Flag an assignment whose value contradicts the name's seed.

        Only fires when *both* sides are positively known quantities: a
        name the vocabulary cannot classify, or a value the flow cannot
        derive, never produces an event.
        """
        if (
            seeded.is_quantity
            and value.is_quantity
            and seeded is not value
        ):
            self._event("reassign", node, name, seeded, value)

    @staticmethod
    def _bind(
        name: str,
        seeded: Dimension,
        value: Dimension,
        env: dict[str, Dimension],
    ) -> None:
        """Record a name binding, strongest knowledge first.

        A flowing *quantity* wins (that is the point of the analysis); a
        vocabulary seed beats a unit-free scalar (``deadline = 10.0`` is
        still a time — the literal just names its magnitude); a scalar is
        remembered only for names the vocabulary cannot classify.
        """
        if value.is_quantity:
            env[name] = value
        elif seeded is not Dimension.UNKNOWN:
            env[name] = seeded
        else:
            env[name] = value

    def _assign(
        self,
        target: ast.expr,
        value_node: ast.expr,
        value: Dimension,
        env: dict[str, Dimension],
    ) -> None:
        if isinstance(target, ast.Name):
            seeded = self._seed(target.id)
            self._check_reassign(target, target.id, seeded, value)
            self._bind(target.id, seeded, value, env)
        elif isinstance(target, (ast.Tuple, ast.List)):
            if isinstance(value_node, (ast.Tuple, ast.List)) and len(
                value_node.elts
            ) == len(target.elts) and not any(
                isinstance(elt, ast.Starred) for elt in target.elts
            ):
                for sub_target, sub_value in zip(target.elts, value_node.elts):
                    sub_dim = self._result.dimension_of(sub_value)
                    self._assign(
                        sub_target,
                        sub_value,
                        sub_dim if sub_dim is not None else Dimension.UNKNOWN,
                        env,
                    )
            else:
                for name in _target_names(target):
                    env[name] = self._seed(name)
        elif isinstance(target, ast.Attribute):
            self.eval(target.value, env)
            attr_dim = self._index.attribute_dimension(target.attr)
            if attr_dim is Dimension.UNKNOWN:
                attr_dim = infer_dimension(target.attr)
            self._check_reassign(target, target.attr, attr_dim, value)
        elif isinstance(target, ast.Subscript):
            self.eval(target.value, env)
            if not isinstance(target.slice, ast.Slice):
                self.eval(target.slice, env)
        elif isinstance(target, ast.Starred):
            self._assign(target.value, value_node, Dimension.UNKNOWN, env)

    # -- statements --------------------------------------------------------

    def run_body(
        self,
        body: Sequence[ast.stmt],
        env: dict[str, Dimension],
        expected_return: Dimension = Dimension.UNKNOWN,
        function_name: str = "",
    ) -> None:
        for stmt in body:
            self._run_stmt(stmt, env, expected_return, function_name)

    def _run_stmt(
        self,
        stmt: ast.stmt,
        env: dict[str, Dimension],
        expected_return: Dimension,
        function_name: str,
    ) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._run_function(stmt, env)
        elif isinstance(stmt, ast.ClassDef):
            for deco in stmt.decorator_list:
                self.eval(deco, env)
            class_env: dict[str, Dimension] = {}
            self.run_body(stmt.body, class_env)
        elif isinstance(stmt, ast.Assign):
            value = self.eval(stmt.value, env)
            for target in stmt.targets:
                self._assign(target, stmt.value, value, env)
        elif isinstance(stmt, ast.AnnAssign):
            declared = annotation_dimension(stmt.annotation)
            if stmt.value is not None:
                value = self.eval(stmt.value, env)
            else:
                value = Dimension.UNKNOWN
            if isinstance(stmt.target, ast.Name):
                name = stmt.target.id
                seeded = declared if declared is not Dimension.UNKNOWN else self._seed(name)
                if stmt.value is not None:
                    self._check_reassign(stmt.target, name, seeded, value)
                    self._bind(name, seeded, value, env)
                else:
                    env[name] = seeded
            elif isinstance(stmt.target, ast.Attribute):
                self.eval(stmt.target.value, env)
        elif isinstance(stmt, ast.AugAssign):
            value = self.eval(stmt.value, env)
            if isinstance(stmt.target, ast.Name):
                current = env.get(stmt.target.id)
                if current is None or current is Dimension.UNKNOWN:
                    current = self._seed(stmt.target.id)
                # Record the pre-assignment dimension on the target node
                # so the flow-aware RPR201 can inspect `energy += power`.
                self._result._record(stmt.target, current)
                combined = _combine_binop(stmt.op, current, value)
                env[stmt.target.id] = (
                    combined if combined is not Dimension.UNKNOWN
                    else self._seed(stmt.target.id)
                )
            elif isinstance(stmt.target, ast.Attribute):
                self.eval(stmt.target.value, env)
                attr_dim = self._index.attribute_dimension(stmt.target.attr)
                if attr_dim is Dimension.UNKNOWN:
                    attr_dim = infer_dimension(stmt.target.attr)
                self._result._record(stmt.target, attr_dim)
            elif isinstance(stmt.target, ast.Subscript):
                self.eval(stmt.target, env)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                actual = self.eval(stmt.value, env)
                if (
                    expected_return.is_quantity
                    and actual.is_quantity
                    and expected_return is not actual
                ):
                    self._event(
                        "return", stmt, function_name, expected_return, actual
                    )
        elif isinstance(stmt, ast.Expr):
            self.eval(stmt.value, env)
        elif isinstance(stmt, ast.If):
            self.eval(stmt.test, env)
            then_env = dict(env)
            else_env = dict(env)
            self.run_body(stmt.body, then_env, expected_return, function_name)
            self.run_body(stmt.orelse, else_env, expected_return, function_name)
            _join_into(env, then_env, else_env)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self.eval(stmt.iter, env)
            loop_env = dict(env)
            for name in _target_names(stmt.target):
                loop_env[name] = self._seed(name)
            self.run_body(stmt.body, loop_env, expected_return, function_name)
            else_env = dict(env)
            self.run_body(stmt.orelse, else_env, expected_return, function_name)
            _join_into(env, loop_env, else_env)
        elif isinstance(stmt, ast.While):
            self.eval(stmt.test, env)
            loop_env = dict(env)
            self.run_body(stmt.body, loop_env, expected_return, function_name)
            else_env = dict(env)
            self.run_body(stmt.orelse, else_env, expected_return, function_name)
            _join_into(env, loop_env, else_env)
        elif isinstance(stmt, ast.Try):
            body_env = dict(env)
            self.run_body(stmt.body, body_env, expected_return, function_name)
            self.run_body(stmt.orelse, body_env, expected_return, function_name)
            branch_envs = [body_env]
            for handler in stmt.handlers:
                handler_env = dict(env)
                if handler.type is not None:
                    self.eval(handler.type, handler_env)
                if handler.name:
                    handler_env[handler.name] = Dimension.UNKNOWN
                self.run_body(
                    handler.body, handler_env, expected_return, function_name
                )
                branch_envs.append(handler_env)
            _join_into(env, *branch_envs)
            self.run_body(stmt.finalbody, env, expected_return, function_name)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self.eval(item.context_expr, env)
                if item.optional_vars is not None:
                    for name in _target_names(item.optional_vars):
                        env[name] = self._seed(name)
            self.run_body(stmt.body, env, expected_return, function_name)
        elif isinstance(stmt, ast.Match):
            self.eval(stmt.subject, env)
            case_envs = []
            for case in stmt.cases:
                case_env = dict(env)
                if case.guard is not None:
                    self.eval(case.guard, case_env)
                self.run_body(case.body, case_env, expected_return, function_name)
                case_envs.append(case_env)
            if case_envs:
                _join_into(env, *case_envs)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    env.pop(target.id, None)
                else:
                    self.eval(target, env)
        elif isinstance(stmt, (ast.Global, ast.Nonlocal)):
            for name in stmt.names:
                env.pop(name, None)
        elif isinstance(stmt, (ast.Assert,)):
            self.eval(stmt.test, env)
            if stmt.msg is not None:
                self.eval(stmt.msg, env)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self.eval(stmt.exc, env)
            if stmt.cause is not None:
                self.eval(stmt.cause, env)
        # Pass / Break / Continue / Import / ImportFrom: no dataflow.

    def _run_function(
        self,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        outer_env: dict[str, Dimension],
    ) -> None:
        for deco in node.decorator_list:
            self.eval(deco, outer_env)
        args = node.args
        for default in (*args.defaults, *args.kw_defaults):
            if default is not None:
                self.eval(default, outer_env)

        env: dict[str, Dimension] = {}
        all_args = [*args.posonlyargs, *args.args, *args.kwonlyargs]
        for arg in all_args:
            dim = annotation_dimension(arg.annotation)
            if dim is Dimension.UNKNOWN:
                dim = self._seed(arg.arg)
            env[arg.arg] = dim
        for arg in (args.vararg, args.kwarg):
            if arg is not None:
                env[arg.arg] = Dimension.UNKNOWN

        expected = annotation_dimension(node.returns)
        if expected is Dimension.UNKNOWN:
            expected = infer_dimension(node.name)
        self.run_body(node.body, env, expected, node.name)


def _target_names(target: ast.expr) -> list[str]:
    names: list[str] = []
    if isinstance(target, ast.Name):
        names.append(target.id)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            names.extend(_target_names(elt))
    elif isinstance(target, ast.Starred):
        names.extend(_target_names(target.value))
    return names


def _join_into(env: dict[str, Dimension], *branches: dict[str, Dimension]) -> None:
    """Merge branch environments back into ``env`` (in place)."""
    keys = set(env)
    for branch in branches:
        keys |= set(branch)
    for key in keys:
        dims = {branch.get(key, env.get(key, Dimension.UNKNOWN)) for branch in branches}
        if len(dims) == 1:
            env[key] = dims.pop()
        else:
            env[key] = Dimension.UNKNOWN


def analyze_module(tree: ast.Module, index: ProjectIndex) -> ModuleDataflow:
    """Interpret one module and return its dataflow facts."""
    result = ModuleDataflow()
    interpreter = _Interpreter(index, result)
    interpreter.run_body(tree.body, env={})
    return result
