"""Rule engine of the domain-aware static analyzer.

The engine is deliberately small: rules are classes registered in a
global registry, a :class:`ModuleContext` bundles everything a rule may
inspect about one file (source, AST, suppression table), and
:func:`lint_paths` walks the requested files/directories, runs every
enabled rule, filters suppressed diagnostics, and returns a
:class:`LintReport` with text and JSON renderings.

Two rule shapes exist:

* :class:`Rule` — per-module; sees one :class:`ModuleContext` at a time;
* :class:`ProjectRule` — whole-run; sees every parsed module at once
  (used by cross-file contracts such as scheduler registration).

Suppressions follow the conventional inline-comment shape::

    stored == 0.0  # repro-lint: disable=RPR101  -- exact: <why>

A line-comment of the form ``# repro-lint: disable-file=RPR101`` on any
line suppresses the code for the whole file.  ``disable=all`` works in
both positions.  Unknown codes in a suppression are reported as
``RPR902``, and suppressions that no longer match any live finding are
reported as *stale* (``RPR903``, informational by default;
``repro lint --fail-on-stale`` gates on them and ``--fix`` strips
them) — so suppressions cannot rot silently in either direction.
"""

from __future__ import annotations

import abc
import ast
import dataclasses
import json
import re
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.dataflow import ModuleArrays, ModuleDataflow
    from repro.lint.index import ProjectIndex

__all__ = [
    "ENGINE_VERSION",
    "Diagnostic",
    "LintError",
    "LintReport",
    "ModuleContext",
    "ProjectRule",
    "Rule",
    "SuppressionEntry",
    "all_rules",
    "lint_paths",
    "lint_source",
    "load_modules",
    "register_rule",
    "ruleset_codes",
]

#: Version of the analysis engine, recorded in JSON/SARIF reports and in
#: baseline files so a stale baseline is detected instead of silently
#: matching against different semantics.  Bump on any change to rule
#: behaviour or diagnostic messages.
ENGINE_VERSION = "4.0.0"

#: Code attached to files that fail to parse.
SYNTAX_ERROR_CODE = "RPR901"
#: Code attached to suppression comments naming unknown rule codes.
UNKNOWN_SUPPRESSION_CODE = "RPR902"
#: Code attached to suppression comments that no longer suppress a live
#: finding.  Reported out of band (``LintReport.stale_suppressions``),
#: so a stale note never fails a default run — ``--fail-on-stale`` opts
#: into gating on them and ``--fix`` strips them.
STALE_SUPPRESSION_CODE = "RPR903"

_CODE_RE = re.compile(r"^RPR\d{3}$")
_SUPPRESS_RE = re.compile(
    r"#.*?\brepro-lint:\s*(?P<kind>disable|disable-file)\s*=\s*"
    r"(?P<codes>[A-Za-z0-9_,\s]+?)\s*(?:--|$)"
)


class LintError(Exception):
    """Internal analyzer failure (bad path, broken rule) — exit code 2."""


@dataclasses.dataclass(frozen=True)
class Diagnostic:
    """One finding: a rule code anchored to a file position."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def format_text(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_json(self) -> dict[str, object]:
        return dataclasses.asdict(self)

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.code)


@dataclasses.dataclass(frozen=True)
class SuppressionEntry:
    """One suppressed code slot of one ``# repro-lint:`` directive."""

    line: int
    #: ``"disable"`` (line-scoped) or ``"disable-file"`` (whole file).
    kind: str
    #: The suppressed rule code, or the literal ``"all"``.
    code: str


@dataclasses.dataclass(frozen=True)
class Suppressions:
    """Per-file suppression table parsed from ``# repro-lint:`` comments."""

    by_line: dict[int, frozenset[str]]
    whole_file: frozenset[str]
    #: Every directive slot in source order, for stale detection.  The
    #: default keeps hand-built tables in tests working (they simply
    #: opt out of staleness tracking).
    entries: tuple[SuppressionEntry, ...] = ()

    def is_suppressed(self, line: int, code: str) -> bool:
        if "all" in self.whole_file or code in self.whole_file:
            return True
        codes = self.by_line.get(line, frozenset())
        return "all" in codes or code in codes

    def match(self, line: int, code: str) -> SuppressionEntry | None:
        """The entry suppressing ``(line, code)``, mirroring precedence.

        Whole-file directives win over line directives (as in
        :meth:`is_suppressed`); the matched entry is what stale
        detection marks as *used*.  Falls back to a synthetic entry when
        the table was built by hand without ``entries``.
        """
        for entry in self.entries:
            if entry.kind == "disable-file" and entry.code in ("all", code):
                return entry
        for entry in self.entries:
            if (
                entry.kind == "disable"
                and entry.line == line
                and entry.code in ("all", code)
            ):
                return entry
        if not self.entries and self.is_suppressed(line, code):
            return SuppressionEntry(line=line, kind="disable", code=code)
        return None

    def count(self) -> int:
        """Total suppressed codes — the quantity the baseline ratchets."""
        return sum(len(codes) for codes in self.by_line.values()) + len(
            self.whole_file
        )


def _iter_comments(source: str) -> Iterator[tuple[int, str]]:
    """``(line, text)`` for every real comment token in the source.

    Tokenizing (rather than scanning raw lines) keeps directive-shaped
    text inside string literals — docstring examples, test fixtures —
    from registering as live suppressions (and then as stale ones).
    Falls back to a line scan when the file does not tokenize; the
    engine reports the syntax error separately.
    """
    import io
    import tokenize

    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, ValueError):
        for lineno, text in enumerate(source.splitlines(), start=1):
            if "#" in text:
                yield lineno, text
        return
    for token in tokens:
        if token.type == tokenize.COMMENT:
            yield token.start[0], token.string


def parse_suppressions(
    source: str,
    comments: Sequence[tuple[int, str]] | None = None,
) -> tuple[Suppressions, list[tuple[int, str]]]:
    """Scan source comments for suppression directives.

    Returns the table plus ``(line, code)`` pairs for unknown codes so
    the caller can surface them as :data:`UNKNOWN_SUPPRESSION_CODE`.
    ``comments`` short-circuits the tokenize pass when the caller
    already holds the comment stream (the engine tokenizes each file
    exactly once and shares the result across rule families).
    """
    by_line: dict[int, frozenset[str]] = {}
    whole_file: set[str] = set()
    entries: list[SuppressionEntry] = []
    unknown: list[tuple[int, str]] = []
    if comments is None:
        comments = tuple(_iter_comments(source))
    for lineno, text in comments:
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        codes = set()
        for raw in match.group("codes").split(","):
            code = raw.strip()
            if not code:
                continue
            if code != "all" and not _CODE_RE.match(code):
                unknown.append((lineno, code))
                continue
            codes.add(code)
        kind = match.group("kind")
        entries.extend(
            SuppressionEntry(line=lineno, kind=kind, code=code)
            for code in sorted(codes)
        )
        if kind == "disable-file":
            whole_file |= codes
        else:
            by_line[lineno] = frozenset(codes) | by_line.get(lineno, frozenset())
    return (
        Suppressions(
            by_line=by_line,
            whole_file=frozenset(whole_file),
            entries=tuple(entries),
        ),
        unknown,
    )


@dataclasses.dataclass
class ModuleContext:
    """Everything a rule may inspect about one linted file."""

    path: Path
    #: Path as reported in diagnostics (relative to the lint root when
    #: possible, keeping output stable across checkouts).
    display_path: str
    source: str
    tree: ast.Module
    suppressions: Suppressions
    #: ``(line, text)`` comment tokens, tokenized once by the engine and
    #: shared by every rule family that inspects comments (suppression
    #: parsing, the float-doctrine pragma).  ``None`` only for contexts
    #: built by hand in tests — consumers fall back to tokenizing.
    comments: tuple[tuple[int, str], ...] | None = None
    #: Project-wide signature index, set by the engine before rules run
    #: (``None`` only when a context is built by hand in tests).
    index: "ProjectIndex | None" = None
    _dataflow: "ModuleDataflow | None" = dataclasses.field(
        default=None, repr=False, compare=False
    )
    _arrays: "ModuleArrays | None" = dataclasses.field(
        default=None, repr=False, compare=False
    )
    _walked: "tuple[ast.AST, ...] | None" = dataclasses.field(
        default=None, repr=False, compare=False
    )

    def walk(self) -> "tuple[ast.AST, ...]":
        """Every AST node of the module, in ``ast.walk`` order.

        Computed once and shared by all rule families — a dozen-odd
        rules previously re-traversed the full tree each; iterating
        the cached tuple skips the repeated deque/iter_child_nodes
        machinery.
        """
        if self._walked is None:
            self._walked = tuple(ast.walk(self.tree))
        return self._walked

    @property
    def is_test_code(self) -> bool:
        """Whether the file lives under a ``tests`` directory."""
        return "tests" in Path(self.display_path).parts

    @property
    def dataflow(self) -> "ModuleDataflow":
        """Lazily computed dataflow facts for this module."""
        if self._dataflow is None:
            from repro.lint.dataflow import analyze_module
            from repro.lint.index import build_index

            index = self.index
            if index is None:
                index = build_index([self.tree])
            self._dataflow = analyze_module(self.tree, index)
        return self._dataflow

    @property
    def arrays(self) -> "ModuleArrays":
        """Lazily computed float-semantics (array-kind) facet."""
        if self._arrays is None:
            from repro.lint.dataflow import analyze_arrays

            self._arrays = analyze_arrays(self.tree)
        return self._arrays

    def diagnostic(
        self, node: ast.AST, code: str, message: str
    ) -> Diagnostic:
        return Diagnostic(
            path=self.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            code=code,
            message=message,
        )


class Rule(abc.ABC):
    """A per-module check emitting diagnostics for one rule code."""

    #: Unique ``RPRxxx`` code.
    code: str = ""
    #: Short kebab-case rule name shown by ``repro lint --list-rules``.
    name: str = ""
    #: One-line description of what the rule enforces.
    description: str = ""
    #: Whether the rule applies under ``tests/`` (the relaxed profile).
    #: Determinism rules opt out: test fixtures legitimately use ad-hoc
    #: randomness and wall-clock reads that production code must not.
    run_on_tests: bool = True

    @abc.abstractmethod
    def check_module(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        """Yield diagnostics for one parsed module."""


class ProjectRule(Rule):
    """A whole-run check that sees every parsed module at once."""

    def check_module(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        return iter(())

    @abc.abstractmethod
    def check_project(
        self, modules: Sequence[ModuleContext]
    ) -> Iterator[Diagnostic]:
        """Yield diagnostics computed across all modules."""


_RULES: dict[str, Rule] = {}


def register_rule(rule: Rule) -> Rule:
    """Add a rule instance to the global registry (unique code + name)."""
    if not _CODE_RE.match(rule.code):
        raise LintError(f"rule code must match RPRxxx, got {rule.code!r}")
    if rule.code in _RULES:
        raise LintError(f"duplicate rule code {rule.code}")
    if any(existing.name == rule.name for existing in _RULES.values()):
        raise LintError(f"duplicate rule name {rule.name!r}")
    _RULES[rule.code] = rule
    return rule


def all_rules() -> tuple[Rule, ...]:
    """Registered rules, sorted by code (built-ins loaded on demand)."""
    _ensure_builtin_rules()
    return tuple(_RULES[code] for code in sorted(_RULES))


def ruleset_codes(rules: Sequence[Rule] | None = None) -> tuple[str, ...]:
    """Sorted rule codes of a run — the ruleset version for baselines."""
    selected = all_rules() if rules is None else tuple(rules)
    return tuple(sorted(rule.code for rule in selected))


_BUILTINS_LOADED = False


def _ensure_builtin_rules() -> None:
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    _BUILTINS_LOADED = True
    # Importing the rule modules registers their rules as a side effect.
    from repro.lint import (  # noqa: F401
        parity,
        rules_comparison,
        rules_contracts,
        rules_determinism,
        rules_numpy,
        rules_purity,
        rules_units,
    )


@dataclasses.dataclass
class LintReport:
    """Outcome of one lint run over a set of files."""

    diagnostics: list[Diagnostic] = dataclasses.field(default_factory=list)
    files_checked: int = 0
    #: Total inline/whole-file suppression slots across the linted files;
    #: the baseline ratchet refuses silent growth of this number.
    suppression_count: int = 0
    #: Info-level :data:`STALE_SUPPRESSION_CODE` notes for suppression
    #: slots that matched no finding in this run.  Kept out of
    #: ``diagnostics`` so a stale note never flips ``ok`` — the CLI's
    #: ``--fail-on-stale`` gates on it explicitly.
    stale_suppressions: list[Diagnostic] = dataclasses.field(
        default_factory=list
    )
    #: Wall-clock duration of the run; set by :func:`lint_paths` and
    #: surfaced as a timing line in the text report.  Excluded from
    #: :meth:`to_json` when unset so snippet-level reports stay
    #: byte-stable.
    elapsed_seconds: float | None = None

    @property
    def ok(self) -> bool:
        return not self.diagnostics

    def counts_by_code(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for diag in self.diagnostics:
            counts[diag.code] = counts.get(diag.code, 0) + 1
        return dict(sorted(counts.items()))

    def format_text(self) -> str:
        lines = [d.format_text() for d in self.diagnostics]
        if self.diagnostics:
            _ensure_builtin_rules()
            lines.append("")
            lines.append("findings by rule:")
            for code, n in self.counts_by_code().items():
                rule = _RULES.get(code)
                label = f"  {code}"
                if rule is not None:
                    label += f" ({rule.name})"
                elif code == SYNTAX_ERROR_CODE:
                    label += " (syntax-error)"
                elif code == UNKNOWN_SUPPRESSION_CODE:
                    label += " (unknown-suppression)"
                lines.append(f"{label}: {n}")
            lines.append(
                f"{len(self.diagnostics)} finding(s) in "
                f"{self.files_checked} file(s)"
            )
        else:
            lines.append(f"no findings in {self.files_checked} file(s)")
        if self.stale_suppressions:
            lines.append("")
            lines.append(
                f"{len(self.stale_suppressions)} stale suppression(s) "
                "(match no finding; remove with --fix):"
            )
            lines.extend(
                f"  {diag.format_text()}" for diag in self.stale_suppressions
            )
        if self.elapsed_seconds is not None:
            lines.append(
                f"checked {self.files_checked} file(s) in "
                f"{self.elapsed_seconds:.2f}s"
            )
        return "\n".join(lines)

    def format_github(self) -> str:
        """GitHub Actions workflow commands — one annotation per finding.

        Findings render as ``::error`` and stale-suppression notes as
        ``::notice``, so a PR touched by the lint job shows each
        finding inline at its file/line without any SARIF upload round
        trip.  Escaping follows the workflow-command rules: ``%``,
        ``\\r``, ``\\n`` in all fields; ``:`` and ``,`` additionally in
        property values.
        """
        lines = [
            _github_command("error", diag) for diag in self.diagnostics
        ]
        lines.extend(
            _github_command("notice", diag)
            for diag in self.stale_suppressions
        )
        return "\n".join(lines)

    def to_json(self) -> str:
        payload = {
            "engine_version": ENGINE_VERSION,
            "ruleset": list(ruleset_codes()),
            "files_checked": self.files_checked,
            "findings": [d.to_json() for d in self.diagnostics],
            "counts": self.counts_by_code(),
            "suppressions": self.suppression_count,
            "stale_suppressions": [
                d.to_json() for d in self.stale_suppressions
            ],
            "ok": self.ok,
        }
        if self.elapsed_seconds is not None:
            payload["elapsed_seconds"] = round(self.elapsed_seconds, 3)
        return json.dumps(payload, indent=2, sort_keys=True)


def _github_escape_data(text: str) -> str:
    return text.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")


def _github_escape_property(text: str) -> str:
    return (
        _github_escape_data(text).replace(":", "%3A").replace(",", "%2C")
    )


def _github_command(level: str, diag: Diagnostic) -> str:
    properties = ",".join(
        f"{key}={_github_escape_property(value)}"
        for key, value in (
            ("file", diag.path),
            ("line", str(diag.line)),
            ("col", str(diag.col)),
            ("title", diag.code),
        )
    )
    return f"::{level} {properties}::{_github_escape_data(diag.message)}"


def _iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    for path in paths:
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path
        elif not path.exists():
            raise LintError(f"no such file or directory: {path}")
        # Non-python files passed explicitly are skipped silently so
        # ``repro lint $(git diff --name-only)`` just works.


def _display_path(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def _parse_module(
    path: Path, root: Path, source: str
) -> tuple[ModuleContext | None, list[Diagnostic]]:
    display = _display_path(path, root)
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return None, [
            Diagnostic(
                path=display,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                code=SYNTAX_ERROR_CODE,
                message=f"syntax error: {exc.msg}",
            )
        ]
    comments = tuple(_iter_comments(source))
    suppressions, unknown = parse_suppressions(source, comments=comments)
    ctx = ModuleContext(
        path=path,
        display_path=display,
        source=source,
        tree=tree,
        suppressions=suppressions,
        comments=comments,
    )
    extras = [
        Diagnostic(
            path=display,
            line=line,
            col=1,
            code=UNKNOWN_SUPPRESSION_CODE,
            message=f"suppression names unknown rule code {code!r}",
        )
        for line, code in unknown
    ]
    return ctx, extras


def lint_source(
    source: str,
    filename: str = "<snippet>",
    rules: Sequence[Rule] | None = None,
) -> LintReport:
    """Lint one in-memory snippet (the test-fixture entry point)."""
    ctx, extras = _parse_module(Path(filename), Path("."), source)
    report = LintReport(files_checked=1)
    report.diagnostics.extend(extras)
    if ctx is None:
        return report
    report.suppression_count = ctx.suppressions.count()
    selected = all_rules() if rules is None else tuple(rules)
    diagnostics, stale = _run_rules([ctx], selected)
    report.diagnostics.extend(diagnostics)
    report.diagnostics.sort(key=Diagnostic.sort_key)
    report.stale_suppressions = stale
    return report


def _check_modules(
    modules: Sequence[ModuleContext],
    per_module: Sequence[Rule],
    used: dict[str, set[SuppressionEntry]],
) -> set[Diagnostic]:
    """Run per-module rules over ``modules``, honouring suppressions.

    ``used`` (keyed by display path so worker results merge across
    process boundaries) collects the suppression entries that matched a
    finding; the caller turns the complement into stale notes.
    """
    out: set[Diagnostic] = set()
    for ctx in modules:
        for rule in per_module:
            if ctx.is_test_code and not rule.run_on_tests:
                continue
            for diag in rule.check_module(ctx):
                entry = ctx.suppressions.match(diag.line, diag.code)
                if entry is None:
                    out.add(diag)
                else:
                    used[ctx.display_path].add(entry)
    return out


def _check_project(
    modules: Sequence[ModuleContext],
    project: Sequence[Rule],
    used: dict[str, set[SuppressionEntry]],
) -> set[Diagnostic]:
    """Run project rules (always in the parent process)."""
    out: set[Diagnostic] = set()
    by_display = {ctx.display_path: ctx for ctx in modules}
    for rule in project:
        assert isinstance(rule, ProjectRule)
        for diag in rule.check_project(modules):
            owner = by_display.get(diag.path)
            entry = (
                None
                if owner is None
                else owner.suppressions.match(diag.line, diag.code)
            )
            if owner is None or entry is None:
                out.add(diag)
            else:
                used[owner.display_path].add(entry)
    return out


def _stale_notes(
    modules: Sequence[ModuleContext],
    used: dict[str, set[SuppressionEntry]],
) -> list[Diagnostic]:
    stale: list[Diagnostic] = []
    for ctx in modules:
        for entry in ctx.suppressions.entries:
            if entry in used[ctx.display_path]:
                continue
            stale.append(
                Diagnostic(
                    path=ctx.display_path,
                    line=entry.line,
                    col=1,
                    code=STALE_SUPPRESSION_CODE,
                    message=(
                        f"stale suppression: {entry.kind}={entry.code} "
                        "matches no finding from this run"
                    ),
                )
            )
    stale.sort(key=Diagnostic.sort_key)
    return stale


def _attach_index(modules: Sequence[ModuleContext]) -> None:
    from repro.lint.index import build_index

    index = build_index([ctx.tree for ctx in modules])
    for ctx in modules:
        ctx.index = index


def _run_rules(
    modules: Sequence[ModuleContext], rules: Sequence[Rule]
) -> tuple[list[Diagnostic], list[Diagnostic]]:
    """Run rules, filter suppressed findings, and detect stale slots.

    Returns ``(diagnostics, stale_suppressions)``: the surviving
    findings, plus one :data:`STALE_SUPPRESSION_CODE` note per
    suppression slot that matched no finding anywhere in the run.
    """
    _attach_index(modules)
    # A set: chained comparisons can trip the same rule twice at one
    # position; one finding per (position, code, message) is enough.
    used: dict[str, set[SuppressionEntry]] = {
        ctx.display_path: set() for ctx in modules
    }
    per_module = [r for r in rules if not isinstance(r, ProjectRule)]
    project = [r for r in rules if isinstance(r, ProjectRule)]
    out = _check_modules(modules, per_module, used)
    out |= _check_project(modules, project, used)
    stale = _stale_notes(modules, used)
    return sorted(out, key=Diagnostic.sort_key), stale


def _lint_worker(
    payload: tuple[int, int, list[tuple[str, str, str]]],
) -> tuple[
    list[Diagnostic], dict[str, list[SuppressionEntry]]
]:
    """One ``--jobs`` child: per-module rules over an interleaved chunk.

    Every worker re-parses the full file set (parsing is cheap; the
    dataflow/array analyses the per-module rules trigger are the
    expensive part) so the cross-module signature index each child
    builds is identical to the parent's.  Project rules always run in
    the parent.  Module-level so it pickles under spawn.
    """
    chunk_index, jobs, files = payload
    trees: list[ast.Module] = []
    chunk: list[ModuleContext] = []
    position = 0
    for path_str, display, source in files:
        try:
            tree = ast.parse(source, filename=path_str)
        except SyntaxError:
            continue  # the parent already reported RPR901
        trees.append(tree)
        if position % jobs == chunk_index:
            # Tokenize/suppression work only for this worker's share;
            # the other trees are parsed solely to reproduce the
            # parent's cross-module signature index.
            comments = tuple(_iter_comments(source))
            suppressions, _unknown = parse_suppressions(
                source, comments=comments
            )
            chunk.append(
                ModuleContext(
                    path=Path(path_str),
                    display_path=display,
                    source=source,
                    tree=tree,
                    suppressions=suppressions,
                    comments=comments,
                )
            )
        position += 1
    from repro.lint.index import build_index

    index = build_index(trees)
    for ctx in chunk:
        ctx.index = index
    per_module = [
        rule for rule in all_rules() if not isinstance(rule, ProjectRule)
    ]
    used: dict[str, set[SuppressionEntry]] = {
        ctx.display_path: set() for ctx in chunk
    }
    diagnostics = _check_modules(chunk, per_module, used)
    return (
        sorted(diagnostics, key=Diagnostic.sort_key),
        {
            display: sorted(
                entries, key=lambda e: (e.line, e.kind, e.code)
            )
            for display, entries in used.items()
        },
    )


def _run_rules_parallel(
    modules: Sequence[ModuleContext], jobs: int
) -> tuple[list[Diagnostic], list[Diagnostic]]:
    """``--jobs N`` execution: fan per-module rules out over processes.

    Interleaved chunks (``modules[i::n]``) balance the heavy files
    (sorted directory walks cluster big modules together) and the final
    sort restores a deterministic finding order regardless of worker
    completion order.
    """
    from concurrent.futures import ProcessPoolExecutor

    files = [
        (str(ctx.path), ctx.display_path, ctx.source) for ctx in modules
    ]
    n = max(1, min(jobs, len(modules)))
    used: dict[str, set[SuppressionEntry]] = {
        ctx.display_path: set() for ctx in modules
    }
    out: set[Diagnostic] = set()
    with ProcessPoolExecutor(max_workers=n) as pool:
        results = list(
            pool.map(_lint_worker, [(i, n, files) for i in range(n)])
        )
    for diagnostics, worker_used in results:
        out.update(diagnostics)
        for display, entries in worker_used.items():
            used[display].update(entries)
    _attach_index(modules)
    project = [
        rule for rule in all_rules() if isinstance(rule, ProjectRule)
    ]
    out |= _check_project(modules, project, used)
    stale = _stale_notes(modules, used)
    return sorted(out, key=Diagnostic.sort_key), stale


def load_modules(
    paths: Sequence[str | Path],
    root: str | Path | None = None,
) -> tuple[list[ModuleContext], list[Diagnostic]]:
    """Read and parse every python file under ``paths``.

    Returns the parsed module contexts plus the parse-stage diagnostics
    (:data:`SYNTAX_ERROR_CODE` for unparseable files,
    :data:`UNKNOWN_SUPPRESSION_CODE` for bad directives).  Shared by
    :func:`lint_paths` and the purity certifier CLI so both load a tree
    identically.
    """
    base = Path(root) if root is not None else Path.cwd()
    modules: list[ModuleContext] = []
    extras: list[Diagnostic] = []
    for path in _iter_python_files(Path(p) for p in paths):
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise LintError(f"cannot read {path}: {exc}") from exc
        ctx, diags = _parse_module(path, base, source)
        extras.extend(diags)
        if ctx is not None:
            modules.append(ctx)
    return modules, extras


def lint_paths(
    paths: Sequence[str | Path],
    root: str | Path | None = None,
    rules: Sequence[Rule] | None = None,
    jobs: int = 1,
) -> LintReport:
    """Lint files/directories and return the aggregated report.

    ``root`` anchors the relative display paths (defaults to the current
    working directory).  Directories are walked recursively for ``*.py``.
    ``jobs`` > 1 fans per-module rules out over worker processes — only
    with the default ruleset (custom rule objects may not pickle); a
    filtered ``rules`` argument falls back to serial execution.  Finding
    order is deterministic either way.
    """
    import time

    started = time.perf_counter()
    report = LintReport()
    modules, extras = load_modules(paths, root=root)
    report.files_checked = len(modules) + sum(
        1 for diag in extras if diag.code == SYNTAX_ERROR_CODE
    )
    report.diagnostics.extend(extras)
    report.suppression_count = sum(
        ctx.suppressions.count() for ctx in modules
    )
    if jobs > 1 and rules is None and len(modules) > 1:
        diagnostics, stale = _run_rules_parallel(modules, jobs)
    else:
        selected = all_rules() if rules is None else tuple(rules)
        diagnostics, stale = _run_rules(modules, selected)
    report.diagnostics.extend(diagnostics)
    report.diagnostics.sort(key=Diagnostic.sort_key)
    report.stale_suppressions = stale
    report.elapsed_seconds = time.perf_counter() - started
    return report
