"""Domain-aware static analysis for the EA-DVFS reproduction.

``repro lint`` runs AST-based checks that encode the conventions the
simulation's correctness rests on (see ``docs/static-analysis.md``):

=========  ==============================================================
code       rule
=========  ==============================================================
RPR001     no stdlib ``random`` (hidden global state)
RPR002     no wall-clock reads feeding simulated results
RPR003     ``np.random.default_rng`` needs an explicit seed
RPR004     no hash-ordered set iteration
RPR101     tolerant comparison for quantity-vs-float-literal
RPR102     tolerant comparison for quantity-vs-quantity
RPR201     no additive mixing of time/energy/power units
RPR202     no cross-unit comparisons
RPR301     Scheduler subclasses override ``decide`` and declare ``name``
RPR302     schedulers must be reachable via ``sched/registry.py``
RPR303     frozen ``ScenarioSpec`` is never mutated
RPR901     (engine) file failed to parse
RPR902     (engine) suppression names an unknown rule code
=========  ==============================================================

Suppress a finding with an inline ``# repro-lint: disable=RPR101`` (or
``disable-file=`` for the whole file), ideally followed by a short
``-- why`` note.
"""

from repro.lint.engine import (
    Diagnostic,
    LintError,
    LintReport,
    Rule,
    all_rules,
    lint_paths,
    lint_source,
    register_rule,
)
from repro.lint.naming import Dimension, infer_dimension

__all__ = [
    "Diagnostic",
    "Dimension",
    "LintError",
    "LintReport",
    "Rule",
    "all_rules",
    "infer_dimension",
    "lint_paths",
    "lint_source",
    "register_rule",
]
