"""Domain-aware static analysis for the EA-DVFS reproduction.

``repro lint`` runs AST-based checks that encode the conventions the
simulation's correctness rests on (see ``docs/static-analysis.md``):

=========  ==============================================================
code       rule
=========  ==============================================================
RPR001     no stdlib ``random`` (hidden global state)
RPR002     no wall-clock reads feeding simulated results
RPR003     ``np.random.default_rng`` needs an explicit seed
RPR004     no hash-ordered set iteration
RPR101     tolerant comparison for quantity-vs-float-literal
RPR102     tolerant comparison for quantity-vs-quantity
RPR201     no additive mixing of time/energy/power units
RPR202     no cross-unit comparisons
RPR203     no reassignment contradicting a name's dimension
RPR204     no return contradicting the function's dimension
RPR205     no wrong-dimension argument to an indexed function
RPR301     Scheduler subclasses override ``decide`` and declare ``name``
RPR302     schedulers must be reachable via ``sched/registry.py``
RPR303     frozen ``ScenarioSpec`` is never mutated
RPR401     no nondeterministic-order float reductions in doctrine modules
RPR402     no SIMD-divergent ufuncs (``np.power`` etc.) in doctrine modules
RPR403     no silent int→float dtype promotion in doctrine modules
RPR404     sorts on float arrays must request a stable kind
RPR405     doctrine kernels must not mutate caller-owned input arrays
RPR410     scalar↔batch parity: twin missing or float-ops drifted from pin
RPR501     no wall-clock read reachable from a hash-closure root
RPR502     no unseeded/global randomness reachable from a hash-closure root
RPR503     no env/filesystem access reachable from a hash-closure root
RPR504     no set-order-dependent iteration reachable from a hash-closure root
RPR505     no id()/hash()/locale or global mutation in the hash closure
RPR506     file writes use the atomic write-temp/fsync/rename protocol
RPR507     no ``os.replace``/``os.rename`` without fsyncing the payload
RPR508     worker-submitted functions must not mutate module-global state
RPR509     worker-submitted functions must not use an import-time RNG
RPR901     (engine) file failed to parse
RPR902     (engine) suppression names an unknown rule code
RPR903     (engine) suppression matches no finding (stale)
=========  ==============================================================

Since PR 5 the quantity rules (RPR1xx/RPR2xx) are *flow-aware*: an
abstract interpreter (:mod:`repro.lint.dataflow`) propagates dimensions
through assignments, unpacking, branches, and arithmetic — seeded from
the naming vocabulary, from ``Seconds``/``Joules``/``Watts`` annotations,
and from a whole-project signature index (:mod:`repro.lint.index`).
The determinism family (RPR00x) is relaxed under ``tests/``.

The float-determinism family (RPR4xx, :mod:`repro.lint.rules_numpy`)
enforces the bit-exact vectorization doctrine, but only in modules that
opt in with a ``# repro: float-doctrine`` comment line; an array-kind
facet of the dataflow interpreter tracks which expressions are float
arrays so the rules stay quiet elsewhere.  The parity checker
(:mod:`repro.lint.parity`) pins the float-operation fingerprint of each
scalar decision function and its vectorized twin and raises RPR410 when
either side drifts from its pin.

The purity family (RPR5xx, :mod:`repro.lint.rules_purity`) is
*interprocedural*: a cross-module call graph
(:mod:`repro.lint.callgraph`) plus a fixed-point taint analysis
(:mod:`repro.lint.purity`) certify the determinism boundaries declared
in ``purity-roots.toml`` — the ``canonical_json``/``spec_hash`` hash
closure, the atomic-commit write path, and the worker process boundary.
``repro lint --certify`` prints the certification report and
``repro lint --explain-path RPR501:<func>`` shows the call chain from a
root to a flagged taint.

Suppress a finding with an inline ``# repro-lint: disable=RPR101`` (or
``disable-file=`` for the whole file), ideally followed by a short
``-- why`` note.  CI ratchets the suppression count and the finding set
through ``lint-baseline.json`` (``--baseline`` / ``--update-baseline``),
and ``repro lint --fix`` applies the safe mechanical rewrites.
"""

from repro.lint.baseline import Baseline, BaselineComparison
from repro.lint.dataflow import (
    ArrayKind,
    ModuleArrays,
    ModuleDataflow,
    analyze_arrays,
    analyze_module,
)
from repro.lint.callgraph import CallGraph, build_call_graph
from repro.lint.engine import (
    ENGINE_VERSION,
    Diagnostic,
    LintError,
    LintReport,
    Rule,
    all_rules,
    lint_paths,
    lint_source,
    load_modules,
    register_rule,
    ruleset_codes,
)
from repro.lint.fixers import apply_fixes
from repro.lint.index import ProjectIndex, build_index
from repro.lint.naming import Dimension, infer_dimension
from repro.lint.parity import PAIRS, FunctionRef, ParityPair
from repro.lint.purity import (
    PurityAnalysis,
    PurityClass,
    Taint,
    analyze as analyze_purity,
    certify,
    load_manifest,
    parse_manifest,
)
from repro.lint.sarif import to_sarif

__all__ = [
    "ENGINE_VERSION",
    "PAIRS",
    "ArrayKind",
    "Baseline",
    "BaselineComparison",
    "CallGraph",
    "Diagnostic",
    "Dimension",
    "FunctionRef",
    "LintError",
    "LintReport",
    "ModuleArrays",
    "ModuleDataflow",
    "ParityPair",
    "ProjectIndex",
    "PurityAnalysis",
    "PurityClass",
    "Rule",
    "Taint",
    "all_rules",
    "analyze_arrays",
    "analyze_module",
    "analyze_purity",
    "apply_fixes",
    "build_call_graph",
    "build_index",
    "certify",
    "infer_dimension",
    "lint_paths",
    "lint_source",
    "load_manifest",
    "load_modules",
    "parse_manifest",
    "register_rule",
    "ruleset_codes",
    "to_sarif",
]
