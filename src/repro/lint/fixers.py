"""Conservative auto-fixes: the machinery behind ``repro lint --fix``.

A fixer turns a diagnostic into a concrete text edit.  Every fixer
declares whether it is *safe* — meaning the rewrite is behaviour-
preserving up to the tolerance semantics the rule demands — and
``--fix`` applies **only** safe fixers; unsafe ones exist to document
what a fix would look like (``--fix`` never selects them, regardless of
flags, because an unsafe rewrite such as inventing an RNG seed changes
simulated results).

Two safe fixers exist.  One rewrites raw comparisons flagged by
RPR101/RPR102 into the :mod:`repro.timeutils` predicates::

    a < b          ->  time_lt(a, b)
    a != b         ->  (not time_eq(a, b))

The other (:class:`StaleSuppressionFixer`) strips ``# repro-lint:``
directives reported stale (RPR903) — removing a suppression that
suppresses nothing is behaviour-preserving by definition.

Chained comparisons (``a < b < c``) are skipped — splitting them is a
judgement call.  Required predicate imports are merged into an existing
``from repro.timeutils import ...`` line or inserted after the last
top-level import.  Edits are applied bottom-up from exact AST spans, the
result must re-parse or the file is left untouched, and the engine is
re-run afterwards so the caller sees the verified post-fix state —
which also makes ``--fix`` idempotent: a rewritten site is a function
call, which the comparison rules never flag.
"""

from __future__ import annotations

import abc
import ast
import dataclasses
import re
from pathlib import Path
from typing import Iterable, Sequence

from repro.lint.engine import (
    Diagnostic,
    LintError,
    LintReport,
    ModuleContext,
    _parse_module,
    lint_paths,
)

__all__ = [
    "FixOutcome",
    "Fixer",
    "SeededRngFixer",
    "StaleSuppressionFixer",
    "TextEdit",
    "TolerantComparisonFixer",
    "all_fixers",
    "apply_fixes",
]

_PREDICATE_FOR_OP: dict[type[ast.cmpop], str] = {
    ast.Eq: "time_eq",
    ast.NotEq: "time_eq",
    ast.Lt: "time_lt",
    ast.LtE: "time_le",
    ast.Gt: "time_gt",
    ast.GtE: "time_ge",
}


@dataclasses.dataclass(frozen=True)
class TextEdit:
    """Replace the span ``[start, end)`` (AST coordinates) with text."""

    start_line: int  # 1-based
    start_col: int  # 0-based
    end_line: int
    end_col: int
    replacement: str


@dataclasses.dataclass(frozen=True)
class PlannedFix:
    """One edit plus the ``repro.timeutils`` names it requires."""

    edit: TextEdit
    imports: frozenset[str] = frozenset()


class Fixer(abc.ABC):
    """Turns diagnostics of specific codes into planned edits."""

    #: Short kebab-case identifier.
    name: str = ""
    #: Rule codes this fixer can address.
    codes: frozenset[str] = frozenset()
    #: Safe fixers preserve behaviour (up to the rule's own tolerance
    #: semantics) and may be applied mechanically; unsafe fixers change
    #: observable behaviour and are documentation-only.
    safe: bool = False
    description: str = ""

    @abc.abstractmethod
    def plan(
        self, ctx: ModuleContext, diagnostics: Sequence[Diagnostic]
    ) -> list[PlannedFix]:
        """Planned fixes for this module's diagnostics (may be empty)."""


class TolerantComparisonFixer(Fixer):
    name = "tolerant-comparison"
    codes = frozenset({"RPR101", "RPR102"})
    safe = True
    description = (
        "rewrite raw quantity comparisons into the repro.timeutils "
        "predicates (a < b -> time_lt(a, b))"
    )

    def plan(
        self, ctx: ModuleContext, diagnostics: Sequence[Diagnostic]
    ) -> list[PlannedFix]:
        wanted = {
            (diag.line, diag.col)
            for diag in diagnostics
            if diag.code in self.codes
        }
        if not wanted:
            return []
        fixes: list[PlannedFix] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            if (node.lineno, node.col_offset + 1) not in wanted:
                continue
            if len(node.ops) != 1:
                continue  # chains need human judgement
            op = node.ops[0]
            predicate = _PREDICATE_FOR_OP.get(type(op))
            if predicate is None:
                continue
            left = ast.get_source_segment(ctx.source, node.left)
            right = ast.get_source_segment(ctx.source, node.comparators[0])
            if left is None or right is None or node.end_lineno is None:
                continue
            call = f"{predicate}({left}, {right})"
            if isinstance(op, ast.NotEq):
                call = f"(not {call})"
            fixes.append(
                PlannedFix(
                    edit=TextEdit(
                        start_line=node.lineno,
                        start_col=node.col_offset,
                        end_line=node.end_lineno,
                        end_col=node.end_col_offset or 0,
                        replacement=call,
                    ),
                    imports=frozenset({predicate}),
                )
            )
        return fixes


class SeededRngFixer(Fixer):
    """Documentation-only: what fixing RPR003 would mean.

    Injecting ``seed=0`` silences the rule but *chooses* a stream the
    author never chose — simulated results change.  Declared unsafe, so
    ``--fix`` will never apply it; it exists so ``--list-fixers`` can
    explain the manual fix.
    """

    name = "seeded-rng"
    codes = frozenset({"RPR003"})
    safe = False
    description = (
        "UNSAFE: default_rng() -> default_rng(0) changes simulated "
        "results; pick the component's real seed by hand instead"
    )

    def plan(
        self, ctx: ModuleContext, diagnostics: Sequence[Diagnostic]
    ) -> list[PlannedFix]:
        wanted = {
            (diag.line, diag.col)
            for diag in diagnostics
            if diag.code in self.codes
        }
        fixes: list[PlannedFix] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if (node.lineno, node.col_offset + 1) not in wanted:
                continue
            if node.args or node.keywords or node.end_lineno is None:
                continue
            segment = ast.get_source_segment(ctx.source, node)
            if segment is None:
                continue
            fixes.append(
                PlannedFix(
                    edit=TextEdit(
                        start_line=node.lineno,
                        start_col=node.col_offset,
                        end_line=node.end_lineno,
                        end_col=node.end_col_offset or 0,
                        replacement=segment[:-1] + "0)",
                    )
                )
            )
        return fixes


_STALE_MSG_RE = re.compile(
    r"stale suppression: (?P<kind>disable|disable-file)=(?P<code>\S+) "
)


class StaleSuppressionFixer(Fixer):
    """Strip ``# repro-lint:`` directives that match no live finding.

    Safe by construction: removing a suppression that suppresses
    nothing cannot change which findings are reported (the engine
    re-run after ``--fix`` verifies exactly that).  When a directive
    names several codes and only some are stale, the directive is
    rebuilt with the surviving codes and its ``--`` note preserved;
    when every code is stale the comment is removed outright (the whole
    line, if the directive was the only thing on it).
    """

    name = "strip-stale-suppressions"
    codes = frozenset({"RPR903"})
    safe = True
    description = (
        "remove suppression directives (or single stale codes) that no "
        "longer match any finding"
    )

    def plan(
        self, ctx: ModuleContext, diagnostics: Sequence[Diagnostic]
    ) -> list[PlannedFix]:
        from repro.lint.engine import _SUPPRESS_RE

        stale_by_line: dict[int, set[str]] = {}
        for diag in diagnostics:
            if diag.code not in self.codes:
                continue
            match = _STALE_MSG_RE.search(diag.message)
            if match is not None:
                stale_by_line.setdefault(diag.line, set()).add(
                    match.group("code")
                )
        if not stale_by_line:
            return []
        fixes: list[PlannedFix] = []
        lines = ctx.source.splitlines()
        for lineno, stale_codes in sorted(stale_by_line.items()):
            if lineno > len(lines):
                continue
            text = lines[lineno - 1]
            match = _SUPPRESS_RE.search(text)
            if match is None:
                continue
            directive_codes = {
                raw.strip()
                for raw in match.group("codes").split(",")
                if raw.strip()
            }
            remaining = sorted(directive_codes - stale_codes)
            note = text[match.end() :].strip()
            comment_start = match.start()
            ws_start = comment_start
            while ws_start > 0 and text[ws_start - 1] in " \t":
                ws_start -= 1
            if remaining:
                rebuilt = (
                    f"# repro-lint: {match.group('kind')}="
                    f"{','.join(remaining)}"
                )
                if note:
                    rebuilt += f" -- {note}"
                edit = TextEdit(lineno, comment_start, lineno, len(text), rebuilt)
            elif ws_start == 0:
                # Directive-only line: drop the whole line.
                edit = TextEdit(lineno, 0, lineno + 1, 0, "")
            else:
                edit = TextEdit(lineno, ws_start, lineno, len(text), "")
            fixes.append(PlannedFix(edit=edit))
        return fixes


_FIXERS: tuple[Fixer, ...] = (
    TolerantComparisonFixer(),
    SeededRngFixer(),
    StaleSuppressionFixer(),
)


def all_fixers() -> tuple[Fixer, ...]:
    return _FIXERS


def _line_offsets(source: str) -> list[int]:
    offsets = [0]
    for line in source.splitlines(keepends=True):
        offsets.append(offsets[-1] + len(line))
    return offsets


def _splice(source: str, edits: Iterable[TextEdit]) -> str:
    """Apply non-overlapping edits bottom-up by absolute offset."""
    offsets = _line_offsets(source)
    resolved = []
    for edit in edits:
        start = offsets[edit.start_line - 1] + edit.start_col
        end = offsets[edit.end_line - 1] + edit.end_col
        resolved.append((start, end, edit.replacement))
    resolved.sort(reverse=True)
    last_start = len(source) + 1
    for start, end, replacement in resolved:
        if end > last_start:
            raise LintError("overlapping fix edits; refusing to apply")
        source = source[:start] + replacement + source[end:]
        last_start = start
    return source


def _merge_imports(source: str, tree: ast.Module, names: set[str]) -> str:
    """Ensure ``from repro.timeutils import <names>`` covers ``names``."""
    existing: ast.ImportFrom | None = None
    last_import_line = 0
    for stmt in tree.body:
        if isinstance(stmt, (ast.Import, ast.ImportFrom)):
            last_import_line = max(last_import_line, stmt.end_lineno or 0)
            if (
                isinstance(stmt, ast.ImportFrom)
                and stmt.module == "repro.timeutils"
                and stmt.level == 0
            ):
                existing = stmt
    lines = source.splitlines(keepends=True)
    if existing is not None:
        rendered = sorted(
            {
                alias.name
                if alias.asname is None
                else f"{alias.name} as {alias.asname}"
                for alias in existing.names
            }
            | names
        )
        edit = TextEdit(
            start_line=existing.lineno,
            start_col=existing.col_offset,
            end_line=existing.end_lineno or existing.lineno,
            end_col=existing.end_col_offset or 0,
            replacement=f"from repro.timeutils import {', '.join(rendered)}",
        )
        return _splice(source, [edit])
    new_line = f"from repro.timeutils import {', '.join(sorted(names))}\n"
    if last_import_line == 0:
        # No imports at all: insert after a module docstring if present.
        body = tree.body
        if body and isinstance(body[0], ast.Expr) and isinstance(
            body[0].value, ast.Constant
        ):
            last_import_line = body[0].end_lineno or 0
    lines.insert(last_import_line, new_line)
    return "".join(lines)


@dataclasses.dataclass
class FixOutcome:
    """What ``apply_fixes`` did, plus the verified post-fix report."""

    files_changed: list[str] = dataclasses.field(default_factory=list)
    edits_applied: int = 0
    #: Files whose rewritten source failed to re-parse (left untouched).
    files_skipped: list[str] = dataclasses.field(default_factory=list)
    #: Engine re-run over the same paths after writing the fixes.
    report_after: LintReport | None = None


def apply_fixes(
    paths: Sequence[str | Path],
    root: str | Path | None = None,
    fixers: Sequence[Fixer] | None = None,
) -> FixOutcome:
    """Apply every *safe* fixer to the findings under ``paths``.

    Unsafe fixers are filtered out unconditionally.  Files are rewritten
    in place only when the result still parses; the engine is then
    re-run over the same paths and the verified report returned.
    """
    selected = tuple(f for f in (fixers or all_fixers()) if f.safe)
    base = Path(root) if root is not None else Path.cwd()
    report = lint_paths(paths, root=base)
    by_path: dict[str, list[Diagnostic]] = {}
    for diag in (*report.diagnostics, *report.stale_suppressions):
        by_path.setdefault(diag.path, []).append(diag)
    outcome = FixOutcome()
    for display, diagnostics in sorted(by_path.items()):
        path = base / display
        if not path.exists():
            continue
        source = path.read_text(encoding="utf-8")
        ctx, _ = _parse_module(path, base, source)
        if ctx is None:
            continue
        fixes: list[PlannedFix] = []
        for fixer in selected:
            fixes.extend(fixer.plan(ctx, diagnostics))
        if not fixes:
            continue
        fixed = _splice(source, [fix.edit for fix in fixes])
        imports = set().union(*(fix.imports for fix in fixes))
        try:
            tree = ast.parse(fixed)
            if imports:
                fixed = _merge_imports(fixed, tree, imports)
                ast.parse(fixed)
        except SyntaxError:
            outcome.files_skipped.append(display)
            continue
        # Imported lazily: the lint package stays importable without the
        # simulator stack that repro.serialization pulls in.
        from repro.serialization import atomic_write_text

        atomic_write_text(path, fixed)
        outcome.files_changed.append(display)
        outcome.edits_applied += len(fixes)
    outcome.report_after = lint_paths(paths, root=base)
    return outcome
