"""Quantity-unit rules (RPR201, RPR202).

Equations (5)-(9) of the paper are unit conversions: energy divided by
power yields time (``sr_n = E_avail / P_n``), power times time yields
energy.  Adding or comparing across those dimensions without a
multiply/divide is always a bug — there is no unit in which
``energy + power`` means anything.

The checker reuses the naming-convention dimension inference
(:mod:`repro.lint.naming`): only expressions whose names positively mark
them as time, energy, or power participate, so unannotated helper
variables never false-positive.  Multiplication and division are
deliberately transparent — they are exactly how units convert.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import Diagnostic, ModuleContext, Rule, register_rule
from repro.lint.rules_comparison import (
    compare_pairs,
    is_float_literal,
    expression_dimension,
    has_tolerance_marker,
)

__all__ = ["MixedUnitAdditionRule", "MixedUnitComparisonRule"]


class MixedUnitAdditionRule(Rule):
    code = "RPR201"
    name = "no-mixed-unit-addition"
    description = (
        "adding/subtracting quantities of different dimensions (e.g. "
        "energy + power); convert with a multiply/divide first"
    )

    def check_module(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.BinOp):
                continue
            if not isinstance(node.op, (ast.Add, ast.Sub)):
                continue
            left = expression_dimension(node.left)
            right = expression_dimension(node.right)
            if (
                left.is_quantity
                and right.is_quantity
                and left is not right
            ):
                verb = "add" if isinstance(node.op, ast.Add) else "subtract"
                yield ctx.diagnostic(
                    node,
                    self.code,
                    f"cannot {verb} {right.value} {'to' if verb == 'add' else 'from'} "
                    f"{left.value}; eqs. (5)-(9) convert units by "
                    "multiplying/dividing, never adding",
                )


class MixedUnitComparisonRule(Rule):
    code = "RPR202"
    name = "no-mixed-unit-comparison"
    description = (
        "comparing quantities of different dimensions (e.g. time vs "
        "energy); convert with a multiply/divide first"
    )

    def check_module(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            if has_tolerance_marker(node):
                continue
            for left, op, right in compare_pairs(node):
                if is_float_literal(left) or is_float_literal(right):
                    continue
                left_dim = expression_dimension(left)
                right_dim = expression_dimension(right)
                if (
                    left_dim.is_quantity
                    and right_dim.is_quantity
                    and left_dim is not right_dim
                ):
                    yield ctx.diagnostic(
                        node,
                        self.code,
                        f"comparison of {left_dim.value} against "
                        f"{right_dim.value}; the operands cannot share a "
                        "unit — convert one side first",
                    )


register_rule(MixedUnitAdditionRule())
register_rule(MixedUnitComparisonRule())
