"""Quantity-unit rules (RPR201-RPR205).

Equations (5)-(9) of the paper are unit conversions: energy divided by
power yields time (``sr_n = E_avail / P_n``), power times time yields
energy.  Adding or comparing across those dimensions without a
multiply/divide is always a bug — there is no unit in which
``energy + power`` means anything.

Since PR 5 the checker is *flow-aware*: expression dimensions come from
the abstract interpreter (:mod:`repro.lint.dataflow`), which follows
values through assignments, annotations, and the project signature
index, with the naming conventions (:mod:`repro.lint.naming`) as the
seed vocabulary.  Multiplication and division stay transparent to the
mixing rules — they are exactly how units convert — but the interpreter
*uses* them to derive new dimensions (``E / P`` flows onward as a time).

RPR201/202 flag unit mixing inside one expression.  RPR203-RPR205 flag
the violations only dataflow can see: a reassignment that contradicts a
name's seeded dimension, a ``return`` that contradicts the function's
declared dimension, and an argument that contradicts the indexed
parameter it binds to.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import Diagnostic, ModuleContext, Rule, register_rule
from repro.lint.rules_comparison import (
    compare_pairs,
    dimension_in,
    is_float_literal,
    has_tolerance_marker,
)

__all__ = [
    "ArgumentDimensionRule",
    "MixedUnitAdditionRule",
    "MixedUnitComparisonRule",
    "ReassignedDimensionRule",
    "ReturnDimensionRule",
]


class MixedUnitAdditionRule(Rule):
    code = "RPR201"
    name = "no-mixed-unit-addition"
    description = (
        "adding/subtracting quantities of different dimensions (e.g. "
        "energy + power); convert with a multiply/divide first"
    )

    def check_module(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        for node in ctx.walk():
            if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                left = dimension_in(ctx, node.left)
                right = dimension_in(ctx, node.right)
                op = node.op
            elif isinstance(node, ast.AugAssign) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                # The interpreter records the target's pre-assignment
                # dimension, so `stored_energy += harvest_power` is the
                # same mixing bug in augmented clothing.
                left = dimension_in(ctx, node.target)
                right = dimension_in(ctx, node.value)
                op = node.op
            else:
                continue
            if left.is_quantity and right.is_quantity and left is not right:
                verb = "add" if isinstance(op, ast.Add) else "subtract"
                yield ctx.diagnostic(
                    node,
                    self.code,
                    f"cannot {verb} {right.value} {'to' if verb == 'add' else 'from'} "
                    f"{left.value}; eqs. (5)-(9) convert units by "
                    "multiplying/dividing, never adding",
                )


class MixedUnitComparisonRule(Rule):
    code = "RPR202"
    name = "no-mixed-unit-comparison"
    description = (
        "comparing quantities of different dimensions (e.g. time vs "
        "energy); convert with a multiply/divide first"
    )

    def check_module(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        for node in ctx.walk():
            if not isinstance(node, ast.Compare):
                continue
            if has_tolerance_marker(node):
                continue
            for left, op, right in compare_pairs(node):
                if is_float_literal(left) or is_float_literal(right):
                    continue
                left_dim = dimension_in(ctx, left)
                right_dim = dimension_in(ctx, right)
                if (
                    left_dim.is_quantity
                    and right_dim.is_quantity
                    and left_dim is not right_dim
                ):
                    yield ctx.diagnostic(
                        node,
                        self.code,
                        f"comparison of {left_dim.value} against "
                        f"{right_dim.value}; the operands cannot share a "
                        "unit — convert one side first",
                    )


def _event_diagnostic(
    ctx: ModuleContext, code: str, line: int, col: int, message: str
) -> Diagnostic:
    return Diagnostic(
        path=ctx.display_path,
        line=line,
        col=col + 1,
        code=code,
        message=message,
    )


class ReassignedDimensionRule(Rule):
    code = "RPR203"
    name = "no-dimension-contradicting-reassignment"
    description = (
        "assigning a value whose flow-derived dimension contradicts the "
        "dimension the target's name/annotation promises"
    )

    def check_module(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        for event in ctx.dataflow.events:
            if event.kind != "reassign":
                continue
            yield _event_diagnostic(
                ctx,
                self.code,
                event.line,
                event.col,
                f"`{event.name}` is {event.expected.value} by "
                f"name/annotation but is assigned a value of dimension "
                f"{event.actual.value}; rename the variable or fix the "
                "conversion",
            )


class ReturnDimensionRule(Rule):
    code = "RPR204"
    name = "no-return-dimension-mismatch"
    description = (
        "returning a value whose flow-derived dimension contradicts the "
        "function's declared (annotation/name) dimension"
    )

    def check_module(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        for event in ctx.dataflow.events:
            if event.kind != "return":
                continue
            yield _event_diagnostic(
                ctx,
                self.code,
                event.line,
                event.col,
                f"function `{event.name}` declares a "
                f"{event.expected.value} result but this return value is "
                f"{event.actual.value}",
            )


class ArgumentDimensionRule(Rule):
    code = "RPR205"
    name = "no-wrong-dimension-argument"
    description = (
        "passing an argument whose flow-derived dimension contradicts "
        "the indexed parameter of a project function"
    )

    def check_module(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        for event in ctx.dataflow.events:
            if event.kind != "argument":
                continue
            yield _event_diagnostic(
                ctx,
                self.code,
                event.line,
                event.col,
                f"argument to `{event.name}` is {event.actual.value} but "
                f"the parameter expects {event.expected.value} (per the "
                "project signature index)",
            )


register_rule(MixedUnitAdditionRule())
register_rule(MixedUnitComparisonRule())
register_rule(ReassignedDimensionRule())
register_rule(ReturnDimensionRule())
register_rule(ArgumentDimensionRule())
