"""Project signature index: definition-site dimension seeds.

The dataflow analyzer (:mod:`repro.lint.dataflow`) follows values through
one function at a time, so it needs dimension facts at the boundaries —
what a call returns, what an attribute holds, what a parameter expects.
This module scans every linted module once and builds that lookup from
three definition-site sources:

* **annotations** — parameters, returns, and class fields annotated with
  the dimension aliases from :mod:`repro.timeutils` (``Seconds``,
  ``Joules``, ``Watts``, ``Scalar``);
* **the naming vocabulary** — a parameter called ``deadline`` or a
  dataclass field called ``harvest_power`` carries its conventional
  dimension (:func:`repro.lint.naming.infer_dimension`);
* **properties** — ``@property`` methods are indexed as attributes, so
  ``storage.stored`` resolves through ``EnergyStorage.stored``.

Because the linter has no type inference, lookups are *by name* and
merged across the whole run: two definitions that disagree on a name's
dimension poison that entry (it resolves to UNKNOWN), so the index never
claims more than every definition in scope agrees on.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Iterable, Mapping

from repro.lint.naming import Dimension, infer_dimension

__all__ = [
    "FunctionSig",
    "ProjectIndex",
    "annotation_dimension",
    "build_index",
]

#: Annotation names that carry a dimension (``repro.timeutils`` aliases).
_ANNOTATION_DIMS: Mapping[str, Dimension] = {
    "Seconds": Dimension.TIME,
    "Joules": Dimension.ENERGY,
    "Watts": Dimension.POWER,
    "Scalar": Dimension.DIMENSIONLESS,
}


def annotation_dimension(annotation: ast.expr | None) -> Dimension:
    """Dimension named by an annotation expression, if any.

    ``Seconds``, ``Optional[Seconds]``, ``Seconds | None`` and the dotted
    forms (``timeutils.Seconds``) all resolve; an annotation naming two
    *different* dimensions resolves to UNKNOWN.
    """
    if annotation is None:
        return Dimension.UNKNOWN
    found: set[Dimension] = set()
    for node in ast.walk(annotation):
        name: str | None = None
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            # String annotations ("Seconds") used under older tooling.
            name = node.value
        if name is not None and name in _ANNOTATION_DIMS:
            found.add(_ANNOTATION_DIMS[name])
    if len(found) == 1:
        return found.pop()
    return Dimension.UNKNOWN


@dataclasses.dataclass(frozen=True)
class FunctionSig:
    """Dimension signature of one indexed function or method."""

    name: str
    #: ``(param name, dimension)`` in positional order, ``self``/``cls``
    #: excluded.
    params: tuple[tuple[str, Dimension], ...]
    returns: Dimension

    def param_dimension(self, position: int, keyword: str | None) -> Dimension:
        """Dimension of the parameter an argument binds to.

        ``position`` indexes positional arguments (``self`` already
        excluded); ``keyword`` wins when given.  Unmatched arguments are
        UNKNOWN (``*args``/``**kwargs`` catch-alls are not indexed).
        """
        if keyword is not None:
            for name, dim in self.params:
                if name == keyword:
                    return dim
            return Dimension.UNKNOWN
        if 0 <= position < len(self.params):
            return self.params[position][1]
        return Dimension.UNKNOWN


class ProjectIndex:
    """Name → dimension lookup built from every linted module."""

    def __init__(self) -> None:
        self._functions: dict[str, FunctionSig | None] = {}
        self._attributes: dict[str, Dimension | None] = {}

    # -- queries ----------------------------------------------------------

    def function(self, name: str) -> FunctionSig | None:
        """Signature of an indexed function, or ``None`` (unknown or
        contradictory across definitions)."""
        return self._functions.get(name)

    def attribute_dimension(self, name: str) -> Dimension:
        """Dimension of an indexed attribute/field/property name."""
        dim = self._attributes.get(name)
        return Dimension.UNKNOWN if dim is None else dim

    def return_dimension(self, name: str) -> Dimension:
        sig = self.function(name)
        return Dimension.UNKNOWN if sig is None else sig.returns

    @property
    def function_names(self) -> frozenset[str]:
        return frozenset(
            name for name, sig in self._functions.items() if sig is not None
        )

    # -- construction ------------------------------------------------------

    def _merge_function(self, sig: FunctionSig) -> None:
        existing = self._functions.get(sig.name, _UNSEEN)
        if existing is _UNSEEN:
            self._functions[sig.name] = sig
        elif existing != sig:
            # Same name, different dimension signature anywhere in the
            # project: the by-name lookup cannot distinguish the call
            # sites, so the entry is poisoned.
            self._functions[sig.name] = None

    def _merge_attribute(self, name: str, dim: Dimension) -> None:
        if dim is Dimension.UNKNOWN:
            return
        existing = self._attributes.get(name, _UNSEEN)
        if existing is _UNSEEN:
            self._attributes[name] = dim
        elif existing is not dim:
            self._attributes[name] = None


#: Sentinel distinguishing "never seen" from "seen and contradictory".
_UNSEEN: object = object()


def _decorator_names(node: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    names = set()
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        if isinstance(target, ast.Name):
            names.add(target.id)
        elif isinstance(target, ast.Attribute):
            names.add(target.attr)
    return names


def _function_sig(node: ast.FunctionDef | ast.AsyncFunctionDef) -> FunctionSig:
    params: list[tuple[str, Dimension]] = []
    args = node.args
    positional = [*args.posonlyargs, *args.args]
    if positional and positional[0].arg in ("self", "cls"):
        positional = positional[1:]
    for arg in positional:
        dim = annotation_dimension(arg.annotation)
        if dim is Dimension.UNKNOWN:
            dim = infer_dimension(arg.arg)
        params.append((arg.arg, dim))
    returns = annotation_dimension(node.returns)
    if returns is Dimension.UNKNOWN:
        returns = infer_dimension(node.name)
    return FunctionSig(
        name=node.name, params=tuple(params), returns=returns
    )


def _field_dimension(name: str, annotation: ast.expr | None) -> Dimension:
    dim = annotation_dimension(annotation)
    if dim is Dimension.UNKNOWN:
        dim = infer_dimension(name)
    return dim


def _index_self_assigns(
    index: ProjectIndex, method: ast.FunctionDef | ast.AsyncFunctionDef
) -> None:
    """Record ``self.<attr> = ...`` instance fields set inside a method.

    The attribute's dimension comes from the annotation (``AnnAssign``),
    from the assigned parameter's signature dimension (``self.x = x``),
    or from the attribute's own name — first match wins.
    """
    param_dims = dict(_function_sig(method).params)
    for node in ast.walk(method):
        target: ast.expr | None = None
        value_dim = Dimension.UNKNOWN
        if isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Attribute
        ):
            target = node.target
            value_dim = annotation_dimension(node.annotation)
        elif isinstance(node, ast.Assign) and len(node.targets) == 1 and (
            isinstance(node.targets[0], ast.Attribute)
        ):
            target = node.targets[0]
            if isinstance(node.value, ast.Name):
                value_dim = param_dims.get(
                    node.value.id, infer_dimension(node.value.id)
                )
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            if value_dim is Dimension.UNKNOWN:
                value_dim = infer_dimension(target.attr)
            index._merge_attribute(target.attr, value_dim)


def _index_class(index: ProjectIndex, cls: ast.ClassDef) -> None:
    for item in cls.body:
        if isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name):
            index._merge_attribute(
                item.target.id,
                _field_dimension(item.target.id, item.annotation),
            )
        elif isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            decorators = _decorator_names(item)
            if "property" in decorators or "cached_property" in decorators:
                sig = _function_sig(item)
                index._merge_attribute(item.name, sig.returns)
            else:
                index._merge_function(_function_sig(item))
                _index_self_assigns(index, item)
            _index_nested(index, item)
        elif isinstance(item, ast.ClassDef):
            _index_class(index, item)


def _index_nested(
    index: ProjectIndex, node: ast.FunctionDef | ast.AsyncFunctionDef
) -> None:
    for item in ast.walk(node):
        if item is not node and isinstance(item, ast.ClassDef):
            _index_class(index, item)


def build_index(trees: Iterable[ast.Module]) -> ProjectIndex:
    """Scan parsed modules and build the project-wide signature index."""
    index = ProjectIndex()
    for tree in trees:
        for item in tree.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                index._merge_function(_function_sig(item))
            elif isinstance(item, ast.ClassDef):
                _index_class(index, item)
    return index
