"""Tolerant-comparison rules (RPR101, RPR102).

Simulated times and energies are floats derived from one another through
long arithmetic chains, so raw ``==``/``<``/``<=`` comparisons between
them are brittle near segment boundaries — the exact failure class the
PR 2 trichotomy fix removed.  Every such comparison must route through
the :mod:`repro.timeutils` predicates (``time_eq``/``time_lt``/...),
which apply one absolute tolerance to a single rounding of ``a - b``.

What counts as a simulated quantity is inferred from the codebase's
naming conventions (:mod:`repro.lint.naming`).  A comparison is exempt
when it visibly carries its own tolerance (an ``EPSILON``/``eps``
operand), compares against an infinity sentinel (exact by construction),
or uses an *integer* literal (the validation idiom ``duration < 0``,
which rejects ill-formed inputs rather than comparing instants).
"""

from __future__ import annotations

import ast
import math
from typing import Iterator

from repro.lint.engine import Diagnostic, ModuleContext, Rule, register_rule
from repro.lint.naming import Dimension, infer_dimension

__all__ = [
    "QuantityLiteralComparisonRule",
    "QuantityPairComparisonRule",
    "compare_pairs",
    "dimension_in",
    "expression_dimension",
    "has_int_literal",
    "has_tolerance_marker",
    "is_float_literal",
]

#: Identifiers that mark a comparison as deliberately tolerance-aware.
_TOLERANCE_NAMES = {
    "epsilon", "eps", "tol", "tolerance", "atol", "rtol",
}
#: Infinity sentinels — comparisons against them are exact by IEEE-754.
_INFINITY_NAMES = {"inf", "infinity"}

_PREDICATE_FOR_OP = {
    ast.Eq: "time_eq",
    ast.NotEq: "not time_eq",
    ast.Lt: "time_lt",
    ast.LtE: "time_le",
    ast.Gt: "time_gt",
    ast.GtE: "time_ge",
}


def has_tolerance_marker(node: ast.AST) -> bool:
    """Whether a subtree mentions an epsilon/tolerance/infinity name."""
    for sub in ast.walk(node):
        name = None
        if isinstance(sub, ast.Name):
            name = sub.id
        elif isinstance(sub, ast.Attribute):
            name = sub.attr
        if name is not None:
            lowered = name.lower()
            if lowered in _TOLERANCE_NAMES or lowered in _INFINITY_NAMES:
                return True
        if isinstance(sub, ast.Constant) and isinstance(sub.value, float):
            if math.isinf(sub.value):
                return True
    return False


def _name_of(node: ast.expr) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Call):
        return _name_of(node.func)
    return None


def expression_dimension(node: ast.expr) -> Dimension:
    """Dimension of an expression under the naming conventions.

    Names, attributes, and call results are classified by identifier;
    unary minus is transparent; ``a + b`` / ``a - b`` keep the operands'
    dimension when both sides agree; ``min``/``max`` take the common
    dimension of their arguments.  Products and quotients intentionally
    return UNKNOWN — multiplying/dividing is exactly how units convert,
    and this module must never second-guess a conversion.
    """
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        return expression_dimension(node.operand)
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub)):
        left = expression_dimension(node.left)
        right = expression_dimension(node.right)
        return left if left is right else Dimension.UNKNOWN
    if isinstance(node, ast.Call):
        func_name = _name_of(node.func)
        if func_name in ("min", "max", "abs", "sum"):
            dims = {expression_dimension(arg) for arg in node.args}
            if len(dims) == 1:
                return dims.pop()
            return Dimension.UNKNOWN
        if func_name is not None:
            return infer_dimension(func_name)
        return Dimension.UNKNOWN
    name = _name_of(node)
    if name is not None:
        return infer_dimension(name)
    return Dimension.UNKNOWN


def dimension_in(ctx: ModuleContext, node: ast.expr) -> Dimension:
    """Dimension of an expression, dataflow first, naming as fallback.

    The abstract interpreter (:mod:`repro.lint.dataflow`) has followed
    assignments, annotations, and the signature index, so its verdict
    subsumes the syntactic one wherever it visited; expressions it never
    reaches (lambda bodies, unparsed corners) fall back to the purely
    name-based classification.
    """
    dim = ctx.dataflow.dimension_of(node)
    if dim is None:
        return expression_dimension(node)
    return dim


def is_float_literal(node: ast.expr) -> bool:
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        node = node.operand
    return isinstance(node, ast.Constant) and isinstance(node.value, float)


def has_int_literal(node: ast.Compare) -> bool:
    """Whether any comparator in the chain is an integer literal.

    Integer literals mark the validation idiom (``duration < 0``,
    ``1 <= min_quanta <= max_quanta``) where exact comparison — often of
    integer counts that merely *name* a time unit — is intended.
    """
    for operand in (node.left, *node.comparators):
        if isinstance(operand, ast.UnaryOp) and isinstance(
            operand.op, (ast.USub, ast.UAdd)
        ):
            operand = operand.operand
        if isinstance(operand, ast.Constant) and isinstance(operand.value, int):
            return True
    return False


def compare_pairs(
    node: ast.Compare,
) -> Iterator[tuple[ast.expr, ast.cmpop, ast.expr]]:
    left = node.left
    for op, right in zip(node.ops, node.comparators):
        yield left, op, right
        left = right


class QuantityLiteralComparisonRule(Rule):
    code = "RPR101"
    name = "tolerant-comparison-literal"
    description = (
        "raw float-literal comparison of a simulated time/energy/power "
        "quantity; use the repro.timeutils predicates"
    )

    def check_module(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        for node in ctx.walk():
            if not isinstance(node, ast.Compare):
                continue
            if has_tolerance_marker(node):
                continue
            for left, op, right in compare_pairs(node):
                if type(op) not in _PREDICATE_FOR_OP:
                    continue
                if is_float_literal(right):
                    expr = left
                elif is_float_literal(left):
                    expr = right
                else:
                    continue
                dim = dimension_in(ctx, expr)
                if not dim.is_quantity:
                    continue
                predicate = _PREDICATE_FOR_OP[type(op)]
                yield ctx.diagnostic(
                    node,
                    self.code,
                    f"raw comparison of {dim.value} quantity against a "
                    f"float literal; use repro.timeutils.{predicate.split()[-1]}"
                    " (or suppress with a note when exactness is intended)",
                )


class QuantityPairComparisonRule(Rule):
    code = "RPR102"
    name = "tolerant-comparison-pair"
    description = (
        "raw comparison between two simulated quantities of the same "
        "dimension; use the repro.timeutils predicates"
    )

    def check_module(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        for node in ctx.walk():
            if not isinstance(node, ast.Compare):
                continue
            if has_tolerance_marker(node) or has_int_literal(node):
                continue
            for left, op, right in compare_pairs(node):
                if type(op) not in _PREDICATE_FOR_OP:
                    continue
                if is_float_literal(left) or is_float_literal(right):
                    continue
                left_dim = dimension_in(ctx, left)
                right_dim = dimension_in(ctx, right)
                if not (left_dim.is_quantity and left_dim is right_dim):
                    continue
                predicate = _PREDICATE_FOR_OP[type(op)]
                yield ctx.diagnostic(
                    node,
                    self.code,
                    f"raw {left_dim.value}-to-{right_dim.value} comparison; "
                    f"use repro.timeutils.{predicate.split()[-1]} so the "
                    "shared tolerance applies",
                )


register_rule(QuantityLiteralComparisonRule())
register_rule(QuantityPairComparisonRule())
