"""Interprocedural purity/determinism analysis and the cache-boundary
certifier.

ROADMAP item 2 keys the planned result cache on
``(spec_hash, scheduler, engine_version)`` — sound only if every
function reachable from ``canonical_json``/``spec_hash``/the journal
codecs is *deterministic*.  This module proves that statically:

1. :func:`analyze` runs a fixed-point effect/taint propagation over the
   cross-module call graph (:mod:`repro.lint.callgraph`).  Each function
   gets its **direct taint sites** (wall-clock reads, unseeded
   randomness, environment/filesystem access, unordered set iteration,
   ``id()``/``hash()``/locale formatting, module-global mutation) and a
   **closure taint set** — the union over everything it can reach.
   Cycles (mutual recursion) converge because the union is monotone.
2. Functions classify as ``pure`` (no taints, no module-state reads),
   ``deterministic`` (no taints; may read module constants), or
   ``effectful``.
3. The checked-in manifest (``purity-roots.toml``) names the hash
   closure roots, the allow-listed non-atomic writers, and the
   worker-boundary functions; :func:`certify` renders the certification
   report the CI gate asserts on.

The analysis is *optimistic about unknown callees*: a call the graph
cannot resolve (stdlib, numpy, unknown receiver) is assumed
deterministic unless its name is in the taint vocabulary below.  That
is the same trust boundary as the naming vocabulary that powers the
dimension checker — the certifier is exactly as strong as its tables,
and extending a table strengthens every closure at once.

CLI: ``python -m repro.lint.purity --coverage`` (the nightly gate —
every manifest root must resolve *and* certify) and ``--report``
(human-readable certification report).  ``repro lint --certify`` and
``repro lint --explain-path CODE:FUNC`` reuse the same machinery.
"""

from __future__ import annotations

import ast
import dataclasses
import enum
import json
from pathlib import Path
from typing import Any, Iterator, Sequence

from repro.lint.callgraph import (
    CallGraph,
    FunctionNode,
    ModuleInfo,
    _dotted,
    build_call_graph,
)
from repro.lint.engine import LintError, ModuleContext
from repro.lint.rules_determinism import _is_set_expr

__all__ = [
    "CertificationReport",
    "FunctionCert",
    "PurityAnalysis",
    "PurityClass",
    "PurityManifest",
    "Taint",
    "TaintSite",
    "analyze",
    "certify",
    "certify_cli",
    "explain_chain",
    "explain_cli",
    "find_manifest",
    "load_manifest",
    "parse_manifest",
]

MANIFEST_NAME = "purity-roots.toml"


class Taint(enum.Enum):
    """One kind of nondeterminism or effect a function may carry."""

    WALL_CLOCK = "wall-clock"
    RANDOMNESS = "randomness"
    ENV_FILESYSTEM = "env-filesystem"
    UNORDERED = "unordered-iteration"
    IDENTITY = "identity-or-locale"
    GLOBAL_MUTATION = "global-mutation"


#: Rule code enforcing each taint kind inside the hash closure.
TAINT_CODES: dict[Taint, str] = {
    Taint.WALL_CLOCK: "RPR501",
    Taint.RANDOMNESS: "RPR502",
    Taint.ENV_FILESYSTEM: "RPR503",
    Taint.UNORDERED: "RPR504",
    Taint.IDENTITY: "RPR505",
    Taint.GLOBAL_MUTATION: "RPR505",
}


class PurityClass(enum.Enum):
    PURE = "pure"
    DETERMINISTIC = "deterministic"
    EFFECTFUL = "effectful"


@dataclasses.dataclass(frozen=True)
class TaintSite:
    """One direct taint occurrence inside a function body."""

    taint: Taint
    lineno: int
    col: int
    detail: str


# ---------------------------------------------------------------------------
# Taint vocabulary
# ---------------------------------------------------------------------------

#: ``(module-ish base, attribute)`` call pairs that read the wall clock.
#: Wider than RPR002's table on purpose: ``perf_counter``/``monotonic``
#: are fine for progress meters but still poison a cache key.
_WALL_CLOCK_CALLS = frozenset(
    {
        ("time", "time"),
        ("time", "time_ns"),
        ("time", "monotonic"),
        ("time", "monotonic_ns"),
        ("time", "perf_counter"),
        ("time", "perf_counter_ns"),
        ("time", "localtime"),
        ("time", "gmtime"),
        ("time", "ctime"),
        ("datetime", "now"),
        ("datetime", "utcnow"),
        ("datetime", "today"),
        ("date", "today"),
    }
)

_RANDOM_ATTRS = frozenset(
    {
        "random", "rand", "randn", "randint", "randrange", "choice",
        "choices", "sample", "shuffle", "uniform", "normal", "gauss",
        "permutation", "bytes", "standard_normal", "exponential",
        "poisson", "integers",
    }
)

_ENV_FS_CALLS = frozenset(
    {
        ("os", "getenv"),
        ("os", "getcwd"),
        ("os", "listdir"),
        ("os", "scandir"),
        ("os", "walk"),
        ("os", "stat"),
        ("os", "cpu_count"),
        ("glob", "glob"),
        ("glob", "iglob"),
        ("socket", "gethostname"),
        ("Path", "cwd"),
        ("Path", "home"),
    }
)

_FS_METHOD_CALLS = frozenset(
    {"read_text", "read_bytes", "write_text", "write_bytes"}
)

#: Mutating container methods: called on a module-level name they count
#: as global mutation.
_MUTATOR_METHODS = frozenset(
    {
        "append", "add", "update", "pop", "popleft", "clear", "extend",
        "insert", "remove", "discard", "setdefault", "sort", "reverse",
        "appendleft",
    }
)


def _import_pair(
    info: ModuleInfo, name: str
) -> tuple[str, str] | None:
    """``(module tail, member)`` of a from-imported bare name."""
    imported = info.imports.get(name)
    if imported is None or imported[1] is None:
        return None
    return (imported[0].split(".")[-1], imported[1])


def _call_sites(
    node: ast.Call, info: ModuleInfo
) -> Iterator[tuple[Taint, str]]:
    """Taints triggered by one call expression."""
    func = node.func
    dotted = _dotted(func)
    pair: tuple[str, str] | None = None
    tail: str | None = None
    if dotted is not None:
        parts = dotted.split(".")
        tail = parts[-1]
        if len(parts) >= 2:
            pair = (parts[-2], parts[-1])
    elif isinstance(func, ast.Name):
        tail = func.id
        pair = _import_pair(info, func.id)
    elif isinstance(func, ast.Attribute):
        tail = func.attr

    if pair is not None:
        if pair in _WALL_CLOCK_CALLS:
            yield (Taint.WALL_CLOCK, f"wall-clock read `{pair[0]}.{pair[1]}()`")
        if pair in _ENV_FS_CALLS:
            yield (
                Taint.ENV_FILESYSTEM,
                f"environment/filesystem read `{pair[0]}.{pair[1]}()`",
            )
        if pair[0] == "secrets" or (pair[0], pair[1]) == ("os", "urandom"):
            yield (Taint.RANDOMNESS, f"OS-entropy draw `{dotted or pair[1]}()`")
        if pair[0] == "uuid" and pair[1] in ("uuid1", "uuid4"):
            yield (Taint.RANDOMNESS, f"random UUID `{pair[0]}.{pair[1]}()`")
        if pair[0] == "locale":
            yield (
                Taint.IDENTITY,
                f"locale-dependent call `{pair[0]}.{pair[1]}()`",
            )
        if pair[0] in ("random", "rnd") and pair[1] in _RANDOM_ATTRS:
            yield (
                Taint.RANDOMNESS,
                f"global-state RNG draw `{pair[0]}.{pair[1]}()`",
            )
    if dotted is not None:
        parts = dotted.split(".")
        if "random" in parts[:-1] and parts[-1] in _RANDOM_ATTRS:
            yield (Taint.RANDOMNESS, f"RNG draw `{dotted}()`")
    if tail == "default_rng":
        unseeded = not node.args and not node.keywords
        none_seed = any(
            isinstance(arg, ast.Constant) and arg.value is None
            for arg in node.args
        )
        if unseeded or none_seed:
            yield (
                Taint.RANDOMNESS,
                "unseeded `default_rng()` (OS-entropy seeded)",
            )
    if isinstance(func, ast.Name):
        if func.id == "open":
            yield (
                Taint.ENV_FILESYSTEM,
                "filesystem access `open(...)`",
            )
        elif func.id in ("id", "hash"):
            yield (
                Taint.IDENTITY,
                f"`{func.id}()` depends on object identity / "
                "PYTHONHASHSEED",
            )
        elif func.id in ("vars", "globals", "locals", "input"):
            yield (
                Taint.ENV_FILESYSTEM
                if func.id == "input"
                else Taint.UNORDERED,
                f"`{func.id}()` exposes namespace/environment state",
            )
    if tail in _FS_METHOD_CALLS:
        yield (
            Taint.ENV_FILESYSTEM,
            f"filesystem access `.{tail}(...)`",
        )
    if tail == "strftime":
        yield (
            Taint.IDENTITY,
            "locale-dependent `strftime(...)` formatting",
        )


class _SiteCollector:
    """Direct taint sites + module-state reads of one function body.

    Nested ``def``/``class`` bodies are skipped — they are separate
    call-graph nodes reached through ``contains`` edges — but lambda
    bodies belong to the enclosing function and are scanned inline.
    """

    def __init__(
        self, fnode: FunctionNode, info: ModuleInfo
    ) -> None:
        self.fnode = fnode
        self.info = info
        self.sites: list[TaintSite] = []
        self.reads_module_state = False
        self._local = _local_names(fnode.node)

    def run(self) -> None:
        for stmt in self.fnode.node.body:
            self._visit(stmt)

    def _add(self, node: ast.AST, taint: Taint, detail: str) -> None:
        self.sites.append(
            TaintSite(
                taint=taint,
                lineno=getattr(node, "lineno", self.fnode.lineno),
                col=getattr(node, "col_offset", 0) + 1,
                detail=detail,
            )
        )

    def _visit(self, node: ast.AST) -> None:
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            return
        if isinstance(node, ast.Global):
            self._add(
                node,
                Taint.GLOBAL_MUTATION,
                f"`global {', '.join(node.names)}` rebinds module state",
            )
            return
        if isinstance(node, ast.Call):
            for taint, detail in _call_sites(node, self.info):
                self._add(node, taint, detail)
            self._check_mutator_call(node)
        elif isinstance(node, ast.Attribute):
            dotted = _dotted(node)
            if dotted in ("os.environ", "os.environb", "sys.argv"):
                self._add(
                    node,
                    Taint.ENV_FILESYSTEM,
                    f"environment read `{dotted}`",
                )
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            self._check_unordered(node.iter)
        elif isinstance(node, ast.comprehension):
            self._check_unordered(node.iter)
        elif isinstance(node, ast.Assign):
            self._check_subscript_mutation(node)
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            if (
                node.id in self.info.module_assigns
                and node.id not in self._local
            ):
                self.reads_module_state = True
        for child in ast.iter_child_nodes(node):
            self._visit(child)

    def _check_unordered(self, iter_expr: ast.expr) -> None:
        if _is_set_expr(iter_expr):
            self._add(
                iter_expr,
                Taint.UNORDERED,
                "iteration over a set (hash order reaches the result)",
            )

    def _check_mutator_call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and isinstance(
            func.value, ast.Name
        ):
            receiver = func.value.id
            if (
                func.attr in _MUTATOR_METHODS
                and receiver in self.info.module_assigns
                and receiver not in self._local
            ):
                self._add(
                    node,
                    Taint.GLOBAL_MUTATION,
                    f"mutates module-level `{receiver}` via "
                    f"`.{func.attr}(...)`",
                )
        # list(set(..)) / tuple(set(..)) materialize hash order.
        if (
            isinstance(func, ast.Name)
            and func.id in ("list", "tuple")
            and len(node.args) == 1
            and _is_set_expr(node.args[0])
        ):
            self._add(
                node.args[0],
                Taint.UNORDERED,
                "materializes a set's hash order",
            )

    def _check_subscript_mutation(self, node: ast.Assign) -> None:
        for target in node.targets:
            if (
                isinstance(target, ast.Subscript)
                and isinstance(target.value, ast.Name)
                and target.value.id in self.info.module_assigns
                and target.value.id not in self._local
            ):
                self._add(
                    node,
                    Taint.GLOBAL_MUTATION,
                    f"writes into module-level `{target.value.id}[...]`",
                )


def _local_names(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> frozenset[str]:
    names: set[str] = set()
    args = func.args
    for arg in (
        *args.posonlyargs,
        *args.args,
        *args.kwonlyargs,
        *([args.vararg] if args.vararg else []),
        *([args.kwarg] if args.kwarg else []),
    ):
        names.add(arg.arg)
    for node in ast.walk(func):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            names.add(node.id)
        elif isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            if node is not func:
                names.add(node.name)
    return frozenset(names)


# ---------------------------------------------------------------------------
# Fixed-point closure analysis
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class PurityAnalysis:
    """Call graph plus per-function taint/classification results."""

    graph: CallGraph
    direct: dict[str, tuple[TaintSite, ...]]
    closure: dict[str, frozenset[Taint]]
    classification: dict[str, PurityClass]

    def taints_of(self, key: str) -> frozenset[Taint]:
        return self.closure.get(key, frozenset())


def analyze(modules: Sequence[ModuleContext]) -> PurityAnalysis:
    """Build the call graph and run taint propagation to a fixed point."""
    graph = build_call_graph(modules)
    direct: dict[str, tuple[TaintSite, ...]] = {}
    reads_state: dict[str, bool] = {}
    for key in sorted(graph.nodes):
        node = graph.nodes[key]
        info = graph.modules[node.display_path]
        collector = _SiteCollector(node, info)
        collector.run()
        direct[key] = tuple(collector.sites)
        reads_state[key] = collector.reads_module_state

    closure: dict[str, set[Taint]] = {
        key: {site.taint for site in sites}
        for key, sites in direct.items()
    }
    state_closure: dict[str, bool] = dict(reads_state)
    callers: dict[str, list[str]] = {}
    for caller in sorted(graph.edges):
        for callee in sorted(graph.edges[caller]):
            callers.setdefault(callee, []).append(caller)

    # Worklist fixed point: union direct taints up the (possibly cyclic)
    # caller chains until nothing changes.  Unions are monotone over a
    # finite lattice, so this terminates even for mutual recursion.
    worklist = sorted(closure)
    pending = set(worklist)
    while worklist:
        key = worklist.pop()
        pending.discard(key)
        taints = closure[key]
        state = state_closure[key]
        for caller in callers.get(key, ()):
            changed = False
            if not taints <= closure[caller]:
                closure[caller] |= taints
                changed = True
            if state and not state_closure[caller]:
                state_closure[caller] = True
                changed = True
            if changed and caller not in pending:
                worklist.append(caller)
                pending.add(caller)

    classification: dict[str, PurityClass] = {}
    for key in sorted(closure):
        if closure[key]:
            classification[key] = PurityClass.EFFECTFUL
        elif state_closure[key]:
            classification[key] = PurityClass.DETERMINISTIC
        else:
            classification[key] = PurityClass.PURE
    return PurityAnalysis(
        graph=graph,
        direct=direct,
        closure={k: frozenset(v) for k, v in closure.items()},
        classification=classification,
    )


# ---------------------------------------------------------------------------
# Manifest
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class PurityManifest:
    """Parsed ``purity-roots.toml``: the three enforced boundaries."""

    path: Path | None
    #: ``path::qualname`` roots whose closure must be deterministic.
    hash_closure_roots: tuple[str, ...] = ()
    #: Functions allowed to write non-atomically (RPR506 exemptions).
    atomic_allow: tuple[str, ...] = ()
    #: Functions crossing the worker process boundary (RPR508/509).
    worker_functions: tuple[str, ...] = ()


def parse_manifest(text: str, path: Path | None = None) -> PurityManifest:
    """Parse the TOML subset the manifest uses.

    Sections, ``key = ["...", ...]`` string arrays (single- or
    multi-line), and ``#`` comments — a deliberate subset so the parser
    needs no ``tomllib`` (absent on the oldest supported CI Python).
    """
    sections: dict[str, dict[str, list[str]]] = {}
    section: str | None = None
    key: str | None = None
    collecting = False
    for raw_lineno, raw in enumerate(text.splitlines(), start=1):
        line = _strip_toml_comment(raw).strip()
        if not line:
            continue
        if collecting:
            assert section is not None and key is not None
            collecting = not _collect_array_items(
                sections[section][key], line
            )
            continue
        if line.startswith("[") and line.endswith("]"):
            section = line[1:-1].strip()
            sections.setdefault(section, {})
            continue
        if "=" not in line or section is None:
            raise LintError(
                f"{path or MANIFEST_NAME}:{raw_lineno}: "
                f"unsupported manifest line {raw.strip()!r}"
            )
        key, _, value = line.partition("=")
        key = key.strip()
        value = value.strip()
        if not value.startswith("["):
            raise LintError(
                f"{path or MANIFEST_NAME}:{raw_lineno}: "
                f"{key!r} must be a string array"
            )
        items: list[str] = []
        sections[section][key] = items
        collecting = not _collect_array_items(items, value[1:])
    return PurityManifest(
        path=path,
        hash_closure_roots=tuple(
            sections.get("hash-closure", {}).get("roots", ())
        ),
        atomic_allow=tuple(
            sections.get("atomic-writers", {}).get("allow", ())
        ),
        worker_functions=tuple(
            sections.get("workers", {}).get("functions", ())
        ),
    )


def _strip_toml_comment(line: str) -> str:
    out: list[str] = []
    in_string = False
    for ch in line:
        if ch == '"':
            in_string = not in_string
        elif ch == "#" and not in_string:
            break
        out.append(ch)
    return "".join(out)


def _collect_array_items(items: list[str], fragment: str) -> bool:
    """Append quoted items from one array fragment; True when ``]`` seen."""
    rest = fragment
    while True:
        rest = rest.strip().lstrip(",").strip()
        if not rest:
            return False
        if rest.startswith("]"):
            return True
        if not rest.startswith('"'):
            raise LintError(
                f"manifest array items must be double-quoted "
                f"strings, got {rest!r}"
            )
        closing = rest.index('"', 1)
        items.append(rest[1:closing])
        rest = rest[closing + 1 :]


_MANIFEST_CACHE: dict[tuple[str, int], PurityManifest] = {}


def find_manifest(start: Path) -> Path | None:
    """Locate ``purity-roots.toml`` walking up from ``start``."""
    anchor = start if start.is_absolute() else Path.cwd() / start
    for parent in [anchor, *anchor.parents]:
        candidate = parent / MANIFEST_NAME
        if candidate.is_file():
            return candidate
    return None


def load_manifest(start: Path) -> PurityManifest | None:
    """Discover + parse (mtime-cached) the manifest governing ``start``."""
    manifest_path = find_manifest(start)
    if manifest_path is None:
        return None
    stamp = manifest_path.stat().st_mtime_ns
    cache_key = (str(manifest_path), stamp)
    cached = _MANIFEST_CACHE.get(cache_key)
    if cached is None:
        cached = parse_manifest(
            manifest_path.read_text(encoding="utf-8"), path=manifest_path
        )
        _MANIFEST_CACHE.clear()
        _MANIFEST_CACHE[cache_key] = cached
    return cached


def ref_matches(ref: str, display_path: str, qualname: str) -> bool:
    """Whether a manifest ``path::qualname`` ref names this function."""
    if "::" not in ref:
        return False
    path_part, ref_qual = ref.split("::", 1)
    if ref_qual != qualname:
        return False
    normalized = display_path.replace("\\", "/")
    path_part = path_part.replace("\\", "/")
    return normalized == path_part or normalized.endswith("/" + path_part)


# ---------------------------------------------------------------------------
# Certification
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class FunctionCert:
    key: str
    classification: PurityClass
    taints: tuple[str, ...]


@dataclasses.dataclass(frozen=True)
class RootCert:
    ref: str
    #: Resolved node key, or ``None`` when the ref matched no function.
    key: str | None
    closure: tuple[FunctionCert, ...] = ()

    @property
    def ok(self) -> bool:
        return self.key is not None and all(
            cert.classification is not PurityClass.EFFECTFUL
            for cert in self.closure
        )


@dataclasses.dataclass
class CertificationReport:
    """Outcome of certifying every manifest hash-closure root."""

    manifest_path: str | None
    roots: tuple[RootCert, ...]

    @property
    def ok(self) -> bool:
        return bool(self.roots) and all(root.ok for root in self.roots)

    @property
    def certified_refs(self) -> tuple[str, ...]:
        return tuple(root.ref for root in self.roots if root.ok)

    def to_json(self) -> str:
        payload: dict[str, Any] = {
            "manifest": self.manifest_path,
            "ok": self.ok,
            "roots": [
                {
                    "ref": root.ref,
                    "resolved": root.key,
                    "ok": root.ok,
                    "closure": [
                        {
                            "function": cert.key,
                            "classification": cert.classification.value,
                            "taints": list(cert.taints),
                        }
                        for cert in root.closure
                    ],
                }
                for root in self.roots
            ],
        }
        return json.dumps(payload, indent=2, sort_keys=True)

    def format_text(self) -> str:
        lines = [f"purity certification ({self.manifest_path})"]
        for root in self.roots:
            if root.key is None:
                lines.append(f"  UNRESOLVED {root.ref}")
                continue
            status = "certified" if root.ok else "TAINTED"
            lines.append(
                f"  {status} {root.ref} "
                f"({len(root.closure)} function(s) in closure)"
            )
            for cert in root.closure:
                marker = {
                    PurityClass.PURE: "pure",
                    PurityClass.DETERMINISTIC: "deterministic",
                    PurityClass.EFFECTFUL: "EFFECTFUL",
                }[cert.classification]
                suffix = (
                    f"  [{', '.join(cert.taints)}]" if cert.taints else ""
                )
                lines.append(f"    {marker:<13} {cert.key}{suffix}")
        verdict = (
            "hash closure fully certified deterministic"
            if self.ok
            else "hash closure NOT certified"
        )
        lines.append(verdict)
        return "\n".join(lines)


def certify(
    analysis: PurityAnalysis, manifest: PurityManifest
) -> CertificationReport:
    """Certify every manifest root against the closure taint sets."""
    roots: list[RootCert] = []
    for ref in manifest.hash_closure_roots:
        key = analysis.graph.resolve_ref(ref)
        if key is None:
            roots.append(RootCert(ref=ref, key=None))
            continue
        closure_keys = sorted(analysis.graph.reachable([key]))
        certs = tuple(
            FunctionCert(
                key=member,
                classification=analysis.classification[member],
                taints=tuple(
                    sorted(t.value for t in analysis.taints_of(member))
                ),
            )
            for member in closure_keys
        )
        roots.append(RootCert(ref=ref, key=key, closure=certs))
    return CertificationReport(
        manifest_path=(
            str(manifest.path) if manifest.path is not None else None
        ),
        roots=tuple(roots),
    )


# ---------------------------------------------------------------------------
# Explain: root → taint chains
# ---------------------------------------------------------------------------


def explain_chain(
    analysis: PurityAnalysis, root_key: str, taints: frozenset[Taint]
) -> tuple[list[str], TaintSite | None]:
    """Shortest call chain from a root to a direct site of ``taints``.

    Returns ``(chain of node keys, site)``; ``(chain, None)`` with just
    the root when no reachable function carries one of the taints.
    """
    targets = sorted(
        key
        for key in analysis.graph.reachable([root_key])
        if any(site.taint in taints for site in analysis.direct.get(key, ()))
    )
    if not targets:
        return ([root_key], None)
    best: tuple[list[str], TaintSite] | None = None
    for target in targets:
        edges = analysis.graph.path(root_key, target)
        if edges is None:
            continue
        chain = [root_key, *(edge.callee for edge in edges)]
        site = next(
            site
            for site in analysis.direct[target]
            if site.taint in taints
        )
        if best is None or len(chain) < len(best[0]):
            best = (chain, site)
    if best is None:
        return ([root_key], None)
    return best


def format_chain(
    analysis: PurityAnalysis,
    chain: Sequence[str],
    site: TaintSite | None,
) -> str:
    lines: list[str] = []
    for depth, key in enumerate(chain):
        node = analysis.graph.nodes[key]
        indent = "  " * depth
        if depth == 0:
            lines.append(f"{indent}{key}  (root)")
        else:
            edge = analysis.graph.edges[chain[depth - 1]][key]
            lines.append(
                f"{indent}-> {key}  ({edge.kind} at "
                f"{analysis.graph.nodes[chain[depth - 1]].display_path}:"
                f"{edge.lineno})"
            )
        del node
    if site is not None:
        leaf = analysis.graph.nodes[chain[-1]]
        lines.append(
            f"{'  ' * len(chain)}taint: {site.detail} at "
            f"{leaf.display_path}:{site.lineno}"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# CLI (python -m repro.lint.purity)
# ---------------------------------------------------------------------------


def _load_tree(root: str) -> list[ModuleContext]:
    from repro.lint.engine import SYNTAX_ERROR_CODE, load_modules

    src = Path(root) / "src"
    paths: list[Path] = [src if src.is_dir() else Path(root)]
    modules, extras = load_modules(paths, root=Path(root))
    broken = [d for d in extras if d.code == SYNTAX_ERROR_CODE]
    if broken:
        rendered = "; ".join(d.format_text() for d in broken)
        raise LintError(f"cannot parse tree for certification: {rendered}")
    return modules


def _check_purity_coverage(root: str) -> int:
    """Nightly gate: every manifest root resolves *and* certifies."""
    from repro.lint.coverage import check_coverage

    manifest_path = Path(root).resolve() / MANIFEST_NAME
    if not manifest_path.is_file():
        print(f"no {MANIFEST_NAME} at {manifest_path}")
        return 1
    manifest = parse_manifest(
        manifest_path.read_text(encoding="utf-8"), path=manifest_path
    )
    modules = _load_tree(root)
    report = certify(analyze(modules), manifest)
    return check_coverage(
        required=manifest.hash_closure_roots,
        covered=report.certified_refs,
        describe_missing=lambda ref: (
            f"hash-closure root {ref!r} is named in purity-roots.toml "
            "but is not certified deterministic; run `repro lint "
            "--certify` for the taint detail"
        ),
        describe_extra=lambda ref: (
            f"certification reports unknown hash-closure root {ref!r}"
        ),
        success_message=(
            f"purity certification covers all "
            f"{len(manifest.hash_closure_roots)} hash-closure root(s)"
        ),
    )


def _load_lint_paths(paths: Sequence[str | Path]) -> list[ModuleContext]:
    from repro.lint.engine import SYNTAX_ERROR_CODE, load_modules

    modules, extras = load_modules(paths)
    broken = [d for d in extras if d.code == SYNTAX_ERROR_CODE]
    if broken:
        rendered = "; ".join(d.format_text() for d in broken)
        raise LintError(f"cannot parse tree for certification: {rendered}")
    return modules


def certify_cli(paths: Sequence[str | Path]) -> int:
    """``repro lint --certify``: print the certification report."""
    manifest = load_manifest(Path.cwd())
    if manifest is None:
        print(
            f"no {MANIFEST_NAME} found above {Path.cwd()}; nothing to "
            "certify"
        )
        return 2
    report = certify(analyze(_load_lint_paths(paths)), manifest)
    print(report.format_text())
    return 0 if report.ok else 1


#: Taint kinds each RPR50x code owns (inverse of :data:`TAINT_CODES`).
_CODE_TAINTS: dict[str, frozenset[Taint]] = {}
for _taint, _code in TAINT_CODES.items():
    _CODE_TAINTS.setdefault(_code, frozenset())
    _CODE_TAINTS[_code] |= {_taint}
del _taint, _code


def _resolve_cli_ref(analysis: PurityAnalysis, ref: str) -> str:
    """A node key for a ``path::qualname`` or bare-qualname CLI ref."""
    if "::" in ref:
        key = analysis.graph.resolve_ref(ref)
        if key is None:
            raise LintError(
                f"--explain-path: no function matches {ref!r} in the "
                "linted paths"
            )
        return key
    matches = sorted(
        key
        for key, node in analysis.graph.nodes.items()
        if node.qualname == ref
    )
    if not matches:
        raise LintError(
            f"--explain-path: no function named {ref!r} in the linted "
            "paths"
        )
    if len(matches) > 1:
        raise LintError(
            f"--explain-path: {ref!r} is ambiguous; qualify it as one "
            f"of: {', '.join(matches)}"
        )
    return matches[0]


def explain_cli(spec: str, paths: Sequence[str | Path]) -> int:
    """``repro lint --explain-path CODE:FUNC``: root→taint call chain.

    Exit code 1 when a chain to the flagged taint kind exists, 0 when
    the function's closure is clean for that code.
    """
    code, sep, ref = spec.partition(":")
    code = code.strip().upper()
    ref = ref.strip()
    if not sep or not ref or code not in _CODE_TAINTS:
        known = ", ".join(sorted(_CODE_TAINTS))
        raise LintError(
            f"--explain-path expects CODE:FUNC with CODE one of "
            f"{known}, got {spec!r}"
        )
    taints = _CODE_TAINTS[code]
    analysis = analyze(_load_lint_paths(paths))
    root_key = _resolve_cli_ref(analysis, ref)
    chain, site = explain_chain(analysis, root_key, taints)
    if site is None:
        kinds = ", ".join(sorted(t.value for t in taints))
        print(
            f"{root_key}: no {kinds} taint reachable — closure is "
            f"clean for {code}"
        )
        return 0
    print(format_chain(analysis, chain, site))
    return 1


def main(argv: Sequence[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.lint.purity",
        description="Hash-closure purity certification utilities.",
    )
    parser.add_argument(
        "--coverage",
        action="store_true",
        help="assert every purity-roots.toml root is certified "
        "deterministic (the nightly gate)",
    )
    parser.add_argument(
        "--report",
        action="store_true",
        help="print the full certification report",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="repository root containing src/ and purity-roots.toml "
        "(default: cwd)",
    )
    options = parser.parse_args(argv)
    if options.coverage:
        return _check_purity_coverage(options.root)
    if options.report:
        manifest_path = Path(options.root).resolve() / MANIFEST_NAME
        if not manifest_path.is_file():
            print(f"no {MANIFEST_NAME} at {manifest_path}")
            return 1
        manifest = parse_manifest(
            manifest_path.read_text(encoding="utf-8"), path=manifest_path
        )
        report = certify(analyze(_load_tree(options.root)), manifest)
        print(report.format_text())
        return 0 if report.ok else 1
    parser.error("one of --coverage / --report is required")
    return 2


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    raise SystemExit(main())
