"""Determinism rules (RPR001-RPR004).

The differential and golden-trace harnesses assert *bit-identical*
results across runs, platforms, and execution paths (serial, pool,
salvage).  That only holds when every stochastic or environmental input
is pinned:

* randomness must flow from ``np.random.default_rng(seed)`` with an
  explicit seed — never the global :mod:`random` module or an unseeded
  generator;
* simulated results must not depend on wall-clock reads;
* iteration over sets feeds hash-order (and thus ``PYTHONHASHSEED``)
  into anything order-sensitive downstream.

``time.perf_counter`` / ``time.monotonic`` are *not* flagged: they time
the real execution (progress meters, harness timeouts) and never feed a
simulated value.

The whole family opts out of ``tests/`` (``run_on_tests = False``):
fixtures legitimately draw ad-hoc randomness, and Hypothesis owns its
own entropy.  The comparison/unit families still apply there.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import Diagnostic, ModuleContext, Rule, register_rule

__all__ = [
    "GlobalRandomRule",
    "SetIterationRule",
    "UnseededRngRule",
    "WallClockRule",
]

#: Wall-clock attribute reads: ``module -> {attribute, ...}``.
_WALL_CLOCK = {
    "time": {"time", "time_ns", "localtime", "gmtime"},
    "datetime": {"now", "today", "utcnow"},
    "date": {"today"},
}


def _dotted(node: ast.AST) -> str | None:
    """Render ``a.b.c`` attribute chains; ``None`` for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class GlobalRandomRule(Rule):
    code = "RPR001"
    name = "no-global-random"
    run_on_tests = False
    description = (
        "the stdlib `random` module draws from hidden global state; use "
        "np.random.default_rng(seed) so runs are reproducible"
    )

    def check_module(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        for node in ctx.walk():
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                module = getattr(node, "module", None)
                names = [alias.name for alias in node.names]
                if (isinstance(node, ast.Import) and "random" in names) or (
                    module == "random"
                ):
                    yield ctx.diagnostic(
                        node,
                        self.code,
                        "import of the stdlib `random` module; route "
                        "randomness through np.random.default_rng(seed)",
                    )
            elif isinstance(node, ast.Attribute):
                dotted = _dotted(node)
                if dotted is not None and dotted.startswith("random."):
                    yield ctx.diagnostic(
                        node,
                        self.code,
                        f"call into global-state RNG `{dotted}`; use an "
                        "explicit np.random.default_rng(seed) stream",
                    )


class WallClockRule(Rule):
    code = "RPR002"
    name = "no-wall-clock"
    run_on_tests = False
    description = (
        "wall-clock reads (time.time, datetime.now, ...) make simulated "
        "results irreproducible; only simulated time may enter results"
    )

    def check_module(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        for node in ctx.walk():
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if dotted is None:
                continue
            parts = dotted.split(".")
            if len(parts) < 2:
                continue
            base, attr = parts[-2], parts[-1]
            if attr in _WALL_CLOCK.get(base, ()):
                yield ctx.diagnostic(
                    node,
                    self.code,
                    f"wall-clock read `{dotted}()`; simulated quantities "
                    "must derive from the event clock, not real time",
                )


class UnseededRngRule(Rule):
    code = "RPR003"
    name = "seeded-rng"
    run_on_tests = False
    description = (
        "np.random.default_rng() without an explicit seed argument breaks "
        "bit-reproducibility (the whole family is relaxed under tests/)"
    )

    def check_module(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        for node in ctx.walk():
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if dotted is None or not dotted.endswith("default_rng"):
                continue
            if not node.args and not node.keywords:
                yield ctx.diagnostic(
                    node,
                    self.code,
                    "default_rng() without an explicit seed; pass the "
                    "component's seed so every run is reproducible",
                )
            elif any(
                isinstance(arg, ast.Constant) and arg.value is None
                for arg in node.args
            ):
                yield ctx.diagnostic(
                    node,
                    self.code,
                    "default_rng(None) is OS-entropy seeded; pass a real "
                    "seed so every run is reproducible",
                )


def _is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitAnd, ast.BitOr, ast.Sub, ast.BitXor)
    ):
        # set algebra (a & b, a - b, ...) over set expressions
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


class SetIterationRule(Rule):
    code = "RPR004"
    name = "no-set-iteration-order"
    run_on_tests = False
    description = (
        "iterating a set feeds hash order into downstream results; wrap "
        "in sorted(...) when the order can reach a simulated outcome"
    )

    def check_module(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        for node in ctx.walk():
            target: ast.expr | None = None
            if isinstance(node, (ast.For, ast.AsyncFor)):
                target = node.iter
            elif isinstance(node, ast.comprehension):
                target = node.iter
            elif isinstance(node, ast.Call):
                # list(set(..)) / tuple(set(..)) materialize hash order
                if (
                    isinstance(node.func, ast.Name)
                    and node.func.id in ("list", "tuple")
                    and len(node.args) == 1
                ):
                    target = node.args[0]
            if target is not None and _is_set_expr(target):
                yield ctx.diagnostic(
                    target,
                    self.code,
                    "iteration order of a set is hash-dependent; use "
                    "sorted(...) (or keep a list) when order matters",
                )


register_rule(GlobalRandomRule())
register_rule(WallClockRule())
register_rule(UnseededRngRule())
register_rule(SetIterationRule())
