"""Float-determinism rules (RPR401-RPR405).

The vectorized batch engine is built on a *bit-exact doctrine*: every
``batch_*`` kernel performs the same IEEE float64 operations in the same
order as its scalar twin (``docs/batch-simulation.md``).  The doctrine
was previously enforced only dynamically — ``repro verify --batch``
sampling and the accumulation-contract canaries — so a doctrine-breaking
edit stayed invisible until a seed happened to hit it.  This family makes
the common violation shapes a lint failure at commit time:

* RPR401 — nondeterministic-order reduction: ``np.sum`` / ``np.dot`` /
  ``@`` over float arrays use pairwise/SIMD accumulation whose grouping
  is shape- and build-dependent.  The pinned idiom is ``np.cumsum``
  (strictly left-to-right per the accumulation contract) or an explicit
  scalar loop.
* RPR402 — SIMD-divergent ufunc: ``np.power``, ``np.exp2`` and friends
  route through SIMD polynomial kernels that differ from libm by 1 ulp
  on a few percent of inputs.  The doctrine mandates element-wise libm
  wrappers (``_libm_pow``-style) so scalar and batch engines agree bit
  for bit.  The table is configurable per rule instance.
* RPR403 — silent dtype promotion: float64 kernels must not mix integer
  arrays into float arithmetic (the promotion is correct but implicit —
  pin it with ``.astype(np.float64)``) nor introduce non-float64 floats.
* RPR404 — unstable sort: ``np.sort``/``argsort`` default to introsort,
  whose tie order is implementation-defined.  Lane/event ordering must
  use ``kind="stable"`` or ``np.lexsort``.
* RPR405 — in-place mutation of a parameter: a kernel that writes
  through an input view aliases caller state; accidental aliasing is a
  classic silent-divergence source.  Kernels that mutate by contract
  opt out by saying "in place" in their docstring.

The family is *opt-in per module*: rules fire only in files carrying the
``# repro: float-doctrine`` pragma (the three vectorized kernel modules).
Everywhere else numpy is used for analysis/plotting where bit-exactness
across engines is not a contract.  All checks consume the conservative
array-kind facet (:func:`repro.lint.dataflow.analyze_arrays`): only
*positive* knowledge (annotations, numpy constructors) triggers a
finding, so an unannotated expression never false-positives.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Sequence

from repro.lint.dataflow import ArrayKind
from repro.lint.engine import (
    Diagnostic,
    ModuleContext,
    Rule,
    register_rule,
)

__all__ = [
    "DEFAULT_DIVERGENT_UFUNCS",
    "DtypePromotionRule",
    "InPlaceParamMutationRule",
    "SimdDivergentUfuncRule",
    "UnorderedReductionRule",
    "UnstableSortRule",
    "is_doctrine_module",
]

#: Pragma marking a module as subject to the bit-exact doctrine.  Must
#: be a real comment token so prose mentioning the pragma (docstrings,
#: documentation snippets) does not opt a module in by accident; the
#: engine's shared comment stream provides that for free.
_DOCTRINE_RE = re.compile(r"^#\s*repro:\s*float-doctrine\b")

#: numpy ufuncs with SIMD kernels known (or suspected) to diverge from
#: libm by >= 1 ulp on some inputs.  ``np.sqrt`` is absent on purpose:
#: IEEE 754 requires it correctly rounded, so SIMD and libm agree.
#: Retirement path for an entry: prove equality exhaustively against the
#: scalar engine's libm calls (see the ``_libm_pow`` canary in
#: tests/sched/test_vectorized_kernels.py), then drop it here and
#: replace the wrapper in the same PR.
DEFAULT_DIVERGENT_UFUNCS = frozenset(
    {
        "power",
        "float_power",
        "exp",
        "exp2",
        "expm1",
        "log",
        "log2",
        "log10",
        "log1p",
        "sin",
        "cos",
        "tan",
        "sinh",
        "cosh",
        "tanh",
        "arcsin",
        "arccos",
        "arctan",
        "arctan2",
        "cbrt",
        "hypot",
    }
)

#: ``np.`` reductions whose result depends on accumulation order over
#: floats.  ``max``/``min``/``any``/``all`` are order-insensitive.
_ORDERED_REDUCTIONS = frozenset(
    {
        "sum",
        "nansum",
        "dot",
        "vdot",
        "inner",
        "matmul",
        "tensordot",
        "einsum",
        "prod",
        "nanprod",
        "mean",
        "nanmean",
        "average",
        "std",
        "var",
        "median",
        "trace",
    }
)

#: Reduction *methods* checked against the receiver's facet kind.
_ORDERED_REDUCTION_METHODS = frozenset(
    {"sum", "dot", "mean", "prod", "std", "var"}
)

#: dtype tokens that break the float64-only doctrine when spelled out.
_NON_F64_FLOAT_TOKENS = frozenset(
    {"float32", "float16", "half", "single", "longdouble", "float128"}
)

_ARITH_OPS = (
    ast.Add,
    ast.Sub,
    ast.Mult,
    ast.Div,
    ast.FloorDiv,
    ast.Mod,
    ast.Pow,
)


def is_doctrine_module(ctx: ModuleContext) -> bool:
    """Whether the module opted into the bit-exact float doctrine.

    Reads the comment stream the engine tokenized once per file instead
    of re-scanning the raw source; hand-built contexts without a stream
    fall back to tokenizing here.
    """
    comments = ctx.comments
    if comments is None:
        from repro.lint.engine import _iter_comments

        comments = tuple(_iter_comments(ctx.source))
    lines = ctx.source.splitlines()
    return any(
        _DOCTRINE_RE.match(text) is not None
        # Whole-line comments only: a trailing `x = 1  # repro: ...`
        # does not opt the module in.
        and lines[line - 1].lstrip().startswith("#")
        for line, text in comments
    )


def _dotted(node: ast.AST) -> str | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _np_attr(func: ast.expr) -> str | None:
    """``np.<attr>`` / ``numpy.<attr>`` call target, else ``None``."""
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id in ("np", "numpy")
    ):
        return func.attr
    return None


class _DoctrineRule(Rule):
    """Base: applies only in ``# repro: float-doctrine`` modules."""

    run_on_tests = False

    def check_module(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        if not is_doctrine_module(ctx):
            return
        yield from self.check_doctrine(ctx)

    def check_doctrine(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        raise NotImplementedError


class UnorderedReductionRule(_DoctrineRule):
    code = "RPR401"
    name = "no-unordered-float-reduction"
    description = (
        "np.sum/np.dot/@ over float arrays accumulate in a shape- and "
        "build-dependent order; use np.cumsum (left-to-right contract) "
        "or an explicit loop in doctrine modules"
    )

    def check_doctrine(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        arrays = ctx.arrays
        for node in ctx.walk():
            if isinstance(node, ast.Call):
                attr = _np_attr(node.func)
                if (
                    attr in _ORDERED_REDUCTIONS
                    and node.args
                    and arrays.kind_of(node.args[0])
                    is ArrayKind.FLOAT_ARRAY
                ):
                    yield ctx.diagnostic(
                        node,
                        self.code,
                        f"np.{attr} over a float array reduces in "
                        "unspecified order; the doctrine idiom is "
                        "np.cumsum (strict left-to-right) or a scalar "
                        "loop",
                    )
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in _ORDERED_REDUCTION_METHODS
                    and arrays.kind_of(node.func.value)
                    is ArrayKind.FLOAT_ARRAY
                ):
                    yield ctx.diagnostic(
                        node,
                        self.code,
                        f".{node.func.attr}() on a float array reduces "
                        "in unspecified order; use np.cumsum or a "
                        "scalar loop",
                    )
            elif isinstance(node, ast.BinOp) and isinstance(
                node.op, ast.MatMult
            ):
                if ArrayKind.FLOAT_ARRAY in (
                    arrays.kind_of(node.left),
                    arrays.kind_of(node.right),
                ):
                    yield ctx.diagnostic(
                        node,
                        self.code,
                        "`@` (matmul) over float arrays accumulates in "
                        "unspecified order; doctrine kernels must pin "
                        "the accumulation explicitly",
                    )


class SimdDivergentUfuncRule(_DoctrineRule):
    code = "RPR402"
    name = "no-simd-divergent-ufunc"
    description = (
        "numpy's SIMD transcendental kernels (np.power, np.exp2, ...) "
        "differ from libm by 1 ulp on some inputs; doctrine kernels must "
        "use element-wise libm wrappers (_libm_pow-style)"
    )

    def __init__(
        self, divergent: frozenset[str] = DEFAULT_DIVERGENT_UFUNCS
    ) -> None:
        self.divergent = divergent

    def check_doctrine(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        arrays = ctx.arrays
        for node in ctx.walk():
            if isinstance(node, ast.Call):
                attr = _np_attr(node.func)
                if attr in self.divergent:
                    yield ctx.diagnostic(
                        node,
                        self.code,
                        f"np.{attr} uses a SIMD kernel that can differ "
                        "from the scalar engine's libm call by 1 ulp; "
                        "use an element-wise libm wrapper "
                        "(_libm_pow-style)",
                    )
            elif isinstance(node, ast.BinOp) and isinstance(
                node.op, ast.Pow
            ):
                if ArrayKind.FLOAT_ARRAY in (
                    arrays.kind_of(node.left),
                    arrays.kind_of(node.right),
                ):
                    yield ctx.diagnostic(
                        node,
                        self.code,
                        "`**` on a float array dispatches to np.power's "
                        "SIMD kernel; use an element-wise libm wrapper "
                        "(_libm_pow-style)",
                    )


class DtypePromotionRule(_DoctrineRule):
    code = "RPR403"
    name = "no-silent-dtype-promotion"
    description = (
        "int arrays mixed into float64 arithmetic promote silently; pin "
        "the conversion with .astype(np.float64), and never introduce "
        "non-float64 float dtypes in doctrine modules"
    )

    def check_doctrine(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        arrays = ctx.arrays
        for node in ctx.walk():
            if isinstance(node, ast.BinOp) and isinstance(
                node.op, _ARITH_OPS
            ):
                kinds = (
                    arrays.kind_of(node.left),
                    arrays.kind_of(node.right),
                )
                if ArrayKind.INT_ARRAY in kinds and any(
                    kind
                    in (ArrayKind.FLOAT_ARRAY, ArrayKind.FLOAT_SCALAR)
                    for kind in kinds
                ):
                    yield ctx.diagnostic(
                        node,
                        self.code,
                        "int array promotes silently into float "
                        "arithmetic; pin it with .astype(np.float64) so "
                        "the conversion point is explicit",
                    )
            elif isinstance(node, ast.Attribute):
                if (
                    isinstance(node.value, ast.Name)
                    and node.value.id in ("np", "numpy")
                    and node.attr in _NON_F64_FLOAT_TOKENS
                ):
                    yield ctx.diagnostic(
                        node,
                        self.code,
                        f"np.{node.attr} breaks the float64-only "
                        "doctrine; batch kernels must match the scalar "
                        "engine's float64 arithmetic exactly",
                    )
            elif isinstance(node, ast.Constant) and (
                isinstance(node.value, str)
                and node.value in _NON_F64_FLOAT_TOKENS
            ):
                yield ctx.diagnostic(
                    node,
                    self.code,
                    f"dtype string {node.value!r} breaks the "
                    "float64-only doctrine",
                )


class UnstableSortRule(_DoctrineRule):
    code = "RPR404"
    name = "stable-sort-only"
    description = (
        "np.sort/argsort default to introsort with unspecified tie "
        "order; lane/event ordering must pass kind=\"stable\" or use "
        "np.lexsort"
    )

    _STABLE_KINDS = ("stable", "mergesort")

    def _has_stable_kind(self, node: ast.Call) -> bool:
        for kw in node.keywords:
            if kw.arg == "kind":
                return (
                    isinstance(kw.value, ast.Constant)
                    and kw.value.value in self._STABLE_KINDS
                )
        return False

    def check_doctrine(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        arrays = ctx.arrays
        for node in ctx.walk():
            if not isinstance(node, ast.Call):
                continue
            attr = _np_attr(node.func)
            if attr in ("sort", "argsort"):
                if not self._has_stable_kind(node):
                    yield ctx.diagnostic(
                        node,
                        self.code,
                        f"np.{attr} without kind=\"stable\" leaves tie "
                        "order unspecified; pass kind=\"stable\" or use "
                        "np.lexsort",
                    )
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in ("sort", "argsort")
                and arrays.kind_of(node.func.value).is_array
                and not self._has_stable_kind(node)
            ):
                # Only flag array receivers: Python's list.sort is
                # already stable by definition.
                yield ctx.diagnostic(
                    node,
                    self.code,
                    f".{node.func.attr}() on an array without "
                    "kind=\"stable\" leaves tie order unspecified",
                )


#: In-place ndarray methods that mutate the receiver.
_INPLACE_METHODS = frozenset(
    {"sort", "fill", "partition", "put", "resize", "setfield"}
)

_OPT_OUT_RE = re.compile(r"in[- ]place", re.IGNORECASE)


class InPlaceParamMutationRule(_DoctrineRule):
    code = "RPR405"
    name = "no-inplace-param-mutation"
    description = (
        "writing through a parameter (or a view of one) aliases caller "
        "state; kernels that mutate by contract must say \"in place\" "
        "in their docstring"
    )

    _VIEW_METHODS = frozenset({"reshape", "ravel", "view", "flatten"})

    def check_doctrine(self, ctx: ModuleContext) -> Iterator[Diagnostic]:
        for node in ctx.walk():
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(ctx, node)

    def _check_function(
        self,
        ctx: ModuleContext,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> Iterator[Diagnostic]:
        doc = ast.get_docstring(func)
        if doc is not None and _OPT_OUT_RE.search(doc):
            return
        args = func.args
        params = {
            arg.arg
            for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs)
            if arg.arg not in ("self", "cls")
        }
        if not params:
            return
        aliases = set(params)
        # One forward pass: grow the alias set (x = param, x = param[...],
        # x = param.view()), then flag stores through any alias.  Nested
        # function definitions have their own parameter scope and are
        # visited separately by ``check_doctrine``.
        for stmt in ast.walk(func):
            if isinstance(stmt, ast.Assign):
                if self._aliases_param(stmt.value, aliases):
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            aliases.add(target.id)
                for target in stmt.targets:
                    yield from self._check_store(ctx, target, aliases)
            elif isinstance(stmt, ast.AugAssign):
                yield from self._check_store(ctx, stmt.target, aliases)
            elif isinstance(stmt, ast.Call):
                yield from self._check_call(ctx, stmt, aliases)

    def _root_name(self, node: ast.expr) -> str | None:
        while isinstance(node, (ast.Subscript, ast.Attribute)):
            node = node.value
        if isinstance(node, ast.Name):
            return node.id
        return None

    def _aliases_param(self, value: ast.expr, aliases: set[str]) -> bool:
        if isinstance(value, ast.Name):
            return value.id in aliases
        if isinstance(value, ast.Subscript):
            root = self._root_name(value)
            return root is not None and root in aliases
        if isinstance(value, ast.Call) and isinstance(
            value.func, ast.Attribute
        ):
            if value.func.attr in self._VIEW_METHODS:
                root = self._root_name(value.func.value)
                return root is not None and root in aliases
        return False

    def _check_store(
        self, ctx: ModuleContext, target: ast.expr, aliases: set[str]
    ) -> Iterator[Diagnostic]:
        if isinstance(target, ast.Subscript):
            root = self._root_name(target)
            if root is not None and root in aliases:
                yield ctx.diagnostic(
                    target,
                    self.code,
                    f"store through parameter `{root}` mutates caller "
                    "state in place; copy first, or declare the "
                    "contract with \"in place\" in the docstring",
                )

    def _check_call(
        self, ctx: ModuleContext, node: ast.Call, aliases: set[str]
    ) -> Iterator[Diagnostic]:
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _INPLACE_METHODS
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id in aliases
        ):
            yield ctx.diagnostic(
                node,
                self.code,
                f"in-place `.{node.func.attr}()` on parameter "
                f"`{node.func.value.id}` mutates caller state; copy "
                "first, or declare \"in place\" in the docstring",
            )
        for kw in node.keywords:
            if (
                kw.arg == "out"
                and isinstance(kw.value, ast.Name)
                and kw.value.id in aliases
            ):
                yield ctx.diagnostic(
                    node,
                    self.code,
                    f"out={kw.value.id} writes into a parameter in "
                    "place; copy first, or declare \"in place\" in the "
                    "docstring",
                )


register_rule(UnorderedReductionRule())
register_rule(SimdDivergentUfuncRule())
register_rule(DtypePromotionRule())
register_rule(UnstableSortRule())
register_rule(InPlaceParamMutationRule())
