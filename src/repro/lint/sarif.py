"""SARIF 2.1.0 rendering of a lint report.

SARIF (Static Analysis Results Interchange Format) is the exchange
format code-review UIs ingest to annotate findings inline on a diff.
:func:`to_sarif` maps a :class:`~repro.lint.engine.LintReport` onto the
minimal valid subset: one ``run`` whose tool driver carries the full
rule metadata (so viewers can show rule names and help text without the
repo checked out) and one ``result`` per diagnostic with a physical
location.  Stale-suppression notes (RPR903) are emitted as ``note``
level results so review UIs can show them without failing the check.
``tests/lint/test_sarif.py`` validates the output against the published
2.1.0 JSON schema.
"""

from __future__ import annotations

from typing import Any

from repro.lint.engine import (
    ENGINE_VERSION,
    STALE_SUPPRESSION_CODE,
    SYNTAX_ERROR_CODE,
    UNKNOWN_SUPPRESSION_CODE,
    LintReport,
    all_rules,
)

__all__ = ["SARIF_SCHEMA_URI", "SARIF_VERSION", "to_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = "https://json.schemastore.org/sarif-2.1.0.json"

#: Engine-level pseudo-rules that have no Rule instance in the registry:
#: ``code -> (name, description, level)``.
_ENGINE_RULES = {
    SYNTAX_ERROR_CODE: (
        "syntax-error",
        "the file failed to parse; nothing else was checked",
        "error",
    ),
    UNKNOWN_SUPPRESSION_CODE: (
        "unknown-suppression",
        "a repro-lint suppression comment names an unknown rule code",
        "error",
    ),
    STALE_SUPPRESSION_CODE: (
        "stale-suppression",
        "a repro-lint suppression no longer matches any finding; "
        "remove it with `repro lint --fix`",
        "note",
    ),
}


def _rule_metadata() -> list[dict[str, Any]]:
    rules: list[dict[str, Any]] = []
    for rule in all_rules():
        rules.append(
            {
                "id": rule.code,
                "name": rule.name,
                "shortDescription": {"text": rule.description},
                "defaultConfiguration": {"level": "error"},
            }
        )
    for code, (name, description, level) in sorted(_ENGINE_RULES.items()):
        rules.append(
            {
                "id": code,
                "name": name,
                "shortDescription": {"text": description},
                "defaultConfiguration": {"level": level},
            }
        )
    return rules


def to_sarif(report: LintReport) -> dict[str, Any]:
    """Render a report as a SARIF 2.1.0 log (a JSON-serializable dict)."""
    rules = _rule_metadata()
    index_of = {rule["id"]: i for i, rule in enumerate(rules)}
    results: list[dict[str, Any]] = []
    for diag, level in (
        *((d, "error") for d in report.diagnostics),
        *((d, "note") for d in report.stale_suppressions),
    ):
        result: dict[str, Any] = {
            "ruleId": diag.code,
            "level": level,
            "message": {"text": diag.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": diag.path},
                        "region": {
                            "startLine": diag.line,
                            "startColumn": diag.col,
                        },
                    }
                }
            ],
        }
        if diag.code in index_of:
            result["ruleIndex"] = index_of[diag.code]
        results.append(result)
    return {
        "version": SARIF_VERSION,
        "$schema": SARIF_SCHEMA_URI,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "version": ENGINE_VERSION,
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
