"""Dimension inference from the repository's naming conventions.

The linter's tolerant-comparison and quantity-unit rules need to know,
statically, whether an expression denotes a simulated quantity — and if
so, which *dimension* it carries (time, energy, or power).  The codebase
has no runtime unit system; what it has is a disciplined vocabulary
(``deadline``, ``*_energy``, ``harvest_power``, ``wcet``, …) documented
in ``docs/architecture.md`` and enforced in review.  This module turns
that vocabulary into a lookup: :func:`infer_dimension` maps an
identifier (the last segment of a dotted name, a function name, a
keyword argument) to a :class:`Dimension`.

The inference is deliberately conservative: anything not matched by the
vocabulary is :attr:`Dimension.UNKNOWN` and never produces a finding.
A dimensionless class (speeds, efficiencies, probabilities, fractions)
is matched explicitly so ratio arithmetic is not misread as unit mixing.
"""

from __future__ import annotations

import enum

__all__ = ["Dimension", "infer_dimension", "split_words"]


class Dimension(enum.Enum):
    """Physical dimension attributed to an identifier."""

    TIME = "time"  # seconds of simulated time
    ENERGY = "energy"  # joules
    POWER = "power"  # watts (also generic per-time rates)
    DIMENSIONLESS = "dimensionless"  # speeds, fractions, probabilities
    UNKNOWN = "unknown"

    @property
    def is_quantity(self) -> bool:
        """Whether the dimension marks a simulated physical quantity."""
        return self in (Dimension.TIME, Dimension.ENERGY, Dimension.POWER)


#: Identifiers that *are* a quantity on their own (matched whole).
_EXACT: dict[str, Dimension] = {
    # time instants and durations
    "t": Dimension.TIME,
    "t0": Dimension.TIME,
    "t1": Dimension.TIME,
    "now": Dimension.TIME,
    "deadline": Dimension.TIME,
    "horizon": Dimension.TIME,
    "duration": Dimension.TIME,
    "span": Dimension.TIME,
    "elapsed": Dimension.TIME,
    "period": Dimension.TIME,
    "wcet": Dimension.TIME,
    "quantum": Dimension.TIME,
    "s1": Dimension.TIME,
    "s2": Dimension.TIME,
    "until": Dimension.TIME,
    "window": Dimension.TIME,
    # energies
    "energy": Dimension.ENERGY,
    "stored": Dimension.ENERGY,
    "capacity": Dimension.ENERGY,
    "headroom": Dimension.ENERGY,
    "overflow": Dimension.ENERGY,
    "drawn": Dimension.ENERGY,
    "leaked": Dimension.ENERGY,
    # powers / rates
    "power": Dimension.POWER,
    "rate": Dimension.POWER,
    "leak": Dimension.POWER,
    "demand": Dimension.POWER,
    # dimensionless quantities (matched so they are *not* flagged)
    "speed": Dimension.DIMENSIONLESS,
    "utilization": Dimension.DIMENSIONLESS,
    "fraction": Dimension.DIMENSIONLESS,
    "probability": Dimension.DIMENSIONLESS,
    "eta": Dimension.DIMENSIONLESS,
    "scale": Dimension.DIMENSIONLESS,
    "factor": Dimension.DIMENSIONLESS,
    "ratio": Dimension.DIMENSIONLESS,
    "seed": Dimension.DIMENSIONLESS,
    # *_rate usually means a per-time power-like rate, but these are
    # event-count fractions:
    "miss_rate": Dimension.DIMENSIONLESS,
    "hit_rate": Dimension.DIMENSIONLESS,
    "drop_rate": Dimension.DIMENSIONLESS,
}

#: Trailing words that mark a quantity (``switch_to_max_at``,
#: ``harvest_power``, ``predict_energy``, ``fade_rate``, …).
_SUFFIX: dict[str, Dimension] = {
    "time": Dimension.TIME,
    "at": Dimension.TIME,
    "deadline": Dimension.TIME,
    "duration": Dimension.TIME,
    "horizon": Dimension.TIME,
    "period": Dimension.TIME,
    "wcet": Dimension.TIME,
    "energy": Dimension.ENERGY,
    "headroom": Dimension.ENERGY,
    "overflow": Dimension.ENERGY,
    "power": Dimension.POWER,
    "rate": Dimension.POWER,
    "speed": Dimension.DIMENSIONLESS,
    "fraction": Dimension.DIMENSIONLESS,
    "probability": Dimension.DIMENSIONLESS,
    "efficiency": Dimension.DIMENSIONLESS,
    "factor": Dimension.DIMENSIONLESS,
    "utilization": Dimension.DIMENSIONLESS,
    "seed": Dimension.DIMENSIONLESS,
    "ratio": Dimension.DIMENSIONLESS,
}


#: Leading single-letter words from the paper's notation (``E_avail``
#: from eq. (6), ``P_n`` from eqs. (5)/(9)).  Applied only when more
#: words follow (``e_avail``, ``p_max``) and only when the suffix
#: vocabulary is silent — ``e_rate`` is a power (a rate *of* energy),
#: and the suffix already says so.
_PREFIX: dict[str, Dimension] = {
    "e": Dimension.ENERGY,
    "p": Dimension.POWER,
}


def split_words(identifier: str) -> list[str]:
    """Split a ``snake_case`` identifier into lowercase words.

    Leading/trailing underscores (private-attribute convention) are
    ignored; empty segments from doubled underscores are dropped.
    """
    return [word for word in identifier.lower().strip("_").split("_") if word]


def infer_dimension(identifier: str) -> Dimension:
    """Best-effort dimension of one identifier.

    The whole (underscore-stripped, lowercased) name is tried against
    the exact vocabulary first, then its last snake_case word against
    the suffix vocabulary.  ``time_to_empty``-style *predicate/helper*
    names (``time_*``, ``is_*``, ``has_*``) are treated as UNKNOWN —
    they name operations, not quantities.
    """
    words = split_words(identifier)
    if not words:
        return Dimension.UNKNOWN
    if words[0] in ("is", "has", "total", "n", "num"):
        # predicates and counters, not quantities (``is_empty``,
        # ``total_drawn`` is a *cumulative* tally — still energy, but
        # tallies are compared for reporting, not scheduling; keep the
        # rule focused on live simulation state).
        return Dimension.UNKNOWN
    whole = "_".join(words)
    if whole in _EXACT:
        return _EXACT[whole]
    if words[0] == "time" and len(words) > 1:
        # ``time_to_empty`` / ``time_cmp`` helpers, not quantities.
        return Dimension.UNKNOWN
    dim = _SUFFIX.get(words[-1], Dimension.UNKNOWN)
    if dim is Dimension.UNKNOWN and len(words) > 1 and words[0] in _PREFIX:
        return _PREFIX[words[0]]
    return dim
