"""Cross-module call graph for the purity certifier (RPR5xx).

The hash-closure rules (:mod:`repro.lint.rules_purity`) must reason
about *every function reachable from* ``canonical_json``/``spec_hash``,
which needs whole-program call resolution — one layer above the by-name
signature index (:mod:`repro.lint.index`).  :func:`build_call_graph`
scans every linted module once and resolves, in decreasing order of
confidence:

* **direct calls** — names bound by nested ``def`` scoping, module-level
  functions, and imports (``from m import f``, ``import m as a`` with
  dotted use, relative imports);
* **instantiations** — ``ClassName(...)`` edges to ``__init__`` and
  records the receiver type of ``v = ClassName(...)``;
* **method calls** — ``self.m()``/``cls.m()`` through the enclosing
  class and its project-local bases, receiver-type hints from
  constructor assignments and parameter annotations, and a
  unique-method-name fallback (guarded by a builtin-method blocklist);
* **registry dispatch** — ``make_scheduler(...)`` fans out to the
  ``__init__``/``decide`` of every ``*Scheduler`` class, mirroring
  ``repro/sched/registry.py``;
* **indirect references** — a bare ``Name`` load of a project function
  (callbacks, ``functools.partial``, decorators) becomes a ``ref``/
  ``partial``/``decorator`` edge, and ``pool.submit(f, ...)`` both adds
  an edge and records ``f`` in :attr:`CallGraph.submitted` for the
  worker-boundary rules (RPR508/509).

Unresolved callees (stdlib, numpy, unknown receivers) are recorded per
caller and treated as *deterministic* by the purity analysis — the
taint tables in :mod:`repro.lint.purity` carry the known-bad names, so
the certifier's strength is exactly the strength of that vocabulary.
Nested ``def``s get a ``contains`` edge from their enclosing function,
which over-approximates closures safely: a taint inside a nested helper
poisons the function that created it.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Iterable, Iterator, Sequence

from repro.lint.engine import ModuleContext

__all__ = [
    "CallEdge",
    "CallGraph",
    "ClassInfo",
    "FunctionNode",
    "ModuleInfo",
    "build_call_graph",
    "module_dotted_name",
]

#: Method names owned by builtin containers/streams: the unique-method
#: fallback must never link ``d.items()`` or ``handle.write()`` to a
#: project class that happens to define the same name.
_BUILTIN_METHODS = frozenset(
    {
        "add", "append", "clear", "close", "copy", "count", "discard",
        "endswith", "extend", "flush", "format", "get", "index", "insert",
        "item", "items", "join", "keys", "lower", "pop", "popleft", "read",
        "readline", "remove", "replace", "reverse", "setdefault", "sort",
        "split", "splitlines", "startswith", "strip", "tolist", "update",
        "upper", "values", "write",
    }
)


def module_dotted_name(display_path: str) -> str:
    """Dotted module name of a display path (``src/`` prefix stripped).

    ``src/repro/runtime/journal.py`` → ``repro.runtime.journal`` and
    ``src/repro/lint/__init__.py`` → ``repro.lint``, so ``from X import
    f`` statements can be matched against linted modules.
    """
    normalized = display_path.replace("\\", "/")
    if normalized.endswith(".py"):
        normalized = normalized[: -len(".py")]
    parts = [part for part in normalized.split("/") if part]
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


@dataclasses.dataclass(frozen=True)
class CallEdge:
    """One resolved caller→callee link, anchored to the reference line."""

    caller: str
    callee: str
    lineno: int
    #: ``call`` | ``ref`` | ``decorator`` | ``contains`` | ``dispatch``
    #: | ``partial`` | ``submit``
    kind: str


@dataclasses.dataclass
class FunctionNode:
    """One function/method definition in the linted tree."""

    key: str
    display_path: str
    qualname: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    #: Name of the immediately-enclosing class for methods, else ``None``.
    class_name: str | None = None

    @property
    def lineno(self) -> int:
        return self.node.lineno


@dataclasses.dataclass
class ClassInfo:
    """Methods and base-class names of one class definition."""

    name: str
    display_path: str
    bases: tuple[str, ...] = ()
    methods: dict[str, str] = dataclasses.field(default_factory=dict)


@dataclasses.dataclass
class ModuleInfo:
    """Per-module facts the resolver and the purity analysis share."""

    display_path: str
    dotted: str
    tree: ast.Module
    #: ``alias -> (module, member)``; ``member`` is ``None`` for plain
    #: ``import module [as alias]`` bindings.
    imports: dict[str, tuple[str, str | None]] = dataclasses.field(
        default_factory=dict
    )
    functions: dict[str, str] = dataclasses.field(default_factory=dict)
    classes: dict[str, ClassInfo] = dataclasses.field(default_factory=dict)
    #: Names assigned at module level (mutable module state candidates).
    module_assigns: set[str] = dataclasses.field(default_factory=set)
    #: Module-level names bound to an RNG (``default_rng(...)`` result).
    rng_names: set[str] = dataclasses.field(default_factory=set)


class CallGraph:
    """Nodes, edges, and project-wide lookup tables."""

    def __init__(self) -> None:
        self.nodes: dict[str, FunctionNode] = {}
        self.modules: dict[str, ModuleInfo] = {}
        self.edges: dict[str, dict[str, CallEdge]] = {}
        #: Per caller: callee names the resolver could not bind.
        self.unresolved: dict[str, list[tuple[str, int]]] = {}
        #: Functions passed as the first argument of a ``.submit(...)``.
        self.submitted: set[str] = set()
        self._by_dotted: dict[str, str] = {}
        # Name → key, poisoned to None when the name is ambiguous.
        self._funcs_by_name: dict[str, str | None] = {}
        self._methods_by_name: dict[str, str | None] = {}
        self._classes_by_name: dict[str, ClassInfo | None] = {}
        # (display, scope-qualname) → directly nested function defs.
        self._scope_defs: dict[tuple[str, str], dict[str, str]] = {}

    # -- queries -----------------------------------------------------------

    def callees(self, key: str) -> Iterator[CallEdge]:
        """Outgoing edges of one function, callee-sorted (deterministic)."""
        per_callee = self.edges.get(key, {})
        for callee in sorted(per_callee):
            yield per_callee[callee]

    def reachable(self, roots: Iterable[str]) -> set[str]:
        """Every node reachable from ``roots`` (roots included).

        Plain BFS over the edge map; cycles (mutual recursion) are
        handled by the visited set, so the walk always terminates.
        """
        seen: set[str] = set()
        frontier = [key for key in roots if key in self.nodes]
        seen.update(frontier)
        while frontier:
            key = frontier.pop()
            for edge in self.callees(key):
                if edge.callee not in seen:
                    seen.add(edge.callee)
                    frontier.append(edge.callee)
        return seen

    def path(self, root: str, target: str) -> list[CallEdge] | None:
        """Shortest edge chain from ``root`` to ``target`` (BFS), if any."""
        if root not in self.nodes:
            return None
        if root == target:
            return []
        parents: dict[str, CallEdge] = {}
        frontier = [root]
        seen = {root}
        while frontier:
            next_frontier: list[str] = []
            for key in frontier:
                for edge in self.callees(key):
                    if edge.callee in seen:
                        continue
                    seen.add(edge.callee)
                    parents[edge.callee] = edge
                    if edge.callee == target:
                        chain: list[CallEdge] = []
                        cursor = target
                        while cursor != root:
                            step = parents[cursor]
                            chain.append(step)
                            cursor = step.caller
                        chain.reverse()
                        return chain
                    next_frontier.append(edge.callee)
            frontier = next_frontier
        return None

    def resolve_ref(self, ref: str) -> str | None:
        """Resolve a manifest-style ``path::qualname`` reference.

        The path half matches module display paths by suffix (like the
        parity registry's :class:`~repro.lint.parity.FunctionRef`), so
        the lint root does not matter.
        """
        if "::" not in ref:
            return None
        path_part, qualname = ref.split("::", 1)
        path_part = path_part.replace("\\", "/")
        for display in sorted(self.modules):
            normalized = display.replace("\\", "/")
            if normalized == path_part or normalized.endswith(
                "/" + path_part
            ):
                key = f"{display}::{qualname}"
                if key in self.nodes:
                    return key
        return None

    # -- construction ------------------------------------------------------

    def _add_edge(
        self, caller: str, callee: str, lineno: int, kind: str
    ) -> None:
        if callee not in self.nodes:
            return
        per_callee = self.edges.setdefault(caller, {})
        if callee not in per_callee:
            per_callee[callee] = CallEdge(
                caller=caller, callee=callee, lineno=lineno, kind=kind
            )

    def _add_unresolved(self, caller: str, name: str, lineno: int) -> None:
        self.unresolved.setdefault(caller, []).append((name, lineno))


def build_call_graph(modules: Sequence[ModuleContext]) -> CallGraph:
    """Collect definitions, then resolve every function's references."""
    graph = CallGraph()
    for ctx in modules:
        _collect_module(graph, ctx)
    _build_lookups(graph)
    for info in [graph.modules[d] for d in sorted(graph.modules)]:
        for key in sorted(graph.nodes):
            node = graph.nodes[key]
            if node.display_path == info.display_path:
                _Resolver(graph, info, node).run()
    return graph


# ---------------------------------------------------------------------------
# Collection
# ---------------------------------------------------------------------------


def _base_name(expr: ast.expr) -> str | None:
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    if isinstance(expr, ast.Subscript):  # Generic[...] bases
        return _base_name(expr.value)
    return None


def _dotted(node: ast.AST) -> str | None:
    """Render ``a.b.c`` attribute chains; ``None`` for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_rng_factory(value: ast.expr) -> bool:
    """Whether an assigned value is an RNG handle (``default_rng(...)``)."""
    if not isinstance(value, ast.Call):
        return False
    dotted = _dotted(value.func)
    if dotted is None:
        return False
    tail = dotted.split(".")[-1]
    return tail in ("default_rng", "RandomState", "Generator")


def _collect_imports(graph: CallGraph, info: ModuleInfo) -> None:
    package_parts = info.dotted.split(".") if info.dotted else []
    for node in ast.walk(info.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname is not None:
                    info.imports[alias.asname] = (alias.name, None)
                else:
                    top = alias.name.split(".")[0]
                    info.imports.setdefault(top, (top, None))
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if node.level:
                # Relative import: resolve against this module's package.
                prefix = package_parts[: len(package_parts) - node.level]
                module = ".".join([*prefix, module] if module else prefix)
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                info.imports[local] = (module, alias.name)


def _collect_module(graph: CallGraph, ctx: ModuleContext) -> None:
    display = ctx.display_path
    info = ModuleInfo(
        display_path=display,
        dotted=module_dotted_name(display),
        tree=ctx.tree,
    )
    graph.modules[display] = info
    if info.dotted:
        graph._by_dotted.setdefault(info.dotted, display)
    _collect_imports(graph, info)

    def walk(
        body: Sequence[ast.stmt],
        scope: str,
        scope_kind: str,
        class_info: ClassInfo | None,
    ) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{scope}.{stmt.name}" if scope else stmt.name
                key = f"{display}::{qualname}"
                graph.nodes[key] = FunctionNode(
                    key=key,
                    display_path=display,
                    qualname=qualname,
                    node=stmt,
                    class_name=(
                        class_info.name
                        if scope_kind == "class" and class_info is not None
                        else None
                    ),
                )
                if scope_kind in ("module", "function"):
                    graph._scope_defs.setdefault(
                        (display, scope), {}
                    )[stmt.name] = key
                if scope_kind == "module":
                    info.functions[stmt.name] = key
                if scope_kind == "class" and class_info is not None:
                    class_info.methods[stmt.name] = key
                walk(stmt.body, qualname, "function", None)
            elif isinstance(stmt, ast.ClassDef):
                qualname = f"{scope}.{stmt.name}" if scope else stmt.name
                nested = ClassInfo(
                    name=stmt.name,
                    display_path=display,
                    bases=tuple(
                        name
                        for name in (
                            _base_name(base) for base in stmt.bases
                        )
                        if name is not None
                    ),
                )
                info.classes.setdefault(stmt.name, nested)
                walk(stmt.body, qualname, "class", nested)
            elif scope_kind == "module":
                _collect_module_state(info, stmt)
                # Defs nested in module-level `if`/`try` blocks still
                # count as module-level bindings.
                for sub_body in (
                    getattr(stmt, "body", None),
                    getattr(stmt, "orelse", None),
                    getattr(stmt, "finalbody", None),
                ):
                    if sub_body:
                        walk(sub_body, scope, "module", None)

    walk(info.tree.body, "", "module", None)


def _collect_module_state(info: ModuleInfo, stmt: ast.stmt) -> None:
    targets: list[ast.expr] = []
    value: ast.expr | None = None
    if isinstance(stmt, ast.Assign):
        targets = list(stmt.targets)
        value = stmt.value
    elif isinstance(stmt, ast.AnnAssign):
        targets = [stmt.target]
        value = stmt.value
    elif isinstance(stmt, ast.AugAssign):
        targets = [stmt.target]
    for target in targets:
        if isinstance(target, ast.Name):
            info.module_assigns.add(target.id)
            if value is not None and _is_rng_factory(value):
                info.rng_names.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                if isinstance(element, ast.Name):
                    info.module_assigns.add(element.id)


def _build_lookups(graph: CallGraph) -> None:
    for display in sorted(graph.modules):
        info = graph.modules[display]
        for name in sorted(info.functions):
            _merge_unique(graph._funcs_by_name, name, info.functions[name])
        for cname in sorted(info.classes):
            cinfo = info.classes[cname]
            _merge_unique_class(graph._classes_by_name, cname, cinfo)
            for mname in sorted(cinfo.methods):
                _merge_unique(
                    graph._methods_by_name, mname, cinfo.methods[mname]
                )


def _merge_unique(
    table: dict[str, str | None], name: str, key: str
) -> None:
    if name not in table:
        table[name] = key
    elif table[name] != key:
        table[name] = None


def _merge_unique_class(
    table: dict[str, ClassInfo | None], name: str, cinfo: ClassInfo
) -> None:
    if name not in table:
        table[name] = cinfo
    elif table[name] is not cinfo:
        table[name] = None


# ---------------------------------------------------------------------------
# Resolution
# ---------------------------------------------------------------------------


class _Resolver:
    """Resolve one function's calls, references, and decorators."""

    def __init__(
        self, graph: CallGraph, info: ModuleInfo, fnode: FunctionNode
    ) -> None:
        self.graph = graph
        self.info = info
        self.fnode = fnode
        self.locals = _local_bindings(fnode.node)
        self.receiver_types = _receiver_types(self, fnode.node)

    # -- entry point -------------------------------------------------------

    def run(self) -> None:
        func = self.fnode.node
        for deco in func.decorator_list:
            target = deco.func if isinstance(deco, ast.Call) else deco
            key = self._resolve_callable_expr(target)
            if key is not None:
                self.graph._add_edge(
                    self.fnode.key, key, deco.lineno, "decorator"
                )
        for stmt in func.body:
            self._visit(stmt)

    def _visit(self, node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested def: its body is a separate node; over-approximate
            # the closure with a `contains` edge and stop descending.
            nested_key = f"{self.fnode.key}.{node.name}"
            self.graph._add_edge(
                self.fnode.key, nested_key, node.lineno, "contains"
            )
            return
        if isinstance(node, ast.ClassDef):
            return
        if isinstance(node, ast.Call):
            self._handle_call(node)
            for child in ast.iter_child_nodes(node):
                self._visit(child)
            return
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            self._handle_name_ref(node)
            return
        for child in ast.iter_child_nodes(node):
            self._visit(child)

    # -- call handling -----------------------------------------------------

    def _handle_call(self, node: ast.Call) -> None:
        lineno = node.lineno
        func = node.func
        if isinstance(func, ast.Name):
            name = func.id
            if self._is_partial(name):
                self._handle_partial(node)
                return
            if name == "make_scheduler":
                self._dispatch_schedulers(lineno)
                return
            key = self._resolve_name_callable(name)
            if key is not None:
                self.graph._add_edge(self.fnode.key, key, lineno, "call")
            elif name not in self.locals and not _is_builtin_name(name):
                self.graph._add_unresolved(self.fnode.key, name, lineno)
            return
        if isinstance(func, ast.Attribute):
            if func.attr == "submit":
                self._handle_submit(node)
                # fall through: also try resolving `.submit` itself
            if func.attr == "make_scheduler":
                self._dispatch_schedulers(lineno)
                return
            dotted = _dotted(func)
            key = self._resolve_attribute_callable(func, dotted)
            if key is not None:
                self.graph._add_edge(self.fnode.key, key, lineno, "call")
            else:
                self.graph._add_unresolved(
                    self.fnode.key, dotted or func.attr, lineno
                )

    def _is_partial(self, name: str) -> bool:
        if name == "partial":
            imported = self.info.imports.get(name)
            return imported is None or imported[0] == "functools"
        return False

    def _handle_partial(self, node: ast.Call) -> None:
        if not node.args:
            return
        key = self._resolve_callable_expr(node.args[0])
        if key is not None:
            self.graph._add_edge(
                self.fnode.key, key, node.lineno, "partial"
            )

    def _handle_submit(self, node: ast.Call) -> None:
        if not node.args:
            return
        key = self._resolve_callable_expr(node.args[0])
        if key is not None:
            self.graph.submitted.add(key)
            self.graph._add_edge(self.fnode.key, key, node.lineno, "submit")

    def _dispatch_schedulers(self, lineno: int) -> None:
        """``make_scheduler(name)`` reaches every registered scheduler.

        The registry maps names to ``*Scheduler`` classes, so the sound
        over-approximation is an edge to the constructor and ``decide``
        of each such class anywhere in the project.
        """
        for display in sorted(self.graph.modules):
            info = self.graph.modules[display]
            for cname in sorted(info.classes):
                if not cname.endswith("Scheduler"):
                    continue
                cinfo = info.classes[cname]
                for mname in ("__init__", "decide"):
                    key = cinfo.methods.get(mname)
                    if key is not None:
                        self.graph._add_edge(
                            self.fnode.key, key, lineno, "dispatch"
                        )

    def _handle_name_ref(self, node: ast.Name) -> None:
        name = node.id
        if name in self.locals:
            return
        key = self._resolve_name_function(name)
        if key is not None and key != self.fnode.key:
            self.graph._add_edge(self.fnode.key, key, node.lineno, "ref")

    # -- resolution primitives --------------------------------------------

    def _resolve_callable_expr(self, expr: ast.expr) -> str | None:
        """Resolve an expression used *as a callable value* (not called)."""
        if isinstance(expr, ast.Name):
            return self._resolve_name_callable(expr.id)
        if isinstance(expr, ast.Attribute):
            return self._resolve_attribute_callable(expr, _dotted(expr))
        return None

    def _resolve_name_function(self, name: str) -> str | None:
        """A bare name as a function value (no class instantiation)."""
        key = self._lookup_scoped(name)
        if key is not None:
            return key
        imported = self.info.imports.get(name)
        if imported is not None:
            return self._resolve_imported_member(imported)
        unique = self.graph._funcs_by_name.get(name)
        return unique

    def _resolve_name_callable(self, name: str) -> str | None:
        """A bare name in call position (functions *and* classes)."""
        key = self._lookup_scoped(name)
        if key is not None:
            return key
        cls = self._lookup_class(name)
        if cls is not None:
            return cls.methods.get("__init__")
        imported = self.info.imports.get(name)
        if imported is not None:
            return self._resolve_imported_member(imported)
        return self.graph._funcs_by_name.get(name)

    def _lookup_scoped(self, name: str) -> str | None:
        """Nested-def scoping: innermost enclosing function scope wins."""
        parts = self.fnode.qualname.split(".")
        display = self.fnode.display_path
        for depth in range(len(parts), -1, -1):
            scope = ".".join(parts[:depth])
            defs = self.graph._scope_defs.get((display, scope))
            if defs is not None and name in defs:
                return defs[name]
        return None

    def _lookup_class(self, name: str) -> ClassInfo | None:
        local = self.info.classes.get(name)
        if local is not None:
            return local
        imported = self.info.imports.get(name)
        if imported is not None:
            module, member = imported
            display = self._module_display(module)
            if display is not None and member is not None:
                return self.graph.modules[display].classes.get(member)
            return None
        return self.graph._classes_by_name.get(name)

    def _module_display(self, dotted: str) -> str | None:
        direct = self.graph._by_dotted.get(dotted)
        if direct is not None:
            return direct
        # Tolerate a missing package prefix (fixture trees whose display
        # paths do not start at the package root).
        tail_matches = [
            self.graph._by_dotted[name]
            for name in sorted(self.graph._by_dotted)
            if name.endswith("." + dotted)
        ]
        if len(tail_matches) == 1:
            return tail_matches[0]
        return None

    def _resolve_imported_member(
        self, imported: tuple[str, str | None]
    ) -> str | None:
        module, member = imported
        if member is None:
            return None
        display = self._module_display(module)
        if display is None:
            return None
        target = self.graph.modules[display]
        key = target.functions.get(member)
        if key is not None:
            return key
        cls = target.classes.get(member)
        if cls is not None:
            return cls.methods.get("__init__")
        return None

    def _resolve_attribute_callable(
        self, func: ast.Attribute, dotted: str | None
    ) -> str | None:
        attr = func.attr
        if dotted is not None:
            parts = dotted.split(".")
            # self.m() / cls.m() through the enclosing class hierarchy.
            if parts[0] in ("self", "cls") and self.fnode.class_name:
                if len(parts) == 2:
                    return self._lookup_method(self.fnode.class_name, attr)
            # Alias translation: `import repro.runtime.journal as jr`.
            imported = self.info.imports.get(parts[0])
            if imported is not None and imported[1] is None:
                parts = imported[0].split(".") + parts[1:]
            key = self._resolve_dotted_module_path(parts)
            if key is not None:
                return key
            # Receiver-type hints: `v = ClassName(...)` / `v: ClassName`.
            if len(parts) == 2:
                receiver_class = self.receiver_types.get(parts[0])
                if receiver_class is not None:
                    found = self._lookup_method(receiver_class, attr)
                    if found is not None:
                        return found
                cls = self._lookup_class(parts[0])
                if cls is not None:
                    return self._class_method_key(cls, attr)
        # Last resort: a method name defined exactly once project-wide.
        if attr not in _BUILTIN_METHODS:
            return self.graph._methods_by_name.get(attr)
        return None

    def _resolve_dotted_module_path(
        self, parts: Sequence[str]
    ) -> str | None:
        """``pkg.mod.func`` / ``pkg.mod.Class.method`` via module paths."""
        for split in range(len(parts) - 1, 0, -1):
            display = self._module_display(".".join(parts[:split]))
            if display is None:
                continue
            target = self.graph.modules[display]
            remainder = parts[split:]
            if len(remainder) == 1:
                key = target.functions.get(remainder[0])
                if key is not None:
                    return key
                cls = target.classes.get(remainder[0])
                if cls is not None:
                    return cls.methods.get("__init__")
            elif len(remainder) == 2:
                cls = target.classes.get(remainder[0])
                if cls is not None:
                    return self._class_method_key(cls, remainder[1])
        return None

    def _lookup_method(self, class_name: str, method: str) -> str | None:
        """Find a method on a class or its project-local base chain."""
        visited: set[str] = set()
        queue = [class_name]
        while queue:
            cname = queue.pop(0)
            if cname in visited:
                continue
            visited.add(cname)
            cinfo = self.info.classes.get(cname)
            if cinfo is None:
                cinfo = self.graph._classes_by_name.get(cname)
            if cinfo is None:
                continue
            key = cinfo.methods.get(method)
            if key is not None:
                return key
            queue.extend(cinfo.bases)
        return None

    def _class_method_key(self, cls: ClassInfo, method: str) -> str | None:
        key = cls.methods.get(method)
        if key is not None:
            return key
        return self._lookup_method(cls.name, method)


def _is_builtin_name(name: str) -> bool:
    import builtins

    return hasattr(builtins, name)


def _local_bindings(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> set[str]:
    """Names bound locally (params, assignments, imports, nested defs).

    Over-approximates by walking nested scopes too — a shadowed name is
    merely skipped by the unique-name fallbacks, never misresolved.
    """
    bound: set[str] = set()
    args = func.args
    for arg in (
        *args.posonlyargs,
        *args.args,
        *args.kwonlyargs,
        *([args.vararg] if args.vararg else []),
        *([args.kwarg] if args.kwarg else []),
    ):
        bound.add(arg.arg)
    for node in ast.walk(func):
        if isinstance(node, ast.Name) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            bound.add(node.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node is not func:
                bound.add(node.name)
        elif isinstance(node, ast.ClassDef):
            bound.add(node.name)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            if node is not func:
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    bound.add(local)
        elif isinstance(node, ast.ExceptHandler) and node.name:
            bound.add(node.name)
    return bound


def _receiver_types(
    resolver: "_Resolver", func: ast.FunctionDef | ast.AsyncFunctionDef
) -> dict[str, str]:
    """``variable -> class name`` hints for method resolution."""
    hints: dict[str, str] = {}

    def annotation_class(annotation: ast.expr | None) -> str | None:
        if annotation is None:
            return None
        name: str | None = None
        if isinstance(annotation, ast.Name):
            name = annotation.id
        elif isinstance(annotation, ast.Attribute):
            name = annotation.attr
        elif isinstance(annotation, ast.Constant) and isinstance(
            annotation.value, str
        ):
            name = annotation.value.split(".")[-1].strip()
        if name is not None and resolver._lookup_class(name) is not None:
            return name
        return None

    args = func.args
    for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
        cname = annotation_class(arg.annotation)
        if cname is not None:
            hints[arg.arg] = cname
    for node in ast.walk(func):
        target: ast.expr | None = None
        cname = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(node.value, ast.Call):
                call_name: str | None = None
                if isinstance(node.value.func, ast.Name):
                    call_name = node.value.func.id
                elif isinstance(node.value.func, ast.Attribute):
                    call_name = node.value.func.attr
                if (
                    call_name is not None
                    and resolver._lookup_class(call_name) is not None
                ):
                    cname = call_name
        elif isinstance(node, ast.AnnAssign):
            target = node.target
            cname = annotation_class(node.annotation)
        if (
            target is not None
            and cname is not None
            and isinstance(target, ast.Name)
        ):
            hints.setdefault(target.id, cname)
    return hints
