"""Finding baseline: the suppression ratchet behind ``--baseline``.

A green-only gate would force every pre-existing finding to be fixed (or
suppressed) before the linter could guard anything — which is how
linters end up disabled.  The baseline records the *accepted* findings
and the current suppression count; CI then fails only on regressions:

* a finding not in the baseline (new violation), or
* more suppression comments than the baseline allows (silencing instead
  of fixing).

Findings that disappear are reported as progress; ``--update-baseline``
re-pins the file so the ratchet only ever tightens.

Fingerprints are ``(path, code, message)`` **multisets** — line numbers
are deliberately excluded so unrelated edits that shift a finding down
the file do not churn the baseline, while a *second* identical finding
in the same file still registers as new.  The engine version and rule
set are stored alongside; comparing against a baseline produced by
different rule semantics raises instead of silently matching.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

from repro.lint.engine import (
    ENGINE_VERSION,
    Diagnostic,
    LintError,
    LintReport,
    ruleset_codes,
)

__all__ = ["Baseline", "BaselineComparison", "fingerprint"]

#: Schema version of the baseline file itself.
BASELINE_FORMAT = 1

Fingerprint = tuple[str, str, str]


def fingerprint(diag: Diagnostic) -> Fingerprint:
    """Line-independent identity of a finding."""
    return (diag.path, diag.code, diag.message)


@dataclasses.dataclass(frozen=True)
class BaselineComparison:
    """Outcome of holding a fresh report against a baseline."""

    #: Findings not covered by the baseline — these fail the gate.
    new: tuple[Diagnostic, ...]
    #: Baselined findings that no longer occur (progress, not failure).
    fixed_count: int
    suppression_count: int
    baseline_suppression_count: int

    @property
    def ok(self) -> bool:
        return (
            not self.new
            and self.suppression_count <= self.baseline_suppression_count
        )

    def format_text(self) -> str:
        lines = []
        if self.new:
            lines.append(f"{len(self.new)} new finding(s) not in baseline:")
            lines.extend(f"  {diag.format_text()}" for diag in self.new)
        if self.suppression_count > self.baseline_suppression_count:
            lines.append(
                f"suppression count grew {self.baseline_suppression_count} "
                f"-> {self.suppression_count}; fix the finding or update "
                "the baseline deliberately"
            )
        if self.fixed_count:
            lines.append(
                f"{self.fixed_count} baselined finding(s) no longer occur; "
                "run --update-baseline to ratchet them out"
            )
        if self.ok:
            lines.append("baseline check passed: no new findings")
        return "\n".join(lines)


@dataclasses.dataclass(frozen=True)
class Baseline:
    """The accepted findings of a tree, pinned to engine semantics."""

    engine_version: str
    ruleset: tuple[str, ...]
    #: Multiset of accepted finding fingerprints.
    counts: dict[Fingerprint, int]
    suppression_count: int

    @classmethod
    def from_report(cls, report: LintReport) -> "Baseline":
        counts: dict[Fingerprint, int] = {}
        for diag in report.diagnostics:
            fp = fingerprint(diag)
            counts[fp] = counts.get(fp, 0) + 1
        return cls(
            engine_version=ENGINE_VERSION,
            ruleset=ruleset_codes(),
            counts=counts,
            suppression_count=report.suppression_count,
        )

    def check_compatible(self) -> None:
        """Refuse to compare across engine/ruleset generations."""
        if self.engine_version != ENGINE_VERSION:
            raise LintError(
                f"baseline was written by engine {self.engine_version}, "
                f"this is {ENGINE_VERSION}; regenerate it with "
                "--update-baseline"
            )
        current = ruleset_codes()
        if self.ruleset != current:
            raise LintError(
                "baseline rule set does not match the registered rules "
                f"({', '.join(self.ruleset)} vs {', '.join(current)}); "
                "regenerate it with --update-baseline"
            )

    def compare(self, report: LintReport) -> BaselineComparison:
        self.check_compatible()
        remaining = dict(self.counts)
        new: list[Diagnostic] = []
        for diag in report.diagnostics:
            fp = fingerprint(diag)
            if remaining.get(fp, 0) > 0:
                remaining[fp] -= 1
            else:
                new.append(diag)
        return BaselineComparison(
            new=tuple(new),
            fixed_count=sum(remaining.values()),
            suppression_count=report.suppression_count,
            baseline_suppression_count=self.suppression_count,
        )

    def to_json(self) -> str:
        findings = [
            {"path": path, "code": code, "message": message, "count": n}
            for (path, code, message), n in sorted(self.counts.items())
        ]
        payload = {
            "baseline_format": BASELINE_FORMAT,
            "engine_version": self.engine_version,
            "ruleset": list(self.ruleset),
            "suppressions": self.suppression_count,
            "findings": findings,
        }
        return json.dumps(payload, indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "Baseline":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise LintError(f"baseline file is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict) or payload.get(
            "baseline_format"
        ) != BASELINE_FORMAT:
            raise LintError(
                "unrecognized baseline format; regenerate the file with "
                "--update-baseline"
            )
        try:
            counts: dict[Fingerprint, int] = {}
            for entry in payload["findings"]:
                fp = (entry["path"], entry["code"], entry["message"])
                counts[fp] = counts.get(fp, 0) + int(entry["count"])
            return cls(
                engine_version=str(payload["engine_version"]),
                ruleset=tuple(payload["ruleset"]),
                counts=counts,
                suppression_count=int(payload["suppressions"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise LintError(f"malformed baseline file: {exc!r}") from exc

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        try:
            text = Path(path).read_text(encoding="utf-8")
        except OSError as exc:
            raise LintError(f"cannot read baseline {path}: {exc}") from exc
        return cls.from_json(text)

    def save(self, path: str | Path) -> None:
        from repro.serialization import atomic_write_text

        atomic_write_text(path, self.to_json())
