"""Structure-of-arrays batch simulator: N scenarios in numpy lockstep.

The scalar simulator (:mod:`repro.sim.simulator`) advances one scenario
segment by segment: every iteration of its main loop processes due
events, possibly asks the scheduler for a decision, computes the next
segment end and evolves storage/progress analytically across it.  All
of that arithmetic is closed-form, so *N* scenarios can run in lockstep
with one numpy operation per scalar statement: this module holds every
piece of per-scenario state (storage level, event cursor, ready-set
bitmaps, running job/level, stall windows) in arrays indexed by "lane"
(= scenario) and executes the scalar main loop's body element-wise.

**Equivalence doctrine** — the batch engine is a *mirror*, not a
re-derivation: each step performs the same IEEE float64 operations in
the same order as the scalar code path it shadows (references inline).
Miss counts, decisions and schedules are therefore bit-exact, and
energy trajectories agree to the documented tolerance (see
``docs/batch-simulation.md``; in practice they are bit-equal too).
This is enforced by :mod:`repro.verify.batch_equivalence` and
``tests/sim/test_batch_equivalence.py``.

**Coverage** — the core handles the shapes the paper experiments use:
schedulers ``edf`` / ``lsa`` / ``ea-dvfs`` / ``ea-dvfs-noslowdown``,
constant / solar-stochastic / day-night sources (unfaulted), finite
:class:`~repro.energy.storage.IdealStorage`, all four predictors
(``oracle``, ``profile``, ``mean``, ``last-value`` — online predictor
state lives in per-lane arrays, updated by the kernels in
:mod:`repro.energy.vectorized`), both miss policies, zero switching
overhead, no tracing/sampling.  Everything else (fault plans, infinite
storage, custom schedulers, per-run energy sampling) falls back
per-scenario to the scalar simulator; :class:`BatchRunner` counts those
fallbacks so sweeps can report them (``SweepReport.batch_fallbacks`` /
``SweepReport.fallback_reasons``).
"""

# repro: float-doctrine -- the RPR4xx bit-exactness rules apply here.

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence, Union

import numpy as np

from repro.cpu.dvfs import FrequencyScale
from repro.energy.source import (
    ConstantSource,
    DayNightSource,
    EnergySource,
    SolarStochasticSource,
)
from repro.energy.predictor import (
    HarvestPredictor,
    LastValuePredictor,
    MeanPowerPredictor,
    OraclePredictor,
    ProfilePredictor,
)
from repro.energy.storage import EnergyStorage, IdealStorage
from repro.energy.vectorized import (
    batch_last_observe,
    batch_mean_observe,
    batch_profile_observe,
    batch_profile_predict,
    batch_span_predict,
)
from repro.sched.registry import make_scheduler
from repro.sched.vectorized import (
    SCHEDULER_KINDS,
    SCHED_EDF,
    BoolArray,
    FloatArray,
    IntArray,
    batch_decide,
    batch_time_le,
)
from repro.sim.simulator import SimulationResult
from repro.tasks.job import Job, JobState
from repro.tasks.task import PeriodicTask, TaskSet
from repro.timeutils import EPSILON, INFINITY

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.parallel import RunFailure, RunSpec
    from repro.verify.scenarios import ScenarioSpec

__all__ = [
    "BatchOutcome",
    "BatchRunner",
    "UncoveredScenarioError",
    "run_scenario_batch",
    "execute_runspecs",
    "runspec_fallback_reason",
    "scenario_fallback_reason",
]


class UncoveredScenarioError(Exception):
    """The batch core does not cover this scenario shape (use scalar)."""


# -- source parameterization ----------------------------------------------

_SRC_CONST = 0
_SRC_QUANTIZED = 1
_SRC_DAYNIGHT = 2

#: Job state codes used in the SoA arrays (indices into this tuple).
_JOB_STATES = (
    JobState.PENDING,
    JobState.READY,
    JobState.COMPLETED,
    JobState.MISSED,
)
_PENDING, _READY, _COMPLETED, _MISSED = range(4)

#: Rank sentinel for "no ready job" (larger than any real rank).
_NO_JOB = np.iinfo(np.int64).max


@dataclass
class _SourceParams:
    """Closed-form parameters of one lane's (unfaulted) energy source."""

    kind: int
    const_power: float = 0.0
    quantum: float = 1.0
    quantized_powers: FloatArray = field(
        default_factory=lambda: np.zeros(0, dtype=np.float64)
    )
    day_power: float = 0.0
    night_power: float = 0.0
    day_length: float = 0.0
    cycle: float = 1.0
    phase: float = 0.0


def _source_params(source: EnergySource, t_max: float) -> _SourceParams:
    """Extract vectorizable parameters, or raise ``UncoveredScenarioError``.

    For the solar source, per-quantum powers are precomputed with the
    same arithmetic the scalar source performs lazily: batched
    ``standard_normal`` draws equal sequential single draws for one
    ``default_rng`` seed, and the numpy float64 element-wise kernels
    (abs/max/cos/mul/div) match ``math``'s scalars bit for bit.
    """
    if type(source) is ConstantSource:
        return _SourceParams(kind=_SRC_CONST, const_power=source.power(0.0))
    if type(source) is SolarStochasticSource:
        quantum = source.quantum
        count = int(math.ceil(t_max / quantum)) + 2
        rng = np.random.default_rng(source.seed)
        draws = rng.standard_normal(count)
        rectify = source.rectify
        if rectify == "abs":
            draws = np.abs(draws)
        elif rectify == "clamp":
            draws = np.maximum(draws, 0.0)
        midpoints = (np.arange(count).astype(np.float64) + 0.5) * quantum
        # Mirrors SolarStochasticSource.power: amplitude * draw * cos^2.
        # np.cos matches math.cos bit for bit on these inputs on every
        # platform the equivalence sweep runs (no SIMD-vs-libm drift has
        # been observed for cos, unlike pow); the scalar twin
        # SolarStochasticSource._envelope uses math.cos, and
        # `repro verify --batch` re-proves the equality on every CI run.
        cosine = np.cos(  # repro-lint: disable=RPR402 -- matches math.cos, verified dynamically
            np.pi * midpoints / source.envelope_period
        )
        powers = source.amplitude * draws * (cosine * cosine)
        return _SourceParams(
            kind=_SRC_QUANTIZED, quantum=quantum, quantized_powers=powers
        )
    if type(source) is DayNightSource:
        return _SourceParams(
            kind=_SRC_DAYNIGHT,
            day_power=source.day_power,
            night_power=source.night_power,
            day_length=source.day_length,
            cycle=source.day_length + source.night_length,
            phase=source.phase,
        )
    raise UncoveredScenarioError(
        f"source type {type(source).__name__} is not vectorized"
    )


# -- predictor parameterization -------------------------------------------

_PRED_ORACLE = 0
_PRED_MEAN = 1
_PRED_LAST = 2
_PRED_PROFILE = 3


@dataclass
class _PredictorParams:
    """Vectorizable state of one lane's harvest predictor.

    ``estimate`` carries the live EWMA scalar for the mean and
    last-value predictors; ``bin_estimates``/``bin_seen`` carry the
    profile predictor's live per-bin state, so pre-trained predictors
    batch just like fresh ones.  The oracle needs no state — the core
    integrates the source directly.
    """

    kind: int
    alpha: float = 0.0
    estimate: float = 0.0
    period: float = 1.0
    bin_width: float = 1.0
    n_bins: int = 1
    bin_estimates: FloatArray = field(
        default_factory=lambda: np.zeros(0, dtype=np.float64)
    )
    bin_seen: BoolArray = field(
        default_factory=lambda: np.zeros(0, dtype=np.bool_)
    )


def _predictor_params(predictor: HarvestPredictor) -> _PredictorParams:
    """Extract vectorizable parameters, or raise ``UncoveredScenarioError``.

    Exact ``type()`` checks, like :func:`_source_params`: a subclass may
    override behavior the kernels do not replay (``BiasedPredictor``
    wraps any of these under fault plans, which already fall back).
    """
    if type(predictor) is OraclePredictor:
        return _PredictorParams(kind=_PRED_ORACLE)
    if type(predictor) is MeanPowerPredictor:
        return _PredictorParams(
            kind=_PRED_MEAN,
            alpha=predictor.alpha,
            estimate=predictor.estimate,
        )
    if type(predictor) is LastValuePredictor:
        return _PredictorParams(kind=_PRED_LAST, estimate=predictor.estimate)
    if type(predictor) is ProfilePredictor:
        return _PredictorParams(
            kind=_PRED_PROFILE,
            alpha=predictor.alpha,
            period=predictor.period,
            bin_width=predictor.bin_width,
            n_bins=predictor.n_bins,
            bin_estimates=predictor.bin_estimates(),
            bin_seen=predictor.bin_seen(),
        )
    raise UncoveredScenarioError(
        f"predictor type {type(predictor).__name__} is not vectorized"
    )


# -- lane descriptors -----------------------------------------------------


@dataclass
class _Lane:
    """Immutable per-scenario setup feeding the SoA core.

    ``jobs`` holds the *real* :class:`Job` objects (in the simulator's
    deterministic ``(release, deadline, task name)`` order); the core
    writes final states back into them so downstream consumers (oracle
    checks, ``compare_schedules``) see exactly what the scalar engine
    would have produced.
    """

    scheduler_name: str
    sched_kind: int
    horizon: float
    miss_drop: bool
    capacity: float
    initial_stored: float
    speeds: FloatArray
    powers: FloatArray
    source: _SourceParams
    predictor: _PredictorParams
    #: ``None`` for slim sweep lanes built straight from task arrays —
    #: those cannot serve ``result(include_jobs=True)``.
    jobs: Optional[list[Job]]
    # per-job static columns (job-index order)
    jrelease: FloatArray
    jdeadline: FloatArray
    jwork: FloatArray
    jactual: FloatArray
    #: per-job task index into ``task_names`` (for per-task tallies)
    jtask: IntArray
    task_names: list[str]
    # event table, presorted by (time, priority, sequence)
    ev_time: FloatArray
    ev_is_deadline: BoolArray
    ev_job: IntArray

    @property
    def n_jobs(self) -> int:
        return int(self.jrelease.shape[0])


def _build_lane(
    scheduler_name: str,
    scale: FrequencyScale,
    jobs: list[Job],
    source: EnergySource,
    storage: EnergyStorage,
    predictor: HarvestPredictor,
    horizon: float,
    miss_drop: bool,
) -> _Lane:
    """Assemble a lane from real ``Job`` objects (the full-fidelity path)."""
    jobs = list(jobs)
    jrelease = np.asarray([j.release for j in jobs], dtype=np.float64)
    jdeadline = np.asarray(
        [j.absolute_deadline for j in jobs], dtype=np.float64
    )
    task_names: list[str] = []
    task_index: dict[str, int] = {}
    jtask = np.zeros(len(jobs), dtype=np.int64)
    for k, job in enumerate(jobs):
        name = job.task.name
        if name not in task_index:
            task_index[name] = len(task_names)
            task_names.append(name)
        jtask[k] = task_index[name]
    return _assemble_lane(
        scheduler_name=scheduler_name,
        scale=scale,
        source=source,
        storage=storage,
        predictor=predictor,
        horizon=horizon,
        miss_drop=miss_drop,
        jrelease=jrelease,
        jdeadline=jdeadline,
        jwork=np.asarray([j.remaining_work for j in jobs], dtype=np.float64),
        jactual=np.asarray(
            [j.remaining_actual_work for j in jobs], dtype=np.float64
        ),
        jtask=jtask,
        task_names=task_names,
        jobs=jobs,
    )


def _assemble_lane(
    scheduler_name: str,
    scale: FrequencyScale,
    source: EnergySource,
    storage: EnergyStorage,
    predictor: HarvestPredictor,
    horizon: float,
    miss_drop: bool,
    jrelease: FloatArray,
    jdeadline: FloatArray,
    jwork: FloatArray,
    jactual: FloatArray,
    jtask: IntArray,
    task_names: list[str],
    jobs: Optional[list[Job]],
) -> _Lane:
    """Assemble a lane, raising ``UncoveredScenarioError`` where needed."""
    if scheduler_name not in SCHEDULER_KINDS:
        raise UncoveredScenarioError(
            f"scheduler {scheduler_name!r} is not vectorized"
        )
    if type(storage) is not IdealStorage:
        raise UncoveredScenarioError(
            f"storage type {type(storage).__name__} is not vectorized"
        )
    if not math.isfinite(storage.capacity):
        raise UncoveredScenarioError("infinite storage is not vectorized")
    t_max = max(
        horizon, float(jdeadline.max()) if jdeadline.size else horizon
    )
    params = _source_params(source, t_max)
    pred_params = _predictor_params(predictor)
    # Event table: mirrors _seed_events — a release (priority 1) per job,
    # a deadline (priority 0) per job judged within the horizon, sequence
    # in insertion order; then heap order (time, priority, sequence).
    # Insertion order interleaves release/deadline per job, so a job's
    # release sequence is its index plus the number of judged deadlines
    # inserted before it (an exclusive prefix count).
    n_jobs = int(jrelease.shape[0])
    judged_dl = jdeadline <= horizon + EPSILON
    before = np.zeros(n_jobs, dtype=np.int64)
    if n_jobs:
        before[1:] = np.cumsum(judged_dl[:-1])
    rel_seq = np.arange(n_jobs, dtype=np.int64) + before
    dl_idx = np.flatnonzero(judged_dl)
    times = np.concatenate([jrelease, jdeadline[dl_idx]])
    prio = np.concatenate(
        [np.ones(n_jobs, dtype=np.int64), np.zeros(dl_idx.size, dtype=np.int64)]
    )
    seq = np.concatenate([rel_seq, rel_seq[dl_idx] + 1])
    is_dl = np.concatenate(
        [np.zeros(n_jobs, dtype=np.bool_), np.ones(dl_idx.size, dtype=np.bool_)]
    )
    job_of = np.concatenate([np.arange(n_jobs, dtype=np.int64), dl_idx])
    order = np.lexsort((seq, prio, times))
    ev_time = times[order]
    ev_is_deadline = is_dl[order]
    ev_job = job_of[order]
    return _Lane(
        scheduler_name=make_scheduler(scheduler_name, scale).name,
        sched_kind=SCHEDULER_KINDS[scheduler_name],
        horizon=horizon,
        miss_drop=miss_drop,
        capacity=storage.capacity,
        initial_stored=storage.stored,
        speeds=np.asarray([lv.speed for lv in scale.levels], dtype=np.float64),
        powers=np.asarray([lv.power for lv in scale.levels], dtype=np.float64),
        source=params,
        predictor=pred_params,
        jobs=jobs,
        jrelease=jrelease,
        jdeadline=jdeadline,
        jwork=jwork,
        jactual=jactual,
        jtask=jtask,
        task_names=task_names,
        ev_time=ev_time,
        ev_is_deadline=ev_is_deadline,
        ev_job=ev_job,
    )


# -- the SoA core ---------------------------------------------------------


class _BatchCore:
    """Runs a set of covered lanes in lockstep.

    Each main-loop pass executes one iteration of the scalar
    ``HarvestingRtSimulator.run`` loop for every still-active lane; all
    per-lane arithmetic mirrors the scalar statements cited inline.
    Lanes that trip an internal guard (the vector twin of a scalar
    ``raise``) are recorded in ``errors`` and excluded; the runner
    re-executes them on the scalar path.
    """

    #: Matches SimulationConfig.max_iterations (the scalar bound).
    MAX_ITERATIONS = 50_000_000

    def __init__(self, lanes: Sequence[_Lane]) -> None:
        self.lanes = list(lanes)
        n = len(self.lanes)
        self.n = n
        self.errors: list[Optional[str]] = [None] * n
        if n == 0:
            return
        n_levels = {lane.speeds.shape[0] for lane in self.lanes}
        if len(n_levels) != 1:
            raise UncoveredScenarioError(
                "mixed frequency-scale sizes in one batch"
            )
        self.n_lev = n_levels.pop()
        self.idx = np.arange(n)
        self._inf = np.full(n, INFINITY)  # shared read-only +inf column
        max_jobs = max(1, max(lane.n_jobs for lane in self.lanes))
        max_ev = max(1, max(lane.ev_time.shape[0] for lane in self.lanes))
        # -- static tables (padded; pads are inert: time=inf, rank=max) --
        self.horizon = np.asarray([la.horizon for la in self.lanes])
        self.miss_drop = np.asarray(
            [la.miss_drop for la in self.lanes], dtype=np.bool_
        )
        self.kind = np.asarray(
            [la.sched_kind for la in self.lanes], dtype=np.int64
        )
        self.capacity = np.asarray([la.capacity for la in self.lanes])
        self.speeds = np.stack([la.speeds for la in self.lanes])
        self.powers = np.stack([la.powers for la in self.lanes])
        self.n_jobs = np.asarray(
            [la.n_jobs for la in self.lanes], dtype=np.int64
        )
        self.jrelease = np.full((n, max_jobs), INFINITY)
        self.jdeadline = np.full((n, max_jobs), INFINITY)
        self.jrank = np.full((n, max_jobs), _NO_JOB, dtype=np.int64)
        self.jremaining = np.zeros((n, max_jobs))
        self.jremaining_actual = np.zeros((n, max_jobs))
        for i, lane in enumerate(self.lanes):
            k = lane.n_jobs
            self.jrelease[i, :k] = lane.jrelease
            self.jdeadline[i, :k] = lane.jdeadline
            self.jremaining[i, :k] = lane.jwork
            self.jremaining_actual[i, :k] = lane.jactual
            if k:
                # Static EDF rank: the ready queue pops by (deadline,
                # release, push counter) and pushes in release-event
                # order == job-index order, so the rank is the lexsort
                # position of (deadline, release, index).
                order = np.lexsort(
                    (np.arange(k), self.jrelease[i, :k], self.jdeadline[i, :k])
                )
                self.jrank[i, order] = np.arange(k, dtype=np.int64)
        self.ev_time = np.full((n, max_ev + 1), INFINITY)
        self.ev_is_deadline = np.zeros((n, max_ev + 1), dtype=np.bool_)
        self.ev_job = np.zeros((n, max_ev + 1), dtype=np.int64)
        for i, lane in enumerate(self.lanes):
            e = lane.ev_time.shape[0]
            self.ev_time[i, :e] = lane.ev_time
            self.ev_is_deadline[i, :e] = lane.ev_is_deadline
            self.ev_job[i, :e] = lane.ev_job
        # -- source tables ----------------------------------------------
        self.src_kind = np.asarray(
            [la.source.kind for la in self.lanes], dtype=np.int64
        )
        self.src_const = np.asarray(
            [la.source.const_power for la in self.lanes]
        )
        self.src_quantum = np.asarray([la.source.quantum for la in self.lanes])
        self.src_nq = np.asarray(
            [la.source.quantized_powers.shape[0] for la in self.lanes],
            dtype=np.int64,
        )
        max_q = max(1, int(self.src_nq.max()))
        self.src_qpowers = np.zeros((n, max_q))
        for i, lane in enumerate(self.lanes):
            q = lane.source.quantized_powers
            self.src_qpowers[i, : q.shape[0]] = q
        self.src_day_power = np.asarray(
            [la.source.day_power for la in self.lanes]
        )
        self.src_night_power = np.asarray(
            [la.source.night_power for la in self.lanes]
        )
        self.src_day_length = np.asarray(
            [la.source.day_length for la in self.lanes]
        )
        self.src_cycle = np.asarray([la.source.cycle for la in self.lanes])
        self.src_phase = np.asarray([la.source.phase for la in self.lanes])
        # Static source-kind masks and the constant-power base column:
        # they never change during a run, so the per-pass source queries
        # skip the kind comparisons entirely.
        self._quant_mask = self.src_kind == _SRC_QUANTIZED
        self._has_quant = bool(self._quant_mask.any())
        self._day_mask = self.src_kind == _SRC_DAYNIGHT
        self._has_day = bool(self._day_mask.any())
        self._power_base = np.where(
            self.src_kind == _SRC_CONST, self.src_const, 0.0
        )
        # -- predictor tables and state ----------------------------------
        self.pred_kind = np.asarray(
            [la.predictor.kind for la in self.lanes], dtype=np.int64
        )
        self.pred_alpha = np.asarray(
            [la.predictor.alpha for la in self.lanes]
        )
        self.pred_period = np.asarray(
            [la.predictor.period for la in self.lanes]
        )
        self.pred_bw = np.asarray(
            [la.predictor.bin_width for la in self.lanes]
        )
        self.pred_nbins = np.asarray(
            [la.predictor.n_bins for la in self.lanes], dtype=np.int64
        )
        # Live EWMA scalar (mean / last-value lanes).
        self.pred_estimate = np.asarray(
            [la.predictor.estimate for la in self.lanes]
        )
        # Live per-bin profile state, padded to the widest lane.
        max_bins = max(1, int(self.pred_nbins.max()))
        self.pred_bin_est = np.zeros((n, max_bins))
        self.pred_bin_seen = np.zeros((n, max_bins), dtype=np.bool_)
        for i, lane in enumerate(self.lanes):
            p = lane.predictor
            if p.kind == _PRED_PROFILE:
                self.pred_bin_est[i, : p.n_bins] = p.bin_estimates
                self.pred_bin_seen[i, : p.n_bins] = p.bin_seen
        # The scalar simulator feeds every elapsed segment to the
        # predictor, but EDF never queries the outlook and the oracle
        # ignores observations — skipping those lanes changes no result
        # (exactly the argument the old EDF-under-any-predictor fallback
        # exemption made).
        self._observe_mask = (self.pred_kind != _PRED_ORACLE) & (
            self.kind != SCHED_EDF
        )
        self._has_online = bool(self._observe_mask.any())
        # -- dynamic state (one scalar simulator's fields, per lane) -----
        self.t = np.zeros(n)
        self.active = np.ones(n, dtype=np.bool_)
        self.ev_ptr = np.zeros(n, dtype=np.int64)
        # Cached ev_time[lane, ev_ptr[lane]] (refreshed on pointer moves).
        self.next_ev = self.ev_time[self.idx, self.ev_ptr]
        self.need_decision = np.ones(n, dtype=np.bool_)
        self.has_decision = np.zeros(n, dtype=np.bool_)
        self.dec_reconsider = np.full(n, INFINITY)
        self.running = np.full(n, -1, dtype=np.int64)
        self.level = np.full(n, -1, dtype=np.int64)
        self.switch_at = np.full(n, np.nan)
        self.stalled = np.zeros(n, dtype=np.bool_)
        self.stalled_until = np.zeros(n)
        self.stall_started = np.zeros(n)
        self.stall_count = np.zeros(n, dtype=np.int64)
        self.stall_time = np.zeros(n)
        self.stored = np.asarray([la.initial_stored for la in self.lanes])
        self.total_drawn = np.zeros(n)
        self.total_overflow = np.zeros(n)
        self.idle_time = np.zeros(n)
        self.switch_count = np.zeros(n, dtype=np.int64)
        self.busy = np.zeros((n, self.n_lev))
        self.completed_count = np.zeros(n, dtype=np.int64)
        self.missed_count = np.zeros(n, dtype=np.int64)
        self.stagnant = np.zeros(n, dtype=np.int64)
        self.jstate = np.full(
            (n, max_jobs), _PENDING, dtype=np.int64
        )
        # Ready set as a rank table: _NO_JOB when a job is not ready,
        # its static EDF rank otherwise, plus an incrementally maintained
        # per-lane minimum (the EDF-earliest job).  Pushes can only
        # improve the minimum; removing the minimum triggers a one-lane
        # rescan — this keeps every decision pass O(lanes) instead of
        # O(lanes * jobs).
        self.jready_rank = np.full((n, max_jobs), _NO_JOB, dtype=np.int64)
        self.best_rank = np.full(n, _NO_JOB, dtype=np.int64)
        self.best_job = np.full(n, -1, dtype=np.int64)
        self.jmiss_counted = np.zeros((n, max_jobs), dtype=np.bool_)
        self.jenergy = np.zeros((n, max_jobs))
        self.jfirst = np.full((n, max_jobs), np.nan)
        self.jcompletion = np.full((n, max_jobs), np.nan)
        self.harvested = np.zeros(n)

    # -- ready-queue maintenance (EdfReadyQueue, incremental) -------------

    def _ready_push(self, lanes: IntArray, jobs: IntArray) -> None:
        """ready.push: record the rank and update the per-lane minimum."""
        ranks = self.jrank[lanes, jobs]
        self.jready_rank[lanes, jobs] = ranks
        better = ranks < self.best_rank[lanes]
        improved = lanes[better]
        self.best_rank[improved] = ranks[better]
        self.best_job[improved] = jobs[better]

    def _ready_remove(self, lanes: IntArray, jobs: IntArray) -> None:
        """ready.remove: rescan only the lanes that lost their minimum."""
        self.jready_rank[lanes, jobs] = _NO_JOB
        was_best = self.best_job[lanes] == jobs
        rescan = lanes[was_best]
        if rescan.shape[0]:
            rows = self.jready_rank[rescan]
            nxt = np.argmin(rows, axis=1)
            ranks = rows[np.arange(rescan.shape[0]), nxt]
            self.best_rank[rescan] = ranks
            self.best_job[rescan] = np.where(ranks < _NO_JOB, nxt, -1)

    # -- failure handling -------------------------------------------------

    def _fail(self, lanes: IntArray, message: str) -> None:
        for i in lanes.tolist():
            if self.errors[i] is None:
                self.errors[i] = message
        self.active[lanes] = False

    # -- vectorized source (mirrors repro.energy.source) ------------------

    def _quant_index(self, t: FloatArray) -> IntArray:
        """_QuantizedSource._index: max(0, floor((t + EPS) / quantum))."""
        raw = np.floor((t + EPSILON) / self.src_quantum)
        index: IntArray = np.maximum(0, raw.astype(np.int64))
        return index

    def _src_power(self, t: FloatArray) -> FloatArray:
        out = self._power_base.copy()
        if self._has_quant:
            quant = self._quant_mask
            index = self._quant_index(t)
            over = quant & self.active & (index >= self.src_nq)
            if over.any():
                self._fail(np.flatnonzero(over), "solar power table exceeded")
                quant = quant & ~over
            safe = np.minimum(index, self.src_qpowers.shape[1] - 1)
            out = np.where(quant, self.src_qpowers[self.idx, safe], out)
        if self._has_day:
            position = np.mod(t + self.src_phase + EPSILON, self.src_cycle)
            out = np.where(
                self._day_mask,
                np.where(
                    position < self.src_day_length,
                    self.src_day_power,
                    self.src_night_power,
                ),
                out,
            )
        return out

    def _src_next_boundary(self, t: FloatArray) -> FloatArray:
        out = self._inf.copy()
        if self._has_quant:
            index = self._quant_index(t)
            out = np.where(
                self._quant_mask,
                (index + 1).astype(np.float64) * self.src_quantum,
                out,
            )
        if self._has_day:
            position = np.mod(t + self.src_phase + EPSILON, self.src_cycle)
            in_day = position < self.src_day_length
            out = np.where(
                self._day_mask,
                np.where(
                    in_day,
                    t + (self.src_day_length - position),
                    t + (self.src_cycle - position),
                ),
                out,
            )
        return out

    def _src_energy_lanes(
        self, lanes: IntArray, t0: FloatArray, t1: FloatArray
    ) -> FloatArray:
        """EnergySource.energy over ``[t0, t1)`` for the listed lanes.

        Constant lanes use the closed form ``P * max(0, t1 - t0)``; the
        rest accumulate ``power(t) * (segment_end - t)`` segment by
        segment, in the scalar's summation order, so the totals are
        bit-equal to the scalar walk.  Inputs and output are compact
        (one entry per listed lane).
        """
        kind = self.src_kind[lanes]
        total = np.zeros(lanes.shape[0])
        const = kind == _SRC_CONST
        if const.any():
            total[const] = self.src_const[lanes[const]] * np.maximum(
                0.0, t1[const] - t0[const]
            )
        quant = kind == _SRC_QUANTIZED
        if quant.any():
            total[quant] = self._quantized_energy(
                lanes[quant], t0[quant], t1[quant]
            )
        day = kind == _SRC_DAYNIGHT
        if day.any():
            total[day] = self._daynight_energy(
                lanes[day], t0[day], t1[day]
            )
        return total

    def _daynight_energy(
        self, lanes: IntArray, t0: FloatArray, t1: FloatArray
    ) -> FloatArray:
        """The scalar boundary walk for day/night lanes (compact)."""
        day_length = self.src_day_length[lanes]
        cycle = self.src_cycle[lanes]
        phase = self.src_phase[lanes]
        day_power = self.src_day_power[lanes]
        night_power = self.src_night_power[lanes]
        total = np.zeros(lanes.shape[0])
        t = t0.copy()
        stepping = t < t1 - EPSILON
        while stepping.any():
            position = np.mod(t + phase + EPSILON, cycle)
            in_day = position < day_length
            boundary = np.where(
                in_day, t + (day_length - position), t + (cycle - position)
            )
            seg_end = np.minimum(boundary, t1)
            power = np.where(in_day, day_power, night_power)
            total = np.where(stepping, total + power * (seg_end - t), total)
            t = np.where(stepping, seg_end, t)
            stepping = t < t1 - EPSILON
        return total

    def _quantized_energy(
        self, lanes: IntArray, t0: FloatArray, t1: FloatArray
    ) -> FloatArray:
        """The boundary walk for quantized lanes, as 2-D blocks.

        Every (lane, step) segment start, end and power is precomputed
        with the exact per-step formulas of the scalar walk (step ``j``
        starts at ``t0`` for ``j = 0`` and at the preceding boundary
        ``(k0 + j) * quantum`` otherwise); the per-segment accumulation
        runs as a row-wise ``np.cumsum``, which adds strictly
        left-to-right and therefore rounds once per segment in walk
        order, exactly like the scalar total (enforced by the kernel
        property tests).
        """
        m = lanes.shape[0]
        q = self.src_quantum[lanes]
        k0 = np.maximum(0, np.floor((t0 + EPSILON) / q)).astype(np.int64)
        spans = np.ceil((t1 - EPSILON) / q).astype(np.int64) - k0
        n_steps = int(spans.max()) + 1 if m else 0
        if n_steps <= 0:
            return np.zeros(m)
        steps = np.arange(n_steps, dtype=np.int64)
        kk = k0[:, None] + steps[None, :]
        kk_f = kk.astype(np.float64)
        tstart = kk_f * q[:, None]
        tstart[:, 0] = t0
        boundary = (kk_f + 1.0) * q[:, None]
        seg_end = np.minimum(boundary, t1[:, None])
        live = tstart < (t1 - EPSILON)[:, None]
        # The scalar walk re-derives each segment's quantum index from its
        # start time; on this ladder that index IS ``kk`` (step ``j > 0``
        # starts exactly at boundary ``kk * q``, step 0 at ``t0`` whose
        # index is ``k0`` by definition), so the power lookup uses ``kk``
        # directly.  The differential suite enforces the agreement.
        width = self.src_qpowers.shape[1]
        idx = np.minimum(kk, width - 1)
        # Flat-index gather: same elements as the 2-D fancy index, ~2x
        # faster on the row-block shapes this walk produces.
        power = np.take(self.src_qpowers, lanes[:, None] * width + idx)
        contribution = np.where(live, power * (seg_end - tstart), 0.0)
        # np.cumsum accumulates strictly left-to-right (verified by the
        # kernel property tests), i.e. it rounds once per segment in walk
        # order exactly like the scalar total; masked segments add 0.0,
        # which never perturbs a float64 accumulator.
        final: FloatArray = np.cumsum(contribution, axis=1)[:, -1]
        return final

    # -- plan bookkeeping --------------------------------------------------

    def _clear_plan(self, lanes: IntArray) -> None:
        """Simulator._clear_plan (sets need_decision)."""
        self._drop_plan(lanes)
        self.need_decision[lanes] = True

    def _drop_plan(self, lanes: IntArray) -> None:
        """Plan teardown without a decision request (_enter_stall)."""
        self.running[lanes] = -1
        self.level[lanes] = -1  # set_level(None): idle switches are free
        self.switch_at[lanes] = np.nan
        self.has_decision[lanes] = False
        self.dec_reconsider[lanes] = INFINITY

    # -- main loop ---------------------------------------------------------

    def run(self) -> None:
        if self.n == 0:
            return
        iterations = 0
        while self.active.any():
            iterations += 1
            if iterations > self.MAX_ITERATIONS:  # pragma: no cover - guard
                self._fail(np.flatnonzero(self.active), "iteration cap")
                break
            self._process_due_events()
            done = self.active & (self.t >= self.horizon - EPSILON)
            if done.any():
                self.active &= ~done
                if not self.active.any():
                    break
            self._maybe_decide()
            end, harvest, draw = self._segment_end()
            duration = self._advance_to(end, harvest, draw)
            self._post_segment()
            advanced = duration > EPSILON
            self.stagnant = np.where(advanced, 0, self.stagnant + 1)
            stuck = self.active & (self.stagnant > 1000)
            if stuck.any():
                self._fail(np.flatnonzero(stuck), "stagnation guard")
        # harvested_energy = source.energy(0, horizon) for every lane that
        # finished cleanly (same walk as the scalar result builder).
        finished = np.flatnonzero(
            np.asarray([err is None for err in self.errors], dtype=np.bool_)
        )
        self.harvested = np.zeros(self.n)
        self.harvested[finished] = self._src_energy_lanes(
            finished, np.zeros(finished.shape[0]), self.horizon[finished]
        )

    def _process_due_events(self) -> None:
        """Simulator._process_due_events: pop while peek <= t + EPSILON."""
        while True:
            due = self.active & (self.next_ev <= self.t + EPSILON)
            if not due.any():
                return
            due_lanes = np.flatnonzero(due)
            ptr = self.ev_ptr[due_lanes]
            job = self.ev_job[due_lanes, ptr]
            is_dl = self.ev_is_deadline[due_lanes, ptr]
            lanes = due_lanes[~is_dl]
            if lanes.shape[0]:
                jj = job[~is_dl]
                self.jstate[lanes, jj] = _READY  # mark_released
                self._ready_push(lanes, jj)
                self.need_decision[lanes] = True
            lanes = due_lanes[is_dl]
            if lanes.shape[0]:
                jj = job[is_dl]
                state = self.jstate[lanes, jj]
                # _on_deadline: skip finished or already-counted jobs
                judged = (
                    (state != _COMPLETED)
                    & (state != _MISSED)
                    & ~self.jmiss_counted[lanes, jj]
                )
                lanes = lanes[judged]
                jj = jj[judged]
                self.jmiss_counted[lanes, jj] = True
                self.missed_count[lanes] += 1
                drop = self.miss_drop[lanes]
                dl_lanes = lanes[drop]
                dl_jobs = jj[drop]
                self.jstate[dl_lanes, dl_jobs] = _MISSED  # mark_missed
                self._ready_remove(dl_lanes, dl_jobs)
                was_running = self.running[dl_lanes] == dl_jobs
                self._clear_plan(dl_lanes[was_running])
                self.need_decision[dl_lanes] = True
                # CONTINUE: only the count changes.
            moved = ptr + 1
            self.ev_ptr[due_lanes] = moved
            self.next_ev[due_lanes] = self.ev_time[due_lanes, moved]

    def _maybe_decide(self) -> None:
        """Simulator._maybe_decide + scheduler.decide + _apply_decision."""
        deciding = self.active & ~self.stalled & self.need_decision
        if not deciding.any():
            return
        self.need_decision[deciding] = False
        lanes = np.flatnonzero(deciding)
        # EdfReadyQueue.peek: min (deadline, release, counter) == the
        # incrementally maintained per-lane minimum static rank.
        has_job = self.best_rank[lanes] < _NO_JOB
        # Decision.idle() for empty queues.
        if not has_job.all():
            self._apply_idle(lanes[~has_job], self._inf)
        lanes = lanes[has_job]
        if lanes.shape[0] == 0:
            return
        job = self.best_job[lanes]
        now = self.t[lanes]
        deadline = self.jdeadline[lanes, job]
        work = self.jremaining[lanes, job]
        stored = self.stored[lanes]
        # EnergyOutlook.available_until(now, deadline), split by the
        # lane's predictor kind: the oracle integrates the source over
        # [now, deadline), the online predictors evaluate their live
        # per-lane state through the repro.energy.vectorized kernels.
        deadline_passed = batch_time_le(deadline, now)
        needs_energy = ~deadline_passed & (self.kind[lanes] != SCHED_EDF)
        predicted = np.zeros(lanes.shape[0])
        if needs_energy.any():
            pkind = self.pred_kind[lanes]
            oracle = needs_energy & (pkind == _PRED_ORACLE)
            if oracle.any():
                predicted[oracle] = self._src_energy_lanes(
                    lanes[oracle], now[oracle], deadline[oracle]
                )
            span_kind = needs_energy & (
                (pkind == _PRED_MEAN) | (pkind == _PRED_LAST)
            )
            if span_kind.any():
                predicted[span_kind] = batch_span_predict(
                    self.pred_estimate[lanes[span_kind]],
                    now[span_kind],
                    deadline[span_kind],
                )
            profile = needs_energy & (pkind == _PRED_PROFILE)
            if profile.any():
                pl = lanes[profile]
                predicted[profile] = batch_profile_predict(
                    now[profile],
                    deadline[profile],
                    self.pred_period[pl],
                    self.pred_bw[pl],
                    self.pred_nbins[pl],
                    self.pred_bin_est[pl],
                )
        available = np.where(deadline_passed, stored, stored + predicted)
        storage_full = stored >= self.capacity[lanes] - EPSILON  # is_full
        decision = batch_decide(
            self.kind[lanes],
            now,
            deadline,
            work,
            available,
            storage_full,
            self.speeds[lanes],
            self.powers[lanes],
        )
        idle = ~decision.run
        if idle.any():
            reconsider = np.full(self.n, INFINITY)
            reconsider[lanes] = decision.reconsider_at
            self._apply_idle(lanes[idle], reconsider)
        run_lanes = lanes[~idle]
        if run_lanes.shape[0] == 0:
            return
        run_jobs = job[~idle]
        new_level = decision.level[~idle]
        # note_started (idempotent first dispatch)
        fresh = np.isnan(self.jfirst[run_lanes, run_jobs])
        self.jfirst[run_lanes[fresh], run_jobs[fresh]] = self.t[
            run_lanes[fresh]
        ]
        self.running[run_lanes] = run_jobs
        self.switch_at[run_lanes] = decision.switch_at[~idle]
        # _set_processor_level: a switch is counted only between two real
        # levels with different speeds (distinct indices here — covered
        # scales have speed gaps far above EPSILON).
        old_level = self.level[run_lanes]
        switched = (old_level >= 0) & (old_level != new_level)
        self.switch_count[run_lanes[switched]] += 1
        self.level[run_lanes] = new_level
        self.has_decision[run_lanes] = True
        self.dec_reconsider[run_lanes] = decision.reconsider_at[~idle]

    def _apply_idle(self, lanes: IntArray, reconsider: FloatArray) -> None:
        """_apply_decision for Decision.idle(reconsider_at=...)."""
        if lanes.shape[0] == 0:
            return
        self.running[lanes] = -1
        self.level[lanes] = -1
        self.switch_at[lanes] = np.nan
        self.has_decision[lanes] = True
        self.dec_reconsider[lanes] = reconsider[lanes]

    def _segment_end(self) -> tuple[FloatArray, FloatArray, FloatArray]:
        """Simulator._segment_end, element-wise (same min-cascade order).

        The cascade uses masked in-place ``np.minimum(..., where=...)``
        updates — each candidate still enters the running minimum with a
        single rounding-free comparison, exactly like the scalar chain
        of ``min()`` calls, just with fewer temporaries.
        """
        t = self.t
        end = np.minimum(self.horizon, self.next_ev)
        np.minimum(end, self._src_next_boundary(t), out=end)
        running = self.running >= 0
        level = np.maximum(self.level, 0)
        job = np.maximum(self.running, 0)
        np.minimum(end, self.stalled_until, out=end, where=self.stalled)
        idle_reconsider = ~self.stalled & ~running & self.has_decision
        np.minimum(end, self.dec_reconsider, out=end, where=idle_reconsider)
        # Running: completion instant (no switching dead time in covered
        # scenarios), planned speed-up, reconsider.
        speed = np.maximum(self.speeds[self.idx, level], 1e-12)
        completion = t + self.jremaining_actual[self.idx, job] / speed
        np.minimum(end, completion, out=end, where=running)
        planned = running & ~np.isnan(self.switch_at)
        np.minimum(end, self.switch_at, out=end, where=planned)
        np.minimum(end, self.dec_reconsider, out=end, where=running)
        harvest = self._src_power(t)
        draw = np.where(running, self.powers[self.idx, level], 0.0)
        # storage.time_to_empty(harvest, draw): infinite unless the net
        # rate is below -EPSILON (the masked divide leaves +inf there).
        rate = harvest - draw
        draining = rate < -EPSILON
        time_to_empty = np.full(self.n, INFINITY)
        np.divide(self.stored, -rate, out=time_to_empty, where=draining)
        np.maximum(time_to_empty, 0.0, out=time_to_empty)
        empty_at = t + time_to_empty
        cut = empty_at < end - EPSILON
        end[cut] = empty_at[cut]
        np.maximum(end, t, out=end)
        return end, harvest, draw

    def _advance_to(
        self, end: FloatArray, harvest: FloatArray, draw: FloatArray
    ) -> FloatArray:
        """Simulator._advance_to: storage/processor/job accounting."""
        duration = np.maximum(0.0, end - self.t)
        moving = self.active & (duration > 0.0)  # repro-lint: disable=RPR101 -- exact scalar gate mirror
        if moving.any():
            lanes = np.flatnonzero(moving)
            span = duration[lanes]
            inflow = harvest[lanes]
            outflow = draw[lanes]
            # IdealStorage._advance_finite (+ _saturate)
            proposed = self.stored[lanes] + (inflow - outflow) * span
            negative = proposed < 0.0
            impossible = negative & (
                proposed
                < -1e-6 * np.maximum(1.0, np.abs(self.stored[lanes]))
            )
            if impossible.any():
                self._fail(lanes[impossible], "storage drained below zero")
            proposed = np.where(negative, 0.0, proposed)
            cap = self.capacity[lanes]
            overflow = np.where(proposed > cap, proposed - cap, 0.0)
            self.stored[lanes] = np.where(proposed > cap, cap, proposed)
            self.total_drawn[lanes] += outflow * span
            self.total_overflow[lanes] += overflow
            # predictor.observe(t, end, harvest * duration): the scalar
            # call happens for every elapsed segment; the predictors
            # no-op below EPSILON, and oracle/EDF lanes are skipped (see
            # _observe_mask).  Segments never straddle a source boundary
            # (_segment_end cuts there), so harvest * duration is the
            # exact realized integral, as in the scalar call.
            if self._has_online:
                obs = moving & self._observe_mask & (duration > EPSILON)
                if obs.any():
                    ol = np.flatnonzero(obs)
                    odur = duration[ol]
                    oenergy = harvest[ol] * odur
                    okind = self.pred_kind[ol]
                    mean_m = okind == _PRED_MEAN
                    if mean_m.any():
                        ml = ol[mean_m]
                        self.pred_estimate[ml] = batch_mean_observe(
                            self.pred_estimate[ml],
                            self.pred_alpha[ml],
                            odur[mean_m],
                            oenergy[mean_m],
                        )
                    last_m = okind == _PRED_LAST
                    if last_m.any():
                        ll = ol[last_m]
                        self.pred_estimate[ll] = batch_last_observe(
                            odur[last_m], oenergy[last_m]
                        )
                    prof_m = okind == _PRED_PROFILE
                    if prof_m.any():
                        pl = ol[prof_m]
                        sub_est = self.pred_bin_est[pl]
                        sub_seen = self.pred_bin_seen[pl]
                        batch_profile_observe(
                            self.t[pl],
                            end[pl],
                            self.pred_period[pl],
                            self.pred_bw[pl],
                            self.pred_nbins[pl],
                            self.pred_alpha[pl],
                            oenergy[prof_m],
                            sub_est,
                            sub_seen,
                        )
                        self.pred_bin_est[pl] = sub_est
                        self.pred_bin_seen[pl] = sub_seen
            # Processor.account_time
            running = self.running[lanes] >= 0
            busy_lanes = lanes[running]
            self.busy[busy_lanes, self.level[busy_lanes]] += span[running]
            self.idle_time[lanes[~running]] += span[~running]
            # Job.execute at the current level (dead time never occurs:
            # switching overhead is zero in covered scenarios)
            if busy_lanes.shape[0]:
                jobs = self.running[busy_lanes]
                levels = self.level[busy_lanes]
                speed = self.speeds[busy_lanes, levels]
                work = speed * span[running]
                actual = self.jremaining_actual[busy_lanes, jobs]
                overrun = work > actual + EPSILON
                if overrun.any():  # pragma: no cover - defensive guard
                    self._fail(busy_lanes[overrun], "job budget overrun")
                remaining = actual - work
                below = remaining < -1e-6  # snap_nonnegative(…, eps=1e-6)
                if below.any():  # pragma: no cover - defensive guard
                    self._fail(busy_lanes[below], "negative residual work")
                self.jremaining_actual[busy_lanes, jobs] = np.where(
                    remaining < 0.0, 0.0, remaining
                )
                self.jremaining[busy_lanes, jobs] = np.maximum(
                    0.0, self.jremaining[busy_lanes, jobs] - work
                )
                self.jenergy[busy_lanes, jobs] += (
                    self.powers[busy_lanes, levels] * span[running]
                )
            self.t = np.where(moving, end, self.t)
        return duration

    def _post_segment(self) -> None:
        """Simulator._post_segment: the cascade of masked early returns."""
        t = self.t
        harvest = self._src_power(t)
        # stall expiry
        expired = (
            self.active
            & self.stalled
            & (t >= self.stalled_until - EPSILON)
        )
        if expired.any():
            lanes = np.flatnonzero(expired)
            self.stalled[lanes] = False
            self.stall_time[lanes] += t[lanes] - self.stall_started[lanes]
            self.need_decision[lanes] = True
        was_running = self.active & (self.running >= 0)
        lanes = np.flatnonzero(was_running)
        if lanes.shape[0]:
            jobs = self.running[lanes]
            levels = self.level[lanes]
            # completion: residual true work below the 1e-7 threshold
            completed = self.jremaining_actual[lanes, jobs] <= 1e-7
            if completed.any():
                done_lanes = lanes[completed]
                done_jobs = jobs[completed]
                self.jremaining_actual[done_lanes, done_jobs] = 0.0
                self.jstate[done_lanes, done_jobs] = _COMPLETED
                self.jcompletion[done_lanes, done_jobs] = t[done_lanes]
                self._ready_remove(done_lanes, done_jobs)
                self.completed_count[done_lanes] += 1
                self._clear_plan(done_lanes)
            lanes = lanes[~completed]
            jobs = jobs[~completed]
            levels = levels[~completed]
            # depletion: empty storage and negative net flow -> stall
            depleted = (self.stored[lanes] <= EPSILON) & (
                (harvest[lanes] - self.powers[lanes, levels]) < -EPSILON
            )
            if depleted.any():
                stall_lanes = lanes[depleted]
                # _enter_stall: retry at the next source boundary or after
                # the (default 1.0) retry interval, whichever is sooner.
                resume = np.minimum(
                    self._src_next_boundary(t)[stall_lanes],
                    t[stall_lanes] + 1.0,
                )
                self.stall_count[stall_lanes] += 1
                self.stall_started[stall_lanes] = t[stall_lanes]
                self.stalled[stall_lanes] = True
                self.stalled_until[stall_lanes] = resume
                self._drop_plan(stall_lanes)
            lanes = lanes[~depleted]
            # planned speed-up reached
            reached = ~np.isnan(self.switch_at[lanes]) & (
                t[lanes] >= self.switch_at[lanes] - EPSILON
            )
            if reached.any():
                up_lanes = lanes[reached]
                self.switch_at[up_lanes] = np.nan
                max_level = self.n_lev - 1
                self.switch_count[
                    up_lanes[self.level[up_lanes] != max_level]
                ] += 1
                self.level[up_lanes] = max_level
            # reconsider instant reached while running
            revisit = self.has_decision[lanes] & (
                t[lanes] >= self.dec_reconsider[lanes] - EPSILON
            )
            self.need_decision[lanes[revisit]] = True
        # idle branch (running was None at entry to _post_segment)
        idle = self.active & ~was_running
        lanes = np.flatnonzero(idle)
        if lanes.shape[0]:
            revisit = self.has_decision[lanes] & (
                t[lanes] >= self.dec_reconsider[lanes] - EPSILON
            )
            self.need_decision[lanes[revisit]] = True
            ready = self.best_rank[lanes] < _NO_JOB
            wake = ready & ~self.stalled[lanes]
            self.need_decision[lanes[wake]] = True

    # -- result extraction -------------------------------------------------

    def result(self, i: int, include_jobs: bool = True) -> SimulationResult:
        """Rebuild the lane's SimulationResult (mirrors _build_result).

        ``include_jobs=False`` skips the per-job state writeback and
        returns a slim result (``jobs=()``), which is what sweeps keep
        anyway; equivalence harnesses want the full job tuple.
        """
        lane = self.lanes[i]
        if self.errors[i] is not None:
            raise RuntimeError(
                f"lane {i} failed in the batch core: {self.errors[i]}"
            )
        if include_jobs:
            if lane.jobs is None:
                raise RuntimeError(
                    "lane was built without Job objects (slim sweep path)"
                )
            for k, job in enumerate(lane.jobs):
                job._state = _JOB_STATES[int(self.jstate[i, k])]
                job._remaining = float(self.jremaining[i, k])
                job._remaining_actual = float(self.jremaining_actual[i, k])
                job._energy_consumed = float(self.jenergy[i, k])
                first = self.jfirst[i, k]
                job._first_start_time = (
                    None if math.isnan(first) else float(first)
                )
                done = self.jcompletion[i, k]
                job._completion_time = (
                    None if math.isnan(done) else float(done)
                )
        n_tasks = len(lane.task_names)
        released = np.bincount(lane.jtask, minlength=n_tasks)
        per_task_released = {
            name: int(count)
            for name, count in zip(lane.task_names, released)
            if count
        }
        missed_jobs = np.flatnonzero(self.jmiss_counted[i, : lane.n_jobs])
        missed = np.bincount(lane.jtask[missed_jobs], minlength=n_tasks)
        per_task_missed = {
            name: int(count)
            for name, count in zip(lane.task_names, missed)
            if count
        }
        judged = int(np.sum(lane.jdeadline <= lane.horizon + EPSILON))
        busy_profile = {
            float(lane.speeds[lv]): float(self.busy[i, lv])
            for lv in range(self.n_lev)
        }
        return SimulationResult(
            scheduler_name=lane.scheduler_name,
            horizon=lane.horizon,
            jobs=tuple(lane.jobs) if include_jobs and lane.jobs else (),
            released_count=lane.n_jobs,
            completed_count=int(self.completed_count[i]),
            missed_count=int(self.missed_count[i]),
            judged_count=judged,
            harvested_energy=float(self.harvested[i]),
            drawn_energy=float(self.total_drawn[i]),
            overflow_energy=float(self.total_overflow[i]),
            leaked_energy=0.0,
            final_stored=float(self.stored[i]),
            storage_capacity=lane.capacity,
            busy_time_profile=busy_profile,
            idle_time=float(self.idle_time[i]),
            switch_count=int(self.switch_count[i]),
            stall_count=int(self.stall_count[i]),
            stall_time=float(self.stall_time[i]),
            per_task_released=per_task_released,
            per_task_missed=per_task_missed,
        )


# -- coverage probes ------------------------------------------------------


def scenario_fallback_reason(
    spec: "ScenarioSpec", scheduler_name: str
) -> Optional[str]:
    """Why this (spec, scheduler) pair needs the scalar engine, or None."""
    if scheduler_name not in SCHEDULER_KINDS:
        return f"scheduler {scheduler_name!r} not vectorized"
    if spec.faults.any_active:
        return "fault plan active"
    if not math.isfinite(spec.capacity):
        return "infinite storage"
    return None


def runspec_fallback_reason(spec: "RunSpec") -> Optional[str]:
    """Why this sweep cell needs the scalar engine, or None.

    All four predictor kinds are vectorized; an unknown kind raises at
    lane build (exactly where the scalar ``PaperSetup.predictor`` would)
    and is journaled as a cell failure, not a fallback.
    """
    if spec.scheduler_name not in SCHEDULER_KINDS:
        return f"scheduler {spec.scheduler_name!r} not vectorized"
    if spec.energy_sample_interval is not None:
        return "energy sampling requested"
    if not math.isfinite(spec.capacity):
        return "infinite storage"
    return None


# -- front-ends -----------------------------------------------------------


@dataclass(frozen=True)
class BatchOutcome:
    """Results of one batch run, in input order, with fallback accounting.

    ``fallbacks`` counts entries that ran on the scalar engine (shape
    not covered, or evicted from the core by an internal guard);
    ``fallback_reasons`` histograms the reasons.
    """

    results: tuple[SimulationResult, ...]
    fallbacks: int
    fallback_reasons: dict[str, int]


class BatchRunner:
    """Front-end routing work through the SoA core with scalar fallback.

    The runner is stateless; it exists to give sweeps and experiments a
    single object to hold (mirroring how they hold a ``PaperSetup``)
    and to keep the fallback policy in one place.
    """

    def run_scenarios(
        self, specs: Sequence["ScenarioSpec"], scheduler_name: str
    ) -> BatchOutcome:
        """Run every spec under ``scheduler_name``; scalar where uncovered."""
        n = len(specs)
        results: list[Optional[SimulationResult]] = [None] * n
        reasons: dict[str, int] = {}
        batch_indices: list[int] = []
        lanes: list[_Lane] = []
        for i, spec in enumerate(specs):
            reason = scenario_fallback_reason(spec, scheduler_name)
            if reason is None:
                try:
                    lanes.append(_scenario_lane(spec, scheduler_name))
                    batch_indices.append(i)
                    continue
                except UncoveredScenarioError as exc:
                    reason = str(exc)
            reasons[reason] = reasons.get(reason, 0) + 1
            results[i] = spec.run(scheduler_name)
        core = _BatchCore(lanes)
        core.run()
        for pos, i in enumerate(batch_indices):
            if core.errors[pos] is None:
                results[i] = core.result(pos)
            else:
                reason = f"batch core: {core.errors[pos]}"
                reasons[reason] = reasons.get(reason, 0) + 1
                results[i] = specs[i].run(scheduler_name)
        final = tuple(r for r in results if r is not None)
        assert len(final) == n
        return BatchOutcome(
            results=final,
            fallbacks=sum(reasons.values()),
            fallback_reasons=reasons,
        )

    def run_specs(
        self, specs: Sequence["RunSpec"], slim: bool = True
    ) -> tuple[list[Union[SimulationResult, "RunFailure"]], dict[str, int]]:
        """Execute sweep cells; returns (outcomes, fallback histogram).

        The scalar fallback (and any error, batch or scalar) is captured
        as a :class:`~repro.analysis.parallel.RunFailure` so the
        supervisor can journal it exactly like a pooled failure.
        """
        import dataclasses

        n = len(specs)
        outcomes: list[Optional[Union[SimulationResult, "RunFailure"]]] = (
            [None] * n
        )
        reasons: dict[str, int] = {}
        batch_indices: list[int] = []
        lanes: list[_Lane] = []
        for i, spec in enumerate(specs):
            reason = runspec_fallback_reason(spec)
            if reason is None:
                try:
                    lanes.append(_runspec_lane(spec, slim=slim))
                    batch_indices.append(i)
                    continue
                except UncoveredScenarioError as exc:
                    reason = str(exc)
                except Exception as exc:  # setup error: report as failure
                    outcomes[i] = _capture_failure(spec, exc)
                    continue
            reasons[reason] = reasons.get(reason, 0) + 1
            outcomes[i] = _scalar_cell(spec)
        core = _BatchCore(lanes)
        core.run()
        for pos, i in enumerate(batch_indices):
            if core.errors[pos] is None:
                outcomes[i] = core.result(pos, include_jobs=not slim)
            else:
                reason = f"batch core: {core.errors[pos]}"
                reasons[reason] = reasons.get(reason, 0) + 1
                outcomes[i] = _scalar_cell(specs[i])
        final: list[Union[SimulationResult, "RunFailure"]] = []
        for outcome in outcomes:
            assert outcome is not None
            if slim and isinstance(outcome, SimulationResult):
                outcome = dataclasses.replace(outcome, jobs=())
            final.append(outcome)
        return final, reasons


def _scenario_lane(spec: "ScenarioSpec", scheduler_name: str) -> _Lane:
    """A lane replaying ScenarioSpec.build_simulator's setup exactly."""
    rng = (
        np.random.default_rng(spec.aet_seed)
        if spec.aet_seed is not None
        else None
    )
    taskset = spec.build_taskset()
    source = spec.build_source()
    return _build_lane(
        scheduler_name=scheduler_name,
        scale=spec.scale(),
        jobs=taskset.jobs(spec.horizon, rng),
        source=source,
        storage=spec.build_storage(),
        predictor=spec.build_predictor(source),
        horizon=spec.horizon,
        miss_drop=spec.miss_policy == "drop",
    )


def _runspec_lane(spec: "RunSpec", slim: bool = True) -> _Lane:
    """A lane replaying PaperSetup.run's setup exactly (no aet sampling).

    Slim lanes take the array-only job path for all-periodic sets —
    no ``Job`` objects are created, which is the setup hot spot on big
    sweeps; such lanes cannot serve ``result(include_jobs=True)``.
    """
    setup = spec.setup
    taskset = setup.taskset(spec.seed, spec.utilization)
    source = setup.source(spec.seed)
    if slim:
        arrays = _periodic_job_arrays(taskset, setup.horizon)
        if arrays is not None:
            jrelease, jdeadline, jwork, jtask, task_names = arrays
            return _assemble_lane(
                scheduler_name=spec.scheduler_name,
                scale=setup.scale(),
                source=source,
                storage=IdealStorage(capacity=spec.capacity),
                predictor=setup.predictor(source),
                horizon=setup.horizon,
                miss_drop=True,
                jrelease=jrelease,
                jdeadline=jdeadline,
                jwork=jwork,
                jactual=jwork.copy(),  # rng=None: actual == WCET
                jtask=jtask,
                task_names=task_names,
                jobs=None,
            )
    return _build_lane(
        scheduler_name=spec.scheduler_name,
        scale=setup.scale(),
        jobs=taskset.jobs(setup.horizon, None),
        source=source,
        storage=IdealStorage(capacity=spec.capacity),
        predictor=setup.predictor(source),
        horizon=setup.horizon,
        miss_drop=True,  # SimulationConfig default (PaperSetup passes none)
    )


def _periodic_job_arrays(
    taskset: "TaskSet", horizon: float
) -> Optional[tuple[FloatArray, FloatArray, FloatArray, IntArray, list[str]]]:
    """Vectorized ``TaskSet.jobs(horizon, None)`` for all-periodic sets.

    Mirrors the scalar generator arithmetic exactly: releases are
    ``first_release + k * period`` (one multiply, one add, like the
    scalar loop), cut strictly below ``horizon - EPSILON``, deadlines are
    ``release + relative_deadline``, and the final order is the stable
    ``(release, deadline, task name)`` sort (``np.lexsort`` is stable,
    like ``list.sort``).  Returns ``(release, deadline, wcet, task index,
    task names)`` or ``None`` when a task is not a plain
    :class:`~repro.tasks.task.PeriodicTask` (callers then fall back to
    building real ``Job`` objects).  Only valid for ``rng=None`` job
    generation — actual demand equals the WCET.
    """
    # Subclasses (e.g. repro.faults.OverrunWorkload) may override jobs()
    # even though they iterate plain periodic tasks — only the exact
    # base class is safe to replay arithmetically.
    if type(taskset) is not TaskSet:
        return None
    tasks = list(taskset)
    if any(type(task) is not PeriodicTask for task in tasks):
        return None
    task_names = [task.name for task in tasks]
    name_rank_of = {name: r for r, name in enumerate(sorted(task_names))}
    limit = horizon - EPSILON
    rel_parts: list[FloatArray] = []
    dl_parts: list[FloatArray] = []
    wcet_parts: list[FloatArray] = []
    task_parts: list[IntArray] = []
    rank_parts: list[IntArray] = []
    for ti, task in enumerate(tasks):
        first = task.first_release
        period = task.period
        if first >= limit:
            continue
        bound = int(math.ceil((limit - first) / period)) + 2
        rel = first + np.arange(bound, dtype=np.int64) * period
        rel = rel[rel < limit]
        count = int(rel.shape[0])
        rel_parts.append(rel)
        dl_parts.append(rel + task.relative_deadline)
        wcet_parts.append(np.full(count, task.wcet))
        task_parts.append(np.full(count, ti, dtype=np.int64))
        rank_parts.append(
            np.full(count, name_rank_of[task.name], dtype=np.int64)
        )
    if not rel_parts:
        empty = np.zeros(0)
        return empty, empty.copy(), empty.copy(), np.zeros(
            0, dtype=np.int64
        ), task_names
    jrelease = np.concatenate(rel_parts)
    jdeadline = np.concatenate(dl_parts)
    jwork = np.concatenate(wcet_parts)
    jtask = np.concatenate(task_parts)
    name_rank = np.concatenate(rank_parts)
    perm = np.lexsort((name_rank, jdeadline, jrelease))
    return (
        jrelease[perm],
        jdeadline[perm],
        jwork[perm],
        jtask[perm],
        task_names,
    )


def _scalar_cell(
    spec: "RunSpec",
) -> Union[SimulationResult, "RunFailure"]:
    """One scalar sweep cell, errors captured as a RunFailure."""
    try:
        return spec.setup.run(
            spec.scheduler_name,
            spec.utilization,
            spec.capacity,
            spec.seed,
            spec.energy_sample_interval,
        )
    except Exception as exc:
        return _capture_failure(spec, exc)


def _capture_failure(spec: "RunSpec", exc: Exception) -> "RunFailure":
    import traceback as tb

    from repro.analysis.parallel import RunFailure

    return RunFailure(
        spec=spec,
        error_type=type(exc).__name__,
        message=str(exc),
        attempts=1,
        traceback="".join(
            tb.format_exception(type(exc), exc, exc.__traceback__)
        ),
    )


_DEFAULT_RUNNER = BatchRunner()


def run_scenario_batch(
    specs: Sequence["ScenarioSpec"], scheduler_name: str
) -> BatchOutcome:
    """Module-level shorthand for :meth:`BatchRunner.run_scenarios`."""
    return _DEFAULT_RUNNER.run_scenarios(specs, scheduler_name)


def execute_runspecs(
    specs: Sequence["RunSpec"], slim: bool = True
) -> tuple[list[Union[SimulationResult, "RunFailure"]], dict[str, int]]:
    """Module-level shorthand for :meth:`BatchRunner.run_specs`."""
    return _DEFAULT_RUNNER.run_specs(specs, slim=slim)
