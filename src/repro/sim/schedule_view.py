"""Schedule reconstruction and Gantt rendering from traces.

A simulation traced with the job/frequency kinds can be turned back into
the schedule it executed:

* :func:`schedule_intervals` — the list of ``(job, start, end, speed)``
  execution intervals implied by the trace;
* :func:`render_gantt` — an ASCII Gantt chart (one row per job, block
  characters keyed by speed) for quick visual inspection of small
  scenarios like the paper's Figures 1 and 3.

The trace must include ``JOB_START``, ``JOB_COMPLETE`` and — for
faithful speed/preemption rendering — ``JOB_PREEMPT``, ``JOB_MISS``,
``FREQ_CHANGE`` and ``STALL``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.sim.tracing import Trace, TraceKind
from repro.timeutils import EPSILON

__all__ = ["ExecutionInterval", "schedule_intervals", "render_gantt"]


@dataclass(frozen=True)
class ExecutionInterval:
    """One maximal stretch of a job executing at a constant speed."""

    job: str
    start: float
    end: float
    speed: float

    @property
    def duration(self) -> float:
        return self.end - self.start


def schedule_intervals(
    trace: Trace, end_time: Optional[float] = None
) -> list[ExecutionInterval]:
    """Reconstruct execution intervals from a traced run.

    ``end_time`` closes an interval left open at the end of the trace
    (a job still running when the simulation horizon was reached).
    """
    intervals: list[ExecutionInterval] = []
    current_job: Optional[str] = None
    current_speed = 0.0
    since = 0.0

    def close(at: float) -> None:
        nonlocal current_job
        if current_job is not None and at > since + EPSILON:
            intervals.append(
                ExecutionInterval(
                    job=current_job, start=since, end=at, speed=current_speed
                )
            )
        current_job = None

    for record in trace:
        kind = record.kind
        if kind == TraceKind.JOB_START:
            close(record.time)
            current_job = record["job"]
            current_speed = float(record.get("speed", 1.0))
            since = record.time
        elif kind == TraceKind.FREQ_CHANGE:
            if current_job is not None:
                job = current_job
                close(record.time)
                current_job = job
                current_speed = float(record["speed"])
                since = record.time
        elif kind in (TraceKind.JOB_COMPLETE, TraceKind.JOB_PREEMPT,
                      TraceKind.STALL):
            if current_job is not None and record.get("job") == current_job:
                close(record.time)
        elif kind == TraceKind.JOB_MISS:
            if current_job is not None and record.get("job") == current_job:
                close(record.time)

    if end_time is not None:
        close(end_time)
    return intervals


def _speed_glyph(speed: float) -> str:
    """One character encoding a relative speed (1..9, # for full)."""
    if speed >= 1.0 - EPSILON:
        return "#"
    digit = max(1, min(9, int(round(speed * 10))))
    return str(digit)


def render_gantt(
    trace: Trace,
    t0: float = 0.0,
    t1: Optional[float] = None,
    width: int = 72,
    jobs: Optional[Sequence[str]] = None,
    max_rows: int = 40,
) -> str:
    """ASCII Gantt chart of the traced schedule over ``[t0, t1]``.

    One row per job that executes inside the window (first-execution
    order unless ``jobs`` pins the selection); ``#`` marks full-speed
    execution, digits ``1``-``9`` mark reduced speeds (tenths), ``.``
    marks non-execution.  At most ``max_rows`` rows are rendered; the
    remainder is summarized in a trailing note.
    """
    if width < 10:
        raise ValueError(f"width must be >= 10, got {width!r}")
    if max_rows < 1:
        raise ValueError(f"max_rows must be >= 1, got {max_rows!r}")
    intervals = schedule_intervals(trace, end_time=t1)
    if not intervals:
        return "(no execution recorded)"
    if t1 is None:
        t1 = max(interval.end for interval in intervals)
    if t1 <= t0:  # repro-lint: disable=RPR102 -- window validation, exact
        raise ValueError(f"empty window [{t0!r}, {t1!r}]")

    hidden = 0
    if jobs is None:
        seen: dict[str, None] = {}
        for interval in intervals:
            if interval.end > t0 and interval.start < t1:
                seen.setdefault(interval.job, None)
        if not seen:
            return "(no execution inside the window)"
        all_jobs = list(seen)
        hidden = max(0, len(all_jobs) - max_rows)
        jobs = all_jobs[:max_rows]

    span = t1 - t0
    name_width = max(len(name) for name in jobs)
    lines = []
    for name in jobs:
        row = ["."] * width
        for interval in intervals:
            if interval.job != name:
                continue
            lo = max(interval.start, t0)
            hi = min(interval.end, t1)
            if hi <= lo:
                continue
            c0 = int((lo - t0) / span * width)
            c1 = max(c0 + 1, int(round((hi - t0) / span * width)))
            glyph = _speed_glyph(interval.speed)
            for c in range(c0, min(c1, width)):
                row[c] = glyph
        lines.append(f"{name:>{name_width}} |{''.join(row)}|")
    axis = f"{'':>{name_width}}  {t0:<8g}{'':^{max(0, width - 16)}}{t1:>8g}"
    lines.append(axis)
    lines.append(
        f"{'':>{name_width}}  # = full speed, digits = speed in tenths"
    )
    if hidden:
        lines.append(f"{'':>{name_width}}  (+{hidden} more jobs not shown)")
    return "\n".join(lines)
