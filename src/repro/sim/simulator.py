"""The energy-harvesting real-time system simulator.

Binds the four subsystems of the paper's Figure 2 — energy source, energy
storage, DVFS processor, and a scheduling policy — into one
discrete-event simulation.

Design
------
The simulation advances in *segments*: maximal intervals over which the
harvested power, the drawn power and the execution speed are all constant.
Within a segment every quantity is linear in time, so storage levels, job
progress and depletion instants are computed analytically — there is no
numeric integration error anywhere.  Segment boundaries are the earliest
of:

* the next release or deadline event (kept in an
  :class:`~repro.sim.engine.EventQueue`),
* the next quantum boundary of the energy source (harvest power changes),
* the running job's completion at its current speed,
* the scheduler plan's ``switch_to_max_at`` instant (EA-DVFS's ``s2``),
* the scheduler's requested ``reconsider_at`` wake-up,
* the instant the storage would deplete (the job then *stalls*),
* the next energy-trace sample point and the simulation horizon.

Scheduling points (where :meth:`~repro.sched.base.Scheduler.decide` is
invoked) are: job release, job completion, a deadline miss, stall
recovery, the scheduler's own wake-up — and, while the processor is idle
with ready work, every source quantum boundary (so energy-aware policies
react to harvest that deviates from its prediction).  A *running* plan is
deliberately not re-evaluated at quantum boundaries: the paper's worked
examples (Figures 1 and 3) commit to the ``(f_n until s2, f_max after)``
plan at dispatch, and re-planning mid-execution would drift ``s2``.

Stalls: when the storage hits zero while the processor draws more than
the instantaneous harvest, the job is suspended and the system idles
until the next source quantum boundary before retrying (bounded event
rate; see DESIGN.md).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.cpu.dvfs import FrequencyLevel
from repro.cpu.processor import Processor
from repro.energy.predictor import HarvestPredictor, OraclePredictor
from repro.energy.source import EnergySource
from repro.energy.storage import EnergyStorage
from repro.sched.base import Decision, EnergyOutlook, Scheduler
from repro.sim.engine import EventQueue
from repro.sim.tracing import Trace, TraceKind
from repro.sim.watchdog import SimulationWatchdog
from repro.tasks.job import Job, JobState
from repro.tasks.queue import EdfReadyQueue
from repro.tasks.task import TaskSet
from repro.timeutils import EPSILON, INFINITY

__all__ = [
    "DeadlineMissPolicy",
    "SimulationConfig",
    "SimulationResult",
    "HarvestingRtSimulator",
]

_RELEASE = "release"
_DEADLINE = "deadline"

#: Event priorities: deadline checks run before releases at equal times so
#: that a job due exactly when another arrives is judged on its own merits.
_PRIO_DEADLINE = 0
_PRIO_RELEASE = 1


class DeadlineMissPolicy(enum.Enum):
    """What happens to a job that reaches its deadline unfinished."""

    #: The job is aborted and removed (default; energy already spent on it
    #: is lost — the paper counts such jobs as deadline misses).
    DROP = "drop"
    #: The miss is counted but the job keeps executing to completion.
    CONTINUE = "continue"


@dataclass(frozen=True)
class SimulationConfig:
    """Run-level knobs of the simulator."""

    #: Simulated horizon; releases and deadline checks beyond it are ignored.
    horizon: float = 10_000.0
    miss_policy: DeadlineMissPolicy = DeadlineMissPolicy.DROP
    #: Trace record kinds to collect (empty = trace nothing).
    trace_kinds: tuple[str, ...] = ()
    #: Record an ENERGY trace sample every this many time units.
    energy_sample_interval: Optional[float] = None
    #: After a stall, retry no later than this long after the stall began
    #: (sources whose power never changes have no quantum boundary to
    #: wait for).
    stall_retry_interval: float = 1.0
    #: Seed for per-job actual-execution-time sampling (tasks with
    #: ``bcet_ratio < 1``); ``None`` runs every job at its WCET.
    aet_seed: Optional[int] = None
    #: Safety valve against runaway event loops.
    max_iterations: int = 50_000_000
    #: Audit every segment with a :class:`~repro.sim.watchdog.SimulationWatchdog`
    #: (energy conservation, causality, stall progress) and abort with a
    #: structured :class:`~repro.sim.watchdog.WatchdogError` on violation.
    watchdog: bool = False
    #: Abort after this many stalls without a job completion (requires
    #: ``watchdog=True``; ``None`` disables the stall-progress check).
    watchdog_max_stalls: Optional[int] = None
    #: Relative tolerance of the watchdog's energy checks.
    watchdog_energy_tolerance: float = 1e-6

    def __post_init__(self) -> None:
        if not math.isfinite(self.horizon) or self.horizon <= 0:
            raise ValueError(f"horizon must be finite and > 0, got {self.horizon!r}")
        unknown = set(self.trace_kinds) - set(TraceKind.ALL)
        if unknown:
            raise ValueError(f"unknown trace kinds: {sorted(unknown)}")
        if self.energy_sample_interval is not None and (
            self.energy_sample_interval <= 0
        ):
            raise ValueError(
                "energy_sample_interval must be > 0, got "
                f"{self.energy_sample_interval!r}"
            )
        if self.stall_retry_interval <= 0:
            raise ValueError(
                f"stall_retry_interval must be > 0, got "
                f"{self.stall_retry_interval!r}"
            )
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if self.watchdog_max_stalls is not None:
            if not self.watchdog:
                raise ValueError("watchdog_max_stalls requires watchdog=True")
            if self.watchdog_max_stalls < 1:
                raise ValueError(
                    "watchdog_max_stalls must be >= 1 or None, got "
                    f"{self.watchdog_max_stalls!r}"
                )
        if self.watchdog_energy_tolerance <= 0 or not math.isfinite(
            self.watchdog_energy_tolerance
        ):
            raise ValueError(
                "watchdog_energy_tolerance must be finite and > 0, got "
                f"{self.watchdog_energy_tolerance!r}"
            )


@dataclass
class SimulationResult:
    """Everything measured during one simulation run."""

    scheduler_name: str
    horizon: float
    jobs: Sequence[Job]
    released_count: int
    completed_count: int
    missed_count: int
    #: Jobs whose deadline fell within the horizon — the miss-rate
    #: denominator (jobs still in flight at the end are not judged).
    judged_count: int
    harvested_energy: float
    drawn_energy: float
    overflow_energy: float
    leaked_energy: float
    final_stored: float
    storage_capacity: float
    busy_time_profile: dict[float, float]
    idle_time: float
    switch_count: int
    stall_count: int
    stall_time: float
    per_task_released: dict[str, int] = field(default_factory=dict)
    per_task_missed: dict[str, int] = field(default_factory=dict)
    trace: Trace = field(default_factory=Trace)

    @property
    def miss_rate(self) -> float:
        """Deadline miss rate over jobs judged within the horizon."""
        if self.judged_count == 0:
            return 0.0
        return self.missed_count / self.judged_count

    @property
    def completion_rate(self) -> float:
        if self.judged_count == 0:
            return 1.0
        return 1.0 - self.miss_rate

    @property
    def final_fraction(self) -> float:
        """Normalized remaining energy ``EC(T)/C`` (nan if capacity inf)."""
        if math.isinf(self.storage_capacity):
            return math.nan
        return self.final_stored / self.storage_capacity

    @property
    def total_busy_time(self) -> float:
        return sum(self.busy_time_profile.values())

    def summary(self) -> str:
        """One-paragraph human-readable digest."""
        lines = [
            f"scheduler={self.scheduler_name} horizon={self.horizon:g}",
            (
                f"jobs: released={self.released_count} "
                f"completed={self.completed_count} missed={self.missed_count} "
                f"judged={self.judged_count} miss_rate={self.miss_rate:.4f}"
            ),
            (
                f"energy: harvested={self.harvested_energy:.2f} "
                f"drawn={self.drawn_energy:.2f} "
                f"overflow={self.overflow_energy:.2f} "
                f"final_stored={self.final_stored:.2f}"
            ),
            (
                f"processor: busy={self.total_busy_time:.2f} "
                f"idle={self.idle_time:.2f} switches={self.switch_count} "
                f"stalls={self.stall_count} ({self.stall_time:.2f} time)"
            ),
        ]
        return "\n".join(lines)


class HarvestingRtSimulator:
    """One simulation run of a scheduler over a task set.

    A simulator instance is single-use: build, :meth:`run`, read the
    :class:`SimulationResult`.  All randomness lives in the source and the
    workload — the simulator itself is deterministic.
    """

    def __init__(
        self,
        taskset: TaskSet,
        source: EnergySource,
        storage: EnergyStorage,
        scheduler: Scheduler,
        predictor: Optional[HarvestPredictor] = None,
        processor: Optional[Processor] = None,
        config: Optional[SimulationConfig] = None,
    ) -> None:
        self._taskset = taskset
        self._source = source
        self._storage = storage
        self._scheduler = scheduler
        self._predictor = predictor or OraclePredictor(source)
        self._processor = processor or Processor(scheduler.scale)
        if self._processor.scale is not scheduler.scale:
            if self._processor.scale != scheduler.scale:
                raise ValueError(
                    "processor and scheduler use different frequency scales"
                )
        self._config = config or SimulationConfig()
        self._outlook = EnergyOutlook(self._storage, self._predictor)
        self._watchdog: Optional[SimulationWatchdog] = None
        if self._config.watchdog:
            self._watchdog = SimulationWatchdog(
                max_consecutive_stalls=self._config.watchdog_max_stalls,
                energy_tolerance=self._config.watchdog_energy_tolerance,
            )

        self._events = EventQueue()
        self._ready = EdfReadyQueue()
        self._trace = Trace(kinds=self._config.trace_kinds)
        self._t = 0.0

        # Execution plan state.
        self._decision: Optional[Decision] = None
        self._need_decision = True
        self._running: Optional[Job] = None
        self._level: Optional[FrequencyLevel] = None
        self._switch_at: Optional[float] = None
        self._dead_until = 0.0  # end of switching-overhead dead time

        # Stall state.
        self._stalled_until: Optional[float] = None
        self._stall_count = 0
        self._stall_time = 0.0
        self._stall_started: Optional[float] = None

        # Bookkeeping.
        self._jobs: list[Job] = []
        self._missed: set[int] = set()  # id() of jobs already counted missed
        self._completed_count = 0
        self._missed_count = 0
        self._per_task_released: dict[str, int] = {}
        self._per_task_missed: dict[str, int] = {}
        self._next_sample: float = (
            0.0 if self._config.energy_sample_interval is not None else INFINITY
        )
        self._finished = False

    # -- public API -----------------------------------------------------------

    @property
    def now(self) -> float:
        return self._t

    @property
    def trace(self) -> Trace:
        return self._trace

    def run(self) -> SimulationResult:
        """Execute the simulation and return its result (single use)."""
        if self._finished:
            raise RuntimeError("a simulator instance can only run once")
        self._finished = True
        self._seed_events()

        horizon = self._config.horizon
        stagnant = 0
        for _ in range(self._config.max_iterations):
            self._process_due_events()
            if self._t >= horizon - EPSILON:
                break
            self._maybe_decide()
            seg_end = self._segment_end()
            advanced = self._advance_to(seg_end)
            stagnant = 0 if advanced else stagnant + 1
            if stagnant > 1000:
                if self._watchdog is not None:
                    raise self._watchdog.abort(
                        self._t, "simulator made no progress (stagnant loop)"
                    )
                raise RuntimeError(
                    f"simulator made no progress at t={self._t!r} "
                    f"(decision={self._decision!r})"
                )
        else:
            if self._watchdog is not None:
                raise self._watchdog.abort(
                    self._t,
                    "simulation exceeded max_iterations="
                    f"{self._config.max_iterations}",
                )
            raise RuntimeError(
                f"simulation exceeded max_iterations="
                f"{self._config.max_iterations} (t={self._t!r})"
            )
        return self._build_result()

    # -- setup ------------------------------------------------------------------

    def _seed_events(self) -> None:
        horizon = self._config.horizon
        rng = None
        if self._config.aet_seed is not None:
            rng = np.random.default_rng(self._config.aet_seed)
        for job in self._taskset.jobs(horizon, rng):
            self._jobs.append(job)
            self._events.schedule(
                job.release, _RELEASE, payload=job, priority=_PRIO_RELEASE
            )
            if job.absolute_deadline <= horizon + EPSILON:
                self._events.schedule(
                    job.absolute_deadline,
                    _DEADLINE,
                    payload=job,
                    priority=_PRIO_DEADLINE,
                )

    # -- event handling -------------------------------------------------------------

    def _process_due_events(self) -> None:
        while self._events and self._events.peek_time() <= self._t + EPSILON:
            event = self._events.pop()
            job: Job = event.payload
            if event.kind == _RELEASE:
                self._on_release(job)
            elif event.kind == _DEADLINE:
                self._on_deadline(job)
            else:  # pragma: no cover - no other kinds are scheduled
                raise RuntimeError(f"unexpected event kind {event.kind!r}")

    def _on_release(self, job: Job) -> None:
        job.mark_released()
        self._ready.push(job)
        self._per_task_released[job.task.name] = (
            self._per_task_released.get(job.task.name, 0) + 1
        )
        self._trace.record(
            self._t,
            TraceKind.JOB_RELEASE,
            job=job.name,
            deadline=job.absolute_deadline,
            wcet=job.wcet,
        )
        self._need_decision = True

    def _on_deadline(self, job: Job) -> None:
        if job.is_finished or id(job) in self._missed:
            return
        if job.state is JobState.PENDING:  # pragma: no cover - defensive
            raise RuntimeError(f"{job.name}: deadline before release")
        self._missed.add(id(job))
        self._missed_count += 1
        self._per_task_missed[job.task.name] = (
            self._per_task_missed.get(job.task.name, 0) + 1
        )
        self._trace.record(
            self._t,
            TraceKind.JOB_MISS,
            job=job.name,
            remaining=job.remaining_work,
        )
        if self._config.miss_policy is DeadlineMissPolicy.DROP:
            job.mark_missed()
            self._ready.remove(job)
            if self._running is job:
                self._clear_plan()
            self._need_decision = True
        # CONTINUE: the job stays ready/running; only the count changes.

    # -- scheduling -------------------------------------------------------------------

    def _maybe_decide(self) -> None:
        if self._stalled_until is not None:
            return  # frozen until the stall window ends
        if not self._need_decision:
            return
        self._need_decision = False
        decision = self._scheduler.decide(self._t, self._ready, self._outlook)
        self._validate_decision(decision)
        if self._watchdog is not None:
            self._watchdog.observe_decision(self._t, decision)
        self._apply_decision(decision)

    def _validate_decision(self, decision: Decision) -> None:
        if decision.is_idle:
            return
        job = decision.job
        assert job is not None and decision.level is not None
        if job not in self._ready:
            raise RuntimeError(
                f"scheduler dispatched {job.name} which is not ready"
            )
        if decision.level not in self._scheduler.scale.levels:
            raise RuntimeError(
                f"scheduler chose a level outside its scale: {decision.level!r}"
            )
        if decision.switch_to_max_at is not None:
            if decision.switch_to_max_at <= self._t + EPSILON:
                raise RuntimeError(
                    "switch_to_max_at must lie strictly in the future "
                    f"(now={self._t!r}, got {decision.switch_to_max_at!r})"
                )
            if decision.level.speed >= self._scheduler.scale.max_level.speed:
                raise RuntimeError(
                    "switch_to_max_at is meaningless when already at full speed"
                )

    def _apply_decision(self, decision: Decision) -> None:
        self._decision = decision
        previous = self._running
        if decision.is_idle:
            if previous is not None and not previous.is_finished:
                self._trace.record(
                    self._t, TraceKind.JOB_PREEMPT, job=previous.name, by="idle"
                )
            self._running = None
            self._level = None
            self._switch_at = None
            self._set_processor_level(None)
            return

        job = decision.job
        assert job is not None and decision.level is not None
        if previous is not None and previous is not job and not previous.is_finished:
            self._trace.record(
                self._t, TraceKind.JOB_PREEMPT, job=previous.name, by=job.name
            )
        if previous is not job:
            job.note_started(self._t)
            self._trace.record(
                self._t,
                TraceKind.JOB_START,
                job=job.name,
                speed=decision.level.speed,
            )
        self._running = job
        self._switch_at = decision.switch_to_max_at
        self._set_processor_level(decision.level)

    def _set_processor_level(self, level: Optional[FrequencyLevel]) -> None:
        if level is self._level and self._processor.current_level is level:
            return
        old = self._level
        overhead = self._processor.set_level(level)
        self._level = level
        if level is not None and (old is None or old.speed != level.speed):
            self._trace.record(
                self._t,
                TraceKind.FREQ_CHANGE,
                speed=level.speed,
                power=level.power,
            )
        if not overhead.is_free:
            if overhead.energy > 0:
                self._storage.draw_instant(overhead.energy)
            if overhead.time > 0:
                self._dead_until = self._t + overhead.time

    def _clear_plan(self) -> None:
        self._decision = None
        self._running = None
        self._level = None
        self._switch_at = None
        self._set_processor_level(None)
        self._need_decision = True

    # -- segment machinery ------------------------------------------------

    def _current_draw(self, harvest: float) -> float:
        """Power drawn from the storage in the current processor state.

        An idle platform whose storage is empty and cannot sustain even
        the idle draw scavenges what it can directly from the source; the
        residual idle consumption is treated as browned out (drops to 0)
        rather than wedging the simulation on an unsatisfiable draw.
        """
        if self._running is not None and self._level is not None:
            return self._level.power
        idle = self._processor.idle_power
        if (
            idle > 0
            and self._storage.is_empty
            and self._storage.net_flow(harvest, idle) < 0
        ):
            return 0.0
        return idle

    def _segment_end(self) -> float:
        t = self._t
        horizon = self._config.horizon
        end = min(horizon, self._events.peek_time(), self._next_sample_after(t))
        end = min(end, self._source.next_boundary(t))

        if self._stalled_until is not None:
            end = min(end, self._stalled_until)
        elif self._decision is None or self._decision.is_idle:
            if self._decision is not None:
                end = min(end, self._decision.reconsider_at)
            # While idle with work pending, quantum boundaries double as
            # scheduling points (handled in _advance_to), so no extra cap
            # is needed here: the source boundary already bounds `end`.
        else:
            job = self._running
            assert job is not None and self._level is not None
            if self._t < self._dead_until:
                end = min(end, self._dead_until)
            else:
                completion = t + job.time_to_finish(max(self._level.speed, 1e-12))
                end = min(end, completion)
            if self._switch_at is not None:
                end = min(end, self._switch_at)
            end = min(end, self._decision.reconsider_at)

        harvest = self._source.power(t)
        draw = self._current_draw(harvest)
        t_empty = self._storage.time_to_empty(harvest, draw)
        if t + t_empty < end - EPSILON:
            end = t + t_empty
        return max(end, t)

    def _advance_to(self, end: float) -> bool:
        """Advance the world to ``end``; returns whether time moved."""
        t = self._t
        duration = max(0.0, end - t)
        harvest = self._source.power(t)
        draw = self._current_draw(harvest)

        if duration > 0.0:  # repro-lint: disable=RPR101 -- exact: zero-length steps only
            # Split the draw at the depletion instant if it falls inside
            # (can only happen from float noise, since _segment_end caps
            # at depletion; stay defensive).
            segment = self._storage.advance(duration, harvest, draw)
            if self._watchdog is not None:
                self._watchdog.observe_segment(
                    t, end, harvest, draw, segment, self._storage
                )
            self._predictor.observe(t, end, harvest * duration)
            self._processor.account_time(duration)
            if self._running is not None and self._level is not None:
                speed = 0.0 if t < self._dead_until else self._level.speed
                self._running.execute(speed, duration, self._level.power)
            self._t = end

        self._post_segment()
        return duration > EPSILON

    def _post_segment(self) -> None:
        t = self._t
        # Re-read the harvest at the *new* time: the segment may have ended
        # exactly at a source quantum boundary where the power changes.
        harvest = self._source.power(t)
        # 1. Energy trace sampling.
        if t >= self._next_sample - EPSILON:
            self._record_energy_sample(harvest)

        # 2. Stall window expiry.
        if self._stalled_until is not None and t >= self._stalled_until - EPSILON:
            self._stalled_until = None
            if self._stall_started is not None:
                self._stall_time += t - self._stall_started
                self._stall_started = None
            self._need_decision = True

        job = self._running
        if job is not None and self._level is not None:
            # 3. Completion (on the *true* demand, which may undercut the
            # WCET the schedulers plan with).
            if job.remaining_actual_work <= 1e-7:
                job.mark_completed(t)
                self._ready.remove(job)
                self._completed_count += 1
                if self._watchdog is not None:
                    self._watchdog.observe_completion()
                self._trace.record(
                    t,
                    TraceKind.JOB_COMPLETE,
                    job=job.name,
                    lateness=job.lateness,
                    energy=job.energy_consumed,
                )
                self._clear_plan()
                return
            # 4. Depletion -> stall.  The storage's own net-flow model
            # decides (conversion losses can drain the store even when
            # the raw draw is below the raw harvest).
            draw = self._level.power
            if self._storage.is_empty and (
                self._storage.net_flow(harvest, draw) < -EPSILON
            ):
                self._enter_stall()
                return
            # 5. Planned switch to full speed (EA-DVFS s2).
            if self._switch_at is not None and t >= self._switch_at - EPSILON:
                self._switch_at = None
                self._set_processor_level(self._scheduler.scale.max_level)
            if (
                self._decision is not None
                and t >= self._decision.reconsider_at - EPSILON
            ):
                self._need_decision = True
            return

        # Idle: wake the scheduler when asked to, and at source boundaries
        # while work is pending (prediction drift responsiveness).
        if self._decision is not None and t >= self._decision.reconsider_at - EPSILON:
            self._need_decision = True
        if self._ready and self._stalled_until is None:
            self._need_decision = True

    def _enter_stall(self) -> None:
        job = self._running
        assert job is not None
        resume = min(
            self._source.next_boundary(self._t),
            self._t + self._config.stall_retry_interval,
        )
        self._trace.record(
            self._t,
            TraceKind.STALL,
            job=job.name,
            resume_at=resume,
        )
        self._stall_count += 1
        if self._watchdog is not None:
            self._watchdog.observe_stall(self._t)
        self._stall_started = self._t
        self._stalled_until = resume
        # The job goes back to waiting (it stays in the ready queue).
        self._decision = None
        self._running = None
        self._level = None
        self._switch_at = None
        self._set_processor_level(None)

    def _next_sample_after(self, t: float) -> float:
        return self._next_sample

    def _record_energy_sample(self, harvest: float) -> None:
        interval = self._config.energy_sample_interval
        assert interval is not None
        self._trace.record(
            self._t,
            TraceKind.ENERGY,
            stored=self._storage.stored,
            fraction=self._storage.fraction,
            harvest_power=harvest,
        )
        while self._next_sample <= self._t + EPSILON:
            self._next_sample += interval

    # -- result -----------------------------------------------------------

    def _build_result(self) -> SimulationResult:
        horizon = self._config.horizon
        judged = sum(
            1 for j in self._jobs if j.absolute_deadline <= horizon + EPSILON
        )
        return SimulationResult(
            scheduler_name=self._scheduler.name,
            horizon=horizon,
            jobs=tuple(self._jobs),
            released_count=len(self._jobs),
            completed_count=self._completed_count,
            missed_count=self._missed_count,
            judged_count=judged,
            harvested_energy=self._source.energy(0.0, horizon),
            drawn_energy=self._storage.total_drawn,
            overflow_energy=self._storage.total_overflow,
            leaked_energy=self._storage.total_leaked,
            final_stored=self._storage.stored,
            storage_capacity=self._storage.capacity,
            busy_time_profile=self._processor.busy_time_profile(),
            idle_time=self._processor.idle_time,
            switch_count=self._processor.switch_count,
            stall_count=self._stall_count,
            stall_time=self._stall_time,
            per_task_released=dict(self._per_task_released),
            per_task_missed=dict(self._per_task_missed),
            trace=self._trace,
        )
