"""Opt-in simulation invariant checker.

With fault injection in the loop (``repro.faults``), a buggy wrapper can
violate the contracts the simulator's analytic segment machinery depends
on — conjure energy from nowhere, report draws that never happened, or
trap the run in an endless stall loop.  The watchdog audits every
segment against physical and causal invariants and aborts with a
structured :class:`SimulationDiagnostics` report instead of letting the
run hang or silently corrupt its metrics:

* **energy conservation** — per segment, the accounted energy
  (``stored_delta + drawn + leaked + overflow``) must not exceed the
  harvested energy plus tolerance.  An *inequality*, not an equality:
  conversion losses of non-ideal storages are legitimately unitemized.
* **draw accounting** — the energy the storage reports delivering must
  match ``draw_power * duration``.
* **level bounds** — the stored level must stay within
  ``[0, capacity]`` (plus tolerance).
* **causality** — segments must not run backwards, and scheduler
  decisions must not ask to be reconsidered (or switch to full speed)
  in the past.
* **stall progress** — at most ``max_consecutive_stalls`` stalls may
  occur without an intervening job completion.

Enable it via ``SimulationConfig(watchdog=True)``; see
``docs/resilience.md`` for the invariant list and rationale.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.energy.storage import EnergyStorage, SegmentResult
from repro.sched.base import Decision
from repro.timeutils import EPSILON

__all__ = ["SimulationDiagnostics", "SimulationWatchdog", "WatchdogError"]


@dataclass(frozen=True)
class SimulationDiagnostics:
    """Snapshot of simulator health at the instant a watchdog check fired.

    Attributes
    ----------
    violation:
        Human-readable description of the violated invariant (empty for a
        healthy snapshot).
    time:
        Simulation time of the check.
    segments_checked:
        Segments audited so far.
    stall_count, consecutive_stalls:
        Total stalls observed, and stalls since the last job completion.
    completed_count:
        Job completions observed.
    stored, capacity:
        Storage level and capacity at the check.
    detail:
        Violation-specific numbers (e.g. the two sides of a failed
        conservation inequality).
    """

    violation: str
    time: float
    segments_checked: int
    stall_count: int
    consecutive_stalls: int
    completed_count: int
    stored: float
    capacity: float
    detail: dict[str, float] = field(default_factory=dict)

    def format_text(self) -> str:
        """Multi-line human-readable report."""
        lines = [
            f"watchdog: {self.violation or 'ok'}",
            f"  at t={self.time:g} after {self.segments_checked} segments",
            (
                f"  stalls={self.stall_count} "
                f"(consecutive={self.consecutive_stalls}) "
                f"completions={self.completed_count}"
            ),
            f"  storage: stored={self.stored:g} capacity={self.capacity:g}",
        ]
        for key in sorted(self.detail):
            lines.append(f"  {key}={self.detail[key]:g}")
        return "\n".join(lines)


class WatchdogError(RuntimeError):
    """A simulation invariant was violated; carries the diagnostics report."""

    def __init__(self, diagnostics: SimulationDiagnostics) -> None:
        super().__init__(diagnostics.format_text())
        self.diagnostics = diagnostics


class SimulationWatchdog:
    """Per-segment invariant auditor driven by the simulator's hooks.

    Parameters
    ----------
    max_consecutive_stalls:
        Abort after this many stalls without an intervening completion
        (``None`` disables the stall-progress check).
    energy_tolerance:
        Relative tolerance of the energy checks, scaled by the segment's
        energy turnover.
    """

    def __init__(
        self,
        max_consecutive_stalls: Optional[int] = None,
        energy_tolerance: float = 1e-6,
    ) -> None:
        if max_consecutive_stalls is not None and max_consecutive_stalls < 1:
            raise ValueError(
                "max_consecutive_stalls must be >= 1 or None, got "
                f"{max_consecutive_stalls!r}"
            )
        if energy_tolerance <= 0 or not math.isfinite(energy_tolerance):
            raise ValueError(
                f"energy_tolerance must be finite and > 0, got {energy_tolerance!r}"
            )
        self._max_stalls = max_consecutive_stalls
        self._tolerance = float(energy_tolerance)
        self._last_end = 0.0
        self._segments = 0
        self._stalls = 0
        self._consecutive_stalls = 0
        self._completions = 0
        self._stored = 0.0
        self._capacity = 0.0

    @property
    def segments_checked(self) -> int:
        """Number of segments audited so far."""
        return self._segments

    def snapshot(self, time: float, violation: str = "", **detail: float) -> SimulationDiagnostics:
        """Diagnostics for the current counters (healthy or violated)."""
        return SimulationDiagnostics(
            violation=violation,
            time=time,
            segments_checked=self._segments,
            stall_count=self._stalls,
            consecutive_stalls=self._consecutive_stalls,
            completed_count=self._completions,
            stored=self._stored,
            capacity=self._capacity,
            detail={k: float(v) for k, v in detail.items()},
        )

    def abort(self, time: float, violation: str, **detail: float) -> "WatchdogError":
        """Build the error for a violation detected by the caller."""
        return WatchdogError(self.snapshot(time, violation, **detail))

    def _fail(self, time: float, violation: str, **detail: float) -> None:
        raise self.abort(time, violation, **detail)

    def observe_segment(
        self,
        t0: float,
        t1: float,
        harvest_power: float,
        draw_power: float,
        result: SegmentResult,
        storage: EnergyStorage,
    ) -> None:
        """Audit one advanced segment (called after ``storage.advance``)."""
        self._stored = storage.stored
        self._capacity = storage.capacity
        if t1 < t0 - EPSILON:
            self._fail(t1, "segment runs backwards", t0=t0, t1=t1)
        if t0 < self._last_end - EPSILON:
            self._fail(
                t0,
                "segment begins before the previous segment ended",
                previous_end=self._last_end,
            )
        duration = max(0.0, t1 - t0)
        harvested = harvest_power * duration
        expected_drawn = draw_power * duration
        tolerance = self._tolerance * max(1.0, harvested + expected_drawn)
        if abs(result.drawn - expected_drawn) > tolerance:
            self._fail(
                t1,
                "storage-reported draw disagrees with the commanded draw",
                reported=result.drawn,
                expected=expected_drawn,
            )
        accounted = (
            result.stored_delta + result.drawn + result.leaked + result.overflow
        )
        if accounted > harvested + tolerance:
            self._fail(
                t1,
                "energy conservation violated (accounted energy exceeds harvest)",
                accounted=accounted,
                harvested=harvested,
            )
        if not math.isinf(storage.stored):
            level_tolerance = self._tolerance * max(1.0, abs(storage.stored))
            if storage.stored < -level_tolerance:
                self._fail(t1, "storage level below zero", stored=storage.stored)
            if (
                not math.isinf(storage.capacity)
                and storage.stored > storage.capacity + level_tolerance
            ):
                self._fail(
                    t1,
                    "storage level above capacity",
                    stored=storage.stored,
                    capacity=storage.capacity,
                )
        self._last_end = max(self._last_end, t1)
        self._segments += 1

    def observe_decision(self, now: float, decision: Decision) -> None:
        """Audit a scheduler decision for causality."""
        if decision.reconsider_at < now - EPSILON:
            self._fail(
                now,
                "scheduler asked to be reconsidered in the past",
                reconsider_at=decision.reconsider_at,
            )
        if (
            decision.switch_to_max_at is not None
            and decision.switch_to_max_at < now - EPSILON
        ):
            self._fail(
                now,
                "scheduler planned a speed switch in the past",
                switch_to_max_at=decision.switch_to_max_at,
            )

    def observe_stall(self, time: float) -> None:
        """Record a stall; abort if too many accumulate without progress."""
        self._stalls += 1
        self._consecutive_stalls += 1
        if (
            self._max_stalls is not None
            and self._consecutive_stalls > self._max_stalls
        ):
            self._fail(
                time,
                "stall loop without progress "
                f"(more than {self._max_stalls} stalls since the last completion)",
            )

    def observe_completion(self) -> None:
        """Record a job completion (resets the consecutive-stall counter)."""
        self._completions += 1
        self._consecutive_stalls = 0
