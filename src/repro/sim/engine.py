"""A minimal deterministic discrete-event simulation kernel.

SimPy is not available in this offline environment, so the repository ships
its own kernel.  It is intentionally small: a monotonic clock plus a binary
heap of :class:`ScheduledEvent` entries with deterministic tie-breaking
(time, then priority, then insertion order).  The harvesting simulator in
:mod:`repro.sim.simulator` is built on top of it, and the kernel is generic
enough to be reused for other event-driven models (see the unit tests for a
standalone M/M/1-style example).
"""

# The event queue orders and dispatches instants *exactly* (total order
# for the heap); float tolerance is applied once, in Clock.advance_to.
# repro-lint: disable-file=RPR102 -- kernel compares instants exactly

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional

from repro.timeutils import EPSILON

__all__ = ["SimulationClock", "ScheduledEvent", "EventQueue"]


class SimulationClock:
    """Monotonically non-decreasing simulated clock.

    The clock refuses to move backwards: event-driven code that computes a
    stale timestamp fails loudly instead of silently corrupting causality.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if not math.isfinite(start):
            raise ValueError(f"clock start must be finite, got {start!r}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    def advance_to(self, t: float) -> None:
        """Move the clock forward to ``t``.

        Tiny backwards drift (within :data:`~repro.timeutils.EPSILON`) is
        snapped to the current time — and *only* snapped, never stored, so
        repeated sub-EPSILON drifts cannot accumulate into a real
        regression.  Anything larger raises :class:`ValueError`, as does a
        NaN target (which would otherwise fail every comparison and
        masquerade as a backwards move).
        """
        if math.isnan(t):
            raise ValueError("clock target must not be NaN")
        if t >= self._now:
            self._now = t
            return
        if t >= self._now - EPSILON:
            return  # float noise: keep the clock where it is
        raise ValueError(
            f"clock cannot move backwards: now={self._now!r}, requested {t!r}"
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SimulationClock(now={self._now!r})"


@dataclass(order=False)
class ScheduledEvent:
    """An event stored in an :class:`EventQueue`.

    Events compare by ``(time, priority, sequence)`` which makes the pop
    order fully deterministic for equal timestamps.  Lower ``priority``
    values pop first.
    """

    time: float
    priority: int
    sequence: int
    kind: str
    payload: Any = None
    callback: Optional[Callable[["ScheduledEvent"], None]] = None
    cancelled: bool = field(default=False, compare=False)
    dispatched: bool = field(default=False, compare=False)

    def sort_key(self) -> tuple[float, int, int]:
        return (self.time, self.priority, self.sequence)

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be skipped when popped."""
        self.cancelled = True

    def __lt__(self, other: "ScheduledEvent") -> bool:
        return self.sort_key() < other.sort_key()


class EventQueue:
    """Deterministic event heap with lazy cancellation.

    Cancelled events stay in the heap and are dropped when they surface;
    this keeps cancellation O(1) at the cost of occasional dead entries,
    which is the standard approach for simulation kernels.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._clock = SimulationClock(start)
        self._heap: list[ScheduledEvent] = []
        self._counter = itertools.count()
        self._live = 0
        self._processed = 0

    # -- clock ------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._clock.now

    @property
    def processed_count(self) -> int:
        """Number of events popped (and not cancelled) so far."""
        return self._processed

    # -- scheduling -------------------------------------------------------

    def schedule(
        self,
        time: float,
        kind: str,
        payload: Any = None,
        priority: int = 0,
        callback: Optional[Callable[[ScheduledEvent], None]] = None,
    ) -> ScheduledEvent:
        """Insert an event at absolute time ``time`` and return its handle.

        ``time`` must not lie in the past (tolerance
        :data:`~repro.timeutils.EPSILON`; slightly-past times are snapped to
        "now").
        """
        if math.isnan(time):
            raise ValueError("cannot schedule an event at NaN")
        if time < self.now:
            if time < self.now - EPSILON:
                raise ValueError(
                    f"cannot schedule into the past: now={self.now!r}, "
                    f"requested {time!r}"
                )
            time = self.now
        event = ScheduledEvent(
            time=float(time),
            priority=priority,
            sequence=next(self._counter),
            kind=kind,
            payload=payload,
            callback=callback,
        )
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def schedule_after(
        self,
        delay: float,
        kind: str,
        payload: Any = None,
        priority: int = 0,
        callback: Optional[Callable[[ScheduledEvent], None]] = None,
    ) -> ScheduledEvent:
        """Insert an event ``delay`` time units from now."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay!r}")
        return self.schedule(self.now + delay, kind, payload, priority, callback)

    def cancel(self, event: ScheduledEvent) -> None:
        """Cancel a previously scheduled event (idempotent).

        Cancelling an event that was already popped is a no-op: the heap
        no longer holds it, so decrementing ``_live`` for it would make
        the queue under-count its remaining live events (``__len__`` and
        ``run`` would then stop early with real events still queued).
        """
        if not event.cancelled and not event.dispatched:
            event.cancel()
            self._live -= 1

    # -- inspection -------------------------------------------------------

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def peek_time(self) -> float:
        """Time of the next live event, or ``+inf`` when empty."""
        self._drop_dead_entries()
        if not self._heap:
            return math.inf
        return self._heap[0].time

    def _drop_dead_entries(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)

    # -- execution --------------------------------------------------------

    def pop(self) -> ScheduledEvent:
        """Pop the next live event and advance the clock to its time."""
        self._drop_dead_entries()
        if not self._heap:
            raise IndexError("pop from an empty event queue")
        event = heapq.heappop(self._heap)
        event.dispatched = True
        self._live -= 1
        self._processed += 1
        self._clock.advance_to(event.time)
        return event

    def run(
        self,
        until: float = math.inf,
        max_events: Optional[int] = None,
    ) -> int:
        """Pop-and-dispatch events until ``until`` or exhaustion.

        Each event's ``callback`` is invoked with the event itself.  Events
        scheduled exactly at ``until`` are *not* executed (the horizon is
        half-open), matching the convention that a simulation over
        ``[0, T)`` does not process arrivals at ``T``.

        Returns the number of events dispatched by this call.
        """
        dispatched = 0
        while self:
            if self.peek_time() >= until:
                break
            if max_events is not None and dispatched >= max_events:
                break
            event = self.pop()
            dispatched += 1
            if event.callback is not None:
                event.callback(event)
        if math.isfinite(until) and until > self._clock.now:
            self._clock.advance_to(until)
        return dispatched

    def drain(self) -> Iterator[ScheduledEvent]:
        """Yield remaining live events in order, advancing the clock."""
        while self:
            yield self.pop()
