"""Typed trace recording for simulation runs.

Simulations optionally record a :class:`Trace`: an append-only list of
:class:`TraceRecord` entries with a ``kind`` tag, a timestamp and a payload
of keyword fields.  Traces support filtering by kind and export of numeric
fields to numpy arrays, which is what the experiment harness uses to build
the remaining-energy time series of Figures 6 and 7.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Mapping, Optional, Sequence

import numpy as np

__all__ = ["TraceRecord", "Trace", "TraceKind"]


class TraceKind:
    """String constants for the record kinds emitted by the simulator."""

    ENERGY = "energy"  # stored energy snapshot: stored, capacity, harvest_power
    JOB_RELEASE = "job_release"
    JOB_START = "job_start"
    JOB_PREEMPT = "job_preempt"
    JOB_COMPLETE = "job_complete"
    JOB_MISS = "job_miss"
    FREQ_CHANGE = "freq_change"
    STALL = "stall"
    OVERFLOW = "overflow"

    ALL: tuple[str, ...] = (
        ENERGY,
        JOB_RELEASE,
        JOB_START,
        JOB_PREEMPT,
        JOB_COMPLETE,
        JOB_MISS,
        FREQ_CHANGE,
        STALL,
        OVERFLOW,
    )


@dataclass(frozen=True)
class TraceRecord:
    """One timestamped trace entry."""

    time: float
    kind: str
    fields: Mapping[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.fields[key]

    def get(self, key: str, default: Any = None) -> Any:
        return self.fields.get(key, default)


class Trace:
    """Append-only collection of :class:`TraceRecord` entries.

    A trace may restrict the kinds it stores (``kinds=...``) so that long
    simulations do not accumulate records the caller will never read.
    """

    def __init__(self, kinds: Optional[Iterable[str]] = None) -> None:
        self._records: list[TraceRecord] = []
        self._kinds: Optional[frozenset[str]] = (
            frozenset(kinds) if kinds is not None else None
        )

    # -- recording --------------------------------------------------------

    def accepts(self, kind: str) -> bool:
        """Whether records of ``kind`` are stored by this trace."""
        return self._kinds is None or kind in self._kinds

    def record(self, time: float, kind: str, **fields: Any) -> None:
        """Append a record (no-op when ``kind`` is filtered out)."""
        if not self.accepts(kind):
            return
        self._records.append(TraceRecord(time=time, kind=kind, fields=fields))

    # -- access -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def __getitem__(self, index: int) -> TraceRecord:
        return self._records[index]

    @property
    def records(self) -> Sequence[TraceRecord]:
        """All records, in emission order."""
        return tuple(self._records)

    def by_kind(self, kind: str) -> list[TraceRecord]:
        """All records of one kind, in emission order."""
        return [r for r in self._records if r.kind == kind]

    def filter(self, predicate: Callable[[TraceRecord], bool]) -> list[TraceRecord]:
        """Records satisfying an arbitrary predicate."""
        return [r for r in self._records if predicate(r)]

    def times(self, kind: Optional[str] = None) -> np.ndarray:
        """Timestamps of all records (optionally of one kind) as an array."""
        source = self._records if kind is None else self.by_kind(kind)
        return np.asarray([r.time for r in source], dtype=float)

    def series(self, kind: str, field_name: str) -> tuple[np.ndarray, np.ndarray]:
        """``(times, values)`` arrays for a numeric field of one kind.

        Records lacking the field are skipped.
        """
        times: list[float] = []
        values: list[float] = []
        for record in self.by_kind(kind):
            if field_name in record.fields:
                times.append(record.time)
                values.append(float(record.fields[field_name]))
        return np.asarray(times, dtype=float), np.asarray(values, dtype=float)

    def count(self, kind: str) -> int:
        """Number of records of one kind."""
        return sum(1 for r in self._records if r.kind == kind)

    def clear(self) -> None:
        """Drop all stored records (the kind filter is kept)."""
        self._records.clear()
