"""Discrete-event simulation layer.

:mod:`repro.sim.engine`
    A small, deterministic discrete-event kernel (event heap + clock).
:mod:`repro.sim.tracing`
    Typed trace recording for simulation runs.
:mod:`repro.sim.simulator`
    The energy-harvesting real-time system simulator that binds the energy
    subsystem, the CPU model and a scheduler together.
:mod:`repro.sim.watchdog`
    Opt-in invariant auditing (energy conservation, causality, stall
    progress) with structured diagnostics on abort.
"""

from repro.sim.engine import EventQueue, ScheduledEvent, SimulationClock
from repro.sim.schedule_view import (
    ExecutionInterval,
    render_gantt,
    schedule_intervals,
)
from repro.sim.simulator import (
    DeadlineMissPolicy,
    HarvestingRtSimulator,
    SimulationConfig,
    SimulationResult,
)
from repro.sim.tracing import Trace, TraceRecord
from repro.sim.watchdog import (
    SimulationDiagnostics,
    SimulationWatchdog,
    WatchdogError,
)

__all__ = [
    "DeadlineMissPolicy",
    "EventQueue",
    "ExecutionInterval",
    "HarvestingRtSimulator",
    "ScheduledEvent",
    "SimulationClock",
    "SimulationConfig",
    "SimulationDiagnostics",
    "SimulationResult",
    "SimulationWatchdog",
    "Trace",
    "TraceRecord",
    "WatchdogError",
    "render_gantt",
    "schedule_intervals",
]
