"""Pure EA-DVFS slow-down math (section 4, equations (5)-(12)).

Given a job with absolute deadline ``D``, remaining full-speed work ``w``,
the current time ``t`` and the available energy ``E = EC(t) + ÊS(t, D)``,
the paper computes:

* ``sr_n = E / P_n`` (eq. (5)) — how long the system can run at power
  ``P_n`` before depleting the available energy at ``D``;
* ``s1 = max(t, D - sr_n)`` (eq. (7)) — earliest start such that running
  at the *minimum feasible* level ``f_n`` never over-commits energy;
* ``sr_max = E / P_max`` (eq. (9)) and ``s2 = max(t, D - sr_max)``
  (eq. (8)) — the same for full speed.

``f_n`` is the slowest level satisfying inequality (6),
``w / S_n <= D - t`` — the stretched execution still fits in the window.
(The paper states the constraint at release time, ``a_m``/``w_m``; using
the current time and *remaining* work is the natural generalization that
makes the rule valid at re-dispatch after preemption, and coincides with
the paper's form when ``t = a_m``.)

The decision rule (section 4.3):

* ``s1 == s2`` — energy is sufficient; run at full speed (case (a));
* ``s1 < s2`` — energy is scarce; idle until ``s1``, run at ``f_n`` over
  ``[s1, s2)``, and at full speed after ``s2`` (case (b)); the early
  switch-up prevents the current job from "stealing excessive time from
  future tasks" (Figure 3).

Everything here is a pure function of its arguments — no simulator state —
so the motivational examples of the paper are directly checkable as unit
tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.cpu.dvfs import FrequencyLevel, FrequencyScale
from repro.timeutils import EPSILON, INFINITY

__all__ = ["SlowdownPlan", "minimum_feasible_level", "compute_plan"]


@dataclass(frozen=True)
class SlowdownPlan:
    """Result of the EA-DVFS per-job computation.

    Attributes
    ----------
    level:
        Level to run at first (``f_n``; equals full speed when energy is
        plentiful or no slower level fits the window).
    s1, s2:
        The paper's start times (eqs. (7), (8)); ``s1 <= s2`` always.
    start_at:
        When execution should begin (``max(now, s1)`` — equal to ``now``
        when energy suffices).
    switch_to_max_at:
        Instant to raise to full speed, or ``None`` when the plan already
        starts at full speed.
    sufficient_energy:
        The paper's case (a): available energy supports full-speed
        execution from ``now`` through the deadline.
    deadline_reachable:
        ``False`` when even full speed cannot finish the remaining work
        before the deadline — the job will miss regardless of energy.
    """

    level: FrequencyLevel
    s1: float
    s2: float
    start_at: float
    switch_to_max_at: Optional[float]
    sufficient_energy: bool
    deadline_reachable: bool


def minimum_feasible_level(
    scale: FrequencyScale,
    remaining_work: float,
    window: float,
) -> Optional[FrequencyLevel]:
    """Slowest level satisfying inequality (6) for the given window.

    Returns ``None`` when even full speed cannot finish in time.
    """
    return scale.min_feasible_level(remaining_work, window)


def compute_plan(
    now: float,
    deadline: float,
    remaining_work: float,
    available_energy: float,
    scale: FrequencyScale,
) -> SlowdownPlan:
    """Evaluate equations (5)-(9) and the section 4.3 decision rule.

    Parameters
    ----------
    now:
        Current time ``t`` (the paper's ``a_m`` when invoked at release).
    deadline:
        Absolute deadline ``D = a_m + d_m``.
    remaining_work:
        Outstanding full-speed execution time (``w_m`` at release).
    available_energy:
        ``EC(t) + ÊS(t, D)``; ``inf`` is allowed and reproduces the
        paper's infinite-storage special case (``s1 = s2 = t`` — plain
        EDF at full speed).
    scale:
        The processor's DVFS ladder.
    """
    if remaining_work < 0 or math.isnan(remaining_work):
        raise ValueError(f"remaining_work must be >= 0, got {remaining_work!r}")
    if available_energy < 0:
        available_energy = 0.0  # predictors are clamped, but be safe
    max_level = scale.max_level
    window = deadline - now

    level = scale.min_feasible_level(remaining_work, window)
    if level is None:
        # Inequality (6) fails even at full speed: the deadline cannot be
        # respected.  Report an immediate full-speed best-effort plan and
        # let the caller decide (the simulator records the miss at D).
        return SlowdownPlan(
            level=max_level,
            s1=now,
            s2=now,
            start_at=now,
            switch_to_max_at=None,
            sufficient_energy=False,
            deadline_reachable=False,
        )

    if math.isinf(available_energy):
        sr_n = INFINITY
        sr_max = INFINITY
    else:
        sr_n = available_energy / level.power
        sr_max = available_energy / max_level.power

    s1 = max(now, deadline - sr_n)
    s2 = max(now, deadline - sr_max)

    # Case (a): s1 == s2.  With a strictly slower feasible level this can
    # only happen when both collapse to ``now`` (sr_n >= sr_max >= window,
    # ineq. (12)) — energy is sufficient, run at full speed.  When the
    # minimum feasible level *is* full speed, s1 == s2 may sit in the
    # future; then there is nothing to slow down and the plan degenerates
    # to LSA's "wait until s2, run at full speed".
    if s2 - s1 <= EPSILON:
        sufficient = s2 - now <= EPSILON
        return SlowdownPlan(
            level=max_level,
            s1=s1,
            s2=s2,
            start_at=s2,
            switch_to_max_at=None,
            sufficient_energy=sufficient,
            deadline_reachable=True,
        )

    # Case (b): energy is nearly depleted — stretch.  Run at ``level``
    # from s1, and at full speed from s2 on (section 4.3's anti-starvation
    # switch-up).
    return SlowdownPlan(
        level=level,
        s1=s1,
        s2=s2,
        start_at=s1,
        switch_to_max_at=s2,
        sufficient_energy=False,
        deadline_reachable=True,
    )
