"""The EA-DVFS online scheduler (the algorithm of Figure 4).

Per scheduling point:

1. select the earliest-deadline ready job (EDF, preemptive);
2. evaluate the slow-down plan of :func:`repro.core.slowdown.compute_plan`
   with the available energy ``EC(t) + ÊS(t, D)``;
3. if ``s1 == s2`` run at full speed; otherwise idle until ``s1``, run at
   the minimum feasible level over ``[s1, s2)`` and at full speed after
   ``s2``.

Section 4.1's "no need to slow down when the storage is full" falls out of
the arithmetic — a full storage makes ``sr_n >= window`` for realistic
parameters — but the paper states it as an explicit rule, so the scheduler
also short-circuits to full speed whenever the storage is full
(``full_storage_fast_path``; switchable for ablation, the difference is
measurable only with tiny capacities).

With infinite stored energy every plan collapses to ``s1 = s2 = t``, so
the scheduler is *exactly* plain EDF at full speed — the section 4.3
special case, enforced by an equivalence test in the suite.
"""

from __future__ import annotations

import math
from typing import ClassVar

from repro.core.slowdown import compute_plan
from repro.cpu.dvfs import FrequencyScale
from repro.sched.base import Decision, EnergyOutlook, Scheduler
from repro.tasks.queue import EdfReadyQueue
from repro.timeutils import EPSILON, time_le

__all__ = ["EaDvfsScheduler"]


class EaDvfsScheduler(Scheduler):
    """Energy Aware DVFS — the paper's contribution.

    ``slowdown=False`` removes the stretch phase entirely: the job waits
    until ``s2`` and then runs at full speed.  That configuration is, by
    the paper's own construction (section 4.3 / eq. (8)), exactly the
    Lazy Scheduling Algorithm — the equivalence the ``repro.verify``
    degeneracy oracles assert schedule-for-schedule against
    :class:`~repro.sched.lsa.LazyScheduler`.
    """

    name: ClassVar[str] = "ea-dvfs"

    def __init__(
        self,
        scale: FrequencyScale,
        full_storage_fast_path: bool = True,
        slowdown: bool = True,
    ) -> None:
        super().__init__(scale)
        self._full_storage_fast_path = bool(full_storage_fast_path)
        self._slowdown = bool(slowdown)
        if not self._slowdown:
            # Instance-level shadow of the class attribute so results and
            # registries can tell the degenerate policy apart.
            self.name = "ea-dvfs-noslowdown"

    @property
    def full_storage_fast_path(self) -> bool:
        """Whether a full storage forces full speed (section 4.1)."""
        return self._full_storage_fast_path

    @property
    def slowdown(self) -> bool:
        """Whether the ``[s1, s2)`` stretch phase is enabled."""
        return self._slowdown

    def decide(
        self,
        now: float,
        ready: EdfReadyQueue,
        outlook: EnergyOutlook,
    ) -> Decision:
        job = ready.peek()
        if job is None:
            return Decision.idle()

        if not self._slowdown:
            return self._decide_no_slowdown(now, job, outlook)

        if self._full_storage_fast_path and outlook.storage_is_full:
            # Section 4.1: a full storage cannot absorb saved energy, so
            # slowing down would only discard harvest. Run flat out.
            return Decision.run(job, self._scale.max_level)

        available = outlook.available_until(now, job.absolute_deadline)
        plan = compute_plan(
            now=now,
            deadline=job.absolute_deadline,
            remaining_work=job.remaining_work,
            available_energy=available,
            scale=self._scale,
        )

        if not plan.deadline_reachable:
            # Ineq. (6) fails even at full speed: best effort at f_max;
            # the simulator records the miss when the deadline passes.
            return Decision.run(job, self._scale.max_level)

        if plan.start_at > now + EPSILON:
            # Energy budget says: do not start before s1 (case (b)) or s2
            # (degenerate case with no slower feasible level). Waking at
            # the computed instant re-evaluates with fresh energy state.
            return Decision.idle(reconsider_at=plan.start_at)

        if plan.switch_to_max_at is None:
            return Decision.run(job, plan.level)
        if time_le(plan.switch_to_max_at, now, eps=1e-6):
            # The slow phase would be vanishingly short — skip straight to
            # full speed rather than scheduling a degenerate switch.
            return Decision.run(job, self._scale.max_level)
        return Decision.run(job, plan.level, switch_to_max_at=plan.switch_to_max_at)

    def _decide_no_slowdown(
        self, now: float, job, outlook: EnergyOutlook
    ) -> Decision:
        """The ``s2`` rule alone: wait until full speed is sustainable.

        Uses the plan's ``s2`` (eq. (8)) when the deadline is reachable,
        so the verify-tier differential tests genuinely exercise
        :func:`~repro.core.slowdown.compute_plan` against the independent
        LSA implementation.  The full-storage fast path is skipped: it is
        a rule about when *not* to slow down, which is moot here, and
        applying it would start earlier than ``s2`` when a small full
        storage still cannot sustain full speed through the deadline.
        """
        max_level = self._scale.max_level
        available = outlook.available_until(now, job.absolute_deadline)
        plan = compute_plan(
            now=now,
            deadline=job.absolute_deadline,
            remaining_work=job.remaining_work,
            available_energy=available,
            scale=self._scale,
        )
        if plan.deadline_reachable:
            start = plan.s2
        elif math.isinf(available):
            start = now
        else:
            # The unreachable-deadline plan pins s2 = now (best effort at
            # full speed); the lazy rule still defers to the genuine
            # eq. (8) instant.
            start = max(now, job.absolute_deadline - available / max_level.power)
        if start > now + EPSILON:
            return Decision.idle(reconsider_at=start)
        return Decision.run(job, max_level)

    def __repr__(self) -> str:
        return (
            f"EaDvfsScheduler(scale={self._scale!r}, "
            f"full_storage_fast_path={self._full_storage_fast_path}, "
            f"slowdown={self._slowdown})"
        )
