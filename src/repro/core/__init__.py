"""The paper's primary contribution: the EA-DVFS scheduling algorithm.

:mod:`repro.core.slowdown` holds the pure per-job computations of section
4 (equations (5)-(9): run-time budgets ``sr_n``/``sr_max`` and start times
``s1``/``s2``); :mod:`repro.core.ea_dvfs` wires them into the online
scheduler of Figure 4.
"""

from repro.core.ea_dvfs import EaDvfsScheduler
from repro.core.slowdown import SlowdownPlan, compute_plan, minimum_feasible_level

__all__ = ["EaDvfsScheduler", "SlowdownPlan", "compute_plan", "minimum_feasible_level"]
