"""Command-line interface.

``repro list``
    Show the available experiments and schedulers.
``repro run <experiment>``
    Regenerate one paper figure/table and print it (set ``REPRO_SCALE``
    to raise the replication count).
``repro quick [options]``
    One ad-hoc simulation with printed summary; optional JSON/CSV export
    and an ASCII Gantt chart of the executed schedule.
``repro feasibility [options]``
    Offline analysis of a generated workload: EDF schedulability, the
    long-run energy balance, and a storage-capacity lower bound.
``repro verify [options]``
    Differential sweep of the ``repro.verify`` oracle battery over N
    seeded random scenarios; exits non-zero on any discrepancy.
``repro lint [paths]``
    Domain-aware static analysis (determinism, tolerant-comparison,
    flow-aware quantity-unit, API-contract, float-determinism/parity
    rules); exits non-zero on any finding.  ``--baseline`` /
    ``--update-baseline`` turn it into a ratchet gate, ``--format
    sarif`` emits SARIF 2.1.0 for review UIs, ``--format github`` emits
    inline PR annotations, ``--fix`` applies the safe mechanical
    rewrites (including stripping stale suppressions), and
    ``--fail-on-stale`` gates on leftover suppressions.
``repro sweep [options]``
    Resumable grid sweep through the crash-consistent runtime
    (:mod:`repro.runtime`): with ``--journal PATH`` every finished cell
    is durably checkpointed and already-journaled cells are skipped, so
    a killed sweep reruns to the identical result set.
``repro journal inspect|export PATH``
    Examine a result journal (record counts, torn-tail recovery) or
    export its result set as canonical JSON.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional, Sequence

from repro.experiments import EXPERIMENTS, run_experiment, scale_factor
from repro.experiments.common import PaperSetup
from repro.sched.registry import available_schedulers

__all__ = ["main", "build_parser"]

_PREDICTOR_CHOICES = ("profile", "oracle", "mean", "last-value")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Energy Aware Dynamic Voltage and Frequency "
            "Selection for Real-Time Systems with Energy Harvesting' "
            "(DATE 2008)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments and schedulers")

    run = sub.add_parser("run", help="regenerate a paper figure/table")
    run.add_argument("experiment", choices=sorted(EXPERIMENTS))

    quick = sub.add_parser("quick", help="run one ad-hoc simulation")
    quick.add_argument(
        "--scheduler", default="ea-dvfs", choices=available_schedulers()
    )
    quick.add_argument("--utilization", type=float, default=0.4)
    quick.add_argument("--capacity", type=float, default=200.0)
    quick.add_argument("--seed", type=int, default=0)
    quick.add_argument("--horizon", type=float, default=10_000.0)
    quick.add_argument(
        "--predictor", default="profile", choices=_PREDICTOR_CHOICES
    )
    quick.add_argument(
        "--json", metavar="PATH", default=None,
        help="write the full result as JSON",
    )
    quick.add_argument(
        "--trace-csv", metavar="PATH", default=None,
        help="write the recorded trace as CSV (implies tracing)",
    )
    quick.add_argument(
        "--gantt", action="store_true",
        help="print an ASCII Gantt chart of the executed schedule "
        "(best for short horizons)",
    )
    quick.add_argument(
        "--gantt-until", type=float, default=None,
        help="right edge of the Gantt window (default: the horizon)",
    )

    feas = sub.add_parser(
        "feasibility", help="offline schedulability / energy analysis"
    )
    feas.add_argument("--utilization", type=float, default=0.4)
    feas.add_argument("--seed", type=int, default=0)
    feas.add_argument("--n-tasks", type=int, default=5)
    feas.add_argument("--deficit-horizon", type=float, default=10_000.0)

    verify = sub.add_parser(
        "verify",
        help="differential-test the schedulers against analytic oracles",
    )
    verify.add_argument(
        "--n", type=int, default=100,
        help="number of random scenarios to check (default 100)",
    )
    verify.add_argument(
        "--seed", type=int, default=0,
        help="base seed; scenario i uses seed+i (default 0)",
    )
    verify.add_argument(
        "--no-faults", action="store_true",
        help="restrict the sweep to fault-free scenarios",
    )
    verify.add_argument(
        "--quiet", action="store_true",
        help="suppress the live progress counter",
    )
    verify.add_argument(
        "--batch", action="store_true",
        help="differentially check the vectorized batch engine against "
        "the scalar simulator instead of the oracle battery",
    )

    lint = sub.add_parser(
        "lint",
        help="domain-aware static analysis of the source tree",
    )
    lint.add_argument(
        "paths", nargs="*",
        default=["src", "benchmarks", "examples", "tests"],
        help="files/directories to lint "
        "(default: src benchmarks examples tests)",
    )
    lint.add_argument(
        "--format", dest="output_format", default="text",
        choices=("text", "json", "sarif", "github"),
        help="diagnostic output format (default text; `github` emits "
        "workflow-command annotations for inline PR review)",
    )
    lint.add_argument(
        "--baseline", metavar="PATH",
        help="compare findings against a baseline file; fail only on "
        "new findings or suppression-count growth",
    )
    lint.add_argument(
        "--update-baseline", action="store_true",
        help="write the current findings to the --baseline file and exit",
    )
    lint.add_argument(
        "--fix", action="store_true",
        help="apply the safe auto-fixes (including stripping stale "
        "suppressions), then re-run the analysis",
    )
    lint.add_argument(
        "--fail-on-stale", action="store_true",
        help="exit non-zero when any suppression matches no finding "
        "(stale notes are informational by default)",
    )
    lint.add_argument(
        "--list-rules", action="store_true",
        help="list the registered rule codes and exit",
    )
    lint.add_argument(
        "--list-fixers", action="store_true",
        help="list the registered fixers (and their safety) and exit",
    )
    lint.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="fan per-module rules out over N worker processes "
        "(finding order stays deterministic; default 1)",
    )
    lint.add_argument(
        "--certify", action="store_true",
        help="print the purity certification report for the "
        "purity-roots.toml hash-closure roots and exit",
    )
    lint.add_argument(
        "--explain-path", metavar="CODE:FUNC",
        help="print the call chain from a hash-closure root to the "
        "taint a RPR50x code flags, e.g. "
        "RPR501:repro/runtime/journal.py::spec_hash",
    )

    sweep = sub.add_parser(
        "sweep",
        help="resumable grid sweep with durable result journaling",
    )
    sweep.add_argument(
        "--scheduler", action="append", default=None,
        choices=available_schedulers(), dest="schedulers",
        help="scheduler(s) to sweep (repeatable; default: lsa, ea-dvfs)",
    )
    sweep.add_argument("--utilization", type=float, default=0.4)
    sweep.add_argument(
        "--capacities", default="50,100,200",
        help="comma-separated storage capacities (default 50,100,200)",
    )
    sweep.add_argument(
        "--seeds", type=int, default=4,
        help="task-set seeds per cell: 0..N-1 (default 4)",
    )
    sweep.add_argument(
        "--horizon", type=float, default=10_000.0,
        help="simulation horizon per cell (default 10000)",
    )
    sweep.add_argument(
        "--journal", metavar="PATH", default=None,
        help="journal file for checkpoint/resume (default: $REPRO_JOURNAL)",
    )
    sweep.add_argument(
        "--export", metavar="PATH", default=None,
        help="write the full result set as canonical JSON",
    )
    sweep.add_argument("--workers", type=int, default=None)
    sweep.add_argument(
        "--engine", default=None, choices=("scalar", "batch"),
        help="execution engine: scalar event simulator or the vectorized "
        "batch core with scalar fallback (default: $REPRO_ENGINE or "
        "scalar)",
    )
    sweep.add_argument(
        "--predictor", default="profile", choices=_PREDICTOR_CHOICES,
        help="harvest predictor (default profile; every kind is "
        "vectorized, so the batch engine never falls back on it)",
    )
    sweep.add_argument(
        "--timeout", type=float, default=None,
        help="per-cell timeout in seconds (pooled runs only)",
    )
    sweep.add_argument("--retries", type=int, default=1)
    sweep.add_argument("--backoff", type=float, default=0.5)
    sweep.add_argument(
        "--jitter", type=float, default=0.1,
        help="relative seeded backoff jitter (default 0.1)",
    )
    sweep.add_argument(
        "--retry-seed", type=int, default=0,
        help="seed of the retry schedule (backoff jitter + ordering)",
    )
    sweep.add_argument(
        "--quarantine-after", type=int, default=3,
        help="cumulative attempts before a cell is quarantined (default 3)",
    )
    sweep.add_argument(
        "--max-wall-clock", type=float, default=None,
        help="stop launching new batches after this many seconds; "
        "finished cells stay journaled",
    )
    sweep.add_argument(
        "--max-rss-mb", type=float, default=None,
        help="stop launching new batches once RSS exceeds this (MiB)",
    )
    sweep.add_argument(
        "--chaos-kill-record", type=int, default=None,
        help="CHAOS HARNESS: SIGKILL this process at the Nth journal "
        "append (requires --journal)",
    )
    sweep.add_argument(
        "--chaos-kill-mode", default="before",
        choices=("before", "torn", "after"),
        help="CHAOS HARNESS: kill before the record, after half of it "
        "(torn write), or after the full record (default before)",
    )

    journal = sub.add_parser(
        "journal", help="inspect or export a sweep result journal"
    )
    journal_sub = journal.add_subparsers(dest="journal_command", required=True)
    inspect = journal_sub.add_parser(
        "inspect", help="print record counts and recovery info"
    )
    inspect.add_argument("path")
    inspect.add_argument(
        "--keys", action="store_true",
        help="also list every journaled key",
    )
    export = journal_sub.add_parser(
        "export", help="dump the journal's result set as canonical JSON"
    )
    export.add_argument("path")
    export.add_argument(
        "--out", metavar="PATH", default=None,
        help="write to a file (atomic) instead of stdout",
    )
    return parser


def _cmd_list() -> int:
    print("experiments:")
    for name in sorted(EXPERIMENTS):
        print(f"  {name}")
    print("schedulers:")
    for name in available_schedulers():
        print(f"  {name}")
    print(f"replication scale (REPRO_SCALE): {scale_factor():g}")
    return 0


def _cmd_run(experiment: str) -> int:
    started = time.perf_counter()
    result = run_experiment(experiment)
    elapsed = time.perf_counter() - started
    print(result.format_text())
    print(f"[{experiment} completed in {elapsed:.1f}s at scale "
          f"{scale_factor():g}]")
    return 0


def _cmd_quick(args: argparse.Namespace) -> int:
    from repro.sim.tracing import TraceKind

    setup = PaperSetup(horizon=args.horizon, predictor_kind=args.predictor)
    needs_schedule_trace = args.gantt or args.trace_csv is not None

    if needs_schedule_trace:
        # Rebuild the run by hand so the schedule kinds get traced.
        from repro.energy.storage import IdealStorage
        from repro.sched.registry import make_scheduler
        from repro.sim.simulator import (
            HarvestingRtSimulator,
            SimulationConfig,
        )

        scale = setup.scale()
        source = setup.source(args.seed)
        simulator = HarvestingRtSimulator(
            taskset=setup.taskset(args.seed, args.utilization),
            source=source,
            storage=IdealStorage(capacity=args.capacity),
            scheduler=make_scheduler(args.scheduler, scale),
            predictor=setup.predictor(source),
            config=SimulationConfig(
                horizon=args.horizon,
                trace_kinds=(
                    TraceKind.JOB_START,
                    TraceKind.JOB_PREEMPT,
                    TraceKind.JOB_COMPLETE,
                    TraceKind.JOB_MISS,
                    TraceKind.FREQ_CHANGE,
                    TraceKind.STALL,
                ),
            ),
        )
        result = simulator.run()
    else:
        result = setup.run(
            scheduler_name=args.scheduler,
            utilization=args.utilization,
            capacity=args.capacity,
            seed=args.seed,
        )

    print(result.summary())

    if args.gantt:
        from repro.sim.schedule_view import render_gantt

        until = args.gantt_until if args.gantt_until else args.horizon
        print()
        print(render_gantt(result.trace, t0=0.0, t1=until))
    if args.json:
        from repro.serialization import save_result_json

        save_result_json(result, args.json)
        print(f"result written to {args.json}")
    if args.trace_csv:
        from repro.serialization import trace_to_csv

        rows = trace_to_csv(result.trace, args.trace_csv)
        print(f"{rows} trace records written to {args.trace_csv}")
    return 0


def _cmd_feasibility(args: argparse.Namespace) -> int:
    from repro.analysis.schedulability import (
        edf_schedulable,
        energy_feasibility,
        max_energy_deficit,
    )

    setup = PaperSetup()
    scale = setup.scale()
    source = setup.source(args.seed)
    taskset = PaperSetup(n_tasks=args.n_tasks).taskset(
        args.seed, args.utilization
    )

    print(f"workload: {taskset}")
    for task in taskset:
        print(
            f"  {task.name}: period={task.period:g} "
            f"wcet={task.wcet:.3f} (u={task.utilization:.3f})"
        )
    print(f"\nEDF schedulable (timing): {edf_schedulable(taskset)}")

    fx = energy_feasibility(taskset, source, scale)
    print(
        f"energy balance: harvest mean {fx.mean_harvest_power:.3f}, "
        f"full-speed demand {fx.full_speed_demand:.3f}, "
        f"stretched lower bound {fx.min_demand:.3f}"
    )
    print(f"  sustainable at full speed: {fx.feasible_at_full_speed}")
    print(f"  sustainable with DVFS:     {fx.feasible_with_dvfs}")

    deficit = max_energy_deficit(
        source, fx.full_speed_demand, args.deficit_horizon
    )
    print(
        f"storage lower bound (max harvest deficit at full-speed demand "
        f"over {args.deficit_horizon:g} units): {deficit:.1f}"
    )
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.verify import run_differential
    from repro.verify.batch_equivalence import run_batch_equivalence

    if args.n < 1:
        print(f"error: --n must be >= 1, got {args.n}", file=sys.stderr)
        return 2

    def progress(done: int, total: int) -> None:
        print(f"\rscenario {done}/{total}", end="", file=sys.stderr,
              flush=True)
        if done == total:
            print(file=sys.stderr)

    battery = run_batch_equivalence if args.batch else run_differential
    started = time.perf_counter()
    report = battery(
        n=args.n,
        seed=args.seed,
        allow_faults=not args.no_faults,
        progress=None if args.quiet else progress,
    )
    elapsed = time.perf_counter() - started
    print(report.format_text())
    print(f"[verify completed in {elapsed:.1f}s]")
    return 0 if report.ok else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    # Exit-code contract matches `repro verify`: 0 clean, 1 findings,
    # 2 internal/usage errors.
    import json

    from repro.lint import (
        Baseline,
        LintError,
        all_rules,
        apply_fixes,
        lint_paths,
        to_sarif,
    )
    from repro.lint.fixers import all_fixers

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.code}  {rule.name}")
            print(f"        {rule.description}")
        return 0
    if args.list_fixers:
        for fixer in all_fixers():
            safety = "safe" if fixer.safe else "UNSAFE (never auto-applied)"
            print(f"{fixer.name}  [{', '.join(sorted(fixer.codes))}] {safety}")
            print(f"        {fixer.description}")
        return 0
    if args.update_baseline and not args.baseline:
        print("error: --update-baseline requires --baseline PATH",
              file=sys.stderr)
        return 2
    if args.certify or args.explain_path:
        from repro.lint.purity import certify_cli, explain_cli

        try:
            if args.explain_path:
                return explain_cli(args.explain_path, args.paths)
            return certify_cli(args.paths)
        except LintError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    try:
        if args.fix:
            outcome = apply_fixes(args.paths)
            for path in outcome.files_skipped:
                print(f"skipped (would not re-parse): {path}",
                      file=sys.stderr)
            print(
                f"applied {outcome.edits_applied} fix(es) in "
                f"{len(outcome.files_changed)} file(s)"
            )
            assert outcome.report_after is not None
            report = outcome.report_after
        else:
            report = lint_paths(args.paths, jobs=args.jobs)
        if args.update_baseline:
            Baseline.from_report(report).save(args.baseline)
            print(
                f"wrote baseline {args.baseline}: "
                f"{len(report.diagnostics)} finding(s), "
                f"{report.suppression_count} suppression(s)"
            )
            return 0
        comparison = None
        if args.baseline:
            comparison = Baseline.load(args.baseline).compare(report)
    except LintError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.output_format == "json":
        print(report.to_json())
    elif args.output_format == "sarif":
        print(json.dumps(to_sarif(report), indent=2, sort_keys=True))
    elif args.output_format == "github":
        rendered = report.format_github()
        if rendered:
            print(rendered)
    else:
        print(report.format_text())
    stale_failure = bool(args.fail_on_stale and report.stale_suppressions)
    if stale_failure and args.output_format in ("text", "github"):
        print(
            f"{len(report.stale_suppressions)} stale suppression(s) "
            "with --fail-on-stale; strip them with `repro lint --fix`",
            file=sys.stderr,
        )
    if comparison is not None:
        print()
        print(comparison.format_text())
        return 0 if comparison.ok and not stale_failure else 1
    return 0 if report.ok and not stale_failure else 1


def _cmd_sweep(args: argparse.Namespace) -> int:
    import os

    from repro.analysis.parallel import RunFailure, RunSpec
    from repro.runtime import (
        ResultJournal,
        SupervisorPolicy,
        run_supervised,
    )
    from repro.runtime.sweep import JOURNAL_ENV, engine_from_env

    try:
        capacities = [float(c) for c in args.capacities.split(",") if c]
    except ValueError:
        print(f"error: bad --capacities {args.capacities!r}", file=sys.stderr)
        return 2
    if not capacities or args.seeds < 1:
        print("error: need at least one capacity and one seed",
              file=sys.stderr)
        return 2
    schedulers = tuple(args.schedulers or ("lsa", "ea-dvfs"))
    setup = PaperSetup(horizon=args.horizon, predictor_kind=args.predictor)
    specs = [
        RunSpec(
            scheduler_name=name,
            utilization=args.utilization,
            capacity=capacity,
            seed=seed,
            setup=setup,
        )
        for capacity in capacities
        for name in schedulers
        for seed in range(args.seeds)
    ]

    journal_path = args.journal or os.environ.get(JOURNAL_ENV)
    if args.chaos_kill_record is not None and journal_path is None:
        print("error: --chaos-kill-record requires --journal",
              file=sys.stderr)
        return 2
    journal = None
    if journal_path is not None:
        if args.chaos_kill_record is not None:
            from repro.faults.chaos import ChaosJournal

            journal = ChaosJournal(
                journal_path,
                kill_record=args.chaos_kill_record,
                kill_mode=args.chaos_kill_mode,
            )
        else:
            journal = ResultJournal(journal_path)

    try:
        policy = SupervisorPolicy(
            timeout=args.timeout,
            retries=args.retries,
            backoff=args.backoff,
            jitter=args.jitter,
            seed=args.retry_seed,
            quarantine_after=args.quarantine_after,
            max_wall_clock=args.max_wall_clock,
            max_rss_mb=args.max_rss_mb,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    try:
        engine = args.engine or engine_from_env()
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    try:
        report = run_supervised(
            specs,
            policy=policy,
            journal=journal,
            max_workers=args.workers,
            engine=engine,
        )
    finally:
        if journal is not None:
            journal.close()
    print(report.format_text())

    if args.export:
        from repro.runtime.journal import (
            journal_key,
            result_to_payload,
        )
        from repro.serialization import atomic_write_text, canonical_json

        payload = {}
        for spec, outcome in zip(specs, report.outcomes):
            if outcome is None:
                continue
            key = journal_key(spec).text()
            if isinstance(outcome, RunFailure):
                payload[key] = {"kind": "failure",
                                "error_type": outcome.error_type}
            else:
                payload[key] = {"kind": "result",
                                "payload": result_to_payload(outcome)}
        atomic_write_text(args.export, canonical_json(payload))
        print(f"result set written to {args.export}")
    return 0 if report.ok else 1


def _cmd_journal(args: argparse.Namespace) -> int:
    from repro.runtime import JournalError, ResultJournal
    from repro.serialization import atomic_write_text, canonical_json

    try:
        journal = ResultJournal(args.path, create=False)
    except (JournalError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        if args.journal_command == "inspect":
            print(journal.info().format_text())
            if args.keys:
                for record in journal.records():
                    key = record["key"]
                    print(
                        f"  [{record['kind']:7s}] {key['spec_hash'][:16]}… "
                        f"{key['scheduler_name']} e{key['engine_version']}"
                    )
            return 0
        text = canonical_json(journal.to_canonical())
        if args.out:
            atomic_write_text(args.out, text)
            print(f"exported {len(journal)} record(s) to {args.out}")
        else:
            print(text, end="")
        return 0
    finally:
        journal.close()


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args.experiment)
    if args.command == "quick":
        return _cmd_quick(args)
    if args.command == "feasibility":
        return _cmd_feasibility(args)
    if args.command == "verify":
        return _cmd_verify(args)
    if args.command == "lint":
        return _cmd_lint(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "journal":
        return _cmd_journal(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
