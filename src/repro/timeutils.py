"""Numeric helpers for simulated-time arithmetic.

The simulator advances time with floating-point arithmetic.  Event times are
frequently derived from one another (e.g. a completion time computed from a
remaining-work division), so naive ``==`` / ``<`` comparisons are brittle.
Every time comparison in the library goes through the helpers below, which
use a single absolute tolerance :data:`EPSILON`.

All simulated quantities (time, energy, work) are plain ``float`` in
consistent abstract units; the tolerance is absolute because experiment
horizons are ~1e4 time units and energies ~1e4 energy units, far below the
range where float64 absolute error approaches 1e-9.
"""

from __future__ import annotations

import math
from typing import TypeAlias

#: Dimension-documenting aliases for plain ``float`` quantities.  They
#: change nothing at runtime or for mypy, but the static analyzer
#: (``repro.lint.dataflow``) reads them: annotating a parameter or return
#: value as ``Seconds``/``Joules``/``Watts``/``Scalar`` seeds its
#: dimension even when the identifier itself is outside the naming
#: vocabulary.
Seconds: TypeAlias = float
Joules: TypeAlias = float
Watts: TypeAlias = float
Scalar: TypeAlias = float

#: Absolute tolerance used for all simulated-time and energy comparisons.
EPSILON: float = 1e-9

#: Sentinel for "never" / unbounded horizons.  ``math.inf`` is used directly
#: so that ordinary arithmetic and comparisons keep working.
INFINITY: float = math.inf


def time_cmp(a: float, b: float, eps: float = EPSILON) -> int:
    """Three-way tolerant comparison: ``-1`` / ``0`` / ``+1``.

    All five predicates below derive from this single function so the
    tolerance is applied to one rounding of ``a - b``.  Expressions like
    ``a > b + eps`` round ``b + eps`` and ``a - b`` differently, which
    lets two predicates hold at once near the tolerance boundary (e.g.
    ``b = -eps``, ``a`` denormal: ``b + eps`` is exactly ``0.0`` while
    ``a - b`` is exactly ``eps``) — breaking trichotomy.
    """
    if a == b:  # covers +inf == +inf, exact hits
        return 0
    diff = a - b
    if abs(diff) <= eps:
        return 0
    return -1 if diff < 0.0 else 1


def time_eq(a: float, b: float, eps: float = EPSILON) -> bool:
    """Return ``True`` when two instants coincide within tolerance."""
    return time_cmp(a, b, eps) == 0


def time_lt(a: float, b: float, eps: float = EPSILON) -> bool:
    """Return ``True`` when ``a`` is strictly before ``b`` (beyond tolerance)."""
    return time_cmp(a, b, eps) < 0


def time_le(a: float, b: float, eps: float = EPSILON) -> bool:
    """Return ``True`` when ``a`` is before or at ``b`` within tolerance."""
    return time_cmp(a, b, eps) <= 0


def time_gt(a: float, b: float, eps: float = EPSILON) -> bool:
    """Return ``True`` when ``a`` is strictly after ``b`` (beyond tolerance)."""
    return time_cmp(a, b, eps) > 0


def time_ge(a: float, b: float, eps: float = EPSILON) -> bool:
    """Return ``True`` when ``a`` is at or after ``b`` within tolerance."""
    return time_cmp(a, b, eps) >= 0


def clamp(value: float, low: float, high: float) -> float:
    """Clamp ``value`` into the closed interval ``[low, high]``.

    Raises :class:`ValueError` when the interval is empty (``low > high``).
    """
    if low > high:
        raise ValueError(f"empty clamp interval: [{low}, {high}]")
    return max(low, min(high, value))


def snap_nonnegative(value: float, eps: float = EPSILON) -> float:
    """Round tiny negative float noise up to exactly ``0.0``.

    Values below ``-eps`` are genuine negatives and raise
    :class:`ValueError`; they indicate an accounting bug, not float noise.
    """
    if value >= 0.0:
        return value
    if value >= -eps:
        return 0.0
    raise ValueError(f"value {value!r} is negative beyond tolerance {eps!r}")


def is_finite(value: float) -> bool:
    """Return ``True`` for ordinary finite floats (not inf / nan)."""
    return math.isfinite(value)


def validate_interval(t0: float, t1: float) -> None:
    """Raise :class:`ValueError` unless ``[t0, t1]`` is a valid interval.

    ``t1`` may equal ``t0`` (empty interval) and may be ``+inf``; ``t0``
    must be finite.
    """
    if not math.isfinite(t0):
        raise ValueError(f"interval start must be finite, got {t0!r}")
    if math.isnan(t1):
        raise ValueError("interval end is NaN")
    if t1 < t0:  # repro-lint: disable=RPR102 -- validation is exact by design
        raise ValueError(f"interval end {t1!r} precedes start {t0!r}")
