"""Persistence of simulation results and traces.

Long sweeps are expensive; this module lets the harness (and downstream
users) persist what a run produced without pickling live objects:

* :func:`result_to_dict` / :func:`save_result_json` — a JSON-safe
  summary of a :class:`~repro.sim.simulator.SimulationResult` (metrics
  and per-job records; the trace is exported separately);
* :func:`trace_to_csv` / :func:`load_trace_csv` — flat CSV round-trip of
  a :class:`~repro.sim.tracing.Trace`;
* :func:`jobs_to_csv` — per-job table (release, deadline, completion,
  energy) for external analysis;
* :func:`canonical_value` / :func:`canonical_json` — byte-stable
  canonical JSON (sorted keys, normalized floats) used by the
  golden-trace regression store and the determinism tests in
  :mod:`repro.verify`;
* :func:`atomic_write_text` — crash-safe write-replace used wherever a
  reader must never observe a half-written file (golden fixtures, lint
  baselines, exported sweep results).

Everything is plain ``json``/``csv`` from the standard library — no
extra dependencies, stable on-disk formats.
"""

from __future__ import annotations

import csv
import io
import json
import math
import os
from pathlib import Path
from typing import Any, Union

from repro.sim.simulator import SimulationResult
from repro.sim.tracing import Trace
from repro.tasks.job import Job

__all__ = [
    "atomic_write_text",
    "canonical_json",
    "canonical_value",
    "jobs_to_csv",
    "load_trace_csv",
    "result_to_dict",
    "save_result_json",
    "trace_to_csv",
]

PathLike = Union[str, Path]


def atomic_write_text(path: PathLike, text: str,
                      encoding: str = "utf-8",
                      newline: str | None = None) -> None:
    """Write ``text`` to ``path`` so readers see the old or the new file.

    The payload goes to a sibling temporary file first (same directory,
    so the final ``os.replace`` stays within one filesystem), is flushed
    and fsync'd, and only then renamed over the destination.  A crash at
    any point leaves either the previous content or the complete new
    content — never a torn file.  The temporary is cleaned up on error.

    ``newline`` forwards to :func:`open`; CSV writers pass ``""`` so the
    ``\\r\\n`` line endings :mod:`csv` emits survive untranslated, same
    as a direct ``open(path, "w", newline="")``.
    """
    target = Path(path)
    tmp = target.with_name(target.name + ".tmp")
    try:
        with open(tmp, "w", encoding=encoding, newline=newline) as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, target)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _json_safe(value: Any) -> Any:
    """Coerce numpy scalars and non-finite floats into JSON-safe values."""
    if isinstance(value, float):
        if math.isnan(value):
            return None
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
        return value
    if hasattr(value, "item"):  # numpy scalar
        return _json_safe(value.item())
    return value


def canonical_value(value: Any, float_digits: int = 10) -> Any:
    """Recursively normalize a payload for byte-stable serialization.

    Floats are rounded to ``float_digits`` significant digits (enough to
    distinguish genuine numeric regressions, short enough to absorb
    last-bit noise across library versions), non-finite floats follow the
    :func:`_json_safe` convention, numpy scalars are unwrapped, tuples
    become lists, and mapping keys are coerced to sorted strings.
    """
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, float):
        if math.isnan(value) or math.isinf(value):
            return _json_safe(value)
        if value == 0.0:
            return 0.0  # normalize -0.0
        return float(f"{value:.{float_digits}g}")
    if isinstance(value, int):
        return value
    if hasattr(value, "tolist"):  # numpy array or scalar
        return canonical_value(value.tolist(), float_digits)
    if hasattr(value, "item"):  # other zero-dim numpy-likes
        return canonical_value(value.item(), float_digits)
    if isinstance(value, dict):
        return {
            str(key): canonical_value(value[key], float_digits)
            for key in sorted(value, key=str)
        }
    if isinstance(value, (list, tuple)):
        return [canonical_value(item, float_digits) for item in value]
    if isinstance(value, str):
        return value
    raise TypeError(
        f"cannot canonicalize {type(value).__name__!r} value {value!r}"
    )


def canonical_json(payload: Any, float_digits: int = 10) -> str:
    """Deterministic JSON text of :func:`canonical_value` (newline-terminated).

    Two payloads produce identical bytes iff their canonical forms are
    equal — the comparison primitive of the golden-trace store and the
    determinism tests.
    """
    return (
        json.dumps(
            canonical_value(payload, float_digits),
            indent=2,
            sort_keys=True,
            ensure_ascii=False,
        )
        + "\n"
    )


def _job_record(job: Job) -> dict[str, Any]:
    return {
        "name": job.name,
        "task": job.task.name,
        "release": job.release,
        "absolute_deadline": job.absolute_deadline,
        "wcet": job.wcet,
        "actual_work": job.actual_work,
        "state": job.state.value,
        "first_start_time": job.first_start_time,
        "completion_time": job.completion_time,
        "energy_consumed": job.energy_consumed,
        "remaining_work": job.remaining_actual_work,
    }


def result_to_dict(result: SimulationResult) -> dict[str, Any]:
    """JSON-safe dictionary of a simulation result (without the trace)."""
    return {
        "scheduler": result.scheduler_name,
        "horizon": result.horizon,
        "metrics": {
            "released": result.released_count,
            "completed": result.completed_count,
            "missed": result.missed_count,
            "judged": result.judged_count,
            "miss_rate": result.miss_rate,
            "harvested_energy": result.harvested_energy,
            "drawn_energy": result.drawn_energy,
            "overflow_energy": result.overflow_energy,
            "leaked_energy": result.leaked_energy,
            "final_stored": result.final_stored,
            "storage_capacity": _json_safe(result.storage_capacity),
            "idle_time": result.idle_time,
            "switch_count": result.switch_count,
            "stall_count": result.stall_count,
            "stall_time": result.stall_time,
        },
        "busy_time_profile": {
            f"{speed:g}": time
            for speed, time in sorted(result.busy_time_profile.items())
        },
        "per_task": {
            name: {
                "released": released,
                "missed": result.per_task_missed.get(name, 0),
            }
            for name, released in sorted(result.per_task_released.items())
        },
        "jobs": [_job_record(job) for job in result.jobs],
    }


def save_result_json(result: SimulationResult, path: PathLike) -> None:
    """Write :func:`result_to_dict` to ``path`` as pretty-printed JSON."""
    payload = result_to_dict(result)
    atomic_write_text(
        path, json.dumps(payload, indent=2, default=_json_safe)
    )


#: Columns of the trace CSV format (stable order).
_TRACE_COLUMNS = ("time", "kind", "fields")


def trace_to_csv(trace: Trace, path: PathLike) -> int:
    """Write a trace to CSV; returns the number of records written.

    Each row is ``time, kind, <json-encoded fields>`` — the field
    dictionary is heterogeneous across kinds, so it travels as one JSON
    column rather than an explosion of sparse columns.
    """
    count = 0
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(_TRACE_COLUMNS)
    for record in trace:
        writer.writerow(
            [
                repr(record.time),
                record.kind,
                json.dumps(dict(record.fields), default=_json_safe,
                           sort_keys=True),
            ]
        )
        count += 1
    atomic_write_text(path, buffer.getvalue(), newline="")
    return count


def load_trace_csv(path: PathLike) -> Trace:
    """Read a CSV written by :func:`trace_to_csv` back into a trace."""
    trace = Trace()
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None or tuple(header) != _TRACE_COLUMNS:
            raise ValueError(
                f"{path}: not a trace CSV (header {header!r})"
            )
        for row in reader:
            if len(row) != 3:
                raise ValueError(f"{path}: malformed row {row!r}")
            time_text, kind, fields_json = row
            trace.record(float(time_text), kind, **json.loads(fields_json))
    return trace


_JOB_COLUMNS = (
    "name",
    "task",
    "release",
    "absolute_deadline",
    "wcet",
    "actual_work",
    "state",
    "first_start_time",
    "completion_time",
    "energy_consumed",
)


def jobs_to_csv(result: SimulationResult, path: PathLike) -> int:
    """Write the per-job table of a result to CSV; returns the row count."""
    count = 0
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=_JOB_COLUMNS,
                            extrasaction="ignore")
    writer.writeheader()
    for job in result.jobs:
        writer.writerow(_job_record(job))
        count += 1
    atomic_write_text(path, buffer.getvalue(), newline="")
    return count
