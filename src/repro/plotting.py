"""Terminal (ASCII) plotting.

matplotlib is not available in the offline environment, so the experiment
harness renders its figures as Unicode line charts directly in the
terminal.  This is intentionally simple: scatter the series onto a
character grid, add axes, ticks and a legend.  Good enough to eyeball the
*shape* of every reproduced figure next to the paper.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

__all__ = ["ascii_plot", "ascii_histogram"]

_MARKERS = "ox+*#@%&"


def _format_tick(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 1000 or abs(value) < 0.01:
        return f"{value:.2g}"
    return f"{value:.3g}"


def ascii_plot(
    series: dict[str, tuple[Sequence[float], Sequence[float]]],
    width: int = 72,
    height: int = 20,
    title: str = "",
    xlabel: str = "",
    ylabel: str = "",
    y_min: Optional[float] = None,
    y_max: Optional[float] = None,
) -> str:
    """Render named ``(x, y)`` series as a Unicode line chart.

    Each series gets a marker from a fixed cycle; the legend maps markers
    back to names.  Returns the chart as a single string.
    """
    if not series:
        raise ValueError("nothing to plot")
    if width < 16 or height < 4:
        raise ValueError("plot area too small")

    arrays = {}
    for name, (xs, ys) in series.items():
        x = np.asarray(xs, dtype=float)
        y = np.asarray(ys, dtype=float)
        if x.shape != y.shape or x.ndim != 1:
            raise ValueError(f"series {name!r}: x and y must be equal-length 1-D")
        if x.size == 0:
            raise ValueError(f"series {name!r} is empty")
        mask = np.isfinite(x) & np.isfinite(y)
        if not mask.any():
            raise ValueError(f"series {name!r} has no finite points")
        arrays[name] = (x[mask], y[mask])

    all_x = np.concatenate([x for x, _ in arrays.values()])
    all_y = np.concatenate([y for _, y in arrays.values()])
    x_lo, x_hi = float(all_x.min()), float(all_x.max())
    y_lo = float(all_y.min()) if y_min is None else y_min
    y_hi = float(all_y.max()) if y_max is None else y_max
    if math.isclose(x_lo, x_hi):
        x_hi = x_lo + 1.0
    if math.isclose(y_lo, y_hi):
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]

    def to_col(x: float) -> int:
        return min(width - 1, max(0, int((x - x_lo) / (x_hi - x_lo) * (width - 1))))

    def to_row(y: float) -> int:
        frac = (y - y_lo) / (y_hi - y_lo)
        return min(height - 1, max(0, int(round((1.0 - frac) * (height - 1)))))

    legend = []
    for idx, (name, (x, y)) in enumerate(arrays.items()):
        marker = _MARKERS[idx % len(_MARKERS)]
        legend.append(f"{marker} = {name}")
        order = np.argsort(x)
        x, y = x[order], y[order]
        # Dense resampling so lines look connected even with few points.
        cols = np.arange(width)
        xs_dense = x_lo + cols / (width - 1) * (x_hi - x_lo)
        within = (xs_dense >= x.min()) & (xs_dense <= x.max())
        ys_dense = np.interp(xs_dense[within], x, y)
        for c, yv in zip(cols[within], ys_dense):
            r = to_row(float(yv))
            if grid[r][c] == " " or grid[r][c] == ".":
                grid[r][c] = "."
        for xv, yv in zip(x, y):
            grid[to_row(float(yv))][to_col(float(xv))] = marker

    y_label_width = max(
        len(_format_tick(y_lo)), len(_format_tick(y_hi)), len(ylabel)
    )
    lines = []
    if title:
        lines.append(" " * (y_label_width + 2) + title)
    for r, row in enumerate(grid):
        if r == 0:
            label = _format_tick(y_hi)
        elif r == height - 1:
            label = _format_tick(y_lo)
        elif r == height // 2 and ylabel:
            label = ylabel
        else:
            label = ""
        lines.append(f"{label:>{y_label_width}} |" + "".join(row))
    lines.append(" " * y_label_width + " +" + "-" * width)
    x_axis = (
        f"{_format_tick(x_lo)}"
        + " " * max(1, width - len(_format_tick(x_lo)) - len(_format_tick(x_hi)))
        + _format_tick(x_hi)
    )
    lines.append(" " * (y_label_width + 2) + x_axis)
    if xlabel:
        pad = max(0, (width - len(xlabel)) // 2)
        lines.append(" " * (y_label_width + 2 + pad) + xlabel)
    lines.append(" " * (y_label_width + 2) + "    ".join(legend))
    return "\n".join(lines)


def ascii_histogram(
    values: Sequence[float],
    bins: int = 20,
    width: int = 50,
    title: str = "",
) -> str:
    """Horizontal-bar histogram of a sample."""
    arr = np.asarray(values, dtype=float)
    arr = arr[np.isfinite(arr)]
    if arr.size == 0:
        raise ValueError("nothing to histogram")
    if bins < 1 or width < 1:
        raise ValueError("bins and width must be >= 1")
    counts, edges = np.histogram(arr, bins=bins)
    peak = max(1, counts.max())
    lines = [title] if title else []
    for count, lo, hi in zip(counts, edges[:-1], edges[1:]):
        bar = "#" * int(round(count / peak * width))
        lines.append(f"[{lo:10.3g}, {hi:10.3g}) {bar} {count}")
    return "\n".join(lines)
