"""repro — reproduction of "Energy Aware Dynamic Voltage and Frequency
Selection for Real-Time Systems with Energy Harvesting" (DATE 2008).

The package implements the paper's EA-DVFS scheduling algorithm, the LSA
and EDF baselines, and the full simulation substrate they are evaluated
on: stochastic energy sources, harvest predictors, energy storage, a
discrete-DVFS processor model, a deterministic discrete-event simulator,
workload generation, and the experiment harness regenerating every table
and figure of the paper's evaluation.

Quickstart::

    from repro import (
        EaDvfsScheduler, HarvestingRtSimulator, IdealStorage,
        SolarStochasticSource, generate_paper_taskset, xscale_pxa,
    )

    scale = xscale_pxa()
    source = SolarStochasticSource(seed=7)
    tasks = generate_paper_taskset(
        n_tasks=5, utilization=0.4, seed=7,
        mean_harvest_power=source.mean_power(), max_power=scale.max_power,
    )
    sim = HarvestingRtSimulator(
        taskset=tasks, source=source, storage=IdealStorage(capacity=1000.0),
        scheduler=EaDvfsScheduler(scale),
    )
    result = sim.run()
    print(result.summary())
"""

from repro.core import EaDvfsScheduler, SlowdownPlan, compute_plan
from repro.cpu import (
    FrequencyLevel,
    FrequencyScale,
    Processor,
    SwitchingOverhead,
    motivational_example_scale,
    stretch_example_scale,
    xscale_pxa,
)
from repro.energy import (
    CompositeSource,
    TraceFormatError,
    ConstantSource,
    DayNightSource,
    EnergySource,
    EnergyStorage,
    HarvestPredictor,
    IdealStorage,
    LastValuePredictor,
    MeanPowerPredictor,
    NonIdealStorage,
    OraclePredictor,
    ProfilePredictor,
    ScaledSource,
    SolarStochasticSource,
    TraceSource,
)
from repro.faults import (
    BiasedPredictor,
    BlackoutSource,
    BrownoutSource,
    DegradedStorage,
    OverrunWorkload,
    SensorDropoutSource,
)
from repro.sched import (
    Decision,
    EnergyOutlook,
    GreedyEdfScheduler,
    LazyScheduler,
    Scheduler,
    StretchEdfScheduler,
    available_schedulers,
    make_scheduler,
)
from repro.sched.extensions import OverflowAwareEaDvfsScheduler
from repro.sim import (
    DeadlineMissPolicy,
    HarvestingRtSimulator,
    SimulationConfig,
    SimulationDiagnostics,
    SimulationResult,
    SimulationWatchdog,
    Trace,
    WatchdogError,
)
from repro.tasks import (
    AperiodicTask,
    EdfReadyQueue,
    Job,
    JobState,
    PeriodicTask,
    Task,
    TaskSet,
    generate_paper_taskset,
    generate_uunifast_taskset,
    scale_to_utilization,
)

__version__ = "1.0.0"

__all__ = [
    "AperiodicTask",
    "BiasedPredictor",
    "BlackoutSource",
    "BrownoutSource",
    "CompositeSource",
    "ConstantSource",
    "DayNightSource",
    "DeadlineMissPolicy",
    "Decision",
    "DegradedStorage",
    "EaDvfsScheduler",
    "EdfReadyQueue",
    "EnergyOutlook",
    "EnergySource",
    "EnergyStorage",
    "FrequencyLevel",
    "FrequencyScale",
    "GreedyEdfScheduler",
    "HarvestPredictor",
    "HarvestingRtSimulator",
    "IdealStorage",
    "Job",
    "JobState",
    "LastValuePredictor",
    "LazyScheduler",
    "MeanPowerPredictor",
    "NonIdealStorage",
    "OraclePredictor",
    "OverflowAwareEaDvfsScheduler",
    "OverrunWorkload",
    "PeriodicTask",
    "Processor",
    "ProfilePredictor",
    "ScaledSource",
    "Scheduler",
    "SensorDropoutSource",
    "SimulationConfig",
    "SimulationDiagnostics",
    "SimulationResult",
    "SimulationWatchdog",
    "SlowdownPlan",
    "SolarStochasticSource",
    "StretchEdfScheduler",
    "SwitchingOverhead",
    "Task",
    "TaskSet",
    "Trace",
    "TraceFormatError",
    "TraceSource",
    "WatchdogError",
    "available_schedulers",
    "compute_plan",
    "generate_paper_taskset",
    "generate_uunifast_taskset",
    "make_scheduler",
    "motivational_example_scale",
    "scale_to_utilization",
    "stretch_example_scale",
    "xscale_pxa",
]
