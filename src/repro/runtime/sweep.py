"""High-level resumable sweeps: the experiments' entry into the runtime.

The figure/table harnesses describe their work as lists of
:class:`~repro.analysis.parallel.RunSpec` cells; this module executes
them through the supervisor with an optional journal attached, and
re-aggregates outcomes into the shapes the experiments consume
(per-scheduler miss rates, capacity-sweep points).

Journal selection is environment-driven so every existing experiment
becomes resumable without new plumbing: set ``REPRO_JOURNAL=/path/to/
sweep.journal`` and ``repro run fig8``, the resilience experiment, the
table 1 capacity search and the ``repro sweep`` CLI all checkpoint
through that file — kill any of them mid-run and rerunning converges to
the identical result set.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Optional, Sequence

from repro.analysis.parallel import RunFailure, RunSpec
from repro.experiments.common import PaperSetup
from repro.runtime.journal import ResultJournal
from repro.runtime.supervisor import (
    SupervisorPolicy,
    SweepReport,
    run_supervised,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.sweep import CapacitySweepPoint

__all__ = [
    "SweepFailedError",
    "engine_from_env",
    "journal_from_env",
    "journaled_capacity_sweep",
    "journaled_miss_rates",
    "run_journaled_sweep",
]

#: Environment variable naming the journal file of the current sweep.
JOURNAL_ENV = "REPRO_JOURNAL"

#: Environment variable selecting the sweep engine (scalar or batch).
ENGINE_ENV = "REPRO_ENGINE"


class SweepFailedError(RuntimeError):
    """A sweep that requires complete results had failed cells."""

    def __init__(self, failures: Sequence[RunFailure]) -> None:
        first = failures[0]
        detail = f"{first.error_type}: {first.message}"
        if first.traceback:
            detail += "\n" + first.traceback
        super().__init__(
            f"{len(failures)} sweep cell(s) failed after salvage; first: "
            f"{detail}"
        )
        self.failures = tuple(failures)


def journal_from_env() -> Optional[ResultJournal]:
    """The journal named by ``$REPRO_JOURNAL``, or ``None`` when unset."""
    path = os.environ.get(JOURNAL_ENV)
    if not path:
        return None
    return ResultJournal(path)


def engine_from_env(default: str = "scalar") -> str:
    """The engine named by ``$REPRO_ENGINE`` (``default`` when unset).

    Callers pick their own default — the fig8/fig9 drivers default to
    the batch engine now that it covers the default ``profile``
    predictor — and ``$REPRO_ENGINE`` always wins when set.
    """
    engine = os.environ.get(ENGINE_ENV, "").strip() or default
    if engine not in ("scalar", "batch"):
        raise ValueError(
            f"{ENGINE_ENV} must be 'scalar' or 'batch', got {engine!r}"
        )
    return engine


def run_journaled_sweep(
    specs: Sequence[RunSpec],
    journal: Optional[ResultJournal] = None,
    policy: SupervisorPolicy = SupervisorPolicy(),
    max_workers: Optional[int] = None,
    engine: Optional[str] = None,
) -> SweepReport:
    """Supervised sweep over ``specs``; journal defaults to the env var.

    The journal (owned or env-derived) is closed before returning when
    this function opened it; pass an explicit instance to keep it open
    across several sweeps (the capacity search does).  ``engine=None``
    reads ``$REPRO_ENGINE`` (scalar when unset), so existing experiments
    pick up the vectorized core without new plumbing.
    """
    owned = journal is None
    if owned:
        journal = journal_from_env()
    if engine is None:
        engine = engine_from_env()
    try:
        return run_supervised(
            specs,
            policy=policy,
            journal=journal,
            max_workers=max_workers,
            engine=engine,
        )
    finally:
        if owned and journal is not None:
            journal.close()


def _complete_results(report: SweepReport) -> None:
    """Raise unless every cell of the report carries a result."""
    failures = report.failures()
    if failures:
        raise SweepFailedError(failures)
    if report.not_run:
        raise RuntimeError(
            f"sweep stopped early: {report.budget_exhausted} budget "
            f"exhausted with {report.not_run} cell(s) not run; rerun with "
            "the same journal to continue"
        )


def journaled_miss_rates(
    scheduler_names: Sequence[str],
    utilization: float,
    capacity: float,
    seeds: Sequence[int],
    setup: Optional[PaperSetup] = None,
    journal: Optional[ResultJournal] = None,
    policy: SupervisorPolicy = SupervisorPolicy(),
    max_workers: Optional[int] = None,
    engine: Optional[str] = None,
) -> dict[str, float]:
    """Journal-aware twin of
    :func:`repro.analysis.parallel.parallel_miss_rates`."""
    setup = setup or PaperSetup()
    specs = [
        RunSpec(
            scheduler_name=name,
            utilization=utilization,
            capacity=capacity,
            seed=seed,
            setup=setup,
        )
        for name in scheduler_names
        for seed in seeds
    ]
    report = run_journaled_sweep(
        specs,
        journal=journal,
        policy=policy,
        max_workers=max_workers,
        engine=engine,
    )
    _complete_results(report)
    results = report.results()
    rates: dict[str, float] = {}
    per_name = len(seeds)
    for i, name in enumerate(scheduler_names):
        chunk = results[i * per_name : (i + 1) * per_name]
        missed = sum(r.missed_count for r in chunk)
        judged = sum(r.judged_count for r in chunk)
        rates[name] = missed / judged if judged else 0.0
    return rates


def journaled_capacity_sweep(
    scheduler_names: Sequence[str],
    utilization: float,
    capacities: Sequence[float],
    seeds: Sequence[int],
    setup: Optional[PaperSetup] = None,
    journal: Optional[ResultJournal] = None,
    policy: SupervisorPolicy = SupervisorPolicy(),
    max_workers: Optional[int] = None,
    engine: Optional[str] = None,
) -> "list[CapacitySweepPoint]":
    """Journal-aware twin of
    :func:`repro.analysis.parallel.parallel_capacity_sweep`.

    Returns the same ``list[CapacitySweepPoint]`` structure, so the
    figure harness switches transparently between serial, pooled and
    resumable execution.
    """
    from repro.analysis.metrics import aggregate_results
    from repro.analysis.sweep import CapacitySweepPoint, ReplicatedRun

    setup = setup or PaperSetup()
    specs = [
        RunSpec(
            scheduler_name=name,
            utilization=utilization,
            capacity=capacity,
            seed=seed,
            setup=setup,
        )
        for capacity in capacities
        for name in scheduler_names
        for seed in seeds
    ]
    report = run_journaled_sweep(
        specs,
        journal=journal,
        policy=policy,
        max_workers=max_workers,
        engine=engine,
    )
    _complete_results(report)
    results = report.results()
    points = []
    index = 0
    per_cell = len(seeds)
    for capacity in capacities:
        cell = {}
        for name in scheduler_names:
            chunk = tuple(results[index : index + per_cell])
            index += per_cell
            cell[name] = ReplicatedRun(
                scheduler_name=name,
                capacity=capacity,
                results=chunk,
                metrics=aggregate_results(chunk),
            )
        points.append(CapacitySweepPoint(capacity=capacity, by_scheduler=cell))
    return points
