"""Crash-consistent sweep runtime.

Every reproduced figure/table is a long multi-process sweep; this
package makes those sweeps survive crashes, kills and budget limits:

* :mod:`repro.runtime.journal` — an append-only, fsync'd,
  content-addressed **result journal** keyed by ``(spec_hash,
  scheduler_name, engine_version)``, with CRC-framed records and
  torn-write recovery on open;
* :mod:`repro.runtime.supervisor` — a **worker supervisor** layering
  checkpoint/resume, deterministic seeded retry backoff, poisoned-task
  quarantine and wall-clock/memory budgets over
  :func:`repro.analysis.parallel.run_parallel_salvage`;
* :mod:`repro.runtime.sweep` — journal-aware twins of the parallel
  sweep helpers, plus the ``$REPRO_JOURNAL`` wiring that makes the
  existing experiments resumable without code changes.

The chaos harness exercising all of this lives in
:mod:`repro.faults.chaos`; format and semantics are documented in
``docs/runtime.md``.
"""

from repro.runtime.journal import (
    ENGINE_VERSION,
    JournalError,
    JournalInfo,
    JournalKey,
    ResultJournal,
    journal_key,
    result_from_payload,
    result_to_payload,
    spec_hash,
)
from repro.runtime.supervisor import (
    SupervisorPolicy,
    SweepReport,
    run_supervised,
)
from repro.runtime.sweep import (
    SweepFailedError,
    journal_from_env,
    journaled_capacity_sweep,
    journaled_miss_rates,
    run_journaled_sweep,
)

__all__ = [
    "ENGINE_VERSION",
    "JournalError",
    "JournalInfo",
    "JournalKey",
    "ResultJournal",
    "SupervisorPolicy",
    "SweepFailedError",
    "SweepReport",
    "journal_from_env",
    "journal_key",
    "journaled_capacity_sweep",
    "journaled_miss_rates",
    "result_from_payload",
    "result_to_payload",
    "run_journaled_sweep",
    "run_supervised",
    "spec_hash",
]
