"""Supervised, budgeted, journal-checkpointed sweep execution.

:func:`run_supervised` generalizes
:func:`repro.analysis.parallel.run_parallel_salvage` into a crash-aware
service loop:

* **checkpoint/resume** — with a :class:`~repro.runtime.journal.
  ResultJournal` attached, cells whose key is already journaled are
  skipped (results always; failures only once quarantined), and every
  fresh outcome is durably appended the moment its batch completes, so
  ``kill -9`` at any point loses at most one in-flight batch;
* **bounded retries** with seeded exponential backoff + jitter
  (:func:`repro.analysis.parallel.retry_delay` — the whole retry
  schedule is a pure function of the policy seed, no wall-clock RNG);
* **poisoned-task quarantine** — a cell that keeps failing across
  retries *and resumes* stops being retried once its cumulative attempt
  count reaches ``quarantine_after``;
* **graceful degradation** — wall-clock and memory budgets are checked
  between batches; exceeding one flushes everything finished so far and
  returns a structured :class:`SweepReport` (``budget_exhausted`` set)
  instead of dying mid-sweep.

The supervisor is the journal's only writer; workers never touch disk.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from repro.analysis.parallel import (
    RunFailure,
    RunSpec,
    run_parallel_salvage,
)
from repro.runtime.journal import (
    JournalKey,
    ResultJournal,
    failure_from_payload,
    journal_key,
    result_from_payload,
)
from repro.sim.simulator import SimulationResult

__all__ = ["SupervisorPolicy", "SweepReport", "run_supervised"]

Outcome = Union[SimulationResult, RunFailure]


@dataclass(frozen=True)
class SupervisorPolicy:
    """Retry, quarantine and budget discipline of one supervised sweep."""

    #: Per-cell wall-clock timeout (pooled rounds only; see
    #: :func:`~repro.analysis.parallel.run_parallel_salvage`).
    timeout: Optional[float] = None
    #: Extra attempts per failing cell within one run.
    retries: int = 1
    #: Base backoff before retry round ``r``: ``backoff * 2**(r-1)``.
    backoff: float = 0.5
    #: Relative width of the seeded backoff jitter.
    jitter: float = 0.1
    #: Seed of the retry schedule (backoff jitter + retry ordering).
    seed: int = 0
    #: Cumulative attempts (across resumes) after which a cell is
    #: poisoned: journaled as a quarantined failure and never retried.
    quarantine_after: int = 3
    #: Stop launching new batches once this much wall-clock time (s) has
    #: elapsed; finished work is flushed and the report says so.
    max_wall_clock: Optional[float] = None
    #: Stop launching new batches once the process RSS exceeds this many
    #: MiB (best effort — measured via ``resource.getrusage``).
    max_rss_mb: Optional[float] = None
    #: Cells per supervised batch (= checkpoint granularity).  Default:
    #: one batch per worker round.
    batch_size: Optional[int] = None

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries!r}")
        if self.quarantine_after < 1:
            raise ValueError(
                f"quarantine_after must be >= 1, got {self.quarantine_after!r}"
            )
        if self.batch_size is not None and self.batch_size < 1:
            raise ValueError(
                f"batch_size must be >= 1, got {self.batch_size!r}"
            )
        if self.max_wall_clock is not None and self.max_wall_clock <= 0:
            raise ValueError(
                f"max_wall_clock must be > 0, got {self.max_wall_clock!r}"
            )
        if self.max_rss_mb is not None and self.max_rss_mb <= 0:
            raise ValueError(
                f"max_rss_mb must be > 0, got {self.max_rss_mb!r}"
            )


@dataclass(frozen=True)
class SweepReport:
    """Structured outcome of one supervised sweep.

    ``outcomes`` is in input-spec order; an entry is ``None`` only when
    a budget ran out before the cell was attempted (``budget_exhausted``
    names the budget).  Everything that *did* finish — including in
    earlier interrupted runs, via the journal — is populated.
    """

    outcomes: tuple[Optional[Outcome], ...]
    #: Cells answered straight from the journal (no simulation run).
    journal_hits: int
    #: Cells simulated in this run.
    executed: int
    #: Cells never attempted because a budget ran out.
    not_run: int
    #: Cells whose final outcome is a failure record.
    failed: int
    #: Failures frozen by the quarantine threshold.
    quarantined: int
    elapsed: float
    #: ``None``, ``"wall-clock"`` or ``"memory"``.
    budget_exhausted: Optional[str] = None
    journal_path: Optional[str] = None
    #: Which execution engine ran the cells (``"scalar"`` or ``"batch"``).
    engine: str = "scalar"
    #: Cells the batch engine handed back to the scalar path (uncovered
    #: shapes or core guard trips); always 0 on the scalar engine.
    batch_fallbacks: int = 0
    #: Histogram of fallback reasons for this run's executed cells only —
    #: journal-resumed cells are answered before execution and never
    #: re-add to it, so resuming an interrupted sweep cannot double
    #: count.  Empty on the scalar engine and on fully-covered batches
    #: (the default sweep grid is fully covered).
    fallback_reasons: dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Every cell has a successful result."""
        return self.failed == 0 and self.not_run == 0

    @property
    def completed(self) -> int:
        return len(self.outcomes) - self.failed - self.not_run

    def results(self) -> list[SimulationResult]:
        """All successful results, in input order (failures/unrun skipped)."""
        return [o for o in self.outcomes if isinstance(o, SimulationResult)]

    def failures(self) -> list[RunFailure]:
        return [o for o in self.outcomes if isinstance(o, RunFailure)]

    def format_text(self) -> str:
        lines = [
            f"sweep: {len(self.outcomes)} cell(s) in {self.elapsed:.1f}s — "
            f"{self.completed} ok, {self.failed} failed "
            f"({self.quarantined} quarantined), {self.not_run} not run",
            f"  journal: {self.journal_hits} hit(s), "
            f"{self.executed} executed"
            + (f" -> {self.journal_path}" if self.journal_path else ""),
        ]
        if self.engine != "scalar":
            lines.append(
                f"  engine: {self.engine} "
                f"({self.batch_fallbacks} scalar fallback(s))"
            )
            for reason in sorted(self.fallback_reasons):
                lines.append(
                    f"    fallback: {reason} "
                    f"x{self.fallback_reasons[reason]}"
                )
        if self.budget_exhausted:
            lines.append(
                f"  budget exhausted ({self.budget_exhausted}); partial "
                "results were flushed — rerun with the same journal to "
                "continue"
            )
        for failure in self.failures():
            lines.append(
                f"  FAILED {failure.spec.scheduler_name} "
                f"seed={failure.spec.seed} cap={failure.spec.capacity:g}: "
                f"{failure.error_type}: {failure.message} "
                f"({failure.attempts} attempt(s)"
                + (", quarantined)" if failure.quarantined else ")")
            )
        return "\n".join(lines)


def _rss_mb() -> Optional[float]:
    """Current peak RSS in MiB (``None`` where unsupported)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB, macOS bytes; normalize by magnitude.
    return usage / 1024.0 if usage < 1 << 40 else usage / (1024.0 * 1024.0)


def _journal_outcome(
    journal: ResultJournal, key: JournalKey, spec: RunSpec,
    quarantine_after: int,
) -> tuple[Optional[Outcome], int]:
    """(resume outcome, prior attempts) for one journaled key.

    Results resume as-is.  Failures resume as quarantined outcomes once
    their recorded attempts reach the threshold; below it they return
    ``None`` (retry) but their attempt count carries over.
    """
    record = journal.get(key)
    if record is None:
        return None, 0
    if record["kind"] == "result":
        return result_from_payload(record["payload"]), 0
    failure = failure_from_payload(record["payload"], spec)
    if failure.attempts >= quarantine_after:
        return dataclasses.replace(failure, quarantined=True), failure.attempts
    return None, failure.attempts


def run_supervised(
    specs: Sequence[RunSpec],
    policy: SupervisorPolicy = SupervisorPolicy(),
    journal: Optional[ResultJournal] = None,
    max_workers: Optional[int] = None,
    slim: bool = True,
    engine: str = "scalar",
) -> SweepReport:
    """Run ``specs`` under supervision; see the module docstring.

    Without a journal this degrades to batched
    :func:`~repro.analysis.parallel.run_parallel_salvage` with budget
    enforcement.  With one, the call is idempotent: rerunning after any
    interruption converges to the same result set.

    ``engine="batch"`` routes each batch through the vectorized SoA core
    (:func:`repro.sim.batch.execute_runspecs`); cells the core does not
    cover run scalar and are tallied in ``SweepReport.batch_fallbacks``.
    Results are equivalent either way (the differential equivalence
    suite enforces it), so journal entries mix freely across engines.
    """
    if engine not in ("scalar", "batch"):
        raise ValueError(
            f"engine must be 'scalar' or 'batch', got {engine!r}"
        )
    started = time.monotonic()
    n = len(specs)
    outcomes: list[Optional[Outcome]] = [None] * n
    prior_attempts = [0] * n
    journal_hits = 0
    pending: list[int] = []

    for i, spec in enumerate(specs):
        if journal is not None:
            key = journal_key(spec)
            outcome, prior = _journal_outcome(
                journal, key, spec, policy.quarantine_after
            )
            prior_attempts[i] = prior
            if outcome is not None:
                outcomes[i] = outcome
                journal_hits += 1
                continue
        pending.append(i)

    batch_size = policy.batch_size
    if batch_size is None:
        # The vectorized engine amortizes per-pass dispatch over every
        # lane, so it wants the widest batch available; the scalar pool
        # checkpoints once per worker round.
        batch_size = (
            max(1, len(pending)) if engine == "batch" else (max_workers or 1)
        )
    executed = 0
    batch_fallbacks = 0
    fallback_reasons: dict[str, int] = {}
    budget_exhausted: Optional[str] = None

    for start in range(0, len(pending), batch_size):
        if policy.max_wall_clock is not None and (
            time.monotonic() - started >= policy.max_wall_clock
        ):
            budget_exhausted = "wall-clock"
            break
        if policy.max_rss_mb is not None:
            rss = _rss_mb()
            if rss is not None and rss >= policy.max_rss_mb:
                budget_exhausted = "memory"
                break
        batch = pending[start:start + batch_size]
        if engine == "batch":
            from repro.sim.batch import execute_runspecs

            batch_outcomes, batch_reasons = execute_runspecs(
                [specs[i] for i in batch], slim=slim
            )
            batch_fallbacks += sum(batch_reasons.values())
            for reason, count in batch_reasons.items():
                fallback_reasons[reason] = (
                    fallback_reasons.get(reason, 0) + count
                )
        else:
            batch_outcomes = run_parallel_salvage(
                [specs[i] for i in batch],
                max_workers=max_workers,
                slim=slim,
                timeout=policy.timeout,
                retries=policy.retries,
                backoff=policy.backoff,
                jitter=policy.jitter,
                seed=policy.seed + start,
            )
        for i, outcome in zip(batch, batch_outcomes):
            executed += 1
            if isinstance(outcome, RunFailure):
                total_attempts = prior_attempts[i] + outcome.attempts
                outcome = dataclasses.replace(
                    outcome,
                    attempts=total_attempts,
                    quarantined=total_attempts >= policy.quarantine_after,
                )
            outcomes[i] = outcome
            if journal is not None:
                key = journal_key(specs[i])
                if isinstance(outcome, RunFailure):
                    journal.append_failure(key, outcome)
                else:
                    journal.append_result(key, outcome)

    failures = [o for o in outcomes if isinstance(o, RunFailure)]
    return SweepReport(
        outcomes=tuple(outcomes),
        journal_hits=journal_hits,
        executed=executed,
        not_run=sum(1 for o in outcomes if o is None),
        failed=len(failures),
        quarantined=sum(1 for f in failures if f.quarantined),
        elapsed=time.monotonic() - started,
        budget_exhausted=budget_exhausted,
        journal_path=str(journal.path) if journal is not None else None,
        engine=engine,
        batch_fallbacks=batch_fallbacks,
        fallback_reasons=fallback_reasons,
    )
