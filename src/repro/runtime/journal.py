"""Durable, append-only result journal.

The unit of durability is one *record*: a simulation outcome (result or
salvaged failure) keyed by ``(spec_hash, scheduler_name,
engine_version)``.  Records are framed as::

    [u32 payload length][u32 CRC-32 of payload][payload bytes]

with a fixed 8-byte file magic up front.  The payload is compact UTF-8
JSON.  Every append is flushed and ``fsync``'d before :meth:`append`
returns, so a record is either fully on disk or not in the journal at
all; a crash mid-write leaves a *torn tail* (short or CRC-mismatching
trailing frame) that :meth:`ResultJournal.open` detects and truncates
away.  Everything before the tear is intact — append-only framing means
an interrupted sweep loses at most the record being written.

Keys are content-addressed: :func:`spec_hash` canonicalizes the full
:class:`~repro.analysis.parallel.RunSpec` (setup class + fields,
utilization, capacity, seed) through
:func:`repro.serialization.canonical_json` and hashes it with SHA-256,
so two sweeps over the same cells share records and a spec change can
never alias a stale result.  ``engine_version``
(:data:`ENGINE_VERSION`) is part of the key: bump it whenever simulation
semantics change numerically and old journals simply stop matching.

See ``docs/runtime.md`` for the format and resume semantics.
"""

from __future__ import annotations

import binascii
import dataclasses
import hashlib
import json
import math
import os
import struct
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterator, Optional, Union

from repro.serialization import canonical_json

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.parallel import RunFailure, RunSpec
    from repro.sim.simulator import SimulationResult

__all__ = [
    "ENGINE_VERSION",
    "JournalError",
    "JournalInfo",
    "JournalKey",
    "ResultJournal",
    "failure_from_payload",
    "failure_to_payload",
    "journal_key",
    "result_from_payload",
    "result_to_payload",
    "spec_hash",
]

#: Version of the simulation semantics baked into journal keys.  Bump on
#: any change that alters simulated numbers; journaled results from
#: older engines then no longer match and are recomputed.
ENGINE_VERSION = "1"

#: File magic: "RPR" journal, format 1, newline so `file`/`head` output
#: stays readable.
_MAGIC = b"RPRJRNL1"

#: Frame header: little-endian (payload length, CRC-32 of payload).
_HEADER = struct.Struct("<II")

#: Upper bound on a single payload; anything larger is corruption.
_MAX_PAYLOAD = 64 * 1024 * 1024


class JournalError(RuntimeError):
    """The journal file is unusable (bad magic, unreadable, mid-file rot)."""


@dataclass(frozen=True)
class JournalKey:
    """Content address of one journaled outcome."""

    spec_hash: str
    scheduler_name: str
    engine_version: str = ENGINE_VERSION

    def text(self) -> str:
        """Stable single-line rendering (used by inspect/export)."""
        return f"{self.spec_hash}/{self.scheduler_name}/e{self.engine_version}"


def spec_hash(spec: "RunSpec") -> str:
    """SHA-256 of the canonical JSON of a run spec (setup class included)."""
    payload = {
        "setup_class": type(spec.setup).__qualname__,
        "setup": dataclasses.asdict(spec.setup),
        "utilization": spec.utilization,
        "capacity": spec.capacity,
        "seed": spec.seed,
        "energy_sample_interval": spec.energy_sample_interval,
    }
    digest = hashlib.sha256(canonical_json(payload).encode("utf-8"))
    return digest.hexdigest()


def journal_key(spec: "RunSpec") -> JournalKey:
    """The journal key of one sweep cell."""
    return JournalKey(
        spec_hash=spec_hash(spec),
        scheduler_name=spec.scheduler_name,
        engine_version=ENGINE_VERSION,
    )


# -- outcome codecs --------------------------------------------------------
#
# Journaled results are the *slim* results the sweeps consume (no job
# list, no trace), so every field round-trips through JSON exactly.


def result_to_payload(result: "SimulationResult") -> dict[str, Any]:
    """JSON-safe payload of a slim simulation result."""
    return {
        "scheduler_name": result.scheduler_name,
        "horizon": result.horizon,
        "released_count": result.released_count,
        "completed_count": result.completed_count,
        "missed_count": result.missed_count,
        "judged_count": result.judged_count,
        "harvested_energy": result.harvested_energy,
        "drawn_energy": result.drawn_energy,
        "overflow_energy": result.overflow_energy,
        "leaked_energy": result.leaked_energy,
        "final_stored": result.final_stored,
        "storage_capacity": (
            "inf" if math.isinf(result.storage_capacity)
            else result.storage_capacity
        ),
        "busy_time_profile": {
            repr(speed): time
            for speed, time in sorted(result.busy_time_profile.items())
        },
        "idle_time": result.idle_time,
        "switch_count": result.switch_count,
        "stall_count": result.stall_count,
        "stall_time": result.stall_time,
        "per_task_released": dict(sorted(result.per_task_released.items())),
        "per_task_missed": dict(sorted(result.per_task_missed.items())),
    }


def result_from_payload(payload: dict[str, Any]) -> "SimulationResult":
    """Rehydrate a slim :class:`SimulationResult` from its journal payload."""
    from repro.sim.simulator import SimulationResult

    capacity = payload["storage_capacity"]
    return SimulationResult(
        scheduler_name=payload["scheduler_name"],
        horizon=payload["horizon"],
        jobs=(),
        released_count=payload["released_count"],
        completed_count=payload["completed_count"],
        missed_count=payload["missed_count"],
        judged_count=payload["judged_count"],
        harvested_energy=payload["harvested_energy"],
        drawn_energy=payload["drawn_energy"],
        overflow_energy=payload["overflow_energy"],
        leaked_energy=payload["leaked_energy"],
        final_stored=payload["final_stored"],
        storage_capacity=(
            math.inf if isinstance(capacity, str) else capacity
        ),
        busy_time_profile={
            float(speed): time
            for speed, time in payload["busy_time_profile"].items()
        },
        idle_time=payload["idle_time"],
        switch_count=payload["switch_count"],
        stall_count=payload["stall_count"],
        stall_time=payload["stall_time"],
        per_task_released=dict(payload["per_task_released"]),
        per_task_missed=dict(payload["per_task_missed"]),
    )


def failure_to_payload(failure: "RunFailure") -> dict[str, Any]:
    """JSON-safe payload of a salvage record (spec travels via the key)."""
    return {
        "error_type": failure.error_type,
        "message": failure.message,
        "attempts": failure.attempts,
        "timed_out": failure.timed_out,
        "traceback": failure.traceback,
        "diagnostics": failure.diagnostics,
    }


def failure_from_payload(
    payload: dict[str, Any], spec: "RunSpec"
) -> "RunFailure":
    """Rehydrate a :class:`RunFailure` against the spec that produced it."""
    from repro.analysis.parallel import RunFailure

    return RunFailure(
        spec=spec,
        error_type=payload["error_type"],
        message=payload["message"],
        attempts=payload["attempts"],
        timed_out=payload["timed_out"],
        traceback=payload.get("traceback"),
        diagnostics=payload.get("diagnostics"),
    )


@dataclass(frozen=True)
class JournalInfo:
    """What :meth:`ResultJournal.open` found on disk."""

    path: str
    records: int
    results: int
    failures: int
    size_bytes: int
    #: Bytes of torn trailing frame discarded during recovery (0 when the
    #: file ended on a record boundary).
    torn_bytes_discarded: int

    def format_text(self) -> str:
        lines = [
            f"journal {self.path}",
            f"  records: {self.records} "
            f"({self.results} result(s), {self.failures} failure(s))",
            f"  size: {self.size_bytes} bytes",
        ]
        if self.torn_bytes_discarded:
            lines.append(
                f"  recovered: discarded {self.torn_bytes_discarded} "
                "torn trailing byte(s)"
            )
        return "\n".join(lines)


class ResultJournal:
    """Append-only, fsync'd store of sweep outcomes, safe across crashes.

    Open with :meth:`open` (creates the file on first use, recovers torn
    tails on every later open), test membership with ``key in journal``,
    read outcomes with :meth:`get`, and write with :meth:`append` /
    :meth:`append_result` / :meth:`append_failure`.  Instances are not
    thread-safe; one sweep process owns the journal at a time (workers
    return outcomes to the supervisor, which is the only writer).
    """

    def __init__(self, path: Union[str, Path], *, create: bool = True) -> None:
        self._path = Path(path)
        self._records: dict[tuple[str, str, str], dict[str, Any]] = {}
        self._results = 0
        self._failures = 0
        self._torn_bytes = 0
        self._handle = None
        self._open(create=create)

    # -- lifecycle --------------------------------------------------------

    def _open(self, create: bool) -> None:
        exists = self._path.exists()
        if not exists:
            if not create:
                raise JournalError(f"journal {self._path} does not exist")
            self._path.parent.mkdir(parents=True, exist_ok=True)
            with open(self._path, "xb") as handle:
                handle.write(_MAGIC)
                handle.flush()
                os.fsync(handle.fileno())
            self._fsync_parent()
        else:
            self._recover()
        self._handle = open(self._path, "ab")

    def _fsync_parent(self) -> None:
        # Make the journal's directory entry itself durable (a brand-new
        # file can otherwise vanish with the crash it is meant to survive).
        try:
            fd = os.open(self._path.parent, os.O_RDONLY)
        except OSError:  # pragma: no cover - exotic filesystems
            return
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def _recover(self) -> None:
        """Scan the file, load intact records, truncate any torn tail."""
        with open(self._path, "rb") as handle:
            magic = handle.read(len(_MAGIC))
            if magic != _MAGIC:
                raise JournalError(
                    f"{self._path} is not a result journal "
                    f"(bad magic {magic!r})"
                )
            good_end = handle.tell()
            while True:
                header = handle.read(_HEADER.size)
                if len(header) < _HEADER.size:
                    break  # clean EOF or torn header
                length, crc = _HEADER.unpack(header)
                if length > _MAX_PAYLOAD:
                    break  # garbage length: treat as torn
                payload = handle.read(length)
                if len(payload) < length:
                    break  # torn payload
                if binascii.crc32(payload) & 0xFFFFFFFF != crc:
                    break  # torn / bit-rotted record
                try:
                    record = json.loads(payload.decode("utf-8"))
                except (UnicodeDecodeError, json.JSONDecodeError):
                    break  # CRC collision on garbage — still torn
                self._ingest(record)
                good_end = handle.tell()
            handle.seek(0, os.SEEK_END)
            file_end = handle.tell()
        if file_end > good_end:
            self._torn_bytes = file_end - good_end
            with open(self._path, "r+b") as handle:
                handle.truncate(good_end)
                handle.flush()
                os.fsync(handle.fileno())

    def _ingest(self, record: dict[str, Any]) -> None:
        key = record["key"]
        tup = (key["spec_hash"], key["scheduler_name"], key["engine_version"])
        previous = self._records.get(tup)
        if previous is not None:
            # Duplicate append (e.g. a crash between write and the
            # supervisor noting completion, then a re-run): last wins.
            if previous["kind"] == "result":
                self._results -= 1
            else:
                self._failures -= 1
        self._records[tup] = record
        if record["kind"] == "result":
            self._results += 1
        else:
            self._failures += 1

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "ResultJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- reads ------------------------------------------------------------

    @property
    def path(self) -> Path:
        return self._path

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, key: JournalKey) -> bool:
        return (
            key.spec_hash, key.scheduler_name, key.engine_version
        ) in self._records

    def get(self, key: JournalKey) -> Optional[dict[str, Any]]:
        """The raw record for ``key`` (``{"key", "kind", "payload"}``)."""
        return self._records.get(
            (key.spec_hash, key.scheduler_name, key.engine_version)
        )

    def records(self) -> Iterator[dict[str, Any]]:
        """All live records, in key order (deterministic across opens)."""
        for tup in sorted(self._records):
            yield self._records[tup]

    def info(self) -> JournalInfo:
        return JournalInfo(
            path=str(self._path),
            records=len(self._records),
            results=self._results,
            failures=self._failures,
            size_bytes=self._path.stat().st_size,
            torn_bytes_discarded=self._torn_bytes,
        )

    def to_canonical(self) -> dict[str, Any]:
        """``key.text() -> record`` map for canonical-JSON export.

        Two journals hold the same result set iff their canonical
        exports serialize to identical bytes — the equality primitive of
        the chaos suite's resume-equals-uninterrupted proof.
        """
        out: dict[str, Any] = {}
        for record in self.records():
            key = record["key"]
            text = (
                f"{key['spec_hash']}/{key['scheduler_name']}"
                f"/e{key['engine_version']}"
            )
            out[text] = {"kind": record["kind"], "payload": record["payload"]}
        return out

    # -- writes -----------------------------------------------------------

    def append(self, key: JournalKey, kind: str,
               payload: dict[str, Any]) -> None:
        """Durably append one outcome record.

        The record is on disk (flushed + fsync'd) when this returns; a
        crash before return leaves at most a torn tail that the next
        open discards.
        """
        if kind not in ("result", "failure"):
            raise ValueError(f"unknown record kind {kind!r}")
        record = {
            "key": {
                "spec_hash": key.spec_hash,
                "scheduler_name": key.scheduler_name,
                "engine_version": key.engine_version,
            },
            "kind": kind,
            "payload": payload,
        }
        body = json.dumps(
            record, sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
        frame = _HEADER.pack(
            len(body), binascii.crc32(body) & 0xFFFFFFFF
        ) + body
        self._commit(frame)
        self._ingest(record)

    def _commit(self, frame: bytes) -> None:
        """Write one framed record and make it durable.

        Split out so the chaos harness can interpose torn writes and
        process kills exactly here (see ``repro.faults.chaos``).
        """
        assert self._handle is not None, "journal is closed"
        self._handle.write(frame)
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def append_result(self, key: JournalKey,
                      result: "SimulationResult") -> None:
        self.append(key, "result", result_to_payload(result))

    def append_failure(self, key: JournalKey,
                       failure: "RunFailure") -> None:
        self.append(key, "failure", failure_to_payload(failure))
