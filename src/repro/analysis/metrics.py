"""Metric extraction and aggregation over simulation results."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.analysis.stats import SummaryStats, summarize
from repro.sim.simulator import SimulationResult
from repro.sim.tracing import TraceKind

__all__ = [
    "AggregateMetrics",
    "aggregate_results",
    "energy_series",
    "miss_rate_by_task",
]


@dataclass(frozen=True)
class AggregateMetrics:
    """Metrics pooled over several runs of the same configuration."""

    scheduler_name: str
    n_runs: int
    miss_rate: SummaryStats
    final_fraction: SummaryStats
    overflow_energy: SummaryStats
    stall_count: SummaryStats
    #: Pooled miss rate: total misses / total judged jobs (weights runs by
    #: their job counts, unlike the per-run mean in ``miss_rate``).
    pooled_miss_rate: float

    def __str__(self) -> str:
        return (
            f"{self.scheduler_name}: miss_rate {self.miss_rate} "
            f"(pooled {self.pooled_miss_rate:.4f}) over {self.n_runs} runs"
        )


def aggregate_results(results: Sequence[SimulationResult]) -> AggregateMetrics:
    """Pool runs of one scheduler configuration into summary statistics."""
    if not results:
        raise ValueError("no results to aggregate")
    names = {r.scheduler_name for r in results}
    if len(names) != 1:
        raise ValueError(f"mixed schedulers in one aggregate: {sorted(names)}")
    total_missed = sum(r.missed_count for r in results)
    total_judged = sum(r.judged_count for r in results)
    fractions = [r.final_fraction for r in results]
    finite_fractions = [f for f in fractions if not np.isnan(f)] or [0.0]
    return AggregateMetrics(
        scheduler_name=results[0].scheduler_name,
        n_runs=len(results),
        miss_rate=summarize([r.miss_rate for r in results]),
        final_fraction=summarize(finite_fractions),
        overflow_energy=summarize([r.overflow_energy for r in results]),
        stall_count=summarize([float(r.stall_count) for r in results]),
        pooled_miss_rate=(total_missed / total_judged) if total_judged else 0.0,
    )


def energy_series(
    result: SimulationResult,
    field: str = "fraction",
) -> tuple[np.ndarray, np.ndarray]:
    """The recorded stored-energy time series of one run.

    Requires the run to have been traced with
    ``trace_kinds=(TraceKind.ENERGY, ...)`` and an
    ``energy_sample_interval``; raises otherwise rather than returning an
    empty series silently.
    """
    times, values = result.trace.series(TraceKind.ENERGY, field)
    if times.size == 0:
        raise ValueError(
            "run has no energy trace; enable TraceKind.ENERGY and set "
            "energy_sample_interval in SimulationConfig"
        )
    return times, values


def miss_rate_by_task(result: SimulationResult) -> dict[str, float]:
    """Per-task miss rate of one run (released tasks only)."""
    rates: dict[str, float] = {}
    for name, released in result.per_task_released.items():
        missed = result.per_task_missed.get(name, 0)
        rates[name] = missed / released if released else 0.0
    return rates
