"""Analysis utilities: metrics aggregation, statistics, capacity search,
and (crash-tolerant) parallel sweep execution."""

from repro.analysis.capacity import CapacitySearchResult, find_min_capacity
from repro.analysis.metrics import (
    AggregateMetrics,
    aggregate_results,
    energy_series,
    miss_rate_by_task,
)
from repro.analysis.schedulability import (
    EnergyFeasibility,
    demand_bound,
    edf_schedulable,
    energy_feasibility,
    full_speed_energy_demand_rate,
    max_energy_deficit,
    min_energy_demand_rate,
)
from repro.analysis.parallel import (
    RunFailure,
    RunSpec,
    run_parallel,
    run_parallel_salvage,
)
from repro.analysis.stats import (
    SummaryStats,
    bootstrap_ci,
    mean_confidence_interval,
    summarize,
)
from repro.analysis.sweep import (
    CapacitySweepPoint,
    ReplicatedRun,
    run_capacity_sweep,
    run_replications,
)

__all__ = [
    "AggregateMetrics",
    "CapacitySearchResult",
    "CapacitySweepPoint",
    "EnergyFeasibility",
    "ReplicatedRun",
    "RunFailure",
    "RunSpec",
    "SummaryStats",
    "aggregate_results",
    "bootstrap_ci",
    "demand_bound",
    "edf_schedulable",
    "energy_feasibility",
    "energy_series",
    "find_min_capacity",
    "full_speed_energy_demand_rate",
    "max_energy_deficit",
    "mean_confidence_interval",
    "min_energy_demand_rate",
    "miss_rate_by_task",
    "run_capacity_sweep",
    "run_parallel",
    "run_parallel_salvage",
    "run_replications",
    "summarize",
]
