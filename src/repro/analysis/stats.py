"""Small statistics helpers used by the experiment harness.

Kept deliberately lightweight: means, standard deviations, Student-t
confidence intervals (via :mod:`scipy.stats`) and a seeded bootstrap for
quantities whose sampling distribution is awkward (e.g. capacity ratios).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np
from scipy import stats as sps

__all__ = [
    "SummaryStats",
    "summarize",
    "mean_confidence_interval",
    "bootstrap_ci",
]


@dataclass(frozen=True)
class SummaryStats:
    """Five-number-ish summary of a sample."""

    n: int
    mean: float
    std: float
    minimum: float
    maximum: float
    ci_low: float
    ci_high: float

    def __str__(self) -> str:
        return (
            f"n={self.n} mean={self.mean:.4g} +/- "
            f"{(self.ci_high - self.ci_low) / 2:.2g} "
            f"[min={self.minimum:.4g}, max={self.maximum:.4g}]"
        )


def summarize(values: Sequence[float], confidence: float = 0.95) -> SummaryStats:
    """Mean, spread and a t-interval for a sample."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sample")
    low, high = mean_confidence_interval(arr, confidence)
    return SummaryStats(
        n=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        ci_low=low,
        ci_high=high,
    )


def mean_confidence_interval(
    values: Sequence[float], confidence: float = 0.95
) -> tuple[float, float]:
    """Student-t confidence interval for the mean.

    Degenerate samples (n == 1 or zero variance) return a zero-width
    interval at the mean.
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must lie in (0, 1), got {confidence!r}")
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot build a confidence interval from no data")
    mean = float(arr.mean())
    if arr.size == 1:
        return (mean, mean)
    sem = float(arr.std(ddof=1)) / math.sqrt(arr.size)
    if sem == 0.0:
        return (mean, mean)
    t = float(sps.t.ppf(0.5 + confidence / 2.0, df=arr.size - 1))
    return (mean - t * sem, mean + t * sem)


def bootstrap_ci(
    values: Sequence[float],
    statistic: Callable[[np.ndarray], float] = np.mean,
    confidence: float = 0.95,
    n_resamples: int = 2_000,
    seed: int = 0,
) -> tuple[float, float]:
    """Percentile bootstrap interval for an arbitrary statistic."""
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must lie in (0, 1), got {confidence!r}")
    if n_resamples < 1:
        raise ValueError(f"n_resamples must be >= 1, got {n_resamples!r}")
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot bootstrap an empty sample")
    rng = np.random.default_rng(seed)
    estimates = np.empty(n_resamples, dtype=float)
    for i in range(n_resamples):
        resample = arr[rng.integers(0, arr.size, size=arr.size)]
        estimates[i] = float(statistic(resample))
    alpha = (1.0 - confidence) / 2.0
    return (
        float(np.quantile(estimates, alpha)),
        float(np.quantile(estimates, 1.0 - alpha)),
    )
