"""Replication and parameter-sweep drivers.

The experiment harness runs each configuration over many independently
seeded task sets / source realizations and aggregates.  The drivers here
are generic over a *run factory*::

    factory(scheduler_name: str, capacity: float, seed: int) -> SimulationResult

so the same machinery serves the paper experiments, the ablations and the
tests (which plug in tiny synthetic factories).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.analysis.metrics import AggregateMetrics, aggregate_results
from repro.sim.simulator import SimulationResult

__all__ = [
    "RunFactory",
    "ReplicatedRun",
    "CapacitySweepPoint",
    "run_replications",
    "run_capacity_sweep",
]

RunFactory = Callable[[str, float, int], SimulationResult]


@dataclass(frozen=True)
class ReplicatedRun:
    """All replications of one (scheduler, capacity) cell."""

    scheduler_name: str
    capacity: float
    results: tuple[SimulationResult, ...]
    metrics: AggregateMetrics


@dataclass(frozen=True)
class CapacitySweepPoint:
    """One x-axis point of a miss-rate-vs-capacity curve."""

    capacity: float
    by_scheduler: dict[str, ReplicatedRun]

    def miss_rate(self, scheduler_name: str) -> float:
        """Pooled miss rate of one scheduler at this capacity."""
        return self.by_scheduler[scheduler_name].metrics.pooled_miss_rate


def run_replications(
    factory: RunFactory,
    scheduler_name: str,
    capacity: float,
    seeds: Sequence[int],
) -> ReplicatedRun:
    """Run one configuration across all seeds and aggregate."""
    if not seeds:
        raise ValueError("at least one seed is required")
    results = tuple(factory(scheduler_name, capacity, seed) for seed in seeds)
    return ReplicatedRun(
        scheduler_name=scheduler_name,
        capacity=capacity,
        results=results,
        metrics=aggregate_results(results),
    )


def run_capacity_sweep(
    factory: RunFactory,
    scheduler_names: Sequence[str],
    capacities: Sequence[float],
    seeds: Sequence[int],
) -> list[CapacitySweepPoint]:
    """Sweep capacities for several schedulers over common seeds.

    All schedulers at one capacity see the *same* seeds (paired
    comparison — the variance of the LSA/EA-DVFS difference is much lower
    than with independent draws).
    """
    if not scheduler_names:
        raise ValueError("at least one scheduler is required")
    points = []
    for capacity in capacities:
        cell = {
            name: run_replications(factory, name, capacity, seeds)
            for name in scheduler_names
        }
        points.append(CapacitySweepPoint(capacity=capacity, by_scheduler=cell))
    return points
