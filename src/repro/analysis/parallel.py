"""Multi-process execution of replication sweeps.

The figure/table experiments replicate each configuration across many
seeded task sets; the runs are embarrassingly parallel.  This module
fans them out over a :class:`~concurrent.futures.ProcessPoolExecutor`:

* :class:`RunSpec` — one picklable cell (setup + scheduler + capacity +
  seed);
* :func:`run_parallel` — execute many specs, preserving input order;
* :func:`parallel_miss_rates` — convenience wrapper returning pooled
  miss rates per scheduler for one (utilization, capacity) cell.

Results are returned *slim* by default (job list and trace dropped)
because shipping thousands of job objects through IPC costs more than
the simulation itself for short runs.
"""

from __future__ import annotations

import dataclasses
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.experiments.common import PaperSetup
from repro.sim.simulator import SimulationResult

__all__ = [
    "RunSpec",
    "parallel_capacity_sweep",
    "parallel_miss_rates",
    "run_parallel",
]


@dataclass(frozen=True)
class RunSpec:
    """One simulation cell, fully described by picklable values."""

    scheduler_name: str
    utilization: float
    capacity: float
    seed: int
    setup: PaperSetup = PaperSetup()
    energy_sample_interval: Optional[float] = None


def _slim(result: SimulationResult) -> SimulationResult:
    """Strip bulky per-job/trace payloads before crossing the process
    boundary (metrics and counters are all the sweeps consume)."""
    return dataclasses.replace(result, jobs=())


def _execute(args: tuple[RunSpec, bool]) -> SimulationResult:
    spec, slim = args
    result = spec.setup.run(
        scheduler_name=spec.scheduler_name,
        utilization=spec.utilization,
        capacity=spec.capacity,
        seed=spec.seed,
        energy_sample_interval=spec.energy_sample_interval,
    )
    return _slim(result) if slim else result


def run_parallel(
    specs: Sequence[RunSpec],
    max_workers: Optional[int] = None,
    slim: bool = True,
) -> list[SimulationResult]:
    """Run all specs across worker processes; results in input order.

    With ``max_workers=1`` (or a single spec) everything runs in-process,
    which keeps tests and small sweeps free of pool overhead.
    """
    if not specs:
        return []
    if max_workers == 1 or len(specs) == 1:
        return [_execute((spec, slim)) for spec in specs]
    with ProcessPoolExecutor(max_workers=max_workers) as pool:
        return list(pool.map(_execute, [(spec, slim) for spec in specs]))


def parallel_capacity_sweep(
    scheduler_names: Sequence[str],
    utilization: float,
    capacities: Sequence[float],
    seeds: Sequence[int],
    setup: Optional[PaperSetup] = None,
    max_workers: Optional[int] = None,
):
    """Parallel twin of :func:`repro.analysis.sweep.run_capacity_sweep`.

    Returns the same ``list[CapacitySweepPoint]`` structure (with slim
    results inside), so the figure harness can switch transparently
    between serial and parallel execution.
    """
    from repro.analysis.metrics import aggregate_results
    from repro.analysis.sweep import CapacitySweepPoint, ReplicatedRun

    setup = setup or PaperSetup()
    specs = [
        RunSpec(
            scheduler_name=name,
            utilization=utilization,
            capacity=capacity,
            seed=seed,
            setup=setup,
        )
        for capacity in capacities
        for name in scheduler_names
        for seed in seeds
    ]
    results = run_parallel(specs, max_workers=max_workers)
    points = []
    index = 0
    per_cell = len(seeds)
    for capacity in capacities:
        cell = {}
        for name in scheduler_names:
            chunk = tuple(results[index : index + per_cell])
            index += per_cell
            cell[name] = ReplicatedRun(
                scheduler_name=name,
                capacity=capacity,
                results=chunk,
                metrics=aggregate_results(chunk),
            )
        points.append(CapacitySweepPoint(capacity=capacity, by_scheduler=cell))
    return points


def parallel_miss_rates(
    scheduler_names: Sequence[str],
    utilization: float,
    capacity: float,
    seeds: Sequence[int],
    setup: Optional[PaperSetup] = None,
    max_workers: Optional[int] = None,
) -> dict[str, float]:
    """Pooled miss rate per scheduler for one configuration cell.

    All schedulers share the same seeds (paired comparison), and all
    (scheduler, seed) runs go through one process pool.
    """
    setup = setup or PaperSetup()
    specs = [
        RunSpec(
            scheduler_name=name,
            utilization=utilization,
            capacity=capacity,
            seed=seed,
            setup=setup,
        )
        for name in scheduler_names
        for seed in seeds
    ]
    results = run_parallel(specs, max_workers=max_workers)
    rates: dict[str, float] = {}
    per_name = len(seeds)
    for i, name in enumerate(scheduler_names):
        chunk = results[i * per_name : (i + 1) * per_name]
        missed = sum(r.missed_count for r in chunk)
        judged = sum(r.judged_count for r in chunk)
        rates[name] = missed / judged if judged else 0.0
    return rates
