"""Multi-process execution of replication sweeps.

The figure/table experiments replicate each configuration across many
seeded task sets; the runs are embarrassingly parallel.  This module
fans them out over a :class:`~concurrent.futures.ProcessPoolExecutor`:

* :class:`RunSpec` — one picklable cell (setup + scheduler + capacity +
  seed);
* :func:`run_parallel` — execute many specs, preserving input order;
* :func:`parallel_miss_rates` — convenience wrapper returning pooled
  miss rates per scheduler for one (utilization, capacity) cell.

Results are returned *slim* by default (job list and trace dropped)
because shipping thousands of job objects through IPC costs more than
the simulation itself for short runs.

For long fault-injection sweeps, :func:`run_parallel_salvage` adds crash
tolerance on top: per-round timeouts, bounded retries with exponential
backoff, and salvage semantics — a cell that keeps failing becomes a
:class:`RunFailure` record in the (order-preserving) result list instead
of poisoning the whole sweep.
"""

from __future__ import annotations

import dataclasses
import math
import os
import time
import traceback as traceback_module
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Optional, Sequence, Union

import numpy as np

from repro.experiments.common import PaperSetup
from repro.sim.simulator import SimulationResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.sweep import CapacitySweepPoint

__all__ = [
    "RunFailure",
    "RunSpec",
    "parallel_capacity_sweep",
    "parallel_miss_rates",
    "retry_delay",
    "run_parallel",
    "run_parallel_salvage",
]


@dataclass(frozen=True)
class RunSpec:
    """One simulation cell, fully described by picklable values."""

    scheduler_name: str
    utilization: float
    capacity: float
    seed: int
    setup: PaperSetup = PaperSetup()
    energy_sample_interval: Optional[float] = None


def _slim(result: SimulationResult) -> SimulationResult:
    """Strip bulky per-job/trace payloads before crossing the process
    boundary (metrics and counters are all the sweeps consume)."""
    return dataclasses.replace(result, jobs=())


def _execute(args: tuple[RunSpec, bool]) -> SimulationResult:
    spec, slim = args
    result = spec.setup.run(
        scheduler_name=spec.scheduler_name,
        utilization=spec.utilization,
        capacity=spec.capacity,
        seed=spec.seed,
        energy_sample_interval=spec.energy_sample_interval,
    )
    return _slim(result) if slim else result


@dataclass(frozen=True)
class _WorkerError:
    """Picklable capture of a worker-side exception.

    Tracebacks do not survive the process boundary, so the worker
    formats its own before returning; a :class:`WatchdogError`
    additionally ships its structured diagnostics snapshot.
    """

    error_type: str
    message: str
    traceback: str
    diagnostics: Optional[dict[str, Any]] = None


def _capture_error(exc: BaseException) -> _WorkerError:
    from repro.sim.watchdog import WatchdogError

    diagnostics: Optional[dict[str, Any]] = None
    if isinstance(exc, WatchdogError):
        diagnostics = dataclasses.asdict(exc.diagnostics)
    return _WorkerError(
        error_type=type(exc).__name__,
        message=str(exc) or type(exc).__name__,
        traceback="".join(traceback_module.format_exception(exc)),
        diagnostics=diagnostics,
    )


def _execute_captured(
    args: tuple[RunSpec, bool]
) -> Union[SimulationResult, _WorkerError]:
    """Salvage-path twin of :func:`_execute`: errors return, never raise."""
    try:
        return _execute(args)
    except Exception as exc:  # noqa: BLE001 - salvage semantics
        return _capture_error(exc)


def run_parallel(
    specs: Sequence[RunSpec],
    max_workers: Optional[int] = None,
    slim: bool = True,
) -> list[SimulationResult]:
    """Run all specs across worker processes; results in input order.

    With ``max_workers=1`` (or a single spec) everything runs in-process,
    which keeps tests and small sweeps free of pool overhead.
    """
    if not specs:
        return []
    if max_workers == 1 or len(specs) == 1:
        return [_execute((spec, slim)) for spec in specs]
    with ProcessPoolExecutor(max_workers=max_workers) as pool:
        return list(pool.map(_execute, [(spec, slim) for spec in specs]))


@dataclass(frozen=True)
class RunFailure:
    """Salvage record for one sweep cell that produced no result.

    Attributes
    ----------
    spec:
        The cell that failed.
    error_type:
        Class name of the final error (``"TimeoutError"`` for timeouts).
    message:
        The final error message.
    attempts:
        How many times the cell was tried before giving up.
    timed_out:
        Whether the final failure was a timeout (vs. a raised error).
    traceback:
        The worker-side formatted traceback of the final error, when one
        was captured (``None`` for timeouts and broken pools — there is
        no worker stack to report).
    diagnostics:
        Structured :class:`~repro.sim.watchdog.SimulationDiagnostics`
        snapshot (as a plain dict) when the final error was a
        :class:`~repro.sim.watchdog.WatchdogError`.
    quarantined:
        Whether the supervisor stopped retrying this cell because it
        reached the poisoned-task threshold (see ``repro.runtime``).
    """

    spec: RunSpec
    error_type: str
    message: str
    attempts: int
    timed_out: bool = False
    traceback: Optional[str] = None
    diagnostics: Optional[dict[str, Any]] = None
    quarantined: bool = False


def _failure(
    spec: RunSpec, exc: BaseException, attempts: int, timed_out: bool = False
) -> RunFailure:
    captured = _capture_error(exc)
    return RunFailure(
        spec=spec,
        error_type=captured.error_type,
        message=captured.message,
        attempts=attempts,
        timed_out=timed_out,
        traceback=captured.traceback,
        diagnostics=captured.diagnostics,
    )


def _failure_from_worker(
    spec: RunSpec, err: _WorkerError, attempts: int
) -> RunFailure:
    return RunFailure(
        spec=spec,
        error_type=err.error_type,
        message=err.message,
        attempts=attempts,
        timed_out=False,
        traceback=err.traceback,
        diagnostics=err.diagnostics,
    )


def _pooled_round(
    specs: Sequence[RunSpec],
    indices: Sequence[int],
    max_workers: Optional[int],
    slim: bool,
    timeout: Optional[float],
) -> dict[int, Union[SimulationResult, RunFailure]]:
    """Run one retry round of ``indices`` in a fresh process pool.

    The pool is per-round on purpose: a worker wedged by a previous round
    cannot poison this one, and ``shutdown(wait=False)`` after a timeout
    abandons stuck workers instead of blocking the caller on them.
    """
    outcome: dict[int, Union[SimulationResult, RunFailure]] = {}
    workers = max_workers or os.cpu_count() or 1
    budget = None
    if timeout is not None:
        # The wall-clock budget covers the whole round; queueing behind a
        # finite worker count must not count against individual cells.
        budget = timeout * max(1, math.ceil(len(indices) / workers))
    pool = ProcessPoolExecutor(max_workers=max_workers)
    timed_out = False
    try:
        futures = {
            i: pool.submit(_execute_captured, (specs[i], slim))
            for i in indices
        }
        start = time.monotonic()
        for i, future in futures.items():
            remaining = None
            if budget is not None:
                remaining = max(0.0, budget - (time.monotonic() - start))
            try:
                cell = future.result(timeout=remaining)
            except FutureTimeoutError:
                timed_out = True
                future.cancel()
                outcome[i] = RunFailure(
                    spec=specs[i],
                    error_type="TimeoutError",
                    message=f"no result within {timeout:g}s",
                    attempts=0,  # filled in by the caller
                    timed_out=True,
                )
                continue
            except BrokenProcessPool as exc:
                # The worker died (e.g. by signal) — every sibling future
                # of this pool is lost too; salvage them all from here.
                outcome[i] = _failure(specs[i], exc, attempts=0)
                continue
            except Exception as exc:  # noqa: BLE001 - salvage any pool error
                outcome[i] = _failure(specs[i], exc, attempts=0)
                continue
            if isinstance(cell, _WorkerError):
                outcome[i] = _failure_from_worker(specs[i], cell, attempts=0)
            else:
                outcome[i] = cell
    finally:
        pool.shutdown(wait=not timed_out, cancel_futures=True)
    return outcome


def retry_delay(
    backoff: float,
    round_no: int,
    jitter: float = 0.0,
    seed: int = 0,
) -> float:
    """Backoff sleep before retry round ``round_no`` (1-based).

    The base delay doubles per round (``backoff * 2**(round_no - 1)``);
    ``jitter`` widens it by a *seeded* multiplicative factor drawn from
    ``U[1, 1 + jitter]`` via a private numpy stream, so two sweeps with
    equal seeds sleep identically — no wall-clock entropy reaches the
    schedule (exactly the discipline the simulation layer follows).
    """
    base = backoff * 2 ** (round_no - 1)
    if jitter <= 0 or base <= 0:
        return base
    rng = np.random.default_rng(seed + round_no)
    return base * (1.0 + jitter * float(rng.random()))


def _retry_order(pending: Sequence[int], round_no: int, seed: int) -> list[int]:
    """Seeded permutation of the cells retried in ``round_no``.

    Retrying in a deterministic shuffle (rather than input order)
    decorrelates neighbouring cells that failed together — e.g. a batch
    that hit one wedged worker — while keeping the whole schedule a pure
    function of the seed.
    """
    rng = np.random.default_rng(seed + 1_000_003 * round_no)
    order = list(pending)
    rng.shuffle(order)
    return order


def run_parallel_salvage(
    specs: Sequence[RunSpec],
    max_workers: Optional[int] = None,
    slim: bool = True,
    timeout: Optional[float] = None,
    retries: int = 0,
    backoff: float = 0.5,
    jitter: float = 0.0,
    seed: int = 0,
) -> list[Union[SimulationResult, RunFailure]]:
    """Crash-tolerant twin of :func:`run_parallel`.

    Every spec yields exactly one entry, in input order: its
    :class:`~repro.sim.SimulationResult` on success, or a
    :class:`RunFailure` record (carrying the worker traceback and, for
    watchdog aborts, the structured diagnostics snapshot) once
    ``1 + retries`` attempts are exhausted.  A raising or hanging worker
    never aborts the sweep.

    Parameters
    ----------
    timeout:
        Per-cell wall-clock timeout in seconds.  Cells of one retry
        round run concurrently, so the round's budget is ``timeout``
        scaled by the queueing factor ``ceil(cells / workers)``; a cell
        unfinished when the budget runs out is salvaged as timed out and
        its worker abandoned.  Only enforced on pooled runs — the serial
        path (``max_workers=1`` or a single spec) cannot preempt a
        stuck call and documents timeouts as unsupported there.
    retries:
        Extra attempts per failing cell (0 = one attempt only).
    backoff:
        Sleep before retry round ``r`` is ``backoff * 2**(r-1)`` seconds,
        widened by ``jitter``.
    jitter:
        Relative width of the seeded backoff jitter (0 = pure
        exponential); see :func:`retry_delay`.
    seed:
        Seed of the retry schedule: both the backoff jitter and the
        order in which failing cells are retried are pure functions of
        it, so a sweep's retry behaviour is bit-reproducible.
    """
    if timeout is not None and timeout <= 0:
        raise ValueError(f"timeout must be > 0 or None, got {timeout!r}")
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries!r}")
    if backoff < 0:
        raise ValueError(f"backoff must be >= 0, got {backoff!r}")
    if jitter < 0:
        raise ValueError(f"jitter must be >= 0, got {jitter!r}")
    if not specs:
        return []

    n = len(specs)
    serial = max_workers == 1 or n == 1
    results: list[Optional[Union[SimulationResult, RunFailure]]] = [None] * n
    failures: dict[int, RunFailure] = {}
    attempts = [0] * n
    pending = list(range(n))
    for round_no in range(1 + retries):
        if not pending:
            break
        if round_no > 0:
            delay = retry_delay(backoff, round_no, jitter=jitter, seed=seed)
            if delay > 0:
                time.sleep(delay)
            pending = _retry_order(pending, round_no, seed)
        still_failing: list[int] = []
        if serial:
            for i in pending:
                attempts[i] += 1
                cell = _execute_captured((specs[i], slim))
                if isinstance(cell, _WorkerError):
                    failures[i] = _failure_from_worker(
                        specs[i], cell, attempts[i]
                    )
                    still_failing.append(i)
                else:
                    results[i] = cell
        else:
            outcome = _pooled_round(specs, pending, max_workers, slim, timeout)
            for i in pending:
                attempts[i] += 1
                cell = outcome[i]
                if isinstance(cell, RunFailure):
                    failures[i] = dataclasses.replace(cell, attempts=attempts[i])
                    still_failing.append(i)
                else:
                    results[i] = cell
        pending = still_failing
    for i in pending:
        results[i] = failures[i]
    assert all(r is not None for r in results)
    return results  # type: ignore[return-value]


def parallel_capacity_sweep(
    scheduler_names: Sequence[str],
    utilization: float,
    capacities: Sequence[float],
    seeds: Sequence[int],
    setup: Optional[PaperSetup] = None,
    max_workers: Optional[int] = None,
) -> "list[CapacitySweepPoint]":
    """Parallel twin of :func:`repro.analysis.sweep.run_capacity_sweep`.

    Returns the same ``list[CapacitySweepPoint]`` structure (with slim
    results inside), so the figure harness can switch transparently
    between serial and parallel execution.
    """
    from repro.analysis.metrics import aggregate_results
    from repro.analysis.sweep import CapacitySweepPoint, ReplicatedRun

    setup = setup or PaperSetup()
    specs = [
        RunSpec(
            scheduler_name=name,
            utilization=utilization,
            capacity=capacity,
            seed=seed,
            setup=setup,
        )
        for capacity in capacities
        for name in scheduler_names
        for seed in seeds
    ]
    results = run_parallel(specs, max_workers=max_workers)
    points = []
    index = 0
    per_cell = len(seeds)
    for capacity in capacities:
        cell = {}
        for name in scheduler_names:
            chunk = tuple(results[index : index + per_cell])
            index += per_cell
            cell[name] = ReplicatedRun(
                scheduler_name=name,
                capacity=capacity,
                results=chunk,
                metrics=aggregate_results(chunk),
            )
        points.append(CapacitySweepPoint(capacity=capacity, by_scheduler=cell))
    return points


def parallel_miss_rates(
    scheduler_names: Sequence[str],
    utilization: float,
    capacity: float,
    seeds: Sequence[int],
    setup: Optional[PaperSetup] = None,
    max_workers: Optional[int] = None,
) -> dict[str, float]:
    """Pooled miss rate per scheduler for one configuration cell.

    All schedulers share the same seeds (paired comparison), and all
    (scheduler, seed) runs go through one process pool.
    """
    setup = setup or PaperSetup()
    specs = [
        RunSpec(
            scheduler_name=name,
            utilization=utilization,
            capacity=capacity,
            seed=seed,
            setup=setup,
        )
        for name in scheduler_names
        for seed in seeds
    ]
    results = run_parallel(specs, max_workers=max_workers)
    rates: dict[str, float] = {}
    per_name = len(seeds)
    for i, name in enumerate(scheduler_names):
        chunk = results[i * per_name : (i + 1) * per_name]
        missed = sum(r.missed_count for r in chunk)
        judged = sum(r.judged_count for r in chunk)
        rates[name] = missed / judged if judged else 0.0
    return rates
