"""Offline schedulability and energy-feasibility analysis.

The paper's online algorithms assume the *timing* side is feasible
(``U <= 1``, eq. (14)) and evaluates the *energy* side empirically.  This
module provides the corresponding offline tests a system designer would
run before deploying a harvesting node:

* :func:`edf_schedulable` — exact EDF feasibility for periodic sets:
  the Liu & Layland utilization bound for implicit deadlines, and the
  processor-demand criterion (Baruah et al.) for constrained deadlines;
* :func:`demand_bound` — the EDF demand-bound function ``dbf(t)``;
* :func:`min_energy_demand_rate` — the long-run energy demand if every
  task ran at its slowest individually-feasible DVFS level (a lower
  bound on any EDF-based DVFS schedule's draw);
* :func:`full_speed_energy_demand_rate` — the LSA/EDF draw rate
  ``U * P_max``;
* :func:`energy_feasibility` — compares both rates against the source's
  long-run mean power;
* :func:`max_energy_deficit` — the largest harvest-vs-demand drawdown
  over a horizon: a storage-capacity *lower bound* for zero misses under
  a constant demand rate (useful to seed Table-1-style searches).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.cpu.dvfs import FrequencyScale
from repro.energy.source import EnergySource
from repro.tasks.task import PeriodicTask, TaskSet
from repro.timeutils import EPSILON

__all__ = [
    "EnergyFeasibility",
    "demand_bound",
    "edf_schedulable",
    "energy_feasibility",
    "full_speed_energy_demand_rate",
    "max_energy_deficit",
    "min_energy_demand_rate",
]


def _periodic_tasks(taskset: TaskSet) -> list[PeriodicTask]:
    periodic = taskset.periodic_tasks()
    if len(periodic) != len(taskset):
        raise ValueError("schedulability analysis requires an all-periodic set")
    return periodic


def demand_bound(taskset: TaskSet, t: float) -> float:
    """EDF demand-bound function ``dbf(t)`` for a periodic task set.

    Total execution demand of jobs with both release and deadline inside
    any window of length ``t``:
    ``dbf(t) = sum_i max(0, floor((t - D_i) / T_i) + 1) * C_i``.
    """
    if t < 0:
        raise ValueError(f"t must be >= 0, got {t!r}")
    total = 0.0
    for task in _periodic_tasks(taskset):
        jobs = math.floor((t - task.relative_deadline) / task.period) + 1
        if jobs > 0:
            total += jobs * task.wcet
    return total


def edf_schedulable(taskset: TaskSet) -> bool:
    """Exact preemptive-EDF feasibility of a periodic task set.

    Implicit deadlines (``D_i == T_i`` for all tasks): ``U <= 1``
    (Liu & Layland).  Constrained deadlines (``D_i <= T_i``): the
    processor-demand criterion — ``dbf(t) <= t`` at every absolute
    deadline up to the analysis bound ``L*`` (Baruah/Rosier).  Deadlines
    beyond the period are rejected (not needed for this paper's model).
    """
    tasks = _periodic_tasks(taskset)
    utilization = taskset.utilization
    if utilization > 1.0 + EPSILON:
        return False
    if all(
        abs(task.relative_deadline - task.period) <= EPSILON for task in tasks
    ):
        return True
    if any(task.relative_deadline > task.period + EPSILON for task in tasks):
        raise ValueError("arbitrary (D > T) deadlines are not supported")

    # Analysis bound: L* = max(D_i, sum U_i (T_i - D_i) / (1 - U)),
    # falling back to the hyperperiod-style bound when U == 1.
    if utilization < 1.0 - EPSILON:
        l_star = sum(
            task.utilization * (task.period - task.relative_deadline)
            for task in tasks
        ) / (1.0 - utilization)
        bound = max([l_star] + [task.relative_deadline for task in tasks])
    else:
        bound = max(task.relative_deadline for task in tasks) + 2 * max(
            task.period for task in tasks
        ) * len(tasks)

    # Check dbf(t) <= t at every absolute deadline <= bound.
    checkpoints: set[float] = set()
    for task in tasks:
        deadline = task.relative_deadline
        while deadline <= bound + EPSILON:
            checkpoints.add(deadline)
            deadline += task.period
    return all(demand_bound(taskset, t) <= t + EPSILON for t in sorted(checkpoints))


def full_speed_energy_demand_rate(
    taskset: TaskSet, scale: FrequencyScale
) -> float:
    """Long-run draw of an always-full-speed schedule: ``U * P_max``."""
    return taskset.utilization * scale.max_power


def min_energy_demand_rate(taskset: TaskSet, scale: FrequencyScale) -> float:
    """Lower bound on the long-run draw of any EDF-based DVFS schedule.

    Each task is charged at the energy-per-work of the slowest level that
    could finish it within its own deadline with the whole window to
    itself — ignoring interference, so this is optimistic (a true lower
    bound).
    """
    total = 0.0
    for task in _periodic_tasks(taskset):
        level = scale.min_feasible_level(task.wcet, task.relative_deadline)
        if level is None:
            raise ValueError(
                f"{task.name} cannot meet its deadline even at full speed"
            )
        total += task.utilization * level.energy_per_work
    return total


@dataclass(frozen=True)
class EnergyFeasibility:
    """Outcome of the long-run energy balance check."""

    mean_harvest_power: float
    full_speed_demand: float
    min_demand: float

    @property
    def feasible_at_full_speed(self) -> bool:
        """LSA / plain EDF can be sustained indefinitely."""
        return self.full_speed_demand <= self.mean_harvest_power + EPSILON

    @property
    def feasible_with_dvfs(self) -> bool:
        """Some DVFS schedule might be sustainable (necessary condition)."""
        return self.min_demand <= self.mean_harvest_power + EPSILON

    @property
    def headroom(self) -> float:
        """Harvest margin over the full-speed demand (may be negative)."""
        return self.mean_harvest_power - self.full_speed_demand


def energy_feasibility(
    taskset: TaskSet,
    source: EnergySource,
    scale: FrequencyScale,
) -> EnergyFeasibility:
    """Long-run energy balance of a workload against a source."""
    return EnergyFeasibility(
        mean_harvest_power=source.mean_power(),
        full_speed_demand=full_speed_energy_demand_rate(taskset, scale),
        min_demand=min_energy_demand_rate(taskset, scale),
    )


def max_energy_deficit(
    source: EnergySource,
    demand_rate: float,
    horizon: float,
    quantum: float = 1.0,
) -> float:
    """Largest cumulative shortfall of harvest below a constant demand.

    Computes the maximum drawdown of ``integral(PS) - demand_rate * t``
    over ``[0, horizon]`` on a regular grid.  A storage smaller than this
    value *cannot* sustain the demand without interruption on this source
    realization, making it a useful lower bound when sizing capacities
    (e.g. to seed the Table 1 search).
    """
    if demand_rate < 0 or not math.isfinite(demand_rate):
        raise ValueError(f"demand_rate must be finite and >= 0, got {demand_rate!r}")
    if horizon <= 0 or not math.isfinite(horizon):
        raise ValueError(f"horizon must be finite and > 0, got {horizon!r}")
    if quantum <= 0:
        raise ValueError(f"quantum must be > 0, got {quantum!r}")
    steps = int(math.ceil(horizon / quantum))
    net = np.empty(steps + 1, dtype=float)
    net[0] = 0.0
    t = 0.0
    for i in range(steps):
        end = min(t + quantum, horizon)
        harvested = source.energy(t, end)
        net[i + 1] = net[i] + harvested - demand_rate * (end - t)
        t = end
    running_peak = np.maximum.accumulate(net)
    drawdown = running_peak - net
    return float(drawdown.max())
