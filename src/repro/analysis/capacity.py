"""Minimum-storage-capacity search (Table 1).

The paper's Table 1 reports, per utilization, the smallest storage
capacity that sustains a *zero* deadline miss rate, for LSA and EA-DVFS.
:func:`find_min_capacity` locates that threshold for an arbitrary
``miss_fn(capacity) -> miss_rate``:

1. exponential growth from ``initial`` until a zero-miss capacity is
   found (the miss rate of these systems is non-increasing in capacity
   for fixed seeds — more buffer never hurts an energy-constrained EDF
   policy in practice);
2. bisection between the largest missing and smallest zero-miss capacity
   down to a relative tolerance.

Because the underlying simulations are deterministic given their seeds,
the search itself is deterministic and the monotonicity assumption is
checkable (``strict=True`` re-verifies the bracket on every step).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

__all__ = ["CapacitySearchResult", "find_min_capacity"]


@dataclass(frozen=True)
class CapacitySearchResult:
    """Outcome of a minimum-capacity search."""

    min_capacity: float
    evaluations: int
    #: Largest capacity observed to still miss (lower bracket).
    last_missing_capacity: float
    #: Miss rate observed at ``last_missing_capacity``.
    last_missing_rate: float
    #: Every ``(capacity, miss_rate)`` probe, in evaluation order.  The
    #: sequence is a pure function of the search parameters and the
    #: observed rates, which is what makes a journal-backed ``miss_fn``
    #: resumable: a restarted search replays the same probes and answers
    #: them from the journal.
    probes: tuple[tuple[float, float], ...] = ()


def find_min_capacity(
    miss_fn: Callable[[float], float],
    initial: float = 10.0,
    max_capacity: float = 1e6,
    rel_tol: float = 0.02,
    zero_threshold: float = 0.0,
) -> CapacitySearchResult:
    """Smallest capacity with ``miss_fn(capacity) <= zero_threshold``.

    Parameters
    ----------
    miss_fn:
        Deterministic miss-rate evaluator (aggregate over task sets).
    initial:
        First capacity probed; also the growth-phase starting point.
    max_capacity:
        Abort bound — exceeded when the workload is infeasible at any
        storage size (raises :class:`RuntimeError`).
    rel_tol:
        Bisection stops when the bracket is within this relative width.
    zero_threshold:
        Treat rates at or below this as "zero" (useful when a tiny
        replication count makes exact zero too strict).
    """
    if initial <= 0 or not math.isfinite(initial):
        raise ValueError(f"initial must be finite and > 0, got {initial!r}")
    if max_capacity <= initial:
        raise ValueError("max_capacity must exceed initial")
    if not 0.0 < rel_tol < 1.0:
        raise ValueError(f"rel_tol must lie in (0, 1), got {rel_tol!r}")
    if zero_threshold < 0:
        raise ValueError(f"zero_threshold must be >= 0, got {zero_threshold!r}")

    evaluations = 0
    probes: list[tuple[float, float]] = []

    def misses(capacity: float) -> float:
        nonlocal evaluations
        evaluations += 1
        rate = miss_fn(capacity)
        if rate < 0 or rate > 1 or math.isnan(rate):
            raise ValueError(f"miss_fn({capacity!r}) returned {rate!r}")
        probes.append((capacity, rate))
        return rate

    # Phase 1: exponential growth to bracket the threshold.
    low, low_rate = 0.0, math.inf  # capacity 0 conceptually always misses
    high = initial
    rate = misses(high)
    while rate > zero_threshold:
        low, low_rate = high, rate
        high *= 2.0
        if high > max_capacity:
            raise RuntimeError(
                f"no zero-miss capacity found up to {max_capacity!r} "
                f"(last rate {rate!r} at {low!r}); the workload is likely "
                "infeasible at any storage size"
            )
        rate = misses(high)

    if low == 0.0:
        # Even the initial capacity already achieves zero misses; probe
        # downward so the reported minimum is not an artifact of the
        # starting point.
        while high > 1e-3:
            candidate = high / 2.0
            candidate_rate = misses(candidate)
            if candidate_rate > zero_threshold:
                low, low_rate = candidate, candidate_rate
                break
            high = candidate
        else:
            return CapacitySearchResult(
                min_capacity=high,
                evaluations=evaluations,
                last_missing_capacity=0.0,
                last_missing_rate=math.inf,
                probes=tuple(probes),
            )

    # Phase 2: bisection.
    while (high - low) > rel_tol * high:
        mid = 0.5 * (low + high)
        mid_rate = misses(mid)
        if mid_rate > zero_threshold:
            low, low_rate = mid, mid_rate
        else:
            high = mid

    return CapacitySearchResult(
        min_capacity=high,
        evaluations=evaluations,
        last_missing_capacity=low,
        last_missing_rate=low_rate,
        probes=tuple(probes),
    )
