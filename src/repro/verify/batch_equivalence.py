"""Differential equivalence of the vectorized batch engine vs scalar.

:func:`run_batch_equivalence` draws N reproducible worlds with
:func:`repro.verify.scenarios.random_scenario`, runs every (world,
scheduler) cell once through :func:`repro.sim.batch.run_scenario_batch`
and once through the reference scalar simulator, and asserts:

* **bit-exact counters** — released/judged/missed/completed counts,
  switch and stall counts, and the per-task tallies must be *identical*
  (the batch core performs the same float comparisons in the same order
  as the scalar loop, so deadline decisions cannot legitimately differ);
* **eps-equal trajectories** — energy aggregates, busy-time profile and
  per-job timelines are compared at a documented ``1e-9`` absolute /
  relative tolerance (see ``docs/batch-simulation.md``; in practice the
  engines agree bit-for-bit, the tolerance only guards the contract);
* **fallback plumbing** — cells the batch engine hands back to the
  scalar path (faulted worlds, infinite storage) still round-trip
  through the front-end and are tallied.

The scenario pool draws every predictor kind (``oracle``, ``profile``,
``mean``, ``last-value``), all vectorized; the report counts scenarios
per kind so CI shows each kind was actually exercised.

Failures reuse the :class:`~repro.verify.differential.Discrepancy` /
report machinery, so the smallest failing scenario seed is surfaced as
the minimal reproduction handle exactly like the oracle battery.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.sim.batch import run_scenario_batch
from repro.sim.simulator import SimulationResult
from repro.verify.differential import DifferentialReport, Discrepancy
from repro.verify.oracles import compare_schedules
from repro.verify.scenarios import ScenarioSpec, random_scenario

__all__ = [
    "BATCH_CHECKED_SCHEDULERS",
    "BatchEquivalenceReport",
    "compare_results",
    "run_batch_equivalence",
]

#: Scheduler policies with a vectorized kernel (every registry policy
#: the batch engine claims to cover — uncovered names are a fallback,
#: not a comparison).
BATCH_CHECKED_SCHEDULERS: tuple[str, ...] = (
    "edf",
    "lsa",
    "ea-dvfs",
    "ea-dvfs-noslowdown",
)

#: Integer counters that must match bit-exactly between engines.
_EXACT_FIELDS: tuple[str, ...] = (
    "released_count",
    "completed_count",
    "missed_count",
    "judged_count",
    "switch_count",
    "stall_count",
)

#: Float aggregates compared at the documented tolerance.
_CLOSE_FIELDS: tuple[str, ...] = (
    "harvested_energy",
    "drawn_energy",
    "overflow_energy",
    "leaked_energy",
    "final_stored",
    "idle_time",
    "stall_time",
)


def _close(a: float, b: float, atol: float) -> bool:
    if math.isnan(a) or math.isnan(b):
        return False
    if a == b:
        return True
    return abs(a - b) <= max(atol, atol * max(abs(a), abs(b)))


def compare_results(
    scalar: SimulationResult,
    batch: SimulationResult,
    atol: float = 1e-9,
) -> list[str]:
    """All divergences between a scalar and a batch run of one world.

    Counters and per-task tallies are required identical; energies and
    times are required ``atol``-close (absolute and relative).  The
    ``trace`` field is ignored — traces compare by identity and carry no
    measured quantities.
    """
    problems: list[str] = []
    for name in _EXACT_FIELDS:
        a, b = getattr(scalar, name), getattr(batch, name)
        if a != b:
            problems.append(f"{name}: scalar {a!r} != batch {b!r}")
    for name in _CLOSE_FIELDS:
        a, b = getattr(scalar, name), getattr(batch, name)
        if not _close(a, b, atol):
            problems.append(f"{name}: scalar {a!r} != batch {b!r}")
    if scalar.per_task_released != batch.per_task_released:
        problems.append(
            f"per_task_released: scalar {scalar.per_task_released!r} != "
            f"batch {batch.per_task_released!r}"
        )
    if scalar.per_task_missed != batch.per_task_missed:
        problems.append(
            f"per_task_missed: scalar {scalar.per_task_missed!r} != "
            f"batch {batch.per_task_missed!r}"
        )
    profile_a, profile_b = scalar.busy_time_profile, batch.busy_time_profile
    speeds = sorted(set(profile_a) | set(profile_b))
    for speed in speeds:
        a = profile_a.get(speed, 0.0)
        b = profile_b.get(speed, 0.0)
        if not _close(a, b, atol):
            problems.append(
                f"busy_time_profile[{speed:g}]: scalar {a!r} != batch {b!r}"
            )
    if scalar.jobs and batch.jobs:
        problems += compare_schedules(
            scalar, batch, label_a="scalar", label_b="batch", atol=atol
        )
    return problems


@dataclass
class BatchEquivalenceReport(DifferentialReport):
    """A differential report with batch-vs-fallback lane accounting."""

    #: Cells actually simulated inside the vectorized core.
    batch_cells: int = 0
    #: Cells the front-end routed to the scalar engine instead.
    fallback_cells: int = 0
    #: Histogram of fallback reasons across the sweep.
    fallback_reasons: dict[str, int] = field(default_factory=dict)
    #: Scenarios drawn per predictor kind (coverage evidence: the sweep
    #: must exercise every vectorized kind, not just the oracle).
    predictor_kinds: dict[str, int] = field(default_factory=dict)

    def format_text(self) -> str:
        lines = [
            f"batch equivalence sweep: {self.n_scenarios} scenarios "
            f"(seeds {self.base_seed}.."
            f"{self.base_seed + self.n_scenarios - 1}) x "
            f"{len(BATCH_CHECKED_SCHEDULERS)} schedulers, "
            f"{self.simulations_run} simulations",
            f"  {self.batch_cells} cell(s) vectorized, "
            f"{self.fallback_cells} scalar fallback(s)",
        ]
        for reason in sorted(self.fallback_reasons):
            lines.append(
                f"    fallback[{reason}]: {self.fallback_reasons[reason]}"
            )
        if self.predictor_kinds:
            coverage = ", ".join(
                f"{kind}: {self.predictor_kinds[kind]}"
                for kind in sorted(self.predictor_kinds)
            )
            lines.append(f"  predictor coverage — {coverage}")
        if self.ok:
            lines.append("no discrepancies found")
        else:
            lines.append(f"{len(self.discrepancies)} DISCREPANCIES:")
            for discrepancy in self.discrepancies:
                lines.append(discrepancy.format_text())
            lines.append(f"minimal reproducing seed: {self.minimal_seed}")
        return "\n".join(lines)


def run_batch_equivalence(
    n: int = 100,
    seed: int = 0,
    allow_faults: bool = True,
    progress: Optional[Callable[[int, int], None]] = None,
) -> BatchEquivalenceReport:
    """Differentially test batch vs scalar over ``n`` seeded scenarios.

    Every scenario runs under each scheduler in
    :data:`BATCH_CHECKED_SCHEDULERS`, once through the batch front-end
    (all scenarios of a scheduler share one SoA core run) and once
    through the scalar reference; :func:`compare_results` judges each
    pair.  ``progress`` (if given) is called as ``progress(i, total)``
    after each (scheduler, scenario) comparison column completes.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n!r}")
    report = BatchEquivalenceReport(n_scenarios=n, base_seed=seed)
    specs = [
        random_scenario(seed + i, allow_faults=allow_faults)
        for i in range(n)
    ]
    for spec in specs:
        report.predictor_kinds[spec.predictor_kind] = (
            report.predictor_kinds.get(spec.predictor_kind, 0) + 1
        )
    from repro.sim.batch import scenario_fallback_reason

    total = n * len(BATCH_CHECKED_SCHEDULERS)
    done = 0
    for scheduler_name in BATCH_CHECKED_SCHEDULERS:
        outcome = run_scenario_batch(specs, scheduler_name)
        report.simulations_run += len(specs)
        report.fallback_cells += outcome.fallbacks
        report.batch_cells += len(specs) - outcome.fallbacks
        for reason, count in outcome.fallback_reasons.items():
            report.fallback_reasons[reason] = (
                report.fallback_reasons.get(reason, 0) + count
            )
        for spec, batch_result in zip(specs, outcome.results):
            # The scalar reference run.  For fallback cells the batch
            # front-end already ran scalar — the comparison then checks
            # determinism of the fallback path rather than the core.
            scalar_result = spec.run(scheduler_name)
            report.simulations_run += 1
            report.checks_run += 1
            vectorized = (
                scenario_fallback_reason(spec, scheduler_name) is None
            )
            for problem in compare_results(scalar_result, batch_result):
                report.discrepancies.append(Discrepancy(
                    seed=spec.seed,
                    check=(
                        f"batch-equivalence[{scheduler_name}]"
                        if vectorized
                        else f"batch-fallback[{scheduler_name}]"
                    ),
                    detail=problem,
                    scenario=spec.describe(),
                ))
            done += 1
            if progress is not None:
                progress(done, total)
    return report
