"""Analytic oracles for the EA-DVFS decision rule and completed runs.

Two layers of checking:

* **Decision oracles** — :func:`recompute_plan` re-derives ``sr_n``,
  ``sr_max``, ``s1``, ``s2`` and the minimum feasible level of
  inequality (6) straight from the paper's equations, *without* calling
  :func:`repro.core.slowdown.compute_plan`; :class:`OracleCheckedScheduler`
  wraps an :class:`~repro.core.ea_dvfs.EaDvfsScheduler` and asserts every
  single decision (job selection, level, start time, switch-up instant)
  against the independent arithmetic, raising :class:`OracleViolationError`
  on the first divergence.

* **Trace oracles** — pure functions over a finished
  :class:`~repro.sim.simulator.SimulationResult`:
  :func:`check_energy_conservation`, :func:`check_causality`,
  :func:`check_accounting` re-verify the physical and accounting
  invariants, and :func:`compare_schedules` asserts schedule *identity*
  between two runs — the primitive behind the paper's degeneracy claims
  (infinite storage → plain EDF at ``f_max``; slow-down disabled → LSA).

All check functions return a list of human-readable problem strings
(empty = clean) so the differential harness can aggregate them into
structured discrepancies instead of dying on the first assert.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.core.ea_dvfs import EaDvfsScheduler
from repro.cpu.dvfs import FrequencyLevel, FrequencyScale
from repro.sched.base import Decision, EnergyOutlook, Scheduler
from repro.sim.simulator import DeadlineMissPolicy, SimulationResult
from repro.tasks.job import Job
from repro.tasks.queue import EdfReadyQueue
from repro.timeutils import EPSILON, INFINITY, time_gt, time_le, time_lt

__all__ = [
    "OraclePlan",
    "OracleViolation",
    "OracleViolationError",
    "OracleCheckedScheduler",
    "check_accounting",
    "check_causality",
    "check_energy_conservation",
    "compare_schedules",
    "expected_ea_dvfs_decision",
    "expected_lazy_decision",
    "recompute_plan",
]


@dataclass(frozen=True)
class OraclePlan:
    """Independently recomputed quantities of equations (5)-(9).

    ``feasible_level`` is ``None`` when inequality (6) fails even at full
    speed (the deadline is unreachable regardless of energy).
    """

    feasible_level: Optional[FrequencyLevel]
    sr_n: float
    sr_max: float
    s1: float
    s2: float


def recompute_plan(
    now: float,
    deadline: float,
    remaining_work: float,
    available_energy: float,
    scale: FrequencyScale,
) -> OraclePlan:
    """Equations (5)-(9) from first principles.

    Deliberately does **not** call
    :func:`repro.core.slowdown.compute_plan` — the level search walks the
    ladder with ``w / S_n`` directly and the slack times divide the raw
    energy, so a bug in the production plan code cannot hide here.  The
    float *operations* match the production ones exactly (same divisions
    in the same order), which is what makes bit-exact decision comparison
    possible.
    """
    if available_energy < 0:
        available_energy = 0.0
    window = deadline - now
    feasible: Optional[FrequencyLevel] = None
    if window >= 0:
        for level in scale.levels:
            # Inequality (6): w / S_n <= D - t (with the ladder's own
            # epsilon tolerance at the boundary).
            if remaining_work / level.speed <= window + EPSILON:
                feasible = level
                break
    max_level = scale.max_level
    if feasible is None:
        return OraclePlan(
            feasible_level=None, sr_n=0.0, sr_max=0.0, s1=now, s2=now
        )
    if math.isinf(available_energy):
        sr_n = INFINITY
        sr_max = INFINITY
    else:
        sr_n = available_energy / feasible.power
        sr_max = available_energy / max_level.power
    return OraclePlan(
        feasible_level=feasible,
        sr_n=sr_n,
        sr_max=sr_max,
        s1=max(now, deadline - sr_n),
        s2=max(now, deadline - sr_max),
    )


def expected_ea_dvfs_decision(
    now: float,
    job: Job,
    outlook: EnergyOutlook,
    scale: FrequencyScale,
    full_storage_fast_path: bool = True,
) -> Decision:
    """The decision Figure 4 demands for ``job`` at ``now``."""
    if full_storage_fast_path and outlook.storage_is_full:
        return Decision.run(job, scale.max_level)
    available = outlook.available_until(now, job.absolute_deadline)
    plan = recompute_plan(
        now, job.absolute_deadline, job.remaining_work, available, scale
    )
    if plan.feasible_level is None:
        # Best effort at full speed; the miss is the simulator's to record.
        return Decision.run(job, scale.max_level)
    if plan.s2 - plan.s1 <= EPSILON:
        # Case (a) — including the degenerate "f_n is already f_max"
        # variant where both collapse onto a future s2.
        if plan.s2 > now + EPSILON:
            return Decision.idle(reconsider_at=plan.s2)
        return Decision.run(job, scale.max_level)
    # Case (b): idle until s1, stretch over [s1, s2), full speed after.
    if plan.s1 > now + EPSILON:
        return Decision.idle(reconsider_at=plan.s1)
    if time_le(plan.s2, now, eps=1e-6):
        # Degenerate-switch skip mirrored from the production rule.
        return Decision.run(job, scale.max_level)
    return Decision.run(
        job, plan.feasible_level, switch_to_max_at=plan.s2
    )


def expected_lazy_decision(
    now: float,
    job: Job,
    outlook: EnergyOutlook,
    scale: FrequencyScale,
) -> Decision:
    """The ``s2``-only rule (eq. (8)) — LSA, and EA-DVFS sans slow-down."""
    max_level = scale.max_level
    available = outlook.available_until(now, job.absolute_deadline)
    if math.isinf(available):
        return Decision.run(job, max_level)
    if available < 0:
        available = 0.0
    start = max(now, job.absolute_deadline - available / max_level.power)
    if start > now + EPSILON:
        return Decision.idle(reconsider_at=start)
    return Decision.run(job, max_level)


@dataclass(frozen=True)
class OracleViolation:
    """One decision that diverged from the analytic oracle."""

    time: float
    job: Optional[str]
    expected: str
    actual: str
    context: str

    def __str__(self) -> str:
        return (
            f"t={self.time:g} job={self.job or '-'}: "
            f"expected {self.expected}, got {self.actual} ({self.context})"
        )


class OracleViolationError(AssertionError):
    """Raised by :class:`OracleCheckedScheduler` on the first divergence."""

    def __init__(self, violation: OracleViolation) -> None:
        super().__init__(str(violation))
        self.violation = violation


def _describe_decision(decision: Decision) -> str:
    if decision.is_idle:
        if math.isinf(decision.reconsider_at):
            return "idle"
        return f"idle(reconsider_at={decision.reconsider_at!r})"
    text = f"run({decision.job.name}@{decision.level.speed:g}"
    if decision.switch_to_max_at is not None:
        text += f", switch_to_max_at={decision.switch_to_max_at!r}"
    return text + ")"


def _decisions_equal(expected: Decision, actual: Decision) -> bool:
    if expected.is_idle != actual.is_idle:
        return False
    if expected.is_idle:
        # Bit-exact on purpose: oracle and production code perform the
        # same float operations, so any difference is a real divergence.
        return expected.reconsider_at == actual.reconsider_at  # repro-lint: disable=RPR102 -- bit-exact oracle
    return (
        expected.job is actual.job
        and expected.level == actual.level
        and expected.switch_to_max_at == actual.switch_to_max_at  # repro-lint: disable=RPR102 -- bit-exact oracle
    )


# Wrapper is constructed directly by the differential harness around an
# existing scheduler; registering it by name would make no sense.
class OracleCheckedScheduler(Scheduler):  # repro-lint: disable=RPR302 -- verify-internal wrapper
    """Transparent wrapper asserting every inner decision against the oracle.

    The inner scheduler must be an :class:`EaDvfsScheduler` (either
    configuration — the oracle follows the ``slowdown`` flag).  Decisions
    are compared *bit-exactly*: oracle and production code perform the
    same float operations on the same inputs, so any tolerance would only
    hide real divergence.
    """

    name = "oracle-checked"

    def __init__(self, inner: EaDvfsScheduler) -> None:
        if not isinstance(inner, EaDvfsScheduler):
            raise TypeError(
                f"oracle checking is defined for EaDvfsScheduler, "
                f"got {type(inner).__name__}"
            )
        super().__init__(inner.scale)
        self._inner = inner
        self.checked_decisions = 0

    @property
    def inner(self) -> EaDvfsScheduler:
        return self._inner

    def decide(
        self,
        now: float,
        ready: EdfReadyQueue,
        outlook: EnergyOutlook,
    ) -> Decision:
        job = ready.peek()
        actual = self._inner.decide(now, ready, outlook)
        self.checked_decisions += 1
        if job is None:
            expected = Decision.idle()
        elif self._inner.slowdown:
            expected = expected_ea_dvfs_decision(
                now, job, outlook, self._scale,
                full_storage_fast_path=self._inner.full_storage_fast_path,
            )
        else:
            expected = expected_lazy_decision(now, job, outlook, self._scale)
        if not actual.is_idle and actual.job is not job:
            raise OracleViolationError(OracleViolation(
                time=now,
                job=getattr(actual.job, "name", None),
                expected=f"dispatch of EDF-earliest job "
                f"{job.name if job else '-'}",
                actual=_describe_decision(actual),
                context="EDF job-selection oracle",
            ))
        if not _decisions_equal(expected, actual):
            raise OracleViolationError(OracleViolation(
                time=now,
                job=job.name if job is not None else None,
                expected=_describe_decision(expected),
                actual=_describe_decision(actual),
                context=(
                    "slow-down plan oracle"
                    if self._inner.slowdown
                    else "lazy s2-rule oracle"
                ),
            ))
        return actual

    def __repr__(self) -> str:
        return f"OracleCheckedScheduler({self._inner!r})"


# -- trace oracles --------------------------------------------------------


def check_energy_conservation(
    result: SimulationResult,
    initial_stored: float,
    lossless: bool = True,
) -> list[str]:
    """Re-check the energy ledger of a finished run.

    For lossless (ideal, non-faulted) storage the strict balance
    ``initial + harvested = drawn + overflow + leaked + final`` must hold;
    otherwise (degraded storage, unknown initial) only the physical
    bounds are enforced.  Infinite storage has no meaningful ledger and
    reduces to sign checks.
    """
    problems: list[str] = []
    for name in ("harvested_energy", "drawn_energy", "overflow_energy",
                 "leaked_energy"):
        value = getattr(result, name)
        if value < -1e-9 or math.isnan(value):
            problems.append(f"{name} is {value!r}, expected >= 0")
    if math.isfinite(result.storage_capacity):
        if result.final_stored < -1e-6:
            problems.append(
                f"final stored energy {result.final_stored!r} is negative"
            )
        if result.final_stored > result.storage_capacity + 1e-6:
            problems.append(
                f"final stored energy {result.final_stored!r} exceeds "
                f"capacity {result.storage_capacity!r}"
            )
        if lossless and math.isfinite(initial_stored):
            balance = (
                initial_stored
                + result.harvested_energy
                - result.drawn_energy
                - result.overflow_energy
                - result.leaked_energy
                - result.final_stored
            )
            tolerance = 1e-6 * max(1.0, result.harvested_energy)
            if abs(balance) >= tolerance:
                problems.append(
                    f"energy ledger off by {balance!r} "
                    f"(initial={initial_stored!r}, "
                    f"harvested={result.harvested_energy!r}, "
                    f"drawn={result.drawn_energy!r}, "
                    f"overflow={result.overflow_energy!r}, "
                    f"leaked={result.leaked_energy!r}, "
                    f"final={result.final_stored!r})"
                )
    return problems


def check_causality(
    result: SimulationResult,
    miss_policy: DeadlineMissPolicy = DeadlineMissPolicy.DROP,
) -> list[str]:
    """Per-job temporal sanity: release <= start <= completion <= horizon."""
    problems: list[str] = []
    for job in result.jobs:
        if job.first_start_time is not None:
            if job.first_start_time < job.release - 1e-9:
                problems.append(
                    f"{job.name}: started at {job.first_start_time!r} "
                    f"before release {job.release!r}"
                )
        if job.completion_time is not None:
            if job.first_start_time is None:
                problems.append(
                    f"{job.name}: completed without ever starting"
                )
            elif time_lt(job.completion_time, job.first_start_time):
                problems.append(
                    f"{job.name}: completed at {job.completion_time!r} "
                    f"before first start {job.first_start_time!r}"
                )
            if time_gt(job.completion_time, result.horizon):
                problems.append(
                    f"{job.name}: completed at {job.completion_time!r} "
                    f"past the horizon {result.horizon!r}"
                )
            if (
                miss_policy is DeadlineMissPolicy.DROP
                and time_gt(job.completion_time, job.absolute_deadline, eps=1e-6)
            ):
                problems.append(
                    f"{job.name}: completed at {job.completion_time!r} "
                    f"after its deadline {job.absolute_deadline!r} "
                    f"under the DROP policy"
                )
    return problems


def check_accounting(
    result: SimulationResult,
    miss_policy: DeadlineMissPolicy = DeadlineMissPolicy.DROP,
) -> list[str]:
    """Job-count and time-budget consistency of a finished run.

    Under the CONTINUE policy a job may be counted both missed *and*
    (later) completed, so the completed/missed partition of released jobs
    only holds under DROP.
    """
    problems: list[str] = []
    if result.released_count != len(result.jobs):
        problems.append(
            f"released_count {result.released_count} != "
            f"{len(result.jobs)} recorded jobs"
        )
    if (
        miss_policy is DeadlineMissPolicy.DROP
        and result.completed_count + result.missed_count
        > result.released_count
    ):
        problems.append(
            f"completed {result.completed_count} + missed "
            f"{result.missed_count} exceeds released {result.released_count} "
            f"under the DROP policy"
        )
    if result.completed_count > result.released_count:
        problems.append(
            f"completed {result.completed_count} exceeds released "
            f"{result.released_count}"
        )
    if result.missed_count > result.judged_count:
        problems.append(
            f"missed {result.missed_count} exceeds judged "
            f"{result.judged_count}"
        )
    if result.judged_count > result.released_count:
        problems.append(
            f"judged_count {result.judged_count} exceeds released "
            f"{result.released_count}"
        )
    if not 0.0 <= result.miss_rate <= 1.0 and result.judged_count:
        problems.append(f"miss rate {result.miss_rate!r} outside [0, 1]")
    busy = result.total_busy_time
    if busy < -1e-9 or busy > result.horizon + 1e-6:
        problems.append(
            f"busy time {busy!r} outside [0, horizon={result.horizon!r}]"
        )
    if abs(busy + result.idle_time - result.horizon) > 1e-6:
        problems.append(
            f"busy {busy!r} + idle {result.idle_time!r} does not sum to "
            f"the horizon {result.horizon!r}"
        )
    if time_gt(result.stall_time, result.idle_time, eps=1e-6):
        problems.append(
            f"stall time {result.stall_time!r} exceeds idle time "
            f"{result.idle_time!r}"
        )
    return problems


def _optional_close(
    a: Optional[float], b: Optional[float], atol: float
) -> bool:
    if (a is None) != (b is None):
        return False
    if a is None or b is None:
        return True
    return abs(a - b) <= atol


def compare_schedules(
    result_a: SimulationResult,
    result_b: SimulationResult,
    label_a: str = "a",
    label_b: str = "b",
    atol: float = 1e-9,
    max_problems: int = 10,
) -> list[str]:
    """Assert schedule identity between two runs of the *same* world.

    Compares the per-job timelines (state, first start, completion,
    energy) and the aggregate counters.  The paper's degeneracy claims
    are claims of identity, not similarity, so the default tolerance only
    absorbs float noise; schedulers that genuinely coincide produce
    bit-equal schedules.
    """
    problems: list[str] = []

    def note(text: str) -> None:
        if len(problems) < max_problems:
            problems.append(text)
        elif len(problems) == max_problems:
            problems.append("... further differences suppressed")

    if result_a.released_count != result_b.released_count:
        note(
            f"released {result_a.released_count} ({label_a}) != "
            f"{result_b.released_count} ({label_b})"
        )
    if result_a.missed_count != result_b.missed_count:
        note(
            f"missed {result_a.missed_count} ({label_a}) != "
            f"{result_b.missed_count} ({label_b})"
        )
    if result_a.completed_count != result_b.completed_count:
        note(
            f"completed {result_a.completed_count} ({label_a}) != "
            f"{result_b.completed_count} ({label_b})"
        )
    jobs_a = {job.name: job for job in result_a.jobs}
    jobs_b = {job.name: job for job in result_b.jobs}
    for name in sorted(jobs_a.keys() ^ jobs_b.keys()):
        holder = label_a if name in jobs_a else label_b
        note(f"job {name} exists only in {holder}")
    for name in sorted(jobs_a.keys() & jobs_b.keys()):
        a, b = jobs_a[name], jobs_b[name]
        if a.state is not b.state:
            note(
                f"job {name}: state {a.state.value} ({label_a}) != "
                f"{b.state.value} ({label_b})"
            )
        if not _optional_close(a.first_start_time, b.first_start_time, atol):
            note(
                f"job {name}: first start {a.first_start_time!r} "
                f"({label_a}) != {b.first_start_time!r} ({label_b})"
            )
        if not _optional_close(a.completion_time, b.completion_time, atol):
            note(
                f"job {name}: completion {a.completion_time!r} "
                f"({label_a}) != {b.completion_time!r} ({label_b})"
            )
        if abs(a.energy_consumed - b.energy_consumed) > max(
            atol, 1e-9 * max(1.0, abs(a.energy_consumed))
        ):
            note(
                f"job {name}: energy {a.energy_consumed!r} ({label_a}) != "
                f"{b.energy_consumed!r} ({label_b})"
            )
    return problems
