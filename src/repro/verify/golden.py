"""Golden-trace regression store.

Small, fast configurations of the paper experiments are serialized to
canonical JSON (:func:`repro.serialization.canonical_json` — sorted keys,
floats normalized to 10 significant digits, newline-terminated) and
pinned under ``tests/golden/``.  A regression test recomputes each
payload and compares it byte-for-byte against the pinned file; any
numeric drift fails loudly with a structured diff summary.

Refreshing the fixtures after an *intentional* change:

    PYTHONPATH=src python -m pytest tests/golden -q --update-golden

(the ``--update-golden`` flag flips every :class:`GoldenStore` into
write-through mode; commit the rewritten JSON with the change that
caused it).
"""

from __future__ import annotations

import difflib
from pathlib import Path
from typing import Any, Union

from repro.serialization import atomic_write_text, canonical_json

__all__ = [
    "GoldenMismatch",
    "GoldenStore",
    "golden_fig5_payload",
    "golden_table1_payload",
    "golden_resilience_payload",
]

#: Diff lines shown before truncation — enough to locate the drift
#: without drowning the test log in a full payload dump.
_MAX_DIFF_LINES = 40


class GoldenMismatch(AssertionError):
    """A recomputed payload no longer matches its pinned fixture."""

    def __init__(self, name: str, path: Path, diff_summary: str) -> None:
        super().__init__(
            f"golden fixture {name!r} ({path}) does not match the "
            f"recomputed payload.\n{diff_summary}\n"
            f"If the change is intentional, refresh with:\n"
            f"    pytest tests/golden -q --update-golden"
        )
        self.name = name
        self.path = path
        self.diff_summary = diff_summary


def _diff_summary(expected: str, actual: str) -> str:
    """Unified diff of fixture vs recomputed text, truncated for the log."""
    diff = list(difflib.unified_diff(
        expected.splitlines(),
        actual.splitlines(),
        fromfile="pinned",
        tofile="recomputed",
        lineterm="",
        n=2,
    ))
    changed = sum(1 for line in diff if line[:1] in "+-"
                  and line[:3] not in ("+++", "---"))
    shown = diff[:_MAX_DIFF_LINES]
    if len(diff) > _MAX_DIFF_LINES:
        shown.append(
            f"... {len(diff) - _MAX_DIFF_LINES} more diff lines omitted"
        )
    return f"{changed} changed lines:\n" + "\n".join(shown)


class GoldenStore:
    """Directory of pinned canonical-JSON fixtures.

    ``update=True`` (the ``--update-golden`` flow) rewrites fixtures
    instead of comparing; :meth:`check` then always passes and reports
    whether the bytes changed.
    """

    def __init__(self, root: Union[str, Path], update: bool = False) -> None:
        self._root = Path(root)
        self._update = bool(update)

    @property
    def root(self) -> Path:
        return self._root

    @property
    def update(self) -> bool:
        return self._update

    def path_for(self, name: str) -> Path:
        return self._root / f"{name}.json"

    def check(self, name: str, payload: Any) -> bool:
        """Compare ``payload`` against the pinned fixture ``name``.

        Returns ``True`` when the fixture is (now) up to date.  Raises
        :class:`GoldenMismatch` on drift, :class:`FileNotFoundError` when
        the fixture is missing and ``update`` is off.
        """
        path = self.path_for(name)
        actual = canonical_json(payload)
        if self._update:
            self._root.mkdir(parents=True, exist_ok=True)
            atomic_write_text(path, actual)
            return True
        if not path.exists():
            raise FileNotFoundError(
                f"golden fixture {name!r} is missing ({path}); generate it "
                f"with: pytest tests/golden -q --update-golden"
            )
        expected = path.read_text()
        if expected != actual:
            raise GoldenMismatch(name, path, _diff_summary(expected, actual))
        return True


# -- payload builders ------------------------------------------------------
#
# Deliberately tiny configurations: the point is bit-stability of the
# analytic pipeline, not statistical power, so each payload must build in
# a couple of seconds inside the tier-1 suite.


def golden_fig5_payload() -> dict[str, Any]:
    """Source statistics of a short fig. 5 sample (seed 0)."""
    from repro.experiments.common import PaperSetup
    from repro.experiments.fig5 import run_fig5

    result = run_fig5(setup=PaperSetup(), seed=0, horizon=240.0, step=2.0)
    return {
        "experiment": "fig5",
        "config": {"seed": 0, "horizon": 240.0, "step": 2.0},
        "mean_power": result.mean_power,
        "analytic_mean": result.analytic_mean,
        "peak_power": result.peak_power,
        "times": list(result.times),
        "powers": list(result.powers),
    }


def golden_table1_payload() -> dict[str, Any]:
    """Minimum-capacity search on a reduced table 1 grid."""
    from repro.experiments.common import PaperSetup
    from repro.experiments.table1 import run_table1

    setup = PaperSetup(horizon=400.0)
    result = run_table1(
        setup=setup,
        utilizations=(0.2, 0.6),
        n_sets=2,
        initial_capacity=20.0,
        rel_tol=0.05,
    )
    return {
        "experiment": "table1",
        "config": {
            "horizon": 400.0,
            "utilizations": [0.2, 0.6],
            "n_sets": 2,
            "initial_capacity": 20.0,
            "rel_tol": 0.05,
        },
        "rows": [
            {
                "utilization": row.utilization,
                "cmin_lsa": row.cmin_lsa,
                "cmin_ea_dvfs": row.cmin_ea_dvfs,
                "ratio": row.ratio,
            }
            for row in result.rows
        ],
    }


def golden_resilience_payload() -> dict[str, Any]:
    """Pooled miss rates of a reduced fault-injection sweep."""
    from repro.experiments.common import PaperSetup
    from repro.experiments.resilience import run_resilience

    result = run_resilience(
        utilization=0.6,
        capacity=150.0,
        setup=PaperSetup(horizon=400.0),
        n_sets=2,
        scenarios=("baseline", "blackout"),
        scheduler_names=("lsa", "ea-dvfs"),
    )
    return {
        "experiment": "resilience",
        "config": {
            "utilization": 0.6,
            "capacity": 150.0,
            "horizon": 400.0,
            "n_sets": 2,
            "scenarios": ["baseline", "blackout"],
            "schedulers": ["lsa", "ea-dvfs"],
        },
        "miss_rates": {
            f"{scenario}/{scheduler}": rate
            for (scenario, scheduler), rate in sorted(
                result.miss_rates.items()
            )
        },
        "failures": len(result.failures),
    }


#: name -> builder, the registry iterated by the golden regression test.
GOLDEN_PAYLOADS = {
    "fig5_small": golden_fig5_payload,
    "table1_small": golden_table1_payload,
    "resilience_small": golden_resilience_payload,
}

__all__.append("GOLDEN_PAYLOADS")
