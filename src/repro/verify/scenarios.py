"""Seeded random simulation scenarios shared by the verify tier.

One :class:`ScenarioSpec` describes a complete simulation world —
workload, energy source, storage, predictor, miss policy, horizon, and
an optional :class:`FaultPlan` of :mod:`repro.faults` decorators —
*without* holding any live objects.  Builders construct fresh stateful
components on demand, so the same spec can be run through several
schedulers and every run faces an identical world (the paired-comparison
discipline of the experiment harness, extended to verification).

Two front ends share this module:

* :func:`random_scenario` draws a spec from a single integer seed with a
  private numpy RNG — the differential harness's sampling path, usable
  without Hypothesis;
* :mod:`repro.verify.strategies` exposes a Hypothesis strategy producing
  the same specs with full shrinking support for property-based tests.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import Optional, Union

import numpy as np

from repro.cpu.dvfs import FrequencyScale
from repro.cpu.presets import xscale_pxa
from repro.energy.predictor import (
    HarvestPredictor,
    LastValuePredictor,
    MeanPowerPredictor,
    OraclePredictor,
    ProfilePredictor,
)
from repro.energy.source import (
    ConstantSource,
    DayNightSource,
    EnergySource,
    SolarStochasticSource,
)
from repro.energy.storage import EnergyStorage, IdealStorage
from repro.faults import (
    BiasedPredictor,
    BlackoutSource,
    BrownoutSource,
    DegradedStorage,
    OverrunWorkload,
    SensorDropoutSource,
)
from repro.sched.base import Scheduler
from repro.sched.registry import make_scheduler
from repro.sim.simulator import (
    DeadlineMissPolicy,
    HarvestingRtSimulator,
    SimulationConfig,
    SimulationResult,
)
from repro.tasks.task import PeriodicTask, TaskSet

__all__ = [
    "FaultPlan",
    "PERIOD_CHOICES",
    "PREDICTOR_KINDS",
    "ScenarioSpec",
    "SOURCE_FAULT_KINDS",
    "SOURCE_KINDS",
    "TaskParams",
    "random_scenario",
]

#: Period pool of randomized workloads (subset of the paper's choices,
#: small enough that short horizons cover several hyperperiods).
PERIOD_CHOICES: tuple[float, ...] = (10.0, 20.0, 30.0, 50.0, 80.0)

SOURCE_KINDS: tuple[str, ...] = ("constant", "solar", "daynight")
PREDICTOR_KINDS: tuple[str, ...] = ("oracle", "profile", "mean", "last-value")
SOURCE_FAULT_KINDS: tuple[str, ...] = ("blackout", "brownout", "dropout")

#: Horizon pool — long enough for energy dynamics, short enough that a
#: 100-scenario differential sweep stays interactive.
HORIZON_CHOICES: tuple[float, ...] = (200.0, 400.0, 600.0)

#: Seed offset separating a scenario's fault RNG streams from its
#: source/AET streams.
_FAULT_SEED_OFFSET = 4_000_037


@dataclass(frozen=True)
class TaskParams:
    """Parameters of one periodic task in a scenario."""

    period: float
    wcet: float
    bcet_ratio: float = 1.0


@dataclass(frozen=True)
class FaultPlan:
    """Which :mod:`repro.faults` decorators a scenario applies."""

    source_fault: Optional[str] = None  # one of SOURCE_FAULT_KINDS
    storage_spikes: bool = False
    predictor_gain: float = 1.0
    predictor_offset_power: float = 0.0
    overrun: bool = False

    def __post_init__(self) -> None:
        if self.source_fault is not None and (
            self.source_fault not in SOURCE_FAULT_KINDS
        ):
            raise ValueError(
                f"unknown source fault {self.source_fault!r}; "
                f"available: {SOURCE_FAULT_KINDS}"
            )

    @property
    def any_active(self) -> bool:
        return (
            self.source_fault is not None
            or self.storage_spikes
            or self.predictor_gain != 1.0
            # exact: fault-plan fields are drawn from finite menus
            or self.predictor_offset_power != 0.0  # repro-lint: disable=RPR101 -- config toggle
            or self.overrun
        )


@dataclass(frozen=True)
class ScenarioSpec:
    """One fully-described, reproducible simulation world."""

    seed: int
    tasks: tuple[TaskParams, ...]
    source_kind: str = "solar"
    capacity: float = 100.0
    predictor_kind: str = "oracle"
    miss_policy: str = "drop"  # DeadlineMissPolicy value
    horizon: float = 400.0
    aet_seed: Optional[int] = None
    faults: FaultPlan = field(default_factory=FaultPlan)

    def __post_init__(self) -> None:
        if not self.tasks:
            raise ValueError("a scenario needs at least one task")
        if self.source_kind not in SOURCE_KINDS:
            raise ValueError(
                f"unknown source kind {self.source_kind!r}; "
                f"available: {SOURCE_KINDS}"
            )
        if self.predictor_kind not in PREDICTOR_KINDS:
            raise ValueError(
                f"unknown predictor kind {self.predictor_kind!r}; "
                f"available: {PREDICTOR_KINDS}"
            )
        DeadlineMissPolicy(self.miss_policy)  # raises on unknown values
        if self.capacity <= 0 or math.isnan(self.capacity):
            raise ValueError(f"capacity must be > 0, got {self.capacity!r}")
        if self.faults.storage_spikes and math.isinf(self.capacity):
            raise ValueError("storage spikes require a finite capacity")

    # -- builders ---------------------------------------------------------

    def scale(self) -> FrequencyScale:
        """All verify scenarios run the paper's XScale ladder."""
        return xscale_pxa()

    def build_taskset(self) -> TaskSet:
        tasks = [
            PeriodicTask(
                period=p.period,
                wcet=p.wcet,
                name=f"t{i}",
                bcet_ratio=p.bcet_ratio,
            )
            for i, p in enumerate(self.tasks)
        ]
        taskset: TaskSet = TaskSet(tasks)
        if self.faults.overrun:
            taskset = OverrunWorkload(
                taskset, seed=self.seed + _FAULT_SEED_OFFSET
            )
        return taskset

    def build_source(self) -> EnergySource:
        if self.source_kind == "constant":
            source: EnergySource = ConstantSource(1.0 + (self.seed % 7) * 0.5)
        elif self.source_kind == "solar":
            source = SolarStochasticSource(seed=self.seed)
        else:
            source = DayNightSource(
                day_power=4.0, night_power=0.2,
                day_length=60.0, night_length=40.0,
            )
        fault_seed = self.seed + _FAULT_SEED_OFFSET
        if self.faults.source_fault == "blackout":
            source = BlackoutSource(source, seed=fault_seed)
        elif self.faults.source_fault == "brownout":
            source = BrownoutSource(source, seed=fault_seed)
        elif self.faults.source_fault == "dropout":
            source = SensorDropoutSource(source, seed=fault_seed)
        return source

    def build_storage(self) -> EnergyStorage:
        initial = self.capacity if math.isfinite(self.capacity) else math.inf
        storage: EnergyStorage = IdealStorage(
            capacity=self.capacity, initial=initial
        )
        if self.faults.storage_spikes:
            storage = DegradedStorage(
                storage,
                seed=self.seed + _FAULT_SEED_OFFSET,
                spike_probability=0.05,
                spike_power=0.5,
            )
        return storage

    def build_predictor(self, source: EnergySource) -> HarvestPredictor:
        if self.predictor_kind == "oracle":
            predictor: HarvestPredictor = OraclePredictor(source)
        elif self.predictor_kind == "profile":
            predictor = ProfilePredictor(period=100.0, n_bins=16)
        elif self.predictor_kind == "last-value":
            predictor = LastValuePredictor()
        else:
            predictor = MeanPowerPredictor()
        if (
            self.faults.predictor_gain != 1.0
            or self.faults.predictor_offset_power != 0.0  # repro-lint: disable=RPR101 -- config toggle
        ):
            predictor = BiasedPredictor(
                predictor,
                gain=self.faults.predictor_gain,
                offset_power=self.faults.predictor_offset_power,
            )
        return predictor

    def build_config(self, watchdog: bool = False) -> SimulationConfig:
        return SimulationConfig(
            horizon=self.horizon,
            miss_policy=DeadlineMissPolicy(self.miss_policy),
            aet_seed=self.aet_seed,
            watchdog=watchdog,
        )

    def build_simulator(
        self,
        scheduler: Union[str, Scheduler],
        watchdog: bool = False,
    ) -> HarvestingRtSimulator:
        """A single-use simulator of this world under ``scheduler``.

        ``scheduler`` is either a registry name or a ready instance (the
        oracle harness passes wrapped instances).
        """
        if isinstance(scheduler, str):
            scheduler = make_scheduler(scheduler, self.scale())
        source = self.build_source()
        return HarvestingRtSimulator(
            taskset=self.build_taskset(),
            source=source,
            storage=self.build_storage(),
            scheduler=scheduler,
            predictor=self.build_predictor(source),
            config=self.build_config(watchdog=watchdog),
        )

    def run(
        self,
        scheduler: Union[str, Scheduler],
        watchdog: bool = False,
    ) -> SimulationResult:
        """Build and run one simulation of this world."""
        return self.build_simulator(scheduler, watchdog=watchdog).run()

    # -- derived scenarios ------------------------------------------------

    def without_faults(self) -> "ScenarioSpec":
        return dataclasses.replace(self, faults=FaultPlan())

    def with_infinite_storage(self) -> "ScenarioSpec":
        """The section 4.3 special case: unbounded stored energy.

        Storage faults are dropped (capacity fade and spikes are
        meaningless on an infinite store); all other faults survive, so
        the EDF-degeneracy check also covers faulted worlds.
        """
        return dataclasses.replace(
            self,
            capacity=math.inf,
            faults=dataclasses.replace(self.faults, storage_spikes=False),
        )

    @property
    def total_utilization(self) -> float:
        return sum(p.wcet / p.period for p in self.tasks)

    @property
    def lossless_storage(self) -> bool:
        """Whether the energy-conservation *equality* applies."""
        return not self.faults.storage_spikes and math.isfinite(self.capacity)

    def describe(self) -> str:
        """Compact single-line description for discrepancy reports."""
        tasks = ", ".join(
            f"({p.period:g}, {p.wcet:.3g}"
            + (f", bcet={p.bcet_ratio:g}" if p.bcet_ratio != 1.0 else "")
            + ")"
            for p in self.tasks
        )
        parts = [
            f"seed={self.seed}",
            f"tasks=[{tasks}]",
            f"source={self.source_kind}",
            f"capacity={self.capacity:g}",
            f"predictor={self.predictor_kind}",
            f"miss_policy={self.miss_policy}",
            f"horizon={self.horizon:g}",
        ]
        if self.aet_seed is not None:
            parts.append(f"aet_seed={self.aet_seed}")
        if self.faults.any_active:
            active = []
            if self.faults.source_fault:
                active.append(self.faults.source_fault)
            if self.faults.storage_spikes:
                active.append("storage-spikes")
            if self.faults.predictor_gain != 1.0:
                active.append(f"gain={self.faults.predictor_gain:g}")
            if self.faults.predictor_offset_power != 0.0:  # repro-lint: disable=RPR101 -- config toggle
                active.append(
                    f"offset={self.faults.predictor_offset_power:g}"
                )
            if self.faults.overrun:
                active.append("overrun")
            parts.append(f"faults[{'+'.join(active)}]")
        return " ".join(parts)


def _random_tasks(rng: np.random.Generator) -> tuple[TaskParams, ...]:
    n_tasks = int(rng.integers(1, 5))
    tasks = []
    total_u = 0.0
    for _ in range(n_tasks):
        period = float(rng.choice(PERIOD_CHOICES))
        u = float(rng.uniform(0.02, 0.35))
        if total_u + u > 1.0:
            u = max(0.01, 1.0 - total_u)
        total_u += u
        bcet = float(rng.choice([1.0, 1.0, 0.6]))
        tasks.append(
            TaskParams(period=period, wcet=u * period, bcet_ratio=bcet)
        )
    return tuple(tasks)


def _random_faults(rng: np.random.Generator) -> FaultPlan:
    if rng.random() < 0.5:
        return FaultPlan()
    source_fault = None
    if rng.random() < 0.5:
        source_fault = str(rng.choice(SOURCE_FAULT_KINDS))
    gain, offset = 1.0, 0.0
    if rng.random() < 0.4:
        gain = float(rng.choice([0.5, 0.8, 1.3, 2.0]))
        offset = float(rng.choice([0.0, -0.5, 0.5]))
    return FaultPlan(
        source_fault=source_fault,
        storage_spikes=bool(rng.random() < 0.3),
        predictor_gain=gain,
        predictor_offset_power=offset,
        overrun=bool(rng.random() < 0.3),
    )


def random_scenario(seed: int, allow_faults: bool = True) -> ScenarioSpec:
    """Draw one scenario from a single integer seed (bit-reproducible).

    Equal seeds yield equal specs forever — the differential harness
    reports the scenario seed as the minimal reproduction handle.
    """
    rng = np.random.default_rng(seed)
    tasks = _random_tasks(rng)
    source_kind = str(rng.choice(SOURCE_KINDS))
    capacity = float(rng.uniform(5.0, 500.0))
    predictor_kind = str(rng.choice(PREDICTOR_KINDS))
    miss_policy = str(rng.choice([p.value for p in DeadlineMissPolicy]))
    horizon = float(rng.choice(HORIZON_CHOICES))
    aet_seed = int(rng.integers(0, 1_000_000))
    faults = _random_faults(rng) if allow_faults else FaultPlan()
    return ScenarioSpec(
        seed=seed,
        tasks=tasks,
        source_kind=source_kind,
        capacity=capacity,
        predictor_kind=predictor_kind,
        miss_policy=miss_policy,
        horizon=horizon,
        aet_seed=aet_seed,
        faults=faults,
    )
