"""Differential-testing harness over seeded random scenarios.

:func:`run_differential` draws N reproducible worlds with
:func:`repro.verify.scenarios.random_scenario` and subjects each to four
independent checks:

* **oracle** — the scenario run under an
  :class:`~repro.verify.oracles.OracleCheckedScheduler`-wrapped EA-DVFS;
  every decision is asserted against the re-derived equations (5)-(9);
* **edf-degeneracy** — the same world with infinite storage run under
  ``ea-dvfs`` and ``edf``; the schedules must be identical (section 4.3);
* **lsa-degeneracy** — the world run under ``ea-dvfs-noslowdown`` and
  ``lsa``; the schedules must be identical (the ``s2`` rule alone *is*
  LSA);
* **invariants** — energy-conservation, causality and accounting
  re-checks over every completed run above.

Failures become structured :class:`Discrepancy` records inside a
:class:`DifferentialReport`; the smallest failing seed is surfaced as the
minimal reproduction handle (``random_scenario(seed)`` rebuilds the
world bit-for-bit).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.sched.registry import make_scheduler
from repro.sim.simulator import DeadlineMissPolicy, SimulationResult
from repro.verify.oracles import (
    OracleCheckedScheduler,
    OracleViolationError,
    check_accounting,
    check_causality,
    check_energy_conservation,
    compare_schedules,
)
from repro.verify.scenarios import ScenarioSpec, random_scenario

__all__ = [
    "CHECK_NAMES",
    "Discrepancy",
    "DifferentialReport",
    "run_differential",
    "run_scenario_checks",
]

CHECK_NAMES: tuple[str, ...] = (
    "oracle",
    "edf-degeneracy",
    "lsa-degeneracy",
    "invariants",
)


@dataclass(frozen=True)
class Discrepancy:
    """One divergence between implementation and oracle/peer."""

    seed: int
    check: str
    detail: str
    scenario: str

    def format_text(self) -> str:
        return (
            f"[{self.check}] seed={self.seed}: {self.detail}\n"
            f"    scenario: {self.scenario}\n"
            f"    reproduce: repro.verify.scenarios.random_scenario"
            f"({self.seed})"
        )


@dataclass
class DifferentialReport:
    """Aggregate outcome of a differential sweep."""

    n_scenarios: int
    base_seed: int
    checks_run: int = 0
    simulations_run: int = 0
    discrepancies: list[Discrepancy] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.discrepancies

    @property
    def minimal_seed(self) -> Optional[int]:
        """Smallest scenario seed with a discrepancy (reproduction handle)."""
        if not self.discrepancies:
            return None
        return min(d.seed for d in self.discrepancies)

    def format_text(self) -> str:
        lines = [
            f"differential sweep: {self.n_scenarios} scenarios "
            f"(seeds {self.base_seed}..{self.base_seed + self.n_scenarios - 1}), "
            f"{self.checks_run} checks, {self.simulations_run} simulations"
        ]
        if self.ok:
            lines.append("no discrepancies found")
        else:
            lines.append(f"{len(self.discrepancies)} DISCREPANCIES:")
            for discrepancy in self.discrepancies:
                lines.append(discrepancy.format_text())
            lines.append(
                f"minimal reproducing seed: {self.minimal_seed}"
            )
        return "\n".join(lines)


def _invariant_problems(
    spec: ScenarioSpec, result: SimulationResult
) -> list[str]:
    policy = DeadlineMissPolicy(spec.miss_policy)
    problems = check_energy_conservation(
        result,
        initial_stored=spec.capacity,
        lossless=spec.lossless_storage,
    )
    problems += check_causality(result, policy)
    problems += check_accounting(result, policy)
    return problems


def run_scenario_checks(spec: ScenarioSpec) -> tuple[list[Discrepancy], int, int]:
    """All four checks on one scenario.

    Returns ``(discrepancies, checks_run, simulations_run)``.
    """
    discrepancies: list[Discrepancy] = []
    checks = 0
    sims = 0
    completed: list[tuple[ScenarioSpec, SimulationResult]] = []

    def fail(check: str, detail: str, of: ScenarioSpec) -> None:
        discrepancies.append(Discrepancy(
            seed=spec.seed, check=check, detail=detail,
            scenario=of.describe(),
        ))

    # 1. decision oracle on the full EA-DVFS policy
    checks += 1
    wrapped = OracleCheckedScheduler(
        make_scheduler("ea-dvfs", spec.scale())  # type: ignore[arg-type]
    )
    try:
        sims += 1
        completed.append((spec, spec.run(wrapped)))
    except OracleViolationError as error:
        fail("oracle", str(error.violation), spec)

    # 2. infinite storage must collapse EA-DVFS onto plain EDF@f_max
    checks += 1
    spec_inf = spec.with_infinite_storage()
    sims += 2
    result_ea = spec_inf.run("ea-dvfs")
    result_edf = spec_inf.run("edf")
    for problem in compare_schedules(
        result_ea, result_edf, label_a="ea-dvfs", label_b="edf"
    ):
        fail("edf-degeneracy", problem, spec_inf)

    # 3. slow-down disabled must collapse EA-DVFS onto LSA
    checks += 1
    sims += 2
    result_nosd = spec.run("ea-dvfs-noslowdown")
    result_lsa = spec.run("lsa")
    for problem in compare_schedules(
        result_nosd, result_lsa, label_a="ea-dvfs-noslowdown", label_b="lsa"
    ):
        fail("lsa-degeneracy", problem, spec)
    completed.append((spec, result_nosd))
    completed.append((spec, result_lsa))

    # 4. physical/accounting invariants over every finite-storage run
    checks += 1
    for run_spec, result in completed:
        for problem in _invariant_problems(run_spec, result):
            fail("invariants", problem, run_spec)

    return discrepancies, checks, sims


def run_differential(
    n: int = 100,
    seed: int = 0,
    allow_faults: bool = True,
    progress: Optional[Callable[[int, int], None]] = None,
) -> DifferentialReport:
    """Run the full check battery over ``n`` seeded scenarios.

    ``progress`` (if given) is called as ``progress(i, n)`` after each
    scenario — the CLI uses it for a live counter.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n!r}")
    report = DifferentialReport(n_scenarios=n, base_seed=seed)
    for i in range(n):
        spec = random_scenario(seed + i, allow_faults=allow_faults)
        discrepancies, checks, sims = run_scenario_checks(spec)
        report.discrepancies.extend(discrepancies)
        report.checks_run += checks
        report.simulations_run += sims
        if progress is not None:
            progress(i + 1, n)
    return report
