"""Shared Hypothesis strategies for the whole test suite.

Consolidates the ad-hoc ``@st.composite`` strategies previously
duplicated across ``tests/energy/``, ``tests/tasks/`` and ``tests/sim/``
into one importable library, and adds a strategy over full
:class:`~repro.verify.scenarios.ScenarioSpec` worlds for differential
property tests.

Hypothesis is a *test-only* dependency: importing this module without it
raises a clear :class:`ModuleNotFoundError` instead of a cryptic
``NameError`` later.  Nothing else in :mod:`repro.verify` imports it, so
the CLI harness stays dependency-free.
"""

from __future__ import annotations

try:
    from hypothesis import strategies as st
except ModuleNotFoundError as error:  # pragma: no cover - env-dependent
    raise ModuleNotFoundError(
        "repro.verify.strategies requires the 'hypothesis' package "
        "(a test-only dependency); install it or avoid importing this "
        "module from non-test code"
    ) from error

from repro.sim.simulator import DeadlineMissPolicy
from repro.verify.scenarios import (
    HORIZON_CHOICES,
    PERIOD_CHOICES,
    PREDICTOR_KINDS,
    SOURCE_FAULT_KINDS,
    SOURCE_KINDS,
    FaultPlan,
    ScenarioSpec,
    TaskParams,
)

__all__ = [
    "fault_plans",
    "scenario_specs",
    "scheduler_names",
    "seeds",
    "storage_programs",
    "task_counts",
    "task_params_lists",
    "utilizations",
]

#: Schedulers exercised by generic whole-simulation property tests (the
#: energy-aware pair plus both EDF baselines).
FUZZED_SCHEDULERS: tuple[str, ...] = ("edf", "lsa", "ea-dvfs", "stretch-edf")


def seeds(max_seed: int = 1000) -> st.SearchStrategy[int]:
    """Integer RNG seeds for deterministic components."""
    return st.integers(min_value=0, max_value=max_seed)


def task_counts(max_tasks: int = 12) -> st.SearchStrategy[int]:
    """Task-set sizes for the workload generators."""
    return st.integers(min_value=1, max_value=max_tasks)


def utilizations(
    min_value: float = 0.05, max_value: float = 1.0
) -> st.SearchStrategy[float]:
    """Total utilization targets for the workload generators."""
    return st.floats(min_value=min_value, max_value=max_value)


@st.composite
def storage_programs(draw):
    """A random sequence of charge/discharge segments.

    Returns ``(capacity, initial, segments)`` where each segment is a
    ``(duration, harvest_power, draw_power)`` triple — the contract the
    storage property tests have always used.
    """
    capacity = draw(st.floats(min_value=10.0, max_value=1000.0))
    initial = draw(st.floats(min_value=0.0, max_value=1.0)) * capacity
    n = draw(st.integers(min_value=1, max_value=20))
    segments = [
        (
            draw(st.floats(min_value=0.0, max_value=10.0)),  # duration
            draw(st.floats(min_value=0.0, max_value=20.0)),  # harvest
            draw(st.floats(min_value=0.0, max_value=20.0)),  # draw
        )
        for _ in range(n)
    ]
    return capacity, initial, segments


@st.composite
def task_params_lists(draw, max_tasks: int = 4):
    """Schedulable-by-construction task parameter tuples (total U <= 1)."""
    n_tasks = draw(st.integers(min_value=1, max_value=max_tasks))
    tasks = []
    total_u = 0.0
    for _ in range(n_tasks):
        period = float(draw(st.sampled_from(PERIOD_CHOICES)))
        u = draw(st.floats(min_value=0.02, max_value=0.35))
        remaining = 1.0 - total_u
        if u > remaining:
            if remaining < 0.01:
                break  # budget exhausted; a floor here would overshoot U=1
            u = remaining
        total_u += u
        bcet = draw(st.sampled_from([1.0, 1.0, 0.6]))
        tasks.append(
            TaskParams(period=period, wcet=u * period, bcet_ratio=bcet)
        )
    return tuple(tasks)


@st.composite
def fault_plans(draw):
    """Random :class:`FaultPlan` — roughly half are the clean plan."""
    if draw(st.booleans()):
        return FaultPlan()
    gain, offset = 1.0, 0.0
    if draw(st.booleans()):
        gain = draw(st.sampled_from([0.5, 0.8, 1.3, 2.0]))
        offset = draw(st.sampled_from([0.0, -0.5, 0.5]))
    return FaultPlan(
        source_fault=draw(
            st.sampled_from((None,) + SOURCE_FAULT_KINDS)
        ),
        storage_spikes=draw(st.booleans()),
        predictor_gain=gain,
        predictor_offset_power=offset,
        overrun=draw(st.booleans()),
    )


@st.composite
def scenario_specs(draw, allow_faults: bool = True):
    """Full simulation worlds as :class:`ScenarioSpec` values.

    Same distribution family as
    :func:`repro.verify.scenarios.random_scenario`, expressed as a
    Hypothesis strategy so failing worlds shrink toward minimal ones.
    """
    faults = draw(fault_plans()) if allow_faults else FaultPlan()
    return ScenarioSpec(
        seed=draw(st.integers(min_value=0, max_value=10_000)),
        tasks=draw(task_params_lists()),
        source_kind=draw(st.sampled_from(SOURCE_KINDS)),
        capacity=draw(st.floats(min_value=5.0, max_value=500.0)),
        predictor_kind=draw(st.sampled_from(PREDICTOR_KINDS)),
        miss_policy=draw(
            st.sampled_from([policy.value for policy in DeadlineMissPolicy])
        ),
        horizon=float(draw(st.sampled_from(HORIZON_CHOICES))),
        aet_seed=draw(st.integers(min_value=0, max_value=1000)),
        faults=faults,
    )


def scheduler_names(
    names: tuple[str, ...] = FUZZED_SCHEDULERS,
) -> st.SearchStrategy[str]:
    """Registry names of schedulers to fuzz."""
    return st.sampled_from(names)
