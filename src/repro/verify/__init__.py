"""Differential-testing and oracle subsystem.

The verify tier checks the *relationships* the paper asserts rather than
individual outputs:

* :mod:`repro.verify.oracles` — analytic decision oracles (independent
  re-derivation of equations (5)-(9)), degeneracy schedule comparison,
  and trace-level conservation/causality/accounting re-checks;
* :mod:`repro.verify.scenarios` — seeded random simulation worlds,
  reproducible from a single integer seed;
* :mod:`repro.verify.differential` — the N-scenario differential sweep
  behind ``repro verify``;
* :mod:`repro.verify.batch_equivalence` — the scalar-vs-vectorized
  engine comparison behind ``repro verify --batch``;
* :mod:`repro.verify.golden` — the golden-trace regression store under
  ``tests/golden/``;
* :mod:`repro.verify.strategies` — shared Hypothesis strategies
  (test-only; the rest of the package never imports Hypothesis).

See ``docs/testing.md`` for the full testing story.
"""

from repro.verify.batch_equivalence import (
    BatchEquivalenceReport,
    run_batch_equivalence,
)
from repro.verify.differential import (
    CHECK_NAMES,
    DifferentialReport,
    Discrepancy,
    run_differential,
    run_scenario_checks,
)
from repro.verify.golden import (
    GOLDEN_PAYLOADS,
    GoldenMismatch,
    GoldenStore,
)
from repro.verify.oracles import (
    OracleCheckedScheduler,
    OraclePlan,
    OracleViolation,
    OracleViolationError,
    check_accounting,
    check_causality,
    check_energy_conservation,
    compare_schedules,
    expected_ea_dvfs_decision,
    expected_lazy_decision,
    recompute_plan,
)
from repro.verify.scenarios import (
    FaultPlan,
    ScenarioSpec,
    TaskParams,
    random_scenario,
)

__all__ = [
    "BatchEquivalenceReport",
    "CHECK_NAMES",
    "DifferentialReport",
    "Discrepancy",
    "FaultPlan",
    "GOLDEN_PAYLOADS",
    "GoldenMismatch",
    "GoldenStore",
    "OracleCheckedScheduler",
    "OraclePlan",
    "OracleViolation",
    "OracleViolationError",
    "ScenarioSpec",
    "TaskParams",
    "check_accounting",
    "check_causality",
    "check_energy_conservation",
    "compare_schedules",
    "expected_ea_dvfs_decision",
    "expected_lazy_decision",
    "random_scenario",
    "recompute_plan",
    "run_batch_equivalence",
    "run_differential",
    "run_scenario_checks",
]
