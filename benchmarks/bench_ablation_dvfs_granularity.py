"""Ablation — DVFS ladder granularity.

The paper uses five XScale operating points.  How much does EA-DVFS
leave on the table versus an (almost) continuous cubic-power ladder, and
how much worse is a processor with no DVFS at all (full speed only,
where EA-DVFS degenerates to LSA)?
"""

from repro.experiments.ablations import run_dvfs_granularity_ablation


def test_dvfs_granularity_ablation(benchmark, report):
    result = benchmark.pedantic(
        run_dvfs_granularity_ablation, rounds=1, iterations=1
    )
    report("ablation_dvfs_granularity", result.format_text())

    rates = result.metrics["rates"]
    # Having DVFS at all buys a lot over single-speed. Extra granularity
    # is roughly neutral: the dense ladder's very slow levels stretch
    # deeper, which helps energy but erodes the timing margin, so it can
    # land slightly on either side of the 5-point XScale ladder.
    assert rates["xscale-5"] <= rates["single-speed"]
    assert abs(rates["continuous-32"] - rates["xscale-5"]) < 0.05
    assert rates["single-speed"] > rates["xscale-5"]
