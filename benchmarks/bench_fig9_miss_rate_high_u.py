"""Figure 9 — deadline miss rate vs. normalized capacity at U = 0.8.

Paper claim: "EA-DVFS algorithm performs as well as LSA algorithm does"
at high workload — the processor seldom has slack to trade, so the two
curves come close together (while EA-DVFS still never does worse).
"""

from repro.experiments.fig8_fig9 import run_fig8, run_fig9


def test_fig9_miss_rate_high_utilization(benchmark, report):
    result = benchmark.pedantic(run_fig9, rounds=1, iterations=1)
    report("fig9_miss_rate_high_u", result.format_text())

    lsa = result.curve("lsa")
    ea = result.curve("ea-dvfs")
    assert (ea <= lsa + 1e-9).all()
    # Both decline with capacity and reach (near-)zero at the top end.
    assert lsa[-1] <= lsa[0]
    assert ea[-1] < 0.02
    assert lsa[-1] < 0.02


def test_fig9_gap_narrower_than_fig8(benchmark, report):
    """The relative EA-DVFS advantage shrinks from U=0.4 to U=0.8."""
    low, high = benchmark.pedantic(
        lambda: (run_fig8(), run_fig9()), rounds=1, iterations=1
    )
    report(
        "fig9_gap_comparison",
        f"mean miss-rate reduction at U=0.4: {low.mean_reduction:.1%}\n"
        f"mean miss-rate reduction at U=0.8: {high.mean_reduction:.1%}",
    )
    assert high.mean_reduction < low.mean_reduction
