"""Ablation — robustness of the EA-DVFS advantage to the source model.

The paper's eq. (13) source redraws its randomness every time unit, so
droughts cannot outlast the deterministic envelope trough.  Real solar
exhibits temporally-correlated weather.  This bench swaps in the
regime-switching :class:`~repro.energy.source.MarkovWeatherSource`
(clear/cloudy Markov chain, expected regime length 50 time units) and
re-runs the Figure-8-style comparison.

Expected shape: EA-DVFS keeps a clear miss-rate advantage over LSA under
correlated droughts — the paper's conclusion is not an artifact of the
i.i.d. source.
"""

from repro.experiments.ablations import run_weather_ablation


def test_weather_robustness_ablation(benchmark, report):
    result = benchmark.pedantic(run_weather_ablation, rounds=1, iterations=1)
    report("ablation_weather", result.format_text())

    rates = result.metrics["rates"]
    for cell in rates.values():
        assert cell["ea-dvfs"] <= cell["lsa"] + 1e-9
    # Somewhere in the starved region the advantage is substantial.
    best_gap = max(
        (cell["lsa"] - cell["ea-dvfs"]) / cell["lsa"]
        for cell in rates.values()
        if cell["lsa"] > 0.01
    )
    assert best_gap > 0.25
