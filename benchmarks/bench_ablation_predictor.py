"""Ablation — harvest-predictor fidelity (design choice in DESIGN.md).

EA-DVFS budgets energy with the predicted ES(t, D).  This bench swaps
the paper's profile predictor for an oracle and a running mean at a
scarce capacity and compares miss rates.

Expected shape: the oracle is (statistically) the best, and every online
predictor lands close to it — the eq. (13) source's per-quantum noise
averages out across a deadline window, so EA-DVFS is robust to
prediction fidelity.
"""

from repro.experiments.ablations import run_predictor_ablation


def test_predictor_ablation(benchmark, report):
    result = benchmark.pedantic(run_predictor_ablation, rounds=1, iterations=1)
    report("ablation_predictor", result.format_text())

    rates = result.metrics["rates"]
    # Online predictors stay within a small absolute band of the oracle.
    for kind in ("profile", "mean"):
        assert rates[kind] <= rates["oracle"] + 0.05
    # Sanity: this capacity actually stresses the system a little.
    assert max(rates.values()) < 0.5
