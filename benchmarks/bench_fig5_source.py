"""Figure 5 — energy source behavior (eq. (13)).

Regenerates the paper's source-behavior plot: one realization of
``PS(t) = 10 |N(t)| cos^2(t/70pi)`` over the 10,000-unit horizon.  Shape
checks: non-negative signal, peaks around 20, long-run mean near the
analytic value, and the ~690.9-unit envelope periodicity.
"""

import numpy as np

from repro.energy.source import SOLAR_ENVELOPE_PERIOD
from repro.experiments.fig5 import run_fig5


def test_fig5_source_behavior(benchmark, report):
    result = benchmark.pedantic(run_fig5, rounds=1, iterations=1)
    report("fig5_source", result.format_text())

    assert result.powers.min() >= 0.0
    # Peaks: the paper's plot tops out around 20 (2-sigma draws at crest).
    assert 12.0 <= result.peak_power <= 45.0  # repro-lint: disable=RPR101 -- coarse shape bounds
    # Long-run mean close to the closed form.
    assert abs(result.mean_power - result.analytic_mean) < 0.15 * result.analytic_mean
    # Envelope periodicity: power collected near crests dwarfs troughs.
    period = SOLAR_ENVELOPE_PERIOD
    phase = result.times % period
    crest = result.powers[(phase < period * 0.1) | (phase > period * 0.9)]
    trough = result.powers[np.abs(phase - period / 2) < period * 0.1]
    assert crest.mean() > 5.0 * max(trough.mean(), 1e-9)
