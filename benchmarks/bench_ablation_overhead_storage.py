"""Ablations — DVFS switching overhead and storage non-ideality.

The paper assumes free voltage switching and an ideal storage
(sections 3.2 / 5.1).  These benches quantify how much either assumption
is worth:

* switching overhead: EA-DVFS switches levels a few hundred times per
  10k-unit run; charging time+energy per switch should degrade it only
  marginally;
* non-ideal storage (90%/90% conversion, small leak): both schedulers
  lose energy, miss rates rise, but the EA-DVFS advantage over LSA
  persists.
"""

from repro.experiments.ablations import (
    run_nonideal_storage_ablation,
    run_switch_overhead_ablation,
)


def test_switch_overhead_ablation(benchmark, report):
    result = benchmark.pedantic(
        run_switch_overhead_ablation, rounds=1, iterations=1
    )
    report("ablation_switch_overhead", result.format_text())

    free = result.metrics["free"]
    costly = result.metrics["costly"]
    # Overhead can only hurt, and the paper's negligibility assumption
    # holds: the degradation stays small in absolute terms.
    assert costly >= free - 0.01
    assert costly - free < 0.10
    assert result.metrics["switches_per_run"] > 10


def test_nonideal_storage_ablation(benchmark, report):
    result = benchmark.pedantic(
        run_nonideal_storage_ablation, rounds=1, iterations=1
    )
    report("ablation_nonideal_storage", result.format_text())

    rates = result.metrics["rates"]
    # Losses hurt both policies...
    assert rates["lsa"][1] >= rates["lsa"][0] - 0.01
    assert rates["ea-dvfs"][1] >= rates["ea-dvfs"][0] - 0.01
    # ...but the EA-DVFS advantage over LSA survives non-ideality.
    assert rates["ea-dvfs"][1] <= rates["lsa"][1]
