"""Table 1 — ratio of minimum zero-miss storage capacities.

Paper: Cmin,LSA / Cmin,EA-DVFS = 2.5 / 1.33 / 1.05 / 1.01 at
U = 0.2 / 0.4 / 0.6 / 0.8.  Shape checks: the ratio is large at low
utilization, decays (weakly) monotonically, and approaches ~1 at U=0.8;
EA-DVFS never needs meaningfully more storage than LSA at any point.
"""

from repro.experiments.table1 import run_table1


def test_table1_min_capacity_ratios(benchmark, report):
    result = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    report("table1_min_capacity", result.format_text())

    ratios = [row.ratio for row in result.rows]
    utils = [row.utilization for row in result.rows]
    assert utils == [0.2, 0.4, 0.6, 0.8]

    # Strong advantage at low utilization (paper: 2.5x at U=0.2).
    assert ratios[0] >= 1.25
    # Decaying advantage: the low-U ratio dominates the high-U one.
    assert ratios[0] >= ratios[-1] - 0.05
    # Near-parity at high utilization (paper: 1.01 at U=0.8).
    assert ratios[-1] < ratios[0]
    # EA-DVFS never needs meaningfully more storage than LSA.
    assert all(r >= 0.93 for r in ratios)
    # Capacities themselves grow with utilization for both policies.
    lsa_caps = [row.cmin_lsa for row in result.rows]
    assert lsa_caps[-1] > lsa_caps[0]
