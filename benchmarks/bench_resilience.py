"""Resilience — miss rates under injected blackouts and WCET overruns.

Not a paper figure: a robustness check of the paper's headline claim.
If EA-DVFS's advantage over LSA/EDF only existed in the fault-free
world of section 5, it would be fragile; this bench asserts the
ordering survives harvest blackouts and overrunning jobs, and that the
fault injection actually bites (faulted scenarios miss more than the
baseline).

Standalone quick mode (finishes well under a minute)::

    PYTHONPATH=src python benchmarks/bench_resilience.py --quick
"""

import pytest

from repro.experiments.resilience import SCENARIOS, run_resilience

pytestmark = pytest.mark.slow


def test_resilience_fault_ordering(benchmark, report):
    result = benchmark.pedantic(run_resilience, rounds=1, iterations=1)
    report("resilience", result.format_text())

    rates = result.miss_rates
    schedulers = result.scheduler_names
    assert result.scenarios == SCENARIOS
    # Every cell completed: no salvaged failures in a healthy run.
    assert result.failures == ()

    for name in schedulers:
        base = rates[("baseline", name)]
        blackout = rates[("blackout", name)]
        overrun = rates[("overrun", name)]
        both = rates[("blackout+overrun", name)]
        # Faults bite: each injected fault strictly raises the miss rate,
        # and the combined scenario is at least as bad as either alone.
        assert blackout > base + 1e-3
        assert overrun > base + 1e-3
        assert both >= blackout - 1e-9
        assert both >= overrun - 1e-9

    # The paper's ordering survives the faults: EA-DVFS misses least in
    # every scenario, including the fully faulted one.
    for scenario in SCENARIOS:
        ea = rates[(scenario, "ea-dvfs")]
        assert ea <= rates[(scenario, "lsa")] + 1e-9
        assert ea <= rates[(scenario, "edf")] + 1e-9


def main(argv=None) -> None:
    """Standalone entry point (``--quick`` for a sub-minute smoke run)."""
    import argparse

    from repro.experiments.common import PaperSetup

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="short horizon and few seeds; finishes in a few seconds",
    )
    args = parser.parse_args(argv)
    if args.quick:
        result = run_resilience(
            setup=PaperSetup(horizon=2_000.0), n_sets=2
        )
    else:
        result = run_resilience()
    print(result.format_text())


if __name__ == "__main__":
    main()
