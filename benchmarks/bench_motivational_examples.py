"""Figures 1 & 3 — the deterministic worked examples of sections 2 / 4.3.

These reproduce the paper's hand-calculated schedules exactly and anchor
the benchmark harness: if these numbers drift, something is wrong at the
algorithm level, not in the statistics.
"""

import pytest

from repro.experiments.motivation import (
    run_motivational_example,
    run_stretch_example,
)


def _run_bundle():
    return {
        "fig1": {name: run_motivational_example(name)
                 for name in ("lsa", "ea-dvfs", "edf")},
        "fig3": {name: run_stretch_example(name)
                 for name in ("ea-dvfs", "stretch-edf")},
    }


def test_motivational_examples(benchmark, report):
    bundle = benchmark.pedantic(_run_bundle, rounds=1, iterations=1)
    lines = ["Figure 1 (tau2 deadline 21):"]
    lines += ["  " + o.format_text() for o in bundle["fig1"].values()]
    lines.append("Figure 3 (tau2 deadline 17):")
    lines += ["  " + o.format_text() for o in bundle["fig3"].values()]
    report("fig1_fig3_motivational", "\n".join(lines))

    fig1, fig3 = bundle["fig1"], bundle["fig3"]
    # Figure 1 paper numbers: LSA starts tau1 at 12, finishes at 16,
    # tau2 misses; EA-DVFS meets both (tau1 done exactly at s2 = 12).
    lsa_tau1 = next(j for j in fig1["lsa"].result.jobs
                    if j.task.name == "tau1")
    assert lsa_tau1.first_start_time == pytest.approx(12.0)
    assert lsa_tau1.completion_time == pytest.approx(16.0)
    assert not fig1["lsa"].tau2_met
    assert fig1["ea-dvfs"].result.missed_count == 0
    assert fig1["ea-dvfs"].tau1_completion == pytest.approx(12.0)
    # Greedy EDF drains the storage up front and starves tau2 too.
    assert not fig1["edf"].tau2_met

    # Figure 3: the s2 switch-up saves tau2; greedy stretching kills it.
    assert fig3["ea-dvfs"].result.missed_count == 0
    assert fig3["ea-dvfs"].tau2_met
    assert not fig3["stretch-edf"].tau2_met
