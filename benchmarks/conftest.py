"""Shared fixtures for the benchmark/reproduction harness.

Every bench regenerates one paper table or figure, asserts its *shape*
(who wins, roughly by how much, where the curves close up) and reports
the rendered result:

* to the terminal (bypassing pytest capture so ``--benchmark-only`` runs
  still show the tables), and
* to ``benchmarks/results/<name>.txt`` for EXPERIMENTS.md bookkeeping.

Replication counts scale with the ``REPRO_SCALE`` environment variable
(see ``repro.experiments.common``).
"""

from __future__ import annotations

import pathlib
import sys

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def report():
    """Callable writing a rendered experiment result to screen + file."""

    def _report(name: str, text: str) -> None:
        from repro.serialization import atomic_write_text

        RESULTS_DIR.mkdir(exist_ok=True)
        atomic_write_text(RESULTS_DIR / f"{name}.txt", text + "\n")
        banner = "=" * 72
        print(f"\n{banner}\n{name}\n{banner}\n{text}\n", file=sys.__stdout__)

    return _report
