"""Figure 6 — normalized remaining energy at low utilization (U = 0.4).

Paper claim: "the EA-DVFS-based system stores significantly more energy
than the LSA-based system on average."

Two series are regenerated:

* the paper's capacity sweep {200 ... 5000} — in our calibration most of
  these sit in the energy-abundant regime, so both curves stay high and
  the gap is small but consistently positive;
* a scarce-capacity supplement {30 ... 150} where the storage actually
  works for a living — there the EA-DVFS advantage is an order of
  magnitude larger, mirroring the paper's visual gap (see
  EXPERIMENTS.md for the calibration discussion).
"""

from repro.experiments.fig6_fig7 import run_fig6, run_remaining_energy

SCARCE_CAPACITIES = (30.0, 60.0, 100.0, 150.0)


def test_fig6_paper_capacities(benchmark, report):
    result = benchmark.pedantic(run_fig6, rounds=1, iterations=1)
    report("fig6_remaining_energy_low_u", result.format_text())

    # EA-DVFS stores at least as much energy as LSA on average...
    assert result.advantage >= 0.0
    # ...and both stay within the normalized range.
    for curve in result.curves.values():
        assert curve.min() >= -1e-9
        assert curve.max() <= 1.0 + 1e-9


def test_fig6_scarce_supplement(benchmark, report):
    result = benchmark.pedantic(
        lambda: run_remaining_energy(
            utilization=0.4,
            figure="Figure 6 (scarce-capacity supplement)",
            capacities=SCARCE_CAPACITIES,
        ),
        rounds=1,
        iterations=1,
    )
    report("fig6_remaining_energy_low_u_scarce", result.format_text())
    # Under real scarcity the advantage is clearly visible (paper:
    # "significantly more").
    assert result.advantage > 0.02
