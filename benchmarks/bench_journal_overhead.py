"""Journal overhead — what durability costs a sweep.

Two numbers matter for the crash-consistent runtime (see
``docs/runtime.md``):

* **append cost** — each finished cell pays one framed write + flush +
  ``fsync``.  This must stay far below the cost of simulating a cell
  (seconds), or checkpointing would not be free in practice.
* **resume scan** — reopening a populated journal replays every frame
  (length + CRC check + JSON decode).  This bounds the startup tax of
  a resumed sweep.

The measured baseline is recorded in
``benchmarks/results/journal_overhead.json`` next to the rendered
table, so regressions in the journal's write path show up in review.
"""

import json
import time
from pathlib import Path

from repro.runtime.journal import JournalKey, ResultJournal
from repro.serialization import atomic_write_text

RESULTS_DIR = Path(__file__).parent / "results"

#: Appends per measurement: large enough to average out fsync noise,
#: small enough to keep the bench under a couple of seconds on any disk.
N_RECORDS = 400


def _payload(i: int) -> dict:
    """A representative slim-result payload (same shape, same order of
    magnitude as a real journaled cell)."""
    return {
        "scheduler_name": "ea-dvfs",
        "horizon": 10_000.0,
        "released_count": 2000 + i,
        "completed_count": 1990,
        "missed_count": 10,
        "judged_count": 2000,
        "harvested_energy": 123456.789 + i,
        "drawn_energy": 98765.4321,
        "overflow_energy": 12.5,
        "leaked_energy": 0.0,
        "final_stored": 42.0,
        "storage_capacity": 200.0,
        "busy_time_profile": {"0.15": 100.0, "0.4": 2000.0, "1.0": 5000.0},
        "idle_time": 2900.0,
        "switch_count": 1234,
        "stall_count": 56,
        "stall_time": 78.9,
        "per_task_released": {f"t{k}": 400 for k in range(5)},
        "per_task_missed": {"t0": 10},
    }


def _key(i: int) -> JournalKey:
    return JournalKey(spec_hash=f"{i:064x}", scheduler_name="ea-dvfs")


def test_journal_overhead(tmp_path, report):
    path = tmp_path / "bench.journal"

    # -- append path: write + flush + fsync per record -------------------
    journal = ResultJournal(path)
    started = time.perf_counter()
    for i in range(N_RECORDS):
        journal.append(_key(i), "result", _payload(i))
    append_elapsed = time.perf_counter() - started
    journal.close()
    size = path.stat().st_size

    # -- resume path: full frame scan + CRC + JSON decode ----------------
    started = time.perf_counter()
    resumed = ResultJournal(path, create=False)
    scan_elapsed = time.perf_counter() - started
    assert len(resumed) == N_RECORDS
    assert resumed.info().torn_bytes_discarded == 0
    resumed.close()

    append_us = append_elapsed / N_RECORDS * 1e6
    scan_us = scan_elapsed / N_RECORDS * 1e6
    baseline = {
        "records": N_RECORDS,
        "journal_bytes": size,
        "bytes_per_record": round(size / N_RECORDS, 1),
        "append_total_s": round(append_elapsed, 4),
        "append_per_record_us": round(append_us, 1),
        "resume_scan_total_s": round(scan_elapsed, 4),
        "resume_scan_per_record_us": round(scan_us, 1),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    atomic_write_text(
        RESULTS_DIR / "journal_overhead.json",
        json.dumps(baseline, indent=2, sort_keys=True) + "\n",
    )

    lines = ["journal overhead baseline "
             f"({N_RECORDS} records, {size} bytes)"]
    for name, value in sorted(baseline.items()):
        lines.append(f"  {name:26} {value}")
    report("journal_overhead", "\n".join(lines))

    # Durability must stay cheap relative to a simulation cell (seconds):
    # allow generous slack for slow CI disks, catch order-of-magnitude
    # regressions (e.g. an accidental rewrite-the-file-per-append).
    assert append_us < 50_000, f"append cost exploded: {append_us:.0f}us"
    assert scan_us < 5_000, f"resume scan exploded: {scan_us:.0f}us"
