"""Ablations — the overflow-aware extension and AET variability.

* ``ea-dvfs-oa`` (see ``repro/sched/extensions.py``) at a tiny storage,
  where the storage clips frequently and slow execution can waste
  harvest: the extension must tie or improve on both miss rate and
  overflow waste.
* Actual execution times drawn from 50–100% of WCET: every policy
  improves, and the EA-DVFS advantage over LSA persists (re-deciding at
  each early completion implicitly reclaims the unspent energy budget).
"""

from repro.experiments.ablations import (
    run_aet_ablation,
    run_overflow_aware_ablation,
)


def test_overflow_aware_extension(benchmark, report):
    result = benchmark.pedantic(
        run_overflow_aware_ablation, rounds=1, iterations=1
    )
    report("ablation_overflow_aware", result.format_text())

    base_miss, base_ovf = result.metrics["rates"]["ea-dvfs"]
    ext_miss, ext_ovf = result.metrics["rates"]["ea-dvfs-oa"]
    # The extension must not hurt the miss rate (small noise allowance)...
    assert ext_miss <= base_miss + 0.01
    # ...and must not increase wasted harvest.
    assert ext_ovf <= base_ovf * 1.02 + 1.0


def test_aet_variability_ablation(benchmark, report):
    result = benchmark.pedantic(run_aet_ablation, rounds=1, iterations=1)
    report("ablation_aet_variability", result.format_text())

    rates = result.metrics["rates"]
    # Lighter true demand helps both policies...
    assert rates["lsa"][1] <= rates["lsa"][0] + 0.01
    assert rates["ea-dvfs"][1] <= rates["ea-dvfs"][0] + 0.01
    # ...and EA-DVFS keeps its advantage under execution-time variability.
    assert rates["ea-dvfs"][1] <= rates["lsa"][1]
