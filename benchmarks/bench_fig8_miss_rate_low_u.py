"""Figure 8 — deadline miss rate vs. normalized capacity at U = 0.4.

Paper claim: "EA-DVFS algorithm reduces the deadline miss rate over 50%
on average, compared to LSA algorithm" (same storage capacity, low
workload).
"""

import numpy as np

from repro.experiments.fig8_fig9 import run_fig8


def test_fig8_miss_rate_low_utilization(benchmark, report):
    result = benchmark.pedantic(run_fig8, rounds=1, iterations=1)
    report("fig8_miss_rate_low_u", result.format_text())

    lsa = result.curve("lsa")
    ea = result.curve("ea-dvfs")

    # EA-DVFS never misses more than LSA at any capacity.
    assert (ea <= lsa + 1e-9).all()
    # The headline: at least ~50% average reduction where LSA misses.
    assert result.mean_reduction >= 0.45
    # Both curves decline from small to large capacities and LSA actually
    # misses in the starved region (otherwise the claim is vacuous).
    assert lsa[0] > 0.05
    assert lsa[-1] <= lsa[0]
    assert ea[-1] <= ea[0]
    # Misses vanish (or nearly so) once the storage bridges the troughs.
    assert ea[-1] < 0.01
    # Monotone-ish decline: no large upward excursions along the sweep.
    assert np.all(np.diff(lsa) < 0.1)
