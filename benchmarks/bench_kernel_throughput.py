"""Micro-benchmarks — raw throughput of the simulation substrate.

Unlike the figure/table benches (one expensive round each), these use
pytest-benchmark's statistical timing: event-queue operations, one full
10k-unit simulation, and the analytic source integral.  They guard
against performance regressions in the hot paths that dominate
experiment wall-clock time.
"""

from repro.cpu.presets import xscale_pxa
from repro.energy.source import SolarStochasticSource
from repro.energy.storage import IdealStorage
from repro.experiments.common import PaperSetup
from repro.sched.registry import make_scheduler
from repro.sim.engine import EventQueue
from repro.sim.simulator import HarvestingRtSimulator, SimulationConfig


def test_event_queue_throughput(benchmark):
    def churn():
        queue = EventQueue()
        for i in range(2_000):
            queue.schedule(float(i % 97), "e", priority=i % 3)
        while queue:
            queue.pop()

    benchmark(churn)


def test_source_energy_integral(benchmark):
    source = SolarStochasticSource(seed=0)
    source.energy(0.0, 10_000.0)  # warm the draw cache

    benchmark(source.energy, 0.0, 10_000.0)


def test_full_simulation_ea_dvfs(benchmark):
    setup = PaperSetup()

    def run_once():
        scale = setup.scale()
        source = setup.source(0)
        simulator = HarvestingRtSimulator(
            taskset=setup.taskset(0, 0.4),
            source=source,
            storage=IdealStorage(capacity=100.0),
            scheduler=make_scheduler("ea-dvfs", scale),
            predictor=setup.predictor(source),
            config=SimulationConfig(horizon=10_000.0),
        )
        return simulator.run()

    result = benchmark.pedantic(run_once, rounds=3, iterations=1)
    assert result.released_count > 0


def test_full_simulation_lsa(benchmark):
    setup = PaperSetup()

    def run_once():
        scale = setup.scale()
        source = setup.source(0)
        simulator = HarvestingRtSimulator(
            taskset=setup.taskset(0, 0.4),
            source=source,
            storage=IdealStorage(capacity=100.0),
            scheduler=make_scheduler("lsa", scale),
            predictor=setup.predictor(source),
            config=SimulationConfig(horizon=10_000.0),
        )
        return simulator.run()

    result = benchmark.pedantic(run_once, rounds=3, iterations=1)
    assert result.released_count > 0
