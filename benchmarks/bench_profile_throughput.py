"""Batch-engine throughput on the *default-predictor* (profile) sweep.

Twin of ``bench_batch_throughput.py``, but on the grid that matters for
the flagship figures: the figure-8 capacity sweep under the default
``profile`` predictor.  Before the online predictors were vectorized,
this entire grid silently fell back to the scalar engine — the assert
below pins that it now runs fully vectorized, with the per-lane bin
walks and EWMA updates inside the SoA core.

Two speedups are computed (same methodology as the oracle bench):

* ``speedup_vs_live`` — live scalar cost (stratified subsample,
  extrapolated) over live batch cost; primary regression assert.
* ``speedup_vs_committed`` — committed scalar estimate from
  ``benchmarks/results/profile_throughput.json`` over live batch cost;
  loose order-of-magnitude guard, insensitive to CI hardware.

The refreshed baseline is written back to
``benchmarks/results/profile_throughput.json``.
"""

import json
import time
from pathlib import Path

from repro.analysis.parallel import RunSpec
from repro.experiments.common import PaperSetup
from repro.experiments.fig8_fig9 import DEFAULT_FRACTIONS, REFERENCE_CAPACITY
from repro.serialization import atomic_write_text
from repro.sim.batch import execute_runspecs
from repro.sim.simulator import SimulationResult

RESULTS_DIR = Path(__file__).parent / "results"
BASELINE_PATH = RESULTS_DIR / "profile_throughput.json"

#: Seeds per (capacity, scheduler) cell — matches the oracle bench, so
#: the two baselines compare like for like.
N_SEEDS = 48

#: Every ``STRIDE``-th cell runs on the scalar engine to estimate the
#: full-grid scalar cost.  Spec order is capacity-major, so a stride of
#: 18 samples every capacity and both schedulers.
STRIDE = 18

_SCHEDULERS = ("lsa", "ea-dvfs")
_UTILIZATION = 0.4


def _grid() -> list[RunSpec]:
    # PaperSetup's default predictor_kind is "profile" — spelled out
    # anyway: this bench exists to keep the *default* path fast.
    setup = PaperSetup(horizon=2000.0, predictor_kind="profile")
    reference = REFERENCE_CAPACITY[_UTILIZATION]
    return [
        RunSpec(
            scheduler_name=name,
            utilization=_UTILIZATION,
            capacity=fraction * reference,
            seed=seed,
            setup=setup,
        )
        for fraction in DEFAULT_FRACTIONS
        for name in _SCHEDULERS
        for seed in range(N_SEEDS)
    ]


def test_profile_throughput(report):
    specs = _grid()
    n_cells = len(specs)

    # -- live batch: the whole grid through the SoA core -----------------
    started = time.perf_counter()
    batch_outcomes, fallback_reasons = execute_runspecs(specs, slim=True)
    batch_total = time.perf_counter() - started
    fallbacks = sum(fallback_reasons.values())
    assert fallbacks == 0, (
        f"profile-predictor cells fell back to scalar: {fallback_reasons!r}"
    )
    assert all(
        isinstance(outcome, SimulationResult) for outcome in batch_outcomes
    )

    # -- live scalar: stratified subsample, extrapolated -----------------
    sample = list(range(0, n_cells, STRIDE))
    started = time.perf_counter()
    scalar_outcomes = []
    for i in sample:
        spec = specs[i]
        scalar_outcomes.append(spec.setup.run(
            spec.scheduler_name, spec.utilization, spec.capacity, spec.seed
        ))
    scalar_sample_total = time.perf_counter() - started
    scalar_per_cell = scalar_sample_total / len(sample)
    scalar_est_total = scalar_per_cell * n_cells

    # The engines must agree on the measured quantity (a cheap inline
    # sanity check; the real contract lives in the equivalence suite).
    for i, scalar_result in zip(sample, scalar_outcomes):
        batch_result = batch_outcomes[i]
        assert isinstance(batch_result, SimulationResult)
        assert batch_result.missed_count == scalar_result.missed_count, (
            f"engines disagree on cell {i}: batch "
            f"{batch_result.missed_count} vs scalar "
            f"{scalar_result.missed_count} misses"
        )

    speedup_vs_live = scalar_est_total / batch_total

    committed_scalar_est = None
    speedup_vs_committed = None
    if BASELINE_PATH.exists():
        committed = json.loads(BASELINE_PATH.read_text())
        if committed.get("cells") == n_cells:
            committed_scalar_est = committed.get("scalar_est_total_s")
    if committed_scalar_est is not None:
        speedup_vs_committed = committed_scalar_est / batch_total

    baseline = {
        "cells": n_cells,
        "horizon": 2000.0,
        "predictor": "profile",
        "utilization": _UTILIZATION,
        "batch_total_s": round(batch_total, 3),
        "batch_per_cell_ms": round(batch_total / n_cells * 1e3, 3),
        "batch_fallbacks": fallbacks,
        "scalar_sample_cells": len(sample),
        "scalar_per_cell_ms": round(scalar_per_cell * 1e3, 3),
        "scalar_est_total_s": round(scalar_est_total, 3),
        "speedup_vs_live": round(speedup_vs_live, 2),
    }
    if speedup_vs_committed is not None:
        baseline["speedup_vs_committed"] = round(speedup_vs_committed, 2)
    RESULTS_DIR.mkdir(exist_ok=True)
    atomic_write_text(
        BASELINE_PATH,
        json.dumps(baseline, indent=2, sort_keys=True) + "\n",
    )

    lines = [
        f"profile-predictor batch throughput ({n_cells} fig8-style "
        f"cells, horizon 2000)"
    ]
    for name, value in sorted(baseline.items()):
        lines.append(f"  {name:24} {value}")
    report("profile_throughput", "\n".join(lines))

    # The acceptance bar for vectorizing the online predictors was >=5x
    # on this grid; assert exactly that — the profile bin walk costs
    # more than the oracle's closed-form source integral, so this grid
    # sits closer to the bar than the oracle bench does.
    assert speedup_vs_live >= 5.0, (
        f"profile batch speedup collapsed: {speedup_vs_live:.1f}x vs "
        f"live scalar"
    )
    if speedup_vs_committed is not None:
        assert speedup_vs_committed >= 3.0, (
            f"batch engine slower than 1/3 of the committed scalar "
            f"estimate: {speedup_vs_committed:.1f}x"
        )
