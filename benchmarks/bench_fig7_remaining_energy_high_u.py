"""Figure 7 — normalized remaining energy at high utilization (U = 0.8).

Paper claim: "EA-DVFS-based system only has slightly more stored energy
than the LSA-based system" — at high utilization the processor rarely
gets to slow down, so the curves nearly coincide.

The shape check compares against the Figure 6 configuration: the EA-DVFS
advantage at U = 0.8 must be a small fraction of the U = 0.4 advantage
(measured on the scarce supplement, where both are resolvable above
noise).
"""

from repro.experiments.fig6_fig7 import run_fig7, run_remaining_energy

SCARCE_CAPACITIES = (30.0, 60.0, 100.0, 150.0)


def test_fig7_paper_capacities(benchmark, report):
    result = benchmark.pedantic(run_fig7, rounds=1, iterations=1)
    report("fig7_remaining_energy_high_u", result.format_text())

    # Near-coincident curves: tiny (possibly zero) advantage.
    assert abs(result.advantage) < 0.05
    for curve in result.curves.values():
        assert curve.min() >= -1e-9
        assert curve.max() <= 1.0 + 1e-9


def test_fig7_gap_shrinks_vs_fig6(benchmark, report):
    def run_both():
        low = run_remaining_energy(
            utilization=0.4,
            figure="Figure 6 (scarce)",
            capacities=SCARCE_CAPACITIES,
        )
        high = run_remaining_energy(
            utilization=0.8,
            figure="Figure 7 (scarce)",
            capacities=SCARCE_CAPACITIES,
        )
        return low, high

    low_u, high_u = benchmark.pedantic(run_both, rounds=1, iterations=1)
    report(
        "fig7_gap_comparison",
        f"EA-DVFS advantage at U=0.4: {low_u.advantage:+.4f}\n"
        f"EA-DVFS advantage at U=0.8: {high_u.advantage:+.4f}",
    )
    # The paper's contrast: 'significantly more' at 0.4 vs 'slightly
    # more' at 0.8.
    assert low_u.advantage > 0.0
    assert high_u.advantage < 0.6 * low_u.advantage
