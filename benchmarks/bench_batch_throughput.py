"""Batch-engine throughput on a figure-8-style capacity sweep.

Measures the vectorized SoA core (``repro.sim.batch``) against the
scalar event simulator on the exact workload it was built for: the
figure 8 miss-rate grid (U=0.4, 9 capacity fractions x 2 schedulers x
many seeds) under the oracle predictor.

Two speedups are computed:

* ``speedup_vs_live`` — live scalar cost (measured on a stratified
  subsample, extrapolated to the full grid) over live batch cost.  Both
  sides run on the same machine in the same process, so machine speed
  cancels; this is the primary regression assert.
* ``speedup_vs_committed`` — committed scalar estimate (from the
  baseline JSON produced at the previous commit of
  ``benchmarks/results/batch_throughput.json``) over live batch cost.
  Loose guard only: it trips on order-of-magnitude engine regressions
  without being sensitive to CI hardware.

The refreshed baseline is written back to
``benchmarks/results/batch_throughput.json``; the committed copy
records the speedup measured at commit time.
"""

import json
import time
from pathlib import Path

from repro.analysis.parallel import RunSpec
from repro.experiments.common import PaperSetup
from repro.experiments.fig8_fig9 import DEFAULT_FRACTIONS, REFERENCE_CAPACITY
from repro.serialization import atomic_write_text
from repro.sim.batch import execute_runspecs
from repro.sim.simulator import SimulationResult

RESULTS_DIR = Path(__file__).parent / "results"
BASELINE_PATH = RESULTS_DIR / "batch_throughput.json"

#: Seeds per (capacity, scheduler) cell.  48 puts the grid at 864 lanes
#: — wide enough to amortize the core's per-pass dispatch (the speedup
#: asymptote is reached around here), small enough for a ~15s bench.
N_SEEDS = 48

#: Every ``STRIDE``-th cell runs on the scalar engine to estimate the
#: full-grid scalar cost without paying for it (the full scalar grid
#: takes over a minute).  The spec order is capacity-major, so a stride
#: of 18 samples every capacity and both schedulers.
STRIDE = 18

_SCHEDULERS = ("lsa", "ea-dvfs")
_UTILIZATION = 0.4


def _grid() -> list[RunSpec]:
    setup = PaperSetup(horizon=2000.0, predictor_kind="oracle")
    reference = REFERENCE_CAPACITY[_UTILIZATION]
    return [
        RunSpec(
            scheduler_name=name,
            utilization=_UTILIZATION,
            capacity=fraction * reference,
            seed=seed,
            setup=setup,
        )
        for fraction in DEFAULT_FRACTIONS
        for name in _SCHEDULERS
        for seed in range(N_SEEDS)
    ]


def test_batch_throughput(report):
    specs = _grid()
    n_cells = len(specs)

    # -- live batch: the whole grid through the SoA core -----------------
    started = time.perf_counter()
    batch_outcomes, fallback_reasons = execute_runspecs(specs, slim=True)
    batch_total = time.perf_counter() - started
    fallbacks = sum(fallback_reasons.values())
    assert fallbacks == 0, (
        f"grid cells fell back to scalar: {fallback_reasons!r}"
    )
    assert all(
        isinstance(outcome, SimulationResult) for outcome in batch_outcomes
    )

    # -- live scalar: stratified subsample, extrapolated -----------------
    sample = list(range(0, n_cells, STRIDE))
    started = time.perf_counter()
    scalar_outcomes = []
    for i in sample:
        spec = specs[i]
        scalar_outcomes.append(spec.setup.run(
            spec.scheduler_name, spec.utilization, spec.capacity, spec.seed
        ))
    scalar_sample_total = time.perf_counter() - started
    scalar_per_cell = scalar_sample_total / len(sample)
    scalar_est_total = scalar_per_cell * n_cells

    # The engines must agree on the measured quantity (a cheap inline
    # sanity check; the real contract lives in the equivalence suite).
    for i, scalar_result in zip(sample, scalar_outcomes):
        batch_result = batch_outcomes[i]
        assert isinstance(batch_result, SimulationResult)
        assert batch_result.missed_count == scalar_result.missed_count, (
            f"engines disagree on cell {i}: batch "
            f"{batch_result.missed_count} vs scalar "
            f"{scalar_result.missed_count} misses"
        )

    speedup_vs_live = scalar_est_total / batch_total

    committed_scalar_est = None
    speedup_vs_committed = None
    if BASELINE_PATH.exists():
        committed = json.loads(BASELINE_PATH.read_text())
        if committed.get("cells") == n_cells:
            committed_scalar_est = committed.get("scalar_est_total_s")
    if committed_scalar_est is not None:
        speedup_vs_committed = committed_scalar_est / batch_total

    baseline = {
        "cells": n_cells,
        "horizon": 2000.0,
        "utilization": _UTILIZATION,
        "batch_total_s": round(batch_total, 3),
        "batch_per_cell_ms": round(batch_total / n_cells * 1e3, 3),
        "batch_fallbacks": fallbacks,
        "scalar_sample_cells": len(sample),
        "scalar_per_cell_ms": round(scalar_per_cell * 1e3, 3),
        "scalar_est_total_s": round(scalar_est_total, 3),
        "speedup_vs_live": round(speedup_vs_live, 2),
    }
    if speedup_vs_committed is not None:
        baseline["speedup_vs_committed"] = round(speedup_vs_committed, 2)
    RESULTS_DIR.mkdir(exist_ok=True)
    atomic_write_text(
        BASELINE_PATH,
        json.dumps(baseline, indent=2, sort_keys=True) + "\n",
    )

    lines = [f"batch throughput ({n_cells} fig8-style cells, horizon 2000)"]
    for name, value in sorted(baseline.items()):
        lines.append(f"  {name:24} {value}")
    report("batch_throughput", "\n".join(lines))

    # The core was accepted at >=10x on this grid (see the committed
    # baseline); assert well below that so shared-CI noise cannot flake
    # the gate while order-of-magnitude regressions still trip it.
    assert speedup_vs_live >= 5.0, (
        f"batch speedup collapsed: {speedup_vs_live:.1f}x vs live scalar"
    )
    if speedup_vs_committed is not None:
        assert speedup_vs_committed >= 3.0, (
            f"batch engine slower than 1/3 of the committed scalar "
            f"estimate: {speedup_vs_committed:.1f}x"
        )
