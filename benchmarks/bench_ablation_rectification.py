"""Ablation — the eq. (13) rectification choice (DESIGN.md).

The paper's source formula contains a Gaussian factor that is negative
half the time; Figure 5 shows a non-negative signal.  We default to the
``abs`` rectification (mean power ~3.99) and this bench demonstrates why
the alternative ``clamp`` reading (mean ~2.0) is inconsistent with
Table 1: at U = 0.8 the full-speed demand (U * P_max = 2.56) exceeds the
clamp-mode harvest, so LSA misses persist at *any* storage size —
whereas the paper reports a finite Cmin ratio of 1.01 there.
"""

from repro.experiments.ablations import run_rectification_ablation


def test_rectification_ablation(benchmark, report):
    result = benchmark.pedantic(
        run_rectification_ablation, rounds=1, iterations=1
    )
    report("ablation_rectification", result.format_text())

    rates = result.metrics["rates"]
    # abs: plentiful long-run energy -> (near-)zero misses at 5000.
    assert rates["abs"] < 0.02
    # clamp: structurally energy-deficient (demand 2.56 > harvest ~2.0)
    # -> persistent misses even with a 5000-unit storage starting full
    # (the initial charge defers, but cannot remove, the deficit).
    assert rates["clamp"] > 0.02
