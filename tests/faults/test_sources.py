"""Tests for the harvest-side fault injectors."""

import math

import pytest

from repro.energy.source import ConstantSource, SolarStochasticSource
from repro.faults import BlackoutSource, BrownoutSource, SensorDropoutSource
from repro.timeutils import INFINITY


def series(source, n):
    return [source.power(float(t)) for t in range(n)]


class TestDeterminism:
    def test_same_seed_same_series(self):
        a = BlackoutSource(ConstantSource(2.0), seed=7, start_probability=0.2)
        b = BlackoutSource(ConstantSource(2.0), seed=7, start_probability=0.2)
        assert series(a, 500) == series(b, 500)

    def test_out_of_order_queries_match_in_order(self):
        # An oracle predictor integrates the future before the simulator
        # reaches it; querying ahead must not change the realization.
        a = BlackoutSource(ConstantSource(1.0), seed=3, start_probability=0.3)
        b = BlackoutSource(ConstantSource(1.0), seed=3, start_probability=0.3)
        a.power(400.0)  # far-future query first
        assert series(a, 500) == series(b, 500)

    def test_different_seeds_differ(self):
        a = SensorDropoutSource(ConstantSource(1.0), seed=0, drop_probability=0.5)
        b = SensorDropoutSource(ConstantSource(1.0), seed=1, drop_probability=0.5)
        assert series(a, 200) != series(b, 200)

    def test_schedule_independent_of_inner(self):
        # Equal seeds give identical attenuation schedules regardless of
        # what they decorate.
        a = BlackoutSource(ConstantSource(5.0), seed=11, start_probability=0.2)
        b = BlackoutSource(SolarStochasticSource(seed=0), seed=11, start_probability=0.2)
        atts_a = [a.attenuation_at(float(t)) for t in range(300)]
        atts_b = [b.attenuation_at(float(t)) for t in range(300)]
        assert atts_a == atts_b


class TestBlackout:
    def test_factors_are_zero_or_one(self):
        src = BlackoutSource(ConstantSource(3.0), seed=1, start_probability=0.3)
        values = set(series(src, 1000))
        assert values == {0.0, 3.0}

    def test_outage_durations_within_range(self):
        src = BlackoutSource(
            ConstantSource(1.0), seed=5, start_probability=0.1,
            min_duration=3, max_duration=6,
        )
        atts = [src.attenuation_at(float(t)) for t in range(5000)]
        runs, current = [], 0
        for a in atts:
            if a == 0.0:
                current += 1
            elif current:
                runs.append(current)
                current = 0
        assert runs, "expected at least one outage in 5000 quanta"
        # Consecutive outages can merge (a new outage may start in the
        # quantum after one ends), so runs are unions of [3, 6] blocks.
        assert min(runs) >= 3

    def test_outage_fraction_closed_form(self):
        src = BlackoutSource(
            ConstantSource(1.0), seed=0, start_probability=0.1,
            min_duration=5, max_duration=15,
        )
        # p*m / (p*m + 1 - p) with m = 10.
        assert src.outage_fraction() == pytest.approx(1.0 / (1.0 + 0.9))

    def test_outage_fraction_matches_empirical(self):
        src = BlackoutSource(
            ConstantSource(1.0), seed=9, start_probability=0.05,
            min_duration=5, max_duration=15,
        )
        n = 20_000
        dark = sum(1 for t in range(n) if src.attenuation_at(float(t)) == 0.0)
        assert dark / n == pytest.approx(src.outage_fraction(), abs=0.05)

    def test_mean_power(self):
        src = BlackoutSource(ConstantSource(4.0), seed=0, start_probability=0.1)
        assert src.mean_power() == pytest.approx(
            4.0 * (1.0 - src.outage_fraction())
        )

    def test_zero_probability_is_transparent(self):
        src = BlackoutSource(ConstantSource(2.5), seed=0, start_probability=0.0)
        assert series(src, 100) == [2.5] * 100
        assert src.outage_fraction() == 0.0
        assert src.mean_power() == pytest.approx(2.5)


class TestBrownout:
    def test_attenuates_instead_of_zeroing(self):
        src = BrownoutSource(
            ConstantSource(2.0), seed=1, start_probability=0.3,
            brownout_factor=0.25,
        )
        values = set(series(src, 1000))
        assert values == {0.5, 2.0}
        assert src.brownout_factor == 0.25

    def test_mean_power_accounts_for_partial_attenuation(self):
        src = BrownoutSource(
            ConstantSource(1.0), seed=0, start_probability=0.1,
            brownout_factor=0.5,
        )
        expected = 1.0 - src.outage_fraction() * 0.5
        assert src.mean_power() == pytest.approx(expected)


class TestSensorDropout:
    def test_iid_drop_rate(self):
        src = SensorDropoutSource(ConstantSource(1.0), seed=2, drop_probability=0.25)
        n = 20_000
        dropped = sum(1 for t in range(n) if src.power(float(t)) == 0.0)
        assert dropped / n == pytest.approx(0.25, abs=0.02)

    def test_mean_power(self):
        src = SensorDropoutSource(ConstantSource(8.0), seed=0, drop_probability=0.25)
        assert src.mean_power() == pytest.approx(6.0)


class TestPiecewiseConstantContract:
    def test_next_boundary_is_own_grid_for_constant_inner(self):
        src = BlackoutSource(ConstantSource(1.0), seed=0, quantum=2.0)
        assert src.next_boundary(0.3) == 2.0
        assert src.next_boundary(2.0) == 4.0

    def test_next_boundary_respects_inner_boundaries(self):
        inner = SolarStochasticSource(seed=0)  # quantum-1 boundaries
        src = BlackoutSource(inner, seed=0, quantum=5.0)
        assert src.next_boundary(0.5) == inner.next_boundary(0.5)

    def test_energy_integral_matches_quantum_sum(self):
        src = BlackoutSource(ConstantSource(2.0), seed=4, start_probability=0.3)
        total = sum(src.power(float(t)) for t in range(50))
        assert src.energy(0.0, 50.0) == pytest.approx(total)

    def test_negative_time_rejected(self):
        src = BlackoutSource(ConstantSource(1.0), seed=0)
        with pytest.raises(ValueError, match=">= 0"):
            src.attenuation_at(-1.0)


class TestValidation:
    def test_bad_probability(self):
        with pytest.raises(ValueError, match="start_probability"):
            BlackoutSource(ConstantSource(1.0), start_probability=1.5)
        with pytest.raises(ValueError, match="drop_probability"):
            SensorDropoutSource(ConstantSource(1.0), drop_probability=-0.1)

    def test_bad_durations(self):
        with pytest.raises(ValueError, match="durations"):
            BlackoutSource(ConstantSource(1.0), min_duration=0)
        with pytest.raises(ValueError, match="durations"):
            BlackoutSource(ConstantSource(1.0), min_duration=10, max_duration=5)

    def test_bad_quantum(self):
        with pytest.raises(ValueError, match="quantum"):
            BlackoutSource(ConstantSource(1.0), quantum=0.0)
        with pytest.raises(ValueError, match="quantum"):
            BlackoutSource(ConstantSource(1.0), quantum=math.inf)

    def test_bad_brownout_factor(self):
        with pytest.raises(ValueError, match="attenuation"):
            BrownoutSource(ConstantSource(1.0), brownout_factor=1.5)

    def test_introspection(self):
        inner = ConstantSource(1.0)
        src = BlackoutSource(inner, seed=42, min_duration=2, max_duration=9)
        assert src.inner is inner
        assert src.seed == 42
        assert src.duration_range == (2, 9)
        assert src.quantum == 1.0
        assert "BlackoutSource" in repr(src)
