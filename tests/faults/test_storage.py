"""Tests for the storage-side fault injector."""

import math

import pytest

from repro.energy.storage import IdealStorage, NonIdealStorage
from repro.faults import DegradedStorage
from repro.timeutils import INFINITY


class TestCapacityFade:
    def test_effective_capacity_declines(self):
        deg = DegradedStorage(IdealStorage(100.0), fade_rate=1e-2)
        assert deg.effective_capacity == 100.0
        deg.advance(10.0, harvest_power=0.0, draw_power=0.0)
        assert deg.effective_capacity == pytest.approx(90.0)
        assert deg.nominal_capacity == 100.0
        assert deg.capacity == pytest.approx(90.0)

    def test_charge_above_faded_capacity_is_expelled_as_leakage(self):
        deg = DegradedStorage(IdealStorage(100.0, initial=100.0), fade_rate=1e-2)
        seg = deg.advance(10.0, harvest_power=0.0, draw_power=0.0)
        assert deg.stored == pytest.approx(90.0)
        assert deg.total_leaked == pytest.approx(10.0)
        # The expelled charge never reached the load.
        assert deg.total_drawn == pytest.approx(0.0)
        assert seg.leaked == pytest.approx(10.0)

    def test_fade_floor(self):
        deg = DegradedStorage(
            IdealStorage(100.0), fade_rate=1e-2, min_capacity_fraction=0.5
        )
        deg.advance(1000.0, 0.0, 0.0)
        assert deg.effective_capacity == pytest.approx(50.0)

    def test_is_full_uses_faded_capacity(self):
        deg = DegradedStorage(IdealStorage(100.0, initial=100.0), fade_rate=1e-2)
        deg.advance(10.0, 0.0, 0.0)
        assert deg.is_full  # 90 stored vs 90 effective
        assert deg.fraction == pytest.approx(1.0)

    def test_fade_requires_finite_capacity(self):
        with pytest.raises(ValueError, match="finite inner capacity"):
            DegradedStorage(IdealStorage(math.inf), fade_rate=1e-3)


class TestSpikes:
    def always_spiking(self, initial=50.0, spike_power=2.0):
        return DegradedStorage(
            IdealStorage(100.0, initial=initial),
            spike_probability=1.0,
            spike_power=spike_power,
        )

    def test_net_flow_includes_spike_drain(self):
        deg = self.always_spiking()
        assert deg.net_flow(0.0, 1.0) == pytest.approx(-3.0)

    def test_time_to_empty_includes_spike_drain(self):
        deg = self.always_spiking(initial=9.0)
        # Constant -3 flow (always spiking): empty after 3 time units.
        assert deg.time_to_empty(0.0, 1.0) == pytest.approx(3.0)

    def test_time_to_empty_infinite_when_charging_through_spike(self):
        deg = self.always_spiking()
        assert deg.time_to_empty(5.0, 1.0) == INFINITY

    def test_bounded_walk_returns_safe_underestimate(self):
        # Draining slowly against a huge store: the true crossing lies far
        # beyond the bounded look-ahead, so the walk cannot find it.
        deg = DegradedStorage(
            IdealStorage(1e9, initial=1e8),
            spike_probability=1.0,
            spike_power=5.0,
        )
        tte = deg.time_to_empty(0.0, 1.0)  # spike rate -6, never crosses soon
        # Level 1e8 at rate -6 crosses at ~1.6e7; the walk is bounded, so
        # the wrapper reports the look-ahead horizon instead — a safe
        # underestimate that only makes the simulator split early.
        assert tte <= DegradedStorage._MAX_WINDOWS * 1.0 + 1e-6
        assert tte > 0.0

    def test_spike_pinned_off_at_empty_store(self):
        deg = self.always_spiking(initial=0.0)
        # No charge for the parasitic path to drain: flows balance and the
        # store cannot be "drained" below empty by the fault.
        assert deg.net_flow(0.0, 0.0) == 0.0
        seg = deg.advance(5.0, 0.0, 0.0)
        assert deg.stored == 0.0
        assert seg.leaked == pytest.approx(0.0)

    def test_spike_energy_reclassified_as_leakage(self):
        deg = self.always_spiking(initial=50.0, spike_power=2.0)
        seg = deg.advance(4.0, harvest_power=0.0, draw_power=1.0)
        # Load drew 4, spike drained 8.
        assert seg.drawn == pytest.approx(4.0)
        assert deg.total_drawn == pytest.approx(4.0)
        assert deg.total_leaked == pytest.approx(8.0)
        assert deg.stored == pytest.approx(50.0 - 12.0)

    def test_conservation_over_ideal_inner(self):
        deg = DegradedStorage(
            IdealStorage(60.0, initial=30.0),
            seed=3,
            fade_rate=1e-3,
            spike_probability=0.3,
            spike_power=1.5,
        )
        harvested = accounted = 0.0
        for step in range(40):
            harvest = 2.0 if step % 3 else 0.0
            seg = deg.advance(1.0, harvest, 0.5)
            harvested += harvest * 1.0
            accounted += seg.stored_delta + seg.drawn + seg.leaked + seg.overflow
        assert accounted == pytest.approx(harvested)


class TestDeterminism:
    def make(self, seed=7):
        return DegradedStorage(
            IdealStorage(40.0, initial=20.0),
            seed=seed,
            spike_probability=0.4,
            spike_power=1.0,
        )

    def test_same_seed_same_trajectory(self):
        a, b = self.make(), self.make()
        for step in range(30):
            sa = a.advance(1.0, 1.0 if step % 2 else 0.0, 0.5)
            sb = b.advance(1.0, 1.0 if step % 2 else 0.0, 0.5)
            assert sa == sb
        assert a.stored == b.stored
        assert a.total_leaked == b.total_leaked

    def test_different_seed_differs(self):
        a, b = self.make(seed=1), self.make(seed=2)
        for _ in range(30):
            a.advance(1.0, 0.8, 0.2)
            b.advance(1.0, 0.8, 0.2)
        assert a.stored != b.stored


class TestNonIdealInner:
    def test_wraps_lossy_storage(self):
        deg = DegradedStorage(
            NonIdealStorage(50.0, leakage_power=0.1),
            seed=1,
            fade_rate=1e-3,
            spike_probability=0.5,
            spike_power=0.5,
        )
        for step in range(20):
            seg = deg.advance(1.0, 1.0, 0.4)
            # Non-ideal conversion losses are unitemized, so the books may
            # under-account but must never conjure energy.
            assert (
                seg.stored_delta + seg.drawn + seg.leaked + seg.overflow
                <= 1.0 + 1e-9
            )
        assert deg.total_leaked > 0.0

    def test_instant_draw_delegates(self):
        inner = NonIdealStorage(50.0, discharge_efficiency=0.8)
        deg = DegradedStorage(inner)
        delivered = deg.draw_instant(4.0)
        assert delivered == pytest.approx(4.0)
        assert inner.stored == pytest.approx(45.0)


class TestValidation:
    def test_bad_fade_rate(self):
        with pytest.raises(ValueError, match="fade_rate"):
            DegradedStorage(IdealStorage(10.0), fade_rate=-1.0)

    def test_bad_min_capacity_fraction(self):
        with pytest.raises(ValueError, match="min_capacity_fraction"):
            DegradedStorage(IdealStorage(10.0), min_capacity_fraction=0.0)

    def test_bad_spike_params(self):
        with pytest.raises(ValueError, match="spike_probability"):
            DegradedStorage(IdealStorage(10.0), spike_probability=2.0)
        with pytest.raises(ValueError, match="spike_power"):
            DegradedStorage(IdealStorage(10.0), spike_power=-1.0)
        with pytest.raises(ValueError, match="spike durations"):
            DegradedStorage(IdealStorage(10.0), min_spike_duration=0)

    def test_bad_quantum(self):
        with pytest.raises(ValueError, match="quantum"):
            DegradedStorage(IdealStorage(10.0), quantum=-1.0)

    def test_bad_advance_duration(self):
        deg = DegradedStorage(IdealStorage(10.0))
        with pytest.raises(ValueError, match="duration"):
            deg.advance(-1.0, 0.0, 0.0)

    def test_introspection(self):
        inner = IdealStorage(10.0)
        deg = DegradedStorage(inner, seed=5, spike_probability=0.1, spike_power=0.2)
        assert deg.inner is inner
        assert deg.seed == 5
        assert deg.has_spikes
        assert deg.elapsed == 0.0
        assert "DegradedStorage" in repr(deg)
